"""Capture-record validation: empty / NaN traces fail fast and clearly."""

import numpy as np
import pytest

from repro.errors import AttackError, TraceValidationError
from repro.attack.segmentation import Segmenter
from repro.power.capture import CapturedTrace, SegmentedCapture
from repro.power.trace import Trace


def _captured(samples, **overrides):
    record = dict(
        trace=Trace(np.asarray(samples, dtype=np.float64)),
        values=[1],
        seed=7,
        cycle_count=100,
    )
    record.update(overrides)
    return CapturedTrace(**record)


class TestCapturedTrace:
    def test_valid_trace_accepted(self):
        record = _captured(np.ones(16))
        assert record.trace is not None

    def test_slim_record_without_trace_accepted(self):
        record = _captured(np.ones(4), trace=None)
        assert record.trace is None

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceValidationError, match="seed 7 is empty"):
            _captured(np.array([]))

    def test_nan_trace_rejected(self):
        samples = np.ones(16)
        samples[3] = np.nan
        with pytest.raises(TraceValidationError, match="1 non-finite"):
            _captured(samples)

    def test_inf_trace_rejected(self):
        samples = np.ones(16)
        samples[0] = np.inf
        samples[5] = -np.inf
        with pytest.raises(TraceValidationError, match="2 non-finite"):
            _captured(samples)

    def test_error_is_a_value_error(self):
        # Catchable both as the repro hierarchy and as stdlib ValueError.
        with pytest.raises(ValueError):
            _captured(np.array([]))


class TestSegmentedCapture:
    def _segmented(self, slices, error=None):
        return SegmentedCapture(
            slices=slices, values=[1, 2], seed=9, cycle_count=500, error=error
        )

    def test_valid_slices_accepted(self):
        record = self._segmented(np.ones((2, 32)))
        assert record.ok

    def test_failure_record_accepted(self):
        record = self._segmented(None, error="no bursts")
        assert not record.ok

    def test_zero_row_matrix_accepted(self):
        # "Segmented fine, found no windows" is a legitimate outcome.
        assert self._segmented(np.empty((0, 32))).ok

    def test_zero_length_slices_rejected(self):
        with pytest.raises(TraceValidationError, match="unusable slice shape"):
            self._segmented(np.empty((2, 0)))

    def test_wrong_rank_rejected(self):
        with pytest.raises(TraceValidationError, match="unusable slice shape"):
            self._segmented(np.ones(32))

    def test_nan_slices_rejected(self):
        slices = np.ones((3, 16))
        slices[1, 4] = np.nan
        with pytest.raises(TraceValidationError, match="non-finite"):
            self._segmented(slices)


class TestSegmenterGuards:
    def test_empty_trace_raises_attack_error(self):
        with pytest.raises(AttackError, match="empty trace"):
            Segmenter().windows(np.array([]))

    def test_non_finite_trace_raises_attack_error(self):
        samples = np.ones(4096)
        samples[100] = np.nan
        with pytest.raises(AttackError, match="non-finite"):
            Segmenter().windows(samples)
