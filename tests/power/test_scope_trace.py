"""Unit tests for the oscilloscope model and trace containers."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.power.scope import Oscilloscope
from repro.power.trace import Trace, TraceSet


class TestOscilloscope:
    def test_noiseless_passthrough(self):
        scope = Oscilloscope(noise_std=0.0)
        x = np.arange(10, dtype=float)
        assert np.array_equal(scope.capture(x, rng=0), x)

    def test_noise_added(self):
        scope = Oscilloscope(noise_std=1.0)
        x = np.zeros(2000)
        y = scope.capture(x, rng=0)
        assert 0.9 < y.std() < 1.1
        assert abs(y.mean()) < 0.1

    def test_noise_reproducible_by_seed(self):
        scope = Oscilloscope(noise_std=1.0)
        x = np.zeros(100)
        assert np.array_equal(scope.capture(x, rng=5), scope.capture(x, rng=5))

    def test_gain(self):
        scope = Oscilloscope(noise_std=0.0, gain=2.5)
        x = np.ones(4)
        assert np.allclose(scope.capture(x, rng=0), 2.5)

    def test_bandwidth_smooths(self):
        scope = Oscilloscope(noise_std=0.0, bandwidth_window=5)
        x = np.zeros(50)
        x[25] = 10.0
        y = scope.capture(x, rng=0)
        assert y.max() < 5.0
        assert y.sum() == pytest.approx(10.0, rel=0.01)

    def test_adc_quantisation(self):
        scope = Oscilloscope(noise_std=0.0, adc_bits=4)
        x = np.linspace(0, 1, 1000)
        y = scope.capture(x, rng=0)
        assert len(np.unique(y)) <= 16

    def test_validation(self):
        with pytest.raises(ParameterError):
            Oscilloscope(noise_std=-1)
        with pytest.raises(ParameterError):
            Oscilloscope(bandwidth_window=0)
        with pytest.raises(ParameterError):
            Oscilloscope(adc_bits=2)


class TestTrace:
    def test_slice(self):
        t = Trace(np.arange(10, dtype=float), {"seed": 1})
        s = t.slice(2, 5)
        assert s.samples.tolist() == [2.0, 3.0, 4.0]
        assert s.metadata == {"seed": 1}

    def test_rejects_2d(self):
        with pytest.raises(ParameterError):
            Trace(np.zeros((2, 2)))


class TestTraceSet:
    def test_grouping(self):
        ts = TraceSet()
        ts.add(np.ones(4), label=1)
        ts.add(2 * np.ones(4), label=2)
        ts.add(3 * np.ones(4), label=1)
        groups = ts.by_label()
        assert set(groups) == {1, 2}
        assert groups[1].shape == (2, 4)
        assert ts.classes() == [1, 2]

    def test_length_mismatch_rejected(self):
        ts = TraceSet()
        ts.add(np.ones(4), label=0)
        with pytest.raises(ParameterError):
            ts.add(np.ones(5), label=0)

    def test_empty_matrix_rejected(self):
        with pytest.raises(ParameterError):
            TraceSet().matrix()

    def test_iteration(self):
        ts = TraceSet()
        ts.add(np.ones(3), label=7)
        traces = list(ts)
        assert len(traces) == 1
        assert traces[0][1] == 7


class TestCapture:
    def test_end_to_end_capture(self):
        from repro.power.capture import TraceAcquisition
        from repro.riscv.device import GaussianSamplerDevice

        device = GaussianSamplerDevice([132120577])
        bench = TraceAcquisition(device, rng=0)
        captured = bench.capture(seed=3, count=2)
        assert len(captured.values) == 2
        assert len(captured.trace) == captured.cycle_count
        assert captured.trace.metadata["count"] == 2

    def test_batch_uses_distinct_seeds(self):
        from repro.power.capture import TraceAcquisition
        from repro.riscv.device import GaussianSamplerDevice

        device = GaussianSamplerDevice([132120577])
        bench = TraceAcquisition(device, rng=1)
        batch = bench.capture_batch(3, coeffs_per_trace=1, first_seed=10)
        assert [c.seed for c in batch] == [10, 11, 12]
