"""Determinism contract of parallel batch acquisition."""

import numpy as np
import pytest

from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


@pytest.fixture(scope="module")
def device():
    return GaussianSamplerDevice([PAPER_Q])


def make_bench(device, seed=7):
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=seed)


def assert_batches_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert a.seed == b.seed
        assert a.values == b.values
        assert a.cycle_count == b.cycle_count
        np.testing.assert_array_equal(a.trace.samples, b.trace.samples)
        np.testing.assert_array_equal(a.event_starts, b.event_starts)


class TestBatchDeterminism:
    def test_workers_bit_identical_to_serial(self, device):
        serial = make_bench(device).capture_batch(4, coeffs_per_trace=1, first_seed=5)
        parallel = make_bench(device).capture_batch(
            4, coeffs_per_trace=1, first_seed=5, workers=4
        )
        assert_batches_identical(serial, parallel)

    def test_same_bench_serial_then_parallel(self, device):
        bench = make_bench(device)
        serial = bench.capture_batch(3, coeffs_per_trace=2, first_seed=20)
        parallel = bench.capture_batch(3, coeffs_per_trace=2, first_seed=20, workers=2)
        assert_batches_identical(serial, parallel)

    def test_noise_is_per_seed_not_per_position(self, device):
        bench = make_bench(device)
        wide = bench.capture_batch(3, first_seed=10)
        narrow = bench.capture_batch(1, first_seed=11)
        # seed 11 appears at position 1 of `wide` and position 0 of
        # `narrow`; the noise must follow the seed, not the position
        np.testing.assert_array_equal(
            wide[1].trace.samples, narrow[0].trace.samples
        )

    def test_distinct_seeds_distinct_noise(self, device):
        batch = make_bench(device).capture_batch(2, first_seed=1)
        assert [c.seed for c in batch] == [1, 2]
        # same kernel, same coefficient count would still leave Gaussian
        # noise differing between the two traces
        a, b = batch[0].trace.samples, batch[1].trace.samples
        if a.shape == b.shape:
            assert not np.array_equal(a, b)

    def test_event_starts_present_and_consistent(self, device):
        captured = make_bench(device).capture_batch(1, first_seed=3)[0]
        assert captured.event_starts is not None
        assert captured.event_starts[0] == 0
        assert len(captured.trace) == captured.cycle_count

    def test_event_starts_defaults_to_none(self):
        from repro.power.capture import CapturedTrace
        from repro.power.trace import Trace

        bare = CapturedTrace(
            trace=Trace(np.zeros(4)), values=[0], seed=1, cycle_count=4
        )
        assert bare.event_starts is None
