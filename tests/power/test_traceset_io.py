"""Tests for TraceSet persistence."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.power.trace import TraceSet


class TestTraceSetIo:
    def test_roundtrip(self, tmp_path):
        ts = TraceSet()
        rng = np.random.default_rng(0)
        for label in (-1, 0, 1, 1):
            ts.add(rng.normal(size=32), label)
        ts.save(tmp_path / "corpus.npz")
        loaded = TraceSet.load(tmp_path / "corpus.npz")
        assert len(loaded) == 4
        assert loaded.labels.tolist() == ts.labels.tolist()
        assert np.allclose(loaded.matrix(), ts.matrix())

    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            TraceSet().save(tmp_path / "empty.npz")

    def test_grouping_survives_roundtrip(self, tmp_path):
        ts = TraceSet()
        ts.add(np.ones(8), 3)
        ts.add(2 * np.ones(8), 3)
        ts.add(np.zeros(8), -2)
        ts.save(tmp_path / "c.npz")
        groups = TraceSet.load(tmp_path / "c.npz").by_label()
        assert set(groups) == {3, -2}
        assert groups[3].shape == (2, 8)
