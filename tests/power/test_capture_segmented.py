"""Worker-side segmentation and slim-capture contracts."""

import numpy as np
import pytest

from repro.attack.pipeline import SingleTraceAttack
from repro.attack.segmentation import AnchorRefiner, Segmenter
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


@pytest.fixture(scope="module")
def device():
    return GaussianSamplerDevice([PAPER_Q])


def make_bench(device, seed=7):
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=seed)


@pytest.fixture(scope="module")
def segmentation(device):
    """A segmenter plus a refiner learned from a small head batch."""
    bench = make_bench(device)
    segmenter = Segmenter()
    head = bench.capture_batch(8, coeffs_per_trace=4, first_seed=900)
    refiner = AnchorRefiner.learn(segmenter, [c.trace.samples for c in head])
    return segmenter, refiner


class TestSegmentedBatch:
    def test_requires_segmenter(self, device):
        with pytest.raises(ValueError):
            list(make_bench(device).capture_segmented_batch(2))

    def test_matches_parent_side_segmentation(self, device, segmentation):
        """Worker-extracted slices == segmenting the same batch capture
        in the parent, bit for bit."""
        segmenter, refiner = segmentation
        bench = make_bench(device)
        segmented = list(
            bench.capture_segmented_batch(
                4, coeffs_per_trace=3, first_seed=40,
                segmenter=segmenter, refiner=refiner,
            )
        )
        captures = make_bench(device).capture_batch(
            4, coeffs_per_trace=3, first_seed=40
        )
        for seg, cap in zip(segmented, captures):
            assert seg.ok
            assert seg.seed == cap.seed
            assert seg.values == cap.values
            assert seg.cycle_count == cap.cycle_count
            parent = np.vstack(
                segmenter.aligned_slices(cap.trace.samples, refiner=refiner)
            )
            np.testing.assert_array_equal(seg.slices, parent)

    def test_pool_bit_identical_to_serial(self, device, segmentation):
        segmenter, refiner = segmentation
        serial = list(
            make_bench(device).capture_segmented_batch(
                5, coeffs_per_trace=2, first_seed=60,
                segmenter=segmenter, refiner=refiner,
            )
        )
        pooled = list(
            make_bench(device).capture_segmented_batch(
                5, coeffs_per_trace=2, first_seed=60,
                segmenter=segmenter, refiner=refiner, workers=3,
            )
        )
        assert [s.seed for s in serial] == [p.seed for p in pooled]
        for s, p in zip(serial, pooled):
            assert s.values == p.values
            np.testing.assert_array_equal(s.slices, p.slices)

    def test_payload_is_slices_not_traces(self, device, segmentation):
        """The segmented record must be orders of magnitude smaller than
        the raw capture it replaces."""
        import pickle

        segmenter, refiner = segmentation
        seg = next(
            make_bench(device).capture_segmented_batch(
                1, coeffs_per_trace=4, first_seed=70,
                segmenter=segmenter, refiner=refiner,
            )
        )
        cap = make_bench(device).capture_batch(1, coeffs_per_trace=4, first_seed=70)[0]
        assert len(pickle.dumps(seg)) < len(pickle.dumps(cap)) / 10


class TestSlimCapture:
    def test_return_traces_false_drops_payload(self, device):
        bench = make_bench(device)
        slim = bench.capture_batch(
            3, coeffs_per_trace=2, first_seed=5, return_traces=False
        )
        full = make_bench(device).capture_batch(3, coeffs_per_trace=2, first_seed=5)
        for s, f in zip(slim, full):
            assert s.trace is None
            assert s.event_starts is None
            assert s.values == f.values
            assert s.seed == f.seed
            assert s.cycle_count == f.cycle_count

    def test_default_keeps_traces(self, device):
        batch = make_bench(device).capture_batch(1, first_seed=9)
        assert batch[0].trace is not None
        assert batch[0].event_starts is not None

    def test_slim_works_with_workers(self, device):
        slim = make_bench(device).capture_batch(
            4, coeffs_per_trace=1, first_seed=11, return_traces=False, workers=2
        )
        serial = make_bench(device).capture_batch(
            4, coeffs_per_trace=1, first_seed=11, return_traces=False
        )
        assert [c.values for c in slim] == [c.values for c in serial]
        assert all(c.trace is None for c in slim)

    def test_profiled_attack_is_picklable(self):
        """The campaign pool ships the profiled attack via the pool
        initializer; the device's generated-code cache must not leak
        into the pickle."""
        import pickle

        bench = make_bench(GaussianSamplerDevice([PAPER_Q]))
        attack = SingleTraceAttack(bench, poi_count=16)
        attack.profile(num_traces=40, coeffs_per_trace=4, first_seed=50_000)
        clone = pickle.loads(pickle.dumps(attack))
        captured = bench.capture(123, 3)
        a, b = attack.attack(captured), clone.attack(captured)
        assert a.signs == b.signs and a.estimates == b.estimates
