"""Noise stream v2: counter-based keying and the fused capture contract.

The stream-v2 migration replaced the per-trace sequential generator
with counter-based Philox streams keyed by ``(batch entropy, seed)``,
which is what lets the fused lane-major pipeline noise a whole batch in
one pass.  These tests pin the guarantees the rest of the bench builds
on: bit-identical output across engines, worker counts, lane widths and
capture order; addressable offsets (mid-stream re-entry equals the
one-shot draw, including across block boundaries); and the explicit
refusal to derive a batch entropy from caller-owned generator state.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.power import noise
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


@pytest.fixture(scope="module")
def device():
    return GaussianSamplerDevice([PAPER_Q])


def make_bench(device, seed=7, **kwargs):
    return TraceAcquisition(
        device, scope=Oscilloscope(noise_std=1.0), rng=seed, **kwargs
    )


def assert_batches_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert a.seed == b.seed
        assert a.values == b.values
        assert a.cycle_count == b.cycle_count
        np.testing.assert_array_equal(a.trace.samples, b.trace.samples)
        np.testing.assert_array_equal(a.event_starts, b.event_starts)


class TestStreamAddressing:
    def test_deterministic(self):
        a = noise.standard_noise(12345, 42, 5000)
        b = noise.standard_noise(12345, 42, 5000)
        np.testing.assert_array_equal(a, b)

    def test_offset_continuation_within_block(self):
        full = noise.standard_noise(9, 3, 1000)
        head = noise.standard_noise(9, 3, 400)
        tail = noise.standard_noise(9, 3, 600, offset=400)
        np.testing.assert_array_equal(np.concatenate([head, tail]), full)

    def test_offset_continuation_across_block_boundary(self):
        n = 3 * noise.NOISE_BLOCK + 17
        full = noise.standard_noise(9, 3, n)
        for off in (
            noise.NOISE_BLOCK - 1,
            noise.NOISE_BLOCK,
            noise.NOISE_BLOCK + 1,
            2 * noise.NOISE_BLOCK + 5,
        ):
            head = noise.standard_noise(9, 3, off)
            tail = noise.standard_noise(9, 3, n - off, offset=off)
            np.testing.assert_array_equal(np.concatenate([head, tail]), full)

    def test_distinct_seeds_distinct_streams(self):
        a = noise.standard_noise(77, 1, 256)
        b = noise.standard_noise(77, 2, 256)
        assert not np.array_equal(a, b)

    def test_distinct_entropies_distinct_streams(self):
        a = noise.standard_noise(1, 5, 256)
        b = noise.standard_noise(2, 5, 256)
        assert not np.array_equal(a, b)

    def test_add_noise_scales_and_accumulates(self):
        base = np.linspace(-1.0, 1.0, 500)
        out = base.copy()
        noise.add_noise(out, 11, 4, 0.25)
        np.testing.assert_array_equal(
            out, base + noise.standard_noise(11, 4, 500) * 0.25
        )

    def test_zero_count(self):
        assert noise.standard_noise(1, 1, 0).shape == (0,)

    def test_marginal_moments(self):
        x = noise.standard_noise(2026, 8, 200_000)
        assert abs(float(x.mean())) < 0.02
        assert abs(float(x.var()) - 1.0) < 0.02


class TestFusedCaptureDeterminism:
    def test_worker_count_invariant(self, device):
        serial = make_bench(device, engine="lanes").capture_batch(
            12, coeffs_per_trace=2, first_seed=50
        )
        pooled = make_bench(device, engine="lanes", lanes=4).capture_batch(
            12, coeffs_per_trace=2, first_seed=50, workers=3
        )
        assert_batches_identical(serial, pooled)

    def test_lane_width_invariant(self, device):
        batches = [
            make_bench(device, engine="lanes", lanes=width).capture_batch(
                9, coeffs_per_trace=1, first_seed=200
            )
            for width in (1, 4, 9, 16)
        ]
        for other in batches[1:]:
            assert_batches_identical(batches[0], other)

    def test_capture_order_invariant(self, device):
        # Seed 105 captured alone, in a later chunk, or mid-batch must
        # carry the same noise: the stream is keyed, not positional.
        wide = make_bench(device, engine="lanes").capture_batch(
            8, first_seed=100
        )
        alone = make_bench(device, engine="lanes").capture_batch(
            1, first_seed=105
        )
        np.testing.assert_array_equal(
            wide[5].trace.samples, alone[0].trace.samples
        )

    def test_fused_matches_threaded(self, device):
        fused = make_bench(device, engine="lanes").capture_batch(
            6, coeffs_per_trace=2, first_seed=31
        )
        threaded = make_bench(device, engine="threaded").capture_batch(
            6, coeffs_per_trace=2, first_seed=31
        )
        assert_batches_identical(fused, threaded)


class TestBatchEntropyContract:
    def test_external_generator_refused(self, device):
        bench = TraceAcquisition(device, rng=np.random.default_rng(3))
        with pytest.raises(ParameterError, match="externally-advanced"):
            bench.batch_entropy()

    def test_external_generator_still_captures_sequentially(self, device):
        # Only the *batch* entropy is refused; the sequential-noise
        # single capture path keeps working with a caller generator.
        bench = TraceAcquisition(device, rng=np.random.default_rng(3))
        captured = bench.capture(seed=5, count=1)
        assert captured.trace.samples.size > 0

    def test_integer_seed_pins_entropy(self, device):
        assert make_bench(device, seed=9).batch_entropy() == 9
        bench = TraceAcquisition(device, rng=None)
        assert bench.batch_entropy() == bench.batch_entropy()


class TestReferencePath:
    def test_reference_preserves_ground_truth(self, device):
        v1 = make_bench(device).capture_reference(3, coeffs_per_trace=2)
        v2 = make_bench(device, engine="lanes").capture_batch(
            3, coeffs_per_trace=2
        )
        for a, b in zip(v1, v2):
            assert a.seed == b.seed
            assert a.values == b.values
            assert a.cycle_count == b.cycle_count
            np.testing.assert_array_equal(a.event_starts, b.event_starts)
            # Same kernel, same noiseless leakage — only the noise
            # stream version differs, so the traces differ but agree
            # closely in the mean (noise is zero-mean on both sides).
            assert a.trace.samples.shape == b.trace.samples.shape
            assert not np.array_equal(a.trace.samples, b.trace.samples)
            drift = abs(
                float(a.trace.samples.mean()) - float(b.trace.samples.mean())
            )
            assert drift < 8.0 / np.sqrt(a.trace.samples.size)

    def test_reference_is_deterministic(self, device):
        a = make_bench(device).capture_reference(2)
        b = make_bench(device).capture_reference(2)
        assert_batches_identical(a, b)
