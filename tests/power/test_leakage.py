"""Unit tests for the leakage model."""

import numpy as np
import pytest

from repro.power.leakage import LeakageModel
from repro.riscv import cycles as cy
from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu
from repro.riscv.memory import Memory


def events_for(source, registers=None):
    cpu = Cpu(Memory(1 << 16))
    cpu.load_program(assemble(source).words)
    for idx, val in (registers or {}).items():
        cpu.write_register(idx, val)
    cpu.run()
    return cpu


class TestExpansion:
    def test_sample_count_equals_cycle_count(self):
        cpu = events_for(
            """
                li  t0, 0x8000
                mul t1, t0, t0
                sw  t1, 0(t0)
                lw  t2, 0(t0)
                beq t2, t1, skip
            skip:
                ebreak
            """
        )
        samples, starts = LeakageModel().expand(cpu.events)
        assert len(samples) == cpu.cycle_count
        assert starts[0] == 0
        assert np.all(np.diff(starts) > 0)

    def test_data_dependence(self):
        """Operands with larger Hamming weight leak more."""
        model = LeakageModel()
        low = events_for("add a2, a0, a1\nebreak", registers={10: 1, 11: 1})
        high = events_for(
            "add a2, a0, a1\nebreak", registers={10: 0x7FFFFFFF, 11: 0x7FFFFFFF}
        )
        s_low, _ = model.expand(low.events)
        s_high, _ = model.expand(high.events)
        assert s_high.sum() > s_low.sum()

    def test_mul_burst_is_elevated(self):
        model = LeakageModel()
        cpu = events_for(
            "li a0, 0x5A5A5\nmul a1, a0, a0\naddi a2, zero, 1\nebreak"
        )
        samples, starts = model.expand(cpu.events)
        mul_index = [i for i, e in enumerate(cpu.events) if e.op_class == cy.OP_MUL][0]
        burst = samples[starts[mul_index] + 2 : starts[mul_index] + 30]
        alu = samples[starts[mul_index + 1] :][:3]
        assert burst.mean() > alu.mean() + model.engine_offset / 2

    def test_identical_events_identical_samples(self):
        model = LeakageModel()
        cpu = events_for("addi a0, zero, 21\nebreak")
        a, _ = model.expand(cpu.events)
        b, _ = model.expand(cpu.events)
        assert np.array_equal(a, b)

    def test_fetch_leaks_instruction_bus(self):
        """Different opcodes at the same state leak differently."""
        model = LeakageModel()
        add = events_for("add a2, a0, a1\nebreak", registers={10: 3, 11: 5})
        xor = events_for("xor a2, a0, a1\nebreak", registers={10: 3, 11: 5})
        s_add, _ = model.expand(add.events)
        s_xor, _ = model.expand(xor.events)
        assert s_add[0] != s_xor[0]

    def test_branch_taken_longer_than_not_taken(self):
        model = LeakageModel()
        taken = events_for("beq zero, zero, t\nt:\nebreak")
        not_taken = events_for("bne zero, zero, t\nt:\nebreak")
        s_taken, _ = model.expand(taken.events)
        s_not, _ = model.expand(not_taken.events)
        assert len(s_taken) == len(s_not) + 2
