"""Tests for the terminal trace visualisation."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.power.visualize import ascii_trace, ascii_trace_with_windows, sparkline


class TestAsciiTrace:
    def test_shape(self):
        plot = ascii_trace(np.sin(np.linspace(0, 10, 500)), width=80, height=8)
        lines = plot.split("\n")
        assert len(lines) == 8
        assert all(len(line) == 80 for line in lines)

    def test_peak_reaches_top_row(self):
        samples = np.zeros(200)
        samples[100] = 10.0
        top = ascii_trace(samples, width=50, height=6).split("\n")[0]
        assert "█" in top

    def test_flat_trace_renders(self):
        plot = ascii_trace(np.ones(100), width=20, height=4)
        assert len(plot.split("\n")) == 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            ascii_trace([], width=10, height=5)
        with pytest.raises(ParameterError):
            ascii_trace([1.0, 2.0], width=1, height=5)


class TestMarkers:
    def test_boundary_and_anchor_markers(self):
        samples = np.random.default_rng(0).normal(size=400)
        out = ascii_trace_with_windows(
            samples, boundaries=[0, 200], anchors=[100], width=40, height=5
        )
        marker_row = out.split("\n")[-1]
        assert marker_row[0] == "|"
        assert marker_row[20] == "|"
        assert marker_row[10] == "^"

    def test_real_segmentation_markers(self):
        from repro.attack.segmentation import Segmenter
        from repro.power.capture import TraceAcquisition
        from repro.riscv.device import GaussianSamplerDevice

        acquisition = TraceAcquisition(GaussianSamplerDevice([132120577]), rng=0)
        captured = acquisition.capture(3, 3)
        windows = Segmenter().windows(captured.trace.samples)
        out = ascii_trace_with_windows(
            captured.trace.samples,
            boundaries=[w.start for w in windows],
            anchors=[w.anchor for w in windows],
            width=100,
        )
        assert out.count("|") == 3
        assert out.count("^") == 3


class TestSparkline:
    def test_length_and_charset(self):
        line = sparkline(np.arange(100.0), width=30)
        assert len(line) == 30
        assert set(line) <= set("▁▂▃▄▅▆▇█")

    def test_monotone_input_monotone_output(self):
        line = sparkline(np.arange(100.0), width=8)
        assert line == "".join(sorted(line))
