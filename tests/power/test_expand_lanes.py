"""Batched lane expansion and the lanes capture path.

``LeakageModel.expand_lanes`` must be bit-identical to expanding each
lane's events alone, and ``capture_batch(engine="lanes")`` must be
bit-identical to the threaded capture path — same traces, same noise,
same event starts — for every lane width, worker count and chunking.
"""

import numpy as np
import pytest

from repro.power.capture import TraceAcquisition
from repro.power.leakage import LeakageModel
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice
from repro.verify.oracles import sample_events

PAPER_Q = 132120577


@pytest.fixture(scope="module")
def device():
    return GaussianSamplerDevice([PAPER_Q])


def make_bench(device, **kwargs):
    return TraceAcquisition(
        device, scope=Oscilloscope(noise_std=1.0), rng=7, **kwargs
    )


def assert_batches_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert a.seed == b.seed
        assert a.values == b.values
        assert a.cycle_count == b.cycle_count
        np.testing.assert_array_equal(a.trace.samples, b.trace.samples)
        np.testing.assert_array_equal(a.event_starts, b.event_starts)


# ----------------------------------------------------------------------
# expand_lanes
# ----------------------------------------------------------------------
def test_expand_lanes_bit_identical_per_lane():
    rng = np.random.default_rng(3)
    model = LeakageModel()
    lanes = [sample_events(rng, max_events=50) for _ in range(9)]
    merged = [event for events in lanes for event in events]
    batched = model.expand_lanes(merged, [len(events) for events in lanes])
    assert len(batched) == len(lanes)
    for events, (samples, starts) in zip(lanes, batched):
        solo_samples, solo_starts = model.expand(events)
        np.testing.assert_array_equal(samples, solo_samples)
        np.testing.assert_array_equal(starts, solo_starts)


def test_expand_lanes_from_device_arena(device):
    batch = device.run_lanes([11, 12, 13], count=2, events_per_lane=False)
    model = LeakageModel()
    for seed, (samples, starts) in zip(
        batch.seeds, model.expand_lanes(batch.events)
    ):
        solo_samples, solo_starts = model.expand(device.run(seed, count=2).events)
        np.testing.assert_array_equal(samples, solo_samples)
        np.testing.assert_array_equal(starts, solo_starts)


def test_expand_lanes_rejects_mismatched_counts():
    events = sample_events(np.random.default_rng(0), max_events=20)
    with pytest.raises(ValueError, match="lane counts"):
        LeakageModel().expand_lanes(events, [len(events) + 1])


def test_expand_lanes_empty_lanes():
    model = LeakageModel()
    out = model.expand_lanes([], [0, 0, 0])
    assert len(out) == 3
    for samples, starts in out:
        assert samples.shape == (0,)
        assert starts.shape == (0,)


# ----------------------------------------------------------------------
# capture_batch(engine="lanes")
# ----------------------------------------------------------------------
class TestLanesCaptureParity:
    def test_lanes_bit_identical_to_threaded(self, device):
        threaded = make_bench(device).capture_batch(
            5, coeffs_per_trace=2, first_seed=30
        )
        for lanes in (1, 2, 5, 64):
            batch = make_bench(device).capture_batch(
                5, coeffs_per_trace=2, first_seed=30,
                engine="lanes", lanes=lanes,
            )
            assert_batches_identical(threaded, batch)

    def test_lanes_with_workers_bit_identical(self, device):
        serial = make_bench(device).capture_batch(
            6, coeffs_per_trace=1, first_seed=50, engine="lanes", lanes=2
        )
        pooled = make_bench(device).capture_batch(
            6, coeffs_per_trace=1, first_seed=50,
            engine="lanes", lanes=2, workers=2,
        )
        assert_batches_identical(serial, pooled)

    def test_acquisition_level_engine_default(self, device):
        bench = make_bench(device, engine="lanes", lanes=4)
        batch = bench.capture_batch(3, coeffs_per_trace=1, first_seed=9)
        threaded = make_bench(device).capture_batch(
            3, coeffs_per_trace=1, first_seed=9
        )
        assert_batches_identical(threaded, batch)

    def test_slim_mode_values_match(self, device):
        bench = make_bench(device)
        full = bench.capture_batch(4, first_seed=70, engine="lanes", lanes=3)
        slim = bench.capture_batch(
            4, first_seed=70, engine="lanes", lanes=3, return_traces=False
        )
        assert [c.values for c in slim] == [c.values for c in full]
        assert all(c.trace is None for c in slim)

    def test_rejects_bad_lane_width(self, device):
        with pytest.raises(ValueError, match="lanes"):
            make_bench(device).capture_batch(
                2, first_seed=1, engine="lanes", lanes=0
            )
