"""Equivalence tests: vectorized ``expand`` vs the scalar reference.

The vectorized expansion must produce float64 output **exactly** equal
to ``expand_reference`` — not approximately — across every op class,
including the sequential multiplier/divider engine edge cases (zero
divisor, INT_MIN / -1) whose internal state evolution the bit-matrix
formulation must reproduce step for step.
"""

import itertools

import numpy as np
import pytest

from repro.power.leakage import LeakageModel
from repro.riscv import cycles as cy
from repro.riscv.cpu import EventLog, ExecutionEvent
from repro.riscv.device import GaussianSamplerDevice

INT_MIN = 0x80000000
NEG_ONE = 0xFFFFFFFF

EDGE_VALUES = [
    0,
    1,
    2,
    0x7FFFFFFF,
    INT_MIN,
    0x80000001,
    0xC0000001,
    0xFFFFFFFE,
    NEG_ONE,
]


def synthetic_events(op_classes, operand_pairs, seed=0):
    """One event per (op class, rs1, rs2) combination with random rest."""
    rng = np.random.default_rng(seed)
    events = []
    word = itertools.count(1)
    for op in op_classes:
        for rs1, rs2 in operand_pairs:
            events.append(
                ExecutionEvent(
                    op_class=op,
                    word=next(word) & 0xFFFFFFFF,
                    rs1_value=rs1,
                    rs2_value=rs2,
                    result=int(rng.integers(0, 2**32)),
                    old_rd=int(rng.integers(0, 2**32)),
                    address=int(rng.integers(0, 2**32)),
                    pc=4 * len(events),
                )
            )
    return events


def assert_expansions_identical(model, events):
    vec_samples, vec_starts = model.expand(events)
    ref_samples, ref_starts = model.expand_reference(events)
    assert vec_samples.dtype == np.float64
    np.testing.assert_array_equal(vec_starts, ref_starts)
    np.testing.assert_array_equal(vec_samples, ref_samples)


class TestExactEquivalence:
    def test_all_op_classes_edge_operands(self):
        events = synthetic_events(
            range(len(cy.CYCLES)), itertools.product(EDGE_VALUES, repeat=2)
        )
        assert_expansions_identical(LeakageModel(), events)

    def test_div_zero_divisor(self):
        events = synthetic_events(
            [cy.OP_DIV], [(v, 0) for v in EDGE_VALUES]
        )
        assert_expansions_identical(LeakageModel(), events)

    def test_div_int_min_by_minus_one(self):
        events = synthetic_events(
            [cy.OP_DIV, cy.OP_MUL], [(INT_MIN, NEG_ONE), (NEG_ONE, INT_MIN)]
        )
        assert_expansions_identical(LeakageModel(), events)

    def test_random_event_mix(self):
        rng = np.random.default_rng(42)
        events = [
            ExecutionEvent(
                op_class=int(rng.integers(0, len(cy.CYCLES))),
                word=int(rng.integers(0, 2**32)),
                rs1_value=int(rng.integers(0, 2**32)),
                rs2_value=int(rng.integers(0, 2**32)),
                result=int(rng.integers(0, 2**32)),
                old_rd=int(rng.integers(0, 2**32)),
                address=int(rng.integers(0, 2**32)),
                pc=4 * i,
            )
            for i in range(3000)
        ]
        assert_expansions_identical(LeakageModel(), events)

    def test_non_default_weights(self):
        model = LeakageModel(
            weight_data=1.37,
            weight_transition=0.123,
            weight_fetch=0.777,
            weight_engine=2.25,
            engine_offset=13.5,
            baseline=3.3,
        )
        events = synthetic_events(
            range(len(cy.CYCLES)), itertools.product(EDGE_VALUES[::2], repeat=2)
        )
        assert_expansions_identical(model, events)

    def test_real_device_run(self):
        device = GaussianSamplerDevice([132120577])
        run = device.run(3, count=4)
        model = LeakageModel()
        vec_samples, vec_starts = model.expand(run.events)
        ref_samples, ref_starts = model.expand_reference(list(run.events))
        np.testing.assert_array_equal(vec_samples, ref_samples)
        np.testing.assert_array_equal(vec_starts, ref_starts)
        assert len(vec_samples) == run.cycle_count

    def test_empty_events(self):
        samples, starts = LeakageModel().expand([])
        assert samples.shape == (0,)
        assert starts.shape == (0,)

    def test_event_log_and_tuple_list_agree(self):
        events = synthetic_events([cy.OP_ALU, cy.OP_MUL], [(5, 9), (0, NEG_ONE)])
        log = EventLog()
        for event in events:
            log.append(*event)
        model = LeakageModel()
        from_log, _ = model.expand(log)
        from_list, _ = model.expand(events)
        np.testing.assert_array_equal(from_log, from_list)
