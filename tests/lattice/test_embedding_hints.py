"""Tests for the negacyclic matrix and exact-equation elimination."""

import numpy as np
import pytest

from repro.errors import LatticeError
from repro.lattice.embedding import (
    eliminate_known_errors,
    negacyclic_matrix,
    solve_lwe_primal,
)
from repro.ring.exact import exact_negacyclic_multiply


class TestNegacyclicMatrix:
    def test_doctest_case(self):
        assert negacyclic_matrix([1, 2], 17).tolist() == [[1, 15], [2, 1]]

    def test_matches_ring_multiplication(self):
        rng = np.random.default_rng(0)
        q = 257
        n = 8
        p = [int(x) for x in rng.integers(0, q, n)]
        u = [int(x) for x in rng.integers(-1, 2, n)]
        matrix = negacyclic_matrix(p, q)
        via_matrix = [(sum(int(matrix[i, j]) * u[j] for j in range(n))) % q for i in range(n)]
        via_ring = [c % q for c in exact_negacyclic_multiply(p, u)]
        assert via_matrix == via_ring


class TestEliminateKnownErrors:
    def _instance(self, rng, n=8, m=16, q=521, sigma=1.2):
        secret = rng.integers(-1, 2, n)
        a_matrix = rng.integers(0, q, (m, n))
        error = np.rint(rng.normal(0, sigma, m)).astype(int)
        b_vector = (a_matrix @ secret + error) % q
        return a_matrix, b_vector, secret, error

    def test_full_knowledge_is_linear_algebra(self):
        rng = np.random.default_rng(1)
        a, b, s, e = self._instance(rng)
        _, _, rec = eliminate_known_errors(a, b, 521, dict(enumerate(e)))
        assert rec.reduced_dimension == 0
        assert [int(x) for x in rec.full_secret([])] == list(s)

    def test_partial_knowledge_shrinks_instance(self):
        rng = np.random.default_rng(2)
        a, b, s, e = self._instance(rng, n=8, m=20)
        known = {i: int(e[i]) for i in range(5)}
        reduced_a, reduced_b, rec = eliminate_known_errors(a, b, 521, known)
        assert rec.reduced_dimension == 8 - 5
        assert reduced_a.shape == (15, 3)
        # solve the residual and reconstruct
        s_red, _ = solve_lwe_primal(reduced_a, reduced_b, 521, error_bound=6)
        full = rec.full_secret([int(x) for x in s_red])
        assert [int(x) for x in full] == list(s)

    def test_residual_instance_is_consistent(self):
        """The reduced (A', b') satisfies b' = A' s_free + e_noisy mod q."""
        rng = np.random.default_rng(3)
        a, b, s, e = self._instance(rng, n=6, m=14)
        known = {i: int(e[i]) for i in range(4)}
        reduced_a, reduced_b, rec = eliminate_known_errors(a, b, 521, known)
        s_free = [int(s[c]) % 521 for c in rec.free_columns]
        noisy_errors = [int(e[i]) for i in range(14) if i not in known]
        for i in range(reduced_a.shape[0]):
            lhs = (
                sum(int(reduced_a[i, j]) * s_free[j] for j in range(len(s_free)))
                + noisy_errors[i]
            ) % 521
            assert lhs == int(reduced_b[i]) % 521

    def test_reconstructor_validates_length(self):
        rng = np.random.default_rng(4)
        a, b, s, e = self._instance(rng)
        _, _, rec = eliminate_known_errors(a, b, 521, {0: int(e[0])})
        with pytest.raises(LatticeError):
            rec.full_secret([1] * (rec.reduced_dimension + 1))

    def test_wrong_hint_breaks_reconstruction(self):
        """A wrong perfect hint yields an inconsistent secret (garbage in,
        garbage out - callers must only promote certain posteriors)."""
        rng = np.random.default_rng(5)
        a, b, s, e = self._instance(rng)
        wrong = dict(enumerate(e))
        wrong[0] = int(e[0]) + 3
        _, _, rec = eliminate_known_errors(a, b, 521, wrong)
        if rec.reduced_dimension == 0:
            assert [int(x) for x in rec.full_secret([])] != list(s)
