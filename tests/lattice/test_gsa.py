"""Tests for the BKZ cost model (delta, GSA profile, simulator)."""

import math

import numpy as np
import pytest

from repro.errors import LatticeError
from repro.lattice.gsa import (
    bkz_delta,
    gsa_log_profile,
    log_bkz_delta,
    simulate_bkz_profile,
)


class TestDelta:
    def test_reference_values(self):
        # well-known anchors of Chen's formula
        assert bkz_delta(100) == pytest.approx(1.0093, abs=3e-4)
        assert bkz_delta(200) == pytest.approx(1.0062, abs=3e-4)
        assert bkz_delta(382) == pytest.approx(1.0041, abs=2e-4)

    def test_clamped_below_40(self):
        assert bkz_delta(2) == bkz_delta(40)
        assert bkz_delta(10) == bkz_delta(40)

    def test_rejects_tiny(self):
        with pytest.raises(LatticeError):
            bkz_delta(1)

    def test_log_consistency(self):
        assert log_bkz_delta(100) == pytest.approx(math.log(bkz_delta(100)))


class TestGsaProfile:
    def test_sums_to_volume(self):
        profile = gsa_log_profile(50, 123.4, 60)
        assert sum(profile) == pytest.approx(123.4)

    def test_slope_is_minus_two_log_delta(self):
        profile = gsa_log_profile(50, 0.0, 60)
        slopes = np.diff(profile)
        assert np.allclose(slopes, -2 * log_bkz_delta(60))

    def test_rejects_bad_dim(self):
        with pytest.raises(LatticeError):
            gsa_log_profile(0, 0.0, 60)


class TestSimulator:
    def test_preserves_volume(self):
        start = gsa_log_profile(80, 200.0, 40)
        # perturb to a non-GSA shape
        start = [x + (0.3 if i % 2 else -0.3) for i, x in enumerate(start)]
        out = simulate_bkz_profile(start, beta=40, tours=10)
        assert sum(out) == pytest.approx(sum(start), abs=1e-6)

    def test_flattens_head(self):
        """BKZ reduces the first Gram-Schmidt length."""
        start = gsa_log_profile(80, 200.0, 40)
        out = simulate_bkz_profile(start, beta=40, tours=10)
        assert out[0] <= start[0] + 1e-9

    def test_larger_beta_flatter_profile(self):
        start = gsa_log_profile(100, 0.0, 40)
        weak = simulate_bkz_profile(start, beta=40, tours=10)
        strong = simulate_bkz_profile(start, beta=80, tours=10)
        assert strong[0] <= weak[0] + 1e-9

    def test_rejects_bad_beta(self):
        with pytest.raises(LatticeError):
            simulate_bkz_profile([0.0] * 50, beta=10)
