"""Tests for Gram-Schmidt, HNF and LLL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LatticeError
from repro.lattice.gso import gram_schmidt, gso_norms, log_volume
from repro.lattice.hnf import hermite_normal_form
from repro.lattice.lll import is_size_reduced, lll_reduce, shortest_basis_vector


def random_basis(rng, n, bound=50):
    while True:
        basis = rng.integers(-bound, bound + 1, (n, n))
        if abs(np.linalg.det(basis.astype(float))) > 0.5:
            return basis


def lattice_determinant(basis):
    return abs(round(np.linalg.det(np.asarray(basis, dtype=float).astype(float))))


class TestGramSchmidt:
    def test_orthogonality(self):
        rng = np.random.default_rng(0)
        basis = random_basis(rng, 5)
        ortho, mu = gram_schmidt(basis)
        gram = ortho @ ortho.T
        off_diag = gram - np.diag(np.diag(gram))
        assert np.allclose(off_diag, 0, atol=1e-6)

    def test_reconstruction(self):
        rng = np.random.default_rng(1)
        basis = random_basis(rng, 4)
        ortho, mu = gram_schmidt(basis)
        assert np.allclose(mu @ ortho, basis.astype(float), atol=1e-8)

    def test_dependent_rows_raise(self):
        with pytest.raises(LatticeError):
            gram_schmidt(np.array([[1, 2], [2, 4]]))

    def test_volume_invariant_under_row_ops(self):
        rng = np.random.default_rng(2)
        basis = random_basis(rng, 4)
        modified = basis.copy()
        modified[1] += 3 * modified[0]
        assert log_volume(basis) == pytest.approx(log_volume(modified), abs=1e-6)


class TestHnf:
    def test_preserves_lattice_determinant(self):
        rng = np.random.default_rng(3)
        basis = random_basis(rng, 4)
        hnf = hermite_normal_form(basis)
        assert hnf.shape == (4, 4)
        assert lattice_determinant(hnf) == lattice_determinant(basis)

    def test_drops_dependent_rows(self):
        rows = [[2, 0], [0, 3], [2, 3]]
        hnf = hermite_normal_form(rows)
        assert hnf.shape == (2, 2)
        assert lattice_determinant(hnf) == 6

    def test_classic_sublattice_case(self):
        """[[2,0],[1,0]] generates Z x {0}, not 2Z x {0}."""
        hnf = hermite_normal_form([[2, 0], [1, 0]])
        assert hnf.shape == (1, 2)
        assert abs(int(hnf[0][0])) == 1

    def test_empty(self):
        assert hermite_normal_form([]).size == 0


class TestLll:
    def test_size_reduction_and_shorter_vectors(self):
        rng = np.random.default_rng(4)
        basis = random_basis(rng, 6, bound=200)
        reduced = lll_reduce(basis)
        assert is_size_reduced(reduced)
        orig_short = min(np.sum(basis.astype(float) ** 2, axis=1))
        new_short = min(
            sum(int(x) ** 2 for x in row) for row in reduced
        )
        assert new_short <= orig_short

    def test_lattice_preserved(self):
        rng = np.random.default_rng(5)
        basis = random_basis(rng, 5)
        reduced = lll_reduce(basis)
        assert lattice_determinant(reduced) == lattice_determinant(basis)

    def test_finds_obvious_short_vector(self):
        # basis hides the short vector (1, 0): [(1, 100), (0, 101)]...
        basis = np.array([[1, 100], [0, 101]])
        reduced = lll_reduce(basis)
        shortest = shortest_basis_vector(reduced)
        assert sum(int(x) ** 2 for x in shortest) <= 101

    def test_first_vector_quality_bound(self):
        """LLL guarantee: ||b1|| <= 2^((n-1)/2) * det^(1/n)."""
        rng = np.random.default_rng(6)
        basis = random_basis(rng, 5, bound=100)
        reduced = lll_reduce(basis)
        b1_norm = float(sum(int(x) ** 2 for x in reduced[0])) ** 0.5
        det = lattice_determinant(basis)
        bound = 2 ** ((5 - 1) / 4) * det ** (1 / 5)
        assert b1_norm <= bound * 1.001

    def test_bad_delta_rejected(self):
        with pytest.raises(LatticeError):
            lll_reduce(np.eye(2, dtype=int), delta=0.1)

    def test_identity_unchanged_in_norms(self):
        reduced = lll_reduce(np.eye(4, dtype=int))
        norms = sorted(sum(int(x) ** 2 for x in row) for row in reduced)
        assert norms == [1, 1, 1, 1]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_determinant_preserved(self, seed):
        rng = np.random.default_rng(seed)
        basis = random_basis(rng, 4, bound=30)
        reduced = lll_reduce(basis)
        assert lattice_determinant(reduced) == lattice_determinant(basis)
