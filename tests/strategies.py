"""Shared Hypothesis strategies for the differential and property suites.

The strategies mirror the seeded samplers in ``repro.verify.oracles``
but are Hypothesis-native, so counterexamples *shrink*: a diverging
40-instruction program collapses toward the one opcode that matters, an
adversarial trace toward the shortest array that still trips the bug.
Structured cases that are too heavy to shrink field-by-field (profiled
attacks, full profiling runs) are instead driven through integer *case
seeds* — minimal shrinking, but every failure replays exactly via
``python -m repro.verify replay <oracle> --case-seed <seed>``.
"""

import numpy as np
from hypothesis import strategies as st

from repro.verify.oracles import SCRATCH_BASE

# ----------------------------------------------------------------------
# Scalars
# ----------------------------------------------------------------------
#: RV32IM corner operands: the div/rem/shift special cases.
CORNER_WORDS = (0, 1, 2, 0x7FFFFFFF, 0x80000000, 0xAAAAAAAA, 0xFFFFFFFF)

word32 = st.one_of(
    st.sampled_from(CORNER_WORDS), st.integers(0, 0xFFFFFFFF)
)

#: Case seeds for oracle-sampler-driven tests (replayable via the CLI).
case_seeds = st.integers(0, 2**31 - 1)


def adversarial_programs():
    """Seed-driven hostile cases from the conformance generators.

    Self-loops, guaranteed faults, self-modifying code, budget
    exhaustion and div/rem corners — the payload carries its case seed
    so failures replay through the ``cpu.retire_log`` fuzz driver even
    though shrinking is seed-granular.
    """
    from repro.verify.conformance import random_adversarial_program

    return case_seeds.map(
        lambda seed: {
            **random_adversarial_program(np.random.default_rng(seed)),
            "case_seed": seed,
        }
    )


# ----------------------------------------------------------------------
# RV32IM programs
# ----------------------------------------------------------------------
_ALU_RR = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
]
_ALU_IMM = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_SHIFT_IMM = ["slli", "srli", "srai"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]
_MEMORY = ["lw", "lh", "lhu", "lb", "lbu", "sw", "sh", "sb"]

_reg = st.integers(0, 15)
_rd = st.integers(1, 15)


@st.composite
def _instruction(draw):
    """One rendered instruction (or a short branch-plus-body block)."""
    kind = draw(st.integers(0, 6))
    if kind <= 1:
        return [
            f"{draw(st.sampled_from(_ALU_RR))} "
            f"x{draw(_rd)}, x{draw(_reg)}, x{draw(_reg)}"
        ]
    if kind == 2:
        return [
            f"{draw(st.sampled_from(_ALU_IMM))} "
            f"x{draw(_rd)}, x{draw(_reg)}, {draw(st.integers(-2048, 2047))}"
        ]
    if kind == 3:
        return [
            f"{draw(st.sampled_from(_SHIFT_IMM))} "
            f"x{draw(_rd)}, x{draw(_reg)}, {draw(st.integers(0, 31))}"
        ]
    if kind == 4:
        return [f"lui x{draw(_rd)}, {draw(st.integers(0, (1 << 20) - 1))}"]
    if kind == 5:
        mnemonic = draw(st.sampled_from(_MEMORY))
        offset = draw(st.integers(0, 63)) * 4
        # x5 holds the scratch pointer; a rare random base exercises
        # fault parity (both engines must report the same error).
        base = "x5" if draw(st.integers(0, 19)) else f"x{draw(_rd)}"
        return [f"{mnemonic} x{draw(_rd)}, {offset}({base})"]
    body = [
        f"{draw(st.sampled_from(_ALU_RR))} "
        f"x{draw(_rd)}, x{draw(_reg)}, x{draw(_reg)}"
        for _ in range(draw(st.integers(1, 3)))
    ]
    condition = draw(st.sampled_from(_BRANCHES))
    return [f"{condition} x{draw(_reg)}, x{draw(_reg)}, @skip", *body, "@skip:"]


@st.composite
def rv32im_programs(draw):
    """A case payload for the ``cpu.run`` oracle.

    Mostly-safe straight-line RV32IM with scratch-region memory ops,
    forward branches, corner-valued registers, and an occasional tiny
    instruction budget so exhaustion behaviour is covered too.
    """
    blocks = draw(st.lists(_instruction(), min_size=1, max_size=12))
    lines = [f"li x5, {SCRATCH_BASE}"]
    for index, block in enumerate(blocks):
        lines.extend(line.replace("@skip", f"skip_{index}") for line in block)
    lines.append("ebreak")
    registers = draw(
        st.dictionaries(st.integers(1, 15), word32, max_size=15)
    )
    budget = draw(
        st.one_of(st.just(10_000), st.integers(1, 30))
    )
    return {
        "source": "\n".join(lines),
        "registers": registers,
        "max_instructions": budget,
    }


@st.composite
def lane_programs(draw):
    """A case payload for the ``cpu.run_lanes`` oracle.

    One shrinking ``rv32im_programs`` source shared by 2–6 lanes whose
    register files differ, so data-dependent branches and faults
    diverge across lanes and the counterexample shrinks toward the one
    divergent opcode that breaks lock-step parity.
    """
    case = draw(rv32im_programs())
    register_files = draw(
        st.lists(
            st.dictionaries(st.integers(1, 15), word32, max_size=15),
            min_size=2,
            max_size=6,
        )
    )
    return {
        "source": case["source"],
        "register_files": register_files,
        "max_instructions": case["max_instructions"],
    }


# ----------------------------------------------------------------------
# Leakage / traces
# ----------------------------------------------------------------------
@st.composite
def event_lists(draw, max_events=40):
    """Synthetic :class:`ExecutionEvent` lists with adversarial fields."""
    from repro.riscv import cycles as cy
    from repro.riscv.cpu import ExecutionEvent

    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(cy.CYCLES) - 1),
                *([word32] * 7),
            ),
            max_size=max_events,
        )
    )
    return [ExecutionEvent(*row) for row in rows]


@st.composite
def leakage_cases(draw):
    from repro.power.leakage import LeakageModel

    if draw(st.booleans()):
        model = LeakageModel()
    else:
        weight = st.floats(0.0, 2.0, allow_nan=False)
        model = LeakageModel(
            weight_data=draw(weight),
            weight_transition=draw(weight),
            weight_fetch=draw(st.floats(0.0, 1.0, allow_nan=False)),
            weight_engine=draw(weight),
            engine_offset=draw(st.floats(0.0, 80.0, allow_nan=False)),
            baseline=draw(st.floats(0.0, 10.0, allow_nan=False)),
        )
    return {"model": model, "events": draw(event_lists())}


#: Finite float64 samples spanning many magnitudes — the adversarial
#: regime for cumulative-sum reassociation.
trace_samples = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, width=64
)


@st.composite
def moving_average_cases(draw):
    x = np.array(
        draw(st.lists(trace_samples, min_size=1, max_size=300)),
        dtype=np.float64,
    )
    window = draw(st.integers(1, 2 * len(x)))
    return {"x": x, "window": window}


# ----------------------------------------------------------------------
# Ring / RNS
# ----------------------------------------------------------------------
@st.composite
def ntt_cases(draw):
    """A (modulus, n, a, b) case for both ring oracles."""
    from repro.verify.oracles import _ntt_pairs

    modulus, n = draw(st.sampled_from(_ntt_pairs()))
    coeff = st.integers(0, modulus.value - 1)
    return {
        "modulus": modulus,
        "n": n,
        "a": np.array(
            draw(st.lists(coeff, min_size=n, max_size=n)), dtype=np.int64
        ),
        "b": np.array(
            draw(st.lists(coeff, min_size=n, max_size=n)), dtype=np.int64
        ),
    }


@st.composite
def rns_bases(draw):
    """Coprime NTT-prime bases for CRT compose/decompose sweeps."""
    from repro.ring.primes import generate_ntt_primes

    degree = draw(st.sampled_from([8, 16, 32]))
    bits = draw(st.sampled_from([17, 20, 23, 26]))
    count = draw(st.integers(1, 3))
    return generate_ntt_primes(bits, count, degree)
