"""Unit and property tests for bit-level helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_length,
    bit_reverse,
    hamming_distance,
    hamming_weight,
    hamming_weight_array,
)


class TestHammingWeight:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 0), (1, 1), (0xFF, 8), (0xFFFFFFFF, 32), (0x80000000, 1), (-1, 32)],
    )
    def test_known_values(self, value, expected):
        assert hamming_weight(value) == expected

    def test_masks_to_32_bits(self):
        assert hamming_weight(1 << 40) == 0
        assert hamming_weight((1 << 40) | 1) == 1

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(0, 2**32 - 1))
    def test_property_matches_bin_count(self, value):
        assert hamming_weight(value) == bin(value).count("1")

    @settings(max_examples=50, deadline=None)
    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    def test_property_subadditive_under_or(self, a, b):
        assert hamming_weight(a | b) <= hamming_weight(a) + hamming_weight(b)


class TestHammingDistance:
    def test_symmetry_and_identity(self):
        assert hamming_distance(0b1010, 0b1010) == 0
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(3, 5) == hamming_distance(5, 3)

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.integers(0, 2**32 - 1),
        b=st.integers(0, 2**32 - 1),
        c=st.integers(0, 2**32 - 1),
    )
    def test_property_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


class TestHammingWeightArray:
    def test_matches_scalar(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**32, 100, dtype=np.int64)
        vector = hamming_weight_array(values)
        assert vector.tolist() == [hamming_weight(int(v)) for v in values]

    def test_2d_shape_preserved(self):
        values = np.array([[1, 3], [7, 15]])
        assert hamming_weight_array(values).tolist() == [[1, 2], [3, 4]]


class TestBitReverse:
    @pytest.mark.parametrize(
        "value,width,expected",
        [(0b001, 3, 0b100), (0b110, 3, 0b011), (0, 4, 0), (0b1111, 4, 0b1111)],
    )
    def test_known(self, value, width, expected):
        assert bit_reverse(value, width) == expected

    @settings(max_examples=100, deadline=None)
    @given(value=st.integers(0, 1023))
    def test_property_involution(self, value):
        assert bit_reverse(bit_reverse(value, 10), 10) == value

    def test_permutation(self):
        width = 5
        images = {bit_reverse(v, width) for v in range(1 << width)}
        assert images == set(range(1 << width))


class TestBitLength:
    @pytest.mark.parametrize("value,expected", [(0, 0), (1, 1), (255, 8), (256, 9)])
    def test_known(self, value, expected):
        assert bit_length(value) == expected
