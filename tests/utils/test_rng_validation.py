"""Tests for RNG plumbing and argument validation helpers."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.utils.rng import derive_rng, new_rng, rng_from_optional, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_type,
)


class TestNewRng:
    def test_from_int_deterministic(self):
        assert new_rng(7).integers(0, 100, 5).tolist() == new_rng(7).integers(
            0, 100, 5
        ).tolist()

    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert new_rng(rng) is rng

    def test_none_gives_fresh(self):
        a = new_rng(None)
        b = new_rng(None)
        # overwhelmingly unlikely to collide
        assert a.integers(0, 2**63) != b.integers(0, 2**63)


class TestDerive:
    def test_labels_decorrelate(self):
        parent = new_rng(1)
        child_a = derive_rng(parent, "noise")
        parent2 = new_rng(1)
        child_b = derive_rng(parent2, "public-key")
        assert child_a.integers(0, 2**63) != child_b.integers(0, 2**63)

    def test_same_label_same_stream(self):
        a = derive_rng(new_rng(1), "noise").integers(0, 2**63)
        b = derive_rng(new_rng(1), "noise").integers(0, 2**63)
        assert a == b

    def test_spawn_rngs_independent(self):
        streams = spawn_rngs(5, 3)
        assert len(streams) == 3
        draws = {int(s.integers(0, 2**63)) for s in streams}
        assert len(draws) == 3

    def test_rng_from_optional_default(self):
        a = rng_from_optional(None, 42).integers(0, 2**63)
        b = rng_from_optional(None, 42).integers(0, 2**63)
        assert a == b


class TestValidation:
    def test_check_type(self):
        check_type("x", 5, int)
        with pytest.raises(ParameterError, match="x must be int"):
            check_type("x", 5.0, int)

    def test_check_positive(self):
        check_positive("y", 0.1)
        with pytest.raises(ParameterError):
            check_positive("y", 0)

    def test_check_in_range(self):
        check_in_range("z", 5, 0, 10)
        with pytest.raises(ParameterError):
            check_in_range("z", 11, 0, 10)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_power_of_two_accepts(self, good):
        check_power_of_two("n", good)

    @pytest.mark.parametrize("bad", [0, 3, -4, 1023])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ParameterError):
            check_power_of_two("n", bad)
