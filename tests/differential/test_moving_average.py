"""Differential: cumulative-sum sliding mean vs the convolution original.

The cumsum formulation reassociates the float sums, so parity is pinned
to an envelope rather than bit-exactness.  The envelope is *input
scaled*: the cumsum's cancellation error is absolute in ``sum(|x|)``,
so a fixed 1e-9 cannot hold on adversarial dynamic range — the harness
proved as much (see the pinned counterexample below) and the oracle's
tolerance now follows the actual float64 error model.
"""

import numpy as np
from hypothesis import given

from repro.attack.segmentation import _moving_average, _moving_average_reference
from repro.verify.oracles import get_oracle
from tests.differential.helpers import assert_ok
from tests.strategies import case_seeds, moving_average_cases

ORACLE = get_oracle("segmentation.moving_average")


@given(moving_average_cases())
def test_moving_average_matches_reference(case):
    assert_ok(ORACLE.check_case(case))


@given(case_seeds)
def test_moving_average_matches_reference_seeded(seed):
    assert_ok(ORACLE.check_seed(seed))


def test_window_exceeding_length_defers_to_reference():
    x = np.arange(5, dtype=np.float64)
    assert np.array_equal(_moving_average(x, 9), _moving_average_reference(x, 9))


def test_window_one_is_identity():
    x = np.array([1e12, -3.5, 0.0, 7.25])
    assert np.array_equal(_moving_average(x, 1), x)


def test_catastrophic_cancellation_counterexample():
    # Shrunk Hypothesis counterexample that broke the original fixed
    # 1e-9 envelope: one huge sample next to tiny ones makes the cumsum
    # difference lose ~eps * sum(|x|) absolutely, so the window mean
    # 0.5 comes back as 0.5000000015840989 (1.6e-9 off).  The reference
    # convolution is no better in general — the oracle's input-scaled
    # tolerance accepts it, and the actual error stays within the
    # eps * sum(|x|) model it encodes.
    case = {"x": np.array([3.3554431e7, 0.0, 1.0]), "window": 2}
    assert_ok(ORACLE.check_case(case))
    error = np.abs(
        _moving_average(case["x"], 2) - _moving_average_reference(case["x"], 2)
    ).max()
    eps = np.finfo(np.float64).eps
    assert error <= 8 * eps * np.abs(case["x"]).sum()


def test_constant_input_interior_is_exact():
    # "same"-mode convolution tapers at the edges; away from them every
    # window mean of a constant signal is the constant itself.
    x = np.full(64, 123456.789)
    smoothed = _moving_average(x, 16)
    assert np.allclose(smoothed[16:-16], 123456.789, rtol=1e-12)
    assert np.allclose(smoothed, _moving_average_reference(x, 16), rtol=1e-9)
