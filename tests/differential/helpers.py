"""Shared assertion helper for the differential suites."""

from repro.verify.oracles import OracleReport


def assert_ok(report: OracleReport) -> None:
    """Fail with the mismatch paths and, when seeded, the replay command."""
    if report.ok:
        return
    lines = [f"{report.oracle} diverged ({report.case_summary})"]
    if report.case_seed >= 0:
        lines.append(f"replay: {report.repro_command()}")
    lines.extend(report.mismatches[:10])
    raise AssertionError("\n".join(lines))
