"""Differential: vectorized leakage expansion vs the scalar reference.

The vectorized path builds the whole trace with numpy gathers; parity
with the per-event loop must be bit-exact float64, including for empty
event lists and corner-valued operands (Hamming weights of 0 and 32).
"""

import numpy as np
from hypothesis import given

from repro.power.leakage import LeakageModel
from repro.verify.oracles import get_oracle, sample_events
from tests.differential.helpers import assert_ok
from tests.strategies import case_seeds, leakage_cases

ORACLE = get_oracle("leakage.expand")


@given(leakage_cases())
def test_expand_matches_reference(case):
    assert_ok(ORACLE.check_case(case))


@given(case_seeds)
def test_expand_matches_reference_seeded(seed):
    assert_ok(ORACLE.check_seed(seed))


def test_empty_event_list():
    model = LeakageModel()
    samples, starts = model.expand([])
    ref_samples, ref_starts = model.expand_reference([])
    assert samples.shape == ref_samples.shape == (0,)
    assert np.array_equal(starts, ref_starts)


def test_starts_index_event_boundaries():
    events = sample_events(np.random.default_rng(7), max_events=30)
    samples, starts = LeakageModel().expand(events)
    assert len(starts) == len(events)
    assert all(0 <= s <= len(samples) for s in starts)
    assert list(starts) == sorted(starts)
