"""Differential: attack save/load round-trip through the .npz v2 format.

Cases are randomized profiled-attack states — random POI sets, value
classes, priors, pooled vs per-class covariances (including
near-singular precisions), random refiner patterns — sampled by the
oracle's seeded generator; the archive must reproduce every field
bit-exactly.
"""

import numpy as np
from hypothesis import given

from repro.attack.persistence import load_attack, save_attack
from repro.verify.oracles import attack_state, get_oracle
from tests.differential.helpers import assert_ok
from tests.strategies import case_seeds

ORACLE = get_oracle("attack.persistence")


@given(case_seeds)
def test_roundtrip_is_bit_exact(seed):
    assert_ok(ORACLE.check_seed(seed))


def test_near_singular_precision_survives_roundtrip(tmp_path):
    # Degenerate covariance: precision with a ~1e12 condition number
    # must round-trip exactly (stored raw, never refactorised).
    case = ORACLE.sample(np.random.default_rng(5))
    attack = case["attack"]
    k = len(attack.templates.pois)
    eigenvalues = np.logspace(-6, 6, k)
    basis = np.linalg.qr(np.random.default_rng(6).normal(size=(k, k)))[0]
    attack.templates.precision[:] = basis @ np.diag(eigenvalues) @ basis.T
    path = tmp_path / "attack.npz"
    save_attack(attack, path)
    loaded = load_attack(None, path)
    assert np.array_equal(loaded.templates.precision, attack.templates.precision)
    assert not ORACLE.check_case(case).mismatches


def test_state_extraction_covers_config(tmp_path):
    case = ORACLE.sample(np.random.default_rng(9))
    state = attack_state(case["attack"])
    for key in ("segmenter", "poi_method", "poi_count", "use_prior",
                "sigma", "branch_region", "standardize", "pooled_covariance"):
        assert key in state["config"]
