"""Unit tests for the oracle registry and the comparison machinery."""

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.verify import (
    EXACT,
    Oracle,
    Tolerance,
    all_oracles,
    assert_equivalent,
    diff_values,
    format_repro_command,
    get_oracle,
    register,
)

EXPECTED_ORACLES = {
    "cpu.run",
    "leakage.expand",
    "segmentation.moving_average",
    "ring.ntt",
    "ring.negacyclic_multiply",
    "attack.persistence",
    "attack.profile",
}


class TestRegistry:
    def test_every_fast_reference_pair_is_registered(self):
        assert {o.name for o in all_oracles()} >= EXPECTED_ORACLES

    def test_expensive_filter(self):
        names = {o.name for o in all_oracles(include_expensive=False)}
        assert "attack.profile" not in names
        assert "cpu.run" in names

    def test_unknown_oracle_raises(self):
        with pytest.raises(VerificationError, match="unknown oracle"):
            get_oracle("no.such.oracle")

    def test_duplicate_registration_raises(self):
        with pytest.raises(VerificationError, match="twice"):
            register(
                Oracle(
                    name="cpu.run",
                    description="dup",
                    sample=lambda rng: None,
                    fast=lambda case: None,
                    reference=lambda case: None,
                )
            )

    def test_repro_command_format(self):
        command = format_repro_command("cpu.run", 1234)
        assert command == (
            "PYTHONPATH=src python -m repro.verify replay cpu.run "
            "--case-seed 1234"
        )

    def test_check_seed_is_deterministic(self):
        oracle = get_oracle("leakage.expand")
        first = oracle.sample(np.random.default_rng(77))
        second = oracle.sample(np.random.default_rng(77))
        assert not diff_values(
            oracle.fast(first), oracle.fast(second), EXACT
        )

    def test_failing_report_carries_replay_command(self):
        oracle = Oracle(
            name="_test.broken",
            description="always diverges",
            sample=lambda rng: int(rng.integers(0, 100)),
            fast=lambda case: case,
            reference=lambda case: case + 1,
        )
        report = oracle.check_seed(5)
        assert not report.ok
        assert report.mismatches
        assert "replay _test.broken --case-seed 5" in report.repro_command()


class TestTolerance:
    def test_exact_by_default(self):
        assert EXACT.exact
        assert EXACT.floats_equal(1.0, 1.0)
        assert not EXACT.floats_equal(1.0, float(np.nextafter(1.0, 2.0)))

    def test_nan_equals_nan(self):
        assert EXACT.floats_equal(float("nan"), float("nan"))
        assert not EXACT.floats_equal(float("nan"), 0.0)

    def test_envelope(self):
        tolerance = Tolerance(rtol=1e-9, atol=0.0)
        assert tolerance.floats_equal(1.0, 1.0 + 1e-12)
        assert not tolerance.floats_equal(1.0, 1.0 + 1e-6)

    def test_path_overrides_widen_specific_leaves(self):
        tolerance = Tolerance(
            rtol=1e-9, overrides=(("class_precisions", Tolerance(rtol=1e-5)),)
        )
        loose = {"class_precisions": np.array([1.0]), "means": np.array([1.0])}
        drifted = {
            "class_precisions": np.array([1.0 + 1e-7]),
            "means": np.array([1.0 + 1e-7]),
        }
        mismatches = diff_values(loose, drifted, tolerance)
        assert len(mismatches) == 1
        assert "means" in mismatches[0]

    def test_callable_tolerance_resolves_per_case(self):
        oracle = Oracle(
            name="test.scaled",
            description="",
            sample=lambda rng: {"x": float(rng.uniform(10.0, 20.0))},
            fast=lambda case: case["x"] * (1.0 + 1e-8),
            reference=lambda case: case["x"],
            tolerance=lambda case: Tolerance(atol=abs(case["x"]) * 1e-6),
        )
        assert oracle.check_seed(0).ok
        assert oracle.tolerance_for({"x": 10.0}).atol == pytest.approx(1e-5)


class TestDiffValues:
    def test_equal_structures(self):
        value = {"a": np.arange(3), "b": [1.5, (2, 3)], "c": None}
        assert diff_values(value, {"a": np.arange(3), "b": [1.5, (2, 3)], "c": None}) == []

    def test_array_mismatch_reports_indices(self):
        a = np.zeros(5)
        b = np.zeros(5)
        b[3] = 1.0
        (line,) = diff_values(a, b)
        assert "[3]" in line

    def test_mismatch_cap(self):
        lines = diff_values(np.zeros(100), np.ones(100))
        assert len(lines) == 11  # MAX_MISMATCHES + "and N more"
        assert "90 more" in lines[-1]

    def test_shape_mismatch(self):
        (line,) = diff_values(np.zeros((2, 3)), np.zeros((3, 2)))
        assert "shape" in line

    def test_dict_key_mismatch(self):
        lines = diff_values({"a": 1, "x": 2}, {"a": 1, "y": 2})
        assert any("missing" in line for line in lines)
        assert any("unexpected" in line for line in lines)

    def test_nested_path_reporting(self):
        fast = {"t": {"means": [np.array([1.0, 2.0])]}}
        reference = {"t": {"means": [np.array([1.0, 2.5])]}}
        (line,) = diff_values(fast, reference)
        assert "['t']" in line and "['means']" in line

    def test_none_vs_value(self):
        (line,) = diff_values(None, 3)
        assert "NoneType" in line

    def test_nan_arrays_equal(self):
        a = np.array([1.0, np.nan])
        assert diff_values(a, a.copy()) == []

    def test_assert_equivalent_raises(self):
        with pytest.raises(VerificationError, match="divergence"):
            assert_equivalent([1], [2], context="unit")
        assert_equivalent([1], [1])
