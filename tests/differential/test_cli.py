"""The ``python -m repro.verify`` CLI, driven in-process."""

import json

import pytest

from repro.verify.__main__ import main


def test_list_names_every_oracle(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in ("cpu.run", "leakage.expand", "ring.ntt", "attack.profile"):
        assert name in output
    assert "[expensive]" in output


def test_run_selected_oracles(capsys):
    exit_code = main(
        ["run", "segmentation.moving_average", "leakage.expand",
         "--examples", "3", "--seed", "11"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "segmentation.moving_average: 3 cases, ok" in output
    assert "leakage.expand: 3 cases, ok" in output


def test_run_default_skips_expensive(capsys):
    assert main(["run", "--examples", "1"]) == 0
    assert "attack.profile" not in capsys.readouterr().out


def test_replay_passing_case(capsys):
    assert main(["replay", "leakage.expand", "--case-seed", "3"]) == 0
    assert "fast == reference" in capsys.readouterr().out


def test_replay_unknown_oracle_raises():
    from repro.errors import VerificationError

    with pytest.raises(VerificationError, match="unknown oracle"):
        main(["replay", "bogus.oracle", "--case-seed", "1"])


def test_golden_regen_then_check(tmp_path, capsys):
    path = tmp_path / "golden.json"
    assert main(["golden", "--regen", "--path", str(path), "--workers", "1"]) == 0
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["table1"]["sign_accuracy"] == 1.0
    assert main(["golden", "--path", str(path), "--workers", "1"]) == 0
    assert "bit-exact" in capsys.readouterr().out


def test_golden_missing_fixture_fails(tmp_path, capsys):
    assert main(["golden", "--path", str(tmp_path / "absent.json")]) == 1
    assert "--regen" in capsys.readouterr().out


def test_golden_detects_divergence(tmp_path, capsys):
    path = tmp_path / "golden.json"
    assert main(["golden", "--regen", "--path", str(path), "--workers", "1"]) == 0
    payload = json.loads(path.read_text())
    payload["table1"]["sign_accuracy"] = 0.25
    path.write_text(json.dumps(payload))
    assert main(["golden", "--path", str(path), "--workers", "1"]) == 1
    assert "DIVERGED" in capsys.readouterr().out
