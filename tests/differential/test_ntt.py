"""Differential: vectorized NTT vs reference loops vs schoolbook algebra.

Two independent anchors: the level-order vectorized butterflies must
match the per-group reference loops bit-for-bit, and the whole
NTT-multiply pipeline must match a definitional O(n²) negacyclic
convolution — so a bug shared by both NTT paths still gets caught.
"""

from hypothesis import given

from repro.verify.oracles import get_oracle, schoolbook_negacyclic_multiply
from tests.differential.helpers import assert_ok
from tests.strategies import case_seeds, ntt_cases

NTT = get_oracle("ring.ntt")
MULTIPLY = get_oracle("ring.negacyclic_multiply")


@given(ntt_cases())
def test_vectorized_ntt_matches_reference(case):
    assert_ok(NTT.check_case(case))


@given(ntt_cases())
def test_ntt_multiply_matches_schoolbook(case):
    assert_ok(MULTIPLY.check_case(case))


@given(case_seeds)
def test_ntt_seeded(seed):
    assert_ok(NTT.check_seed(seed))


@given(case_seeds)
def test_multiply_seeded(seed):
    assert_ok(MULTIPLY.check_seed(seed))


def test_schoolbook_wraparound_sign():
    # x^(n-1) * x = x^n = -1 mod x^n + 1
    import numpy as np

    n, q = 8, 17
    a = np.zeros(n, dtype=np.int64)
    b = np.zeros(n, dtype=np.int64)
    a[n - 1] = 1
    b[1] = 1
    product = schoolbook_negacyclic_multiply(a, b, q)
    assert product[0] == q - 1
    assert not product[1:].any()
