"""Differential: streaming-moments profiling vs the materialized flow.

The streaming path (Welford/Chan merges, batched noise) must land
within 1e-9 of the reference that materialises every slice — over
random standardize/pooled configurations and profiling scales — except
for the *inverted* per-class template blocks, where the covariance is
estimated from only a handful of slices and inversion amplifies the
last-bit moment differences by the condition number (the oracle gives
those leaves condition-number headroom; see `_PROFILE_TOLERANCE`).
Each case profiles twice end to end, so the quick tier runs a couple
and the deep tier a larger sweep.
"""

from repro.verify.oracles import get_oracle
from tests.conftest import DEEP
from tests.differential.helpers import assert_ok

ORACLE = get_oracle("attack.profile")

EXAMPLES = 12 if DEEP else 2


def test_profile_matches_reference_seeded():
    for seed in range(EXAMPLES):
        assert_ok(ORACLE.check_seed(seed))


def test_ill_conditioned_per_class_precision_counterexample():
    # Deep-sweep counterexample: 26x4 traces, standardize=True,
    # pooled=False.  A per-class precision entry drifted ~3e-9 relative
    # between the streaming and materialized paths — beyond the raw
    # 1e-9 moment envelope, because the class covariance built from so
    # few slices is ill-conditioned and its inverse magnifies last-bit
    # input differences.  Pinned so the override tolerance keeps
    # covering it.
    assert_ok(ORACLE.check_seed(8))
