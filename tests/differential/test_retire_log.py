"""Differential: RVFI-style retire streams across all three engines.

Every committed instruction must produce the identical 16-field retire
record on the scalar interpreter, the threaded-code engine and the
lane-vectorized engine — including the terminal trap record on faults,
the *absence* of one on budget exhaustion, and the exact instruction
word retired at a self-modified pc.  The ``cpu.retire_log`` oracle runs
all three engines per case; Hypothesis shrinks random programs, the
adversarial strategy drives the targeted hostile generators, and every
seeded failure replays via ``python -m repro.verify replay
cpu.retire_log --case-seed N`` (or sweeps via ``python -m repro.verify
fuzz cpu.retire_log``).
"""

from hypothesis import given

from repro.riscv.assembler import assemble
from repro.verify.conformance import (
    ENGINE_PAIRS,
    assert_engines_match,
    compare_runs,
    first_retire_divergence,
    run_lane_engine_case,
    run_scalar_engine,
)
from repro.verify.oracles import get_oracle
from tests.differential.helpers import assert_ok
from tests.strategies import adversarial_programs, case_seeds, rv32im_programs

ORACLE = get_oracle("cpu.retire_log")


@given(rv32im_programs())
def test_retire_streams_agree_on_random_programs(case):
    assert_ok(ORACLE.check_case(case))


@given(adversarial_programs())
def test_retire_streams_agree_on_adversarial_programs(case):
    assert_ok(ORACLE.check_case(case, case_seed=case["case_seed"]))


@given(case_seeds)
def test_retire_streams_agree_on_seeded_cases(seed):
    assert_ok(ORACLE.check_seed(seed))


# ----------------------------------------------------------------------
# Fixed hostile scenarios through the conformance harness directly
# ----------------------------------------------------------------------
def _all_engines(source, registers=None, max_instructions=10_000):
    words = assemble(source).words
    runs = [
        run_scalar_engine(
            words, registers, engine=engine, max_instructions=max_instructions
        )
        for engine in ("reference", "threaded")
    ]
    runs.append(
        run_lane_engine_case(
            words, [registers or {}], max_instructions=max_instructions
        )[0]
    )
    for left in runs:
        for right in runs:
            if left is not right:
                assert_engines_match(left, right)
    return runs[0]


def test_self_loop_budget_exhaustion():
    run = _all_engines("jal x0, 0", max_instructions=13)
    assert run.error is not None and "budget" in run.error
    assert run.retires.shape[0] == 13
    assert not run.retires[:, 10].any()  # budget is a limit, not a trap


def test_fault_mid_block_trap_record():
    run = _all_engines("addi x1, x0, 101\nlw x2, 0(x1)\nebreak")
    assert run.error is not None
    assert run.retires[-1, 10] == 1  # trap flag
    assert run.retires.shape[0] == 2


def test_misaligned_jump_traps_with_zero_insn():
    run = _all_engines("addi x1, x0, 6\njalr x0, x1, 0\nebreak")
    assert run.error is not None
    assert run.retires[-1, 10] == 1
    assert run.retires[-1, 3] == 0  # pc=6 not fetchable as a word


def test_smc_patch_ahead_retires_patched_word():
    patch = assemble("addi x4, x0, 77").words[0]
    low = patch & 0xFFF
    low = low - 4096 if low >= 2048 else low
    run = _all_engines(
        f"""
        lui x1, {(patch - low) >> 12 & 0xFFFFF}
        addi x1, x1, {low}
        addi x2, x0, 20
        sw x1, 0(x2)
        addi x3, x0, 1
        addi x4, x0, 55
        ebreak
        """
    )
    assert run.error is None
    patched = run.retires[run.retires[:, 1] == 20]
    assert list(patched[:, 3]) == [patch]
    assert run.registers[4] == 77


def test_divergent_lanes_each_match_their_solo_run():
    source = (
        "loop:\naddi x1, x1, -1\nadd x3, x3, x1\nbnez x1, loop\nebreak"
    )
    files = [{1: 3}, {1: 17}, {1: 1}, {1: 60}]
    words = assemble(source).words
    lanes = run_lane_engine_case(words, files)
    for file, lane_run in zip(files, lanes):
        solo = run_scalar_engine(words, file, engine="reference")
        assert_engines_match(solo, lane_run)


def test_per_lane_faults_keep_retire_streams_isolated():
    source = "sw x2, 0(x1)\nadd x3, x1, x2\nebreak"
    files = [{1: 0x8000, 2: 7}, {1: 0x200000, 2: 7}, {1: 0x8001, 2: 7}]
    words = assemble(source).words
    lanes = run_lane_engine_case(words, files)
    assert lanes[0].error is None and lanes[0].retires.shape[0] == 3
    for lane in (1, 2):
        solo = run_scalar_engine(words, files[lane], engine="threaded")
        assert_engines_match(solo, lanes[lane])
        assert lanes[lane].retires[-1, 10] == 1


def test_divergence_report_is_structural():
    words = assemble("addi x1, x0, 7\nebreak").words
    a = run_scalar_engine(words, engine="reference")
    b = run_scalar_engine(words, engine="threaded")
    assert first_retire_divergence(a, b) == []
    b.retires[1, 9] = 1234  # corrupt the ebreak's rd_wdata
    report = first_retire_divergence(a, b)
    assert report[0] == "retire streams diverge at order 1"
    assert any("rd_wdata" in line and "0x4d2" in line for line in report)
    assert any("ebreak" in line for line in report)
    # truncated streams name the first extra record
    b.retires = b.retires[:1]
    report = compare_runs(a, b)
    assert any("retire counts diverge" in line for line in report)


def test_oracle_reports_every_engine_pair():
    payload = ORACLE.fast(
        {"source": "addi x1, x0, 3\nebreak", "registers": {}, "max_instructions": 100}
    )
    expected = {f"{a}_vs_{b}" for a, b in ENGINE_PAIRS} | {"lane0_vs_lane1"}
    assert set(payload["divergence"]) == expected
    assert all(value is None for value in payload["divergence"].values())
    assert payload["state"]["retire_count"] == 2
