"""Differential: lane-vectorized engine vs per-lane threaded runs.

Every lane of a :class:`~repro.riscv.lanes.LaneEngine` batch must be
bit-identical to running that lane's program alone on the threaded
engine — registers, pc, cycle and instruction counts, the EventLog, and
the per-lane error string when a lane faults or exhausts its budget.
Hypothesis shrinks a diverging batch toward the one opcode that breaks
lock-step parity; the seeded sweeps replay through ``python -m
repro.verify replay cpu.run_lanes`` / ``leakage.expand_lanes``.
"""

from hypothesis import given

from repro.verify.oracles import get_oracle
from tests.differential.helpers import assert_ok
from tests.strategies import case_seeds, lane_programs

ENGINE_ORACLE = get_oracle("cpu.run_lanes")
EXPAND_ORACLE = get_oracle("leakage.expand_lanes")


@given(lane_programs())
def test_lanes_agree_on_random_programs(case):
    assert_ok(ENGINE_ORACLE.check_case(case))


@given(case_seeds)
def test_lanes_agree_on_seeded_cases(seed):
    assert_ok(ENGINE_ORACLE.check_seed(seed))


@given(case_seeds)
def test_expand_lanes_agrees_on_seeded_cases(seed):
    assert_ok(EXPAND_ORACLE.check_seed(seed))


def _fixed_case(source, register_files, budget=10_000):
    return {
        "source": source,
        "register_files": register_files,
        "max_instructions": budget,
    }


def test_branch_divergence_parity():
    # Lanes take opposite sides of the branch, park, and reconverge;
    # every lane must still match its solo threaded run exactly.
    case = _fixed_case(
        "blt x1, x2, else\n"
        "addi x3, x3, 7\n"
        "jal x0, done\n"
        "else:\n"
        "addi x3, x3, 11\n"
        "done:\n"
        "mul x4, x3, x3\n"
        "ebreak",
        register_files=[{1: 1, 2: 2}, {1: 2, 2: 1}, {1: 5, 2: 5}],
    )
    assert_ok(ENGINE_ORACLE.check_case(case))


def test_per_lane_fault_parity():
    # Lane 1 stores out of range, lane 2 misaligns a load; the healthy
    # lane must run to completion with identical state.
    case = _fixed_case(
        "sw x2, 0(x1)\n"
        "lw x3, 0(x1)\n"
        "ebreak",
        register_files=[{1: 0x8000}, {1: 0x100000}, {1: 0x8002}],
    )
    report = ENGINE_ORACLE.check_case(case)
    assert_ok(report)
    results = ENGINE_ORACLE.fast(case)
    assert results[0]["error"] is None
    assert results[1]["error"] is not None
    assert results[2]["error"] is not None


def test_divergent_trip_count_budget_parity():
    # Different loop trip counts per lane with a budget that expires
    # mid-block for some lanes only.
    source = (
        "loop:\n"
        "addi x1, x1, -1\n"
        "add x3, x3, x1\n"
        "bnez x1, loop\n"
        "ebreak"
    )
    files = [{1: 2}, {1: 9}, {1: 40}, {1: 1}]
    for budget in (1, 5, 28, 10_000):
        assert_ok(
            ENGINE_ORACLE.check_case(_fixed_case(source, files, budget))
        )
