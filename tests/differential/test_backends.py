"""Differential tests for the compute backends, via the oracle registry.

One parametrized sweep: every kernel-group oracle of every backend that
probes available on this host (``backend.native.*`` wherever a C
compiler exists, ``backend.numba.*`` on the CI job that installs
numba), each driven over a deterministic quick-tier seed range (deep
tier widens it).  The oracles themselves pin the comparison contract —
bit-exact for the integer/mirrored-float kernels, declared tolerance
for the template quadratic form — so this file only has to drive them
and surface the replay command on failure.

Hosts with no compiled backend collect zero cases here; the registry's
fallback behaviour is covered by ``tests/backends/test_selection.py``.
"""

import pytest

from repro.verify.oracles import all_oracles, get_oracle

from tests.conftest import DEEP

BACKEND_ORACLES = sorted(
    o.name for o in all_oracles() if o.name.startswith("backend.")
)

CASES_PER_ORACLE = 40 if DEEP else 8


@pytest.mark.parametrize("oracle_name", BACKEND_ORACLES)
def test_backend_kernel_matches_reference(oracle_name):
    oracle = get_oracle(oracle_name)
    for case_seed in range(CASES_PER_ORACLE):
        report = oracle.check_seed(case_seed)
        assert report.ok, (
            f"{oracle_name} diverged on case {case_seed} "
            f"({report.case_summary}):\n"
            + "\n".join(report.mismatches[:10])
            + f"\nreplay: {report.repro_command()}"
        )


def test_every_available_backend_has_full_oracle_coverage():
    from repro.backends import available_backends, kernel_exactness

    for backend in available_backends():
        if backend == "reference":
            continue
        exactness = kernel_exactness(backend)
        registered = {
            name.split(".", 2)[2]
            for name in BACKEND_ORACLES
            if name.split(".", 2)[1] == backend
        }
        expected = set()
        if {"ntt_forward", "ntt_inverse", "pointwise_mulmod"} <= set(exactness):
            expected.add("ntt")
        if "expand_events" in exactness:
            expected.add("expand")
        if "expand_block" in exactness:
            expected.add("expand_arena")
        if "lane_select" in exactness:
            expected.add("lane_select")
        if "template_quad" in exactness:
            expected.add("template")
        assert registered == expected
