"""Differential: threaded-code engine vs the scalar RV32IM interpreter.

The two engines must agree on *everything* observable — registers, pc,
cycle and instruction counts, the EventLog, and the exact error string
when a program faults or exhausts its budget.  Hypothesis shrinks a
diverging program toward the minimal opcode sequence; the seeded sweep
replays through ``python -m repro.verify replay cpu.run``.
"""

from hypothesis import given

from repro.verify.oracles import get_oracle
from tests.differential.helpers import assert_ok
from tests.strategies import case_seeds, rv32im_programs

ORACLE = get_oracle("cpu.run")


@given(rv32im_programs())
def test_engines_agree_on_random_programs(case):
    assert_ok(ORACLE.check_case(case))


@given(case_seeds)
def test_engines_agree_on_seeded_cases(seed):
    assert_ok(ORACLE.check_seed(seed))


def _fixed_case(source, registers=None, budget=10_000):
    return {
        "source": source,
        "registers": registers or {},
        "max_instructions": budget,
    }


def test_divrem_corner_parity():
    # INT_MIN / -1 overflows and anything / 0: the RV32IM-mandated
    # results, identical down to the EventLog rows.
    case = _fixed_case(
        "div x3, x1, x2\n"
        "rem x4, x1, x2\n"
        "divu x6, x1, x0\n"
        "remu x7, x1, x0\n"
        "ebreak",
        registers={1: 0x80000000, 2: 0xFFFFFFFF},
    )
    assert_ok(ORACLE.check_case(case))


def test_fault_parity_unmapped_store():
    case = _fixed_case("li x1, 1048576\nsw x2, 0(x1)\nebreak")
    report = ORACLE.check_case(case)
    assert_ok(report)
    assert ORACLE.fast(case)["error"] is not None


def test_fault_parity_misaligned_load():
    case = _fixed_case("li x1, 2\nlw x2, 0(x1)\nebreak")
    assert_ok(ORACLE.check_case(case))


def test_budget_exhaustion_parity():
    # The threaded engine commits superblocks; a budget expiring
    # mid-block must still stop at exactly the same instruction.
    source = "\n".join(["addi x1, x1, 1"] * 20 + ["ebreak"])
    for budget in (1, 7, 19, 20):
        assert_ok(ORACLE.check_case(_fixed_case(source, budget=budget)))


def test_tight_loop_parity():
    case = _fixed_case(
        "li x1, 50\n"
        "loop:\n"
        "mul x2, x1, x1\n"
        "addi x1, x1, -1\n"
        "bnez x1, loop\n"
        "ebreak"
    )
    assert_ok(ORACLE.check_case(case))
