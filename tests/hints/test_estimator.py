"""Tests for the bikz estimator and the paper's reference numbers."""

import math

import numpy as np
import pytest

from repro.errors import HintError
from repro.hints.estimator import (
    BIKZ_PER_BIT,
    beta_for_dbdd,
    beta_for_usvp,
    bikz_to_bits,
)
from repro.hints.hintgen import apply_hints, hints_from_signs
from repro.hints.security import (
    PAPER_BIKZ_NO_HINTS,
    seal_128_dbdd,
    seal_128_parameters,
)
from repro.lattice.gsa import bkz_delta


class TestDelta:
    def test_known_value(self):
        # delta for beta ~ 380 is about 1.0041
        assert bkz_delta(380) == pytest.approx(1.0041, abs=2e-4)

    def test_monotone_decreasing(self):
        deltas = [bkz_delta(b) for b in (50, 100, 200, 400, 800)]
        assert all(a > b for a, b in zip(deltas, deltas[1:]))


class TestBetaForUsvp:
    def test_more_volume_is_easier(self):
        hard = beta_for_usvp(500, 1500.0)
        easy = beta_for_usvp(500, 2000.0)
        assert 2 < easy < hard < 500

    def test_trivial_instance(self):
        assert beta_for_usvp(100, 10_000.0) == 2.0

    def test_hopeless_instance(self):
        assert beta_for_usvp(100, -10_000.0) == 100.0

    def test_validates_dim(self):
        with pytest.raises(HintError):
            beta_for_usvp(1, 0.0)

    def test_fractional_output(self):
        beta = beta_for_usvp(2049, 17_000.0)
        assert beta != round(beta)


class TestPaperNumbers:
    def test_no_hint_bikz_matches_paper(self):
        """Table III, first row: 382.25 bikz for SEAL-128."""
        beta = beta_for_dbdd(seal_128_dbdd())
        assert beta == pytest.approx(PAPER_BIKZ_NO_HINTS, rel=0.02)

    def test_no_hint_bits_about_128(self):
        beta = beta_for_dbdd(seal_128_dbdd())
        assert bikz_to_bits(beta) == pytest.approx(128, abs=3)

    def test_ternary_secret_is_easier(self):
        """The exact ternary-u model gives a smaller bikz than the
        estimator's Gaussian-secret default (see EXPERIMENTS.md)."""
        from repro.hints.security import make_dbdd

        gaussian = beta_for_dbdd(seal_128_dbdd())
        ternary = beta_for_dbdd(make_dbdd(seal_128_parameters(ternary_secret=True)))
        assert ternary < gaussian

    def test_branch_only_hints_do_not_break_the_scheme(self):
        """Table IV's conclusion: signs alone leave high security."""
        rng = np.random.default_rng(1)
        values = np.rint(np.clip(rng.normal(0, 3.2, 1024), -41, 41)).astype(int)
        inst = seal_128_dbdd()
        apply_hints(inst, hints_from_signs(np.sign(values), 3.2), 1024)
        beta = beta_for_dbdd(inst)
        assert bikz_to_bits(beta) > 80  # paper: 84.9 bits remain

    def test_perfect_hints_break_the_scheme(self):
        """Full-confidence hints on every error coefficient: complete break."""
        rng = np.random.default_rng(2)
        values = np.rint(np.clip(rng.normal(0, 3.2, 1024), -41, 41)).astype(int)
        inst = seal_128_dbdd()
        for i, v in enumerate(values):
            inst.integrate_perfect_hint(1024 + i, float(v))
        beta = beta_for_dbdd(inst)
        assert bikz_to_bits(beta) < 5  # paper: 2^4.4

    def test_guess_reduces_bikz_slightly(self):
        """Table IV: one guess moves 253.29 -> 252.83 (about -0.5)."""
        from repro.hints.hintgen import apply_guesses

        rng = np.random.default_rng(3)
        values = np.rint(np.clip(rng.normal(0, 3.2, 1024), -41, 41)).astype(int)
        hints = hints_from_signs(np.sign(values), 3.2)
        inst = seal_128_dbdd()
        apply_hints(inst, hints, 1024)
        before = beta_for_dbdd(inst)
        apply_guesses(inst, hints, 1024, count=1)
        after = beta_for_dbdd(inst)
        assert 0.1 < before - after < 1.5

    def test_conversion_constant(self):
        assert BIKZ_PER_BIT == 2.98
        assert bikz_to_bits(298.0) == pytest.approx(100.0)

    def test_higher_security_levels_are_harder(self):
        """Paper section V-B: 192/256-bit sets resist the attack more."""
        from repro.hints.security import higher_security_parameters, make_dbdd

        betas = {
            level: beta_for_dbdd(make_dbdd(higher_security_parameters(level)))
            for level in (128, 192, 256)
        }
        assert betas[128] < betas[192] < betas[256]

    def test_higher_security_level_validation(self):
        from repro.hints.security import higher_security_parameters

        with pytest.raises(ValueError):
            higher_security_parameters(100)


class TestMonotonicity:
    def test_each_hint_only_helps(self):
        rng = np.random.default_rng(4)
        values = np.rint(np.clip(rng.normal(0, 3.2, 1024), -41, 41)).astype(int)
        inst = seal_128_dbdd()
        betas = [beta_for_dbdd(inst)]
        for i in range(0, 1024, 128):
            inst.integrate_perfect_hint(1024 + i, float(values[i]))
            betas.append(beta_for_dbdd(inst))
        assert all(a >= b - 1e-9 for a, b in zip(betas, betas[1:]))
