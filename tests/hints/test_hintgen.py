"""Tests for converting attack output into hints."""

import math

import pytest

from repro.errors import HintError
from repro.hints.dbdd import CoordinateDbdd
from repro.hints.hintgen import (
    CoefficientHint,
    apply_guesses,
    apply_hints,
    hints_from_probability_tables,
    hints_from_signs,
    moments_of_table,
    sign_conditional_moments,
)


class TestMoments:
    def test_delta_table(self):
        assert moments_of_table({3: 1.0}) == (3.0, 0.0)

    def test_symmetric_table(self):
        mean, var = moments_of_table({-1: 0.5, 1: 0.5})
        assert mean == 0.0
        assert var == 1.0

    def test_table_ii_style(self):
        """A 'probability ~ 1' measurement (Table II row for value 1)."""
        mean, var = moments_of_table({1: 1 - 2.7e-10, 2: 2.7e-10})
        assert mean == pytest.approx(1.0, abs=1e-9)
        assert var == pytest.approx(2.7e-10, rel=0.01)

    def test_unnormalised_rejected(self):
        with pytest.raises(HintError):
            moments_of_table({1: 0.4})

    def test_empty_rejected(self):
        with pytest.raises(HintError):
            moments_of_table({})


class TestHintsFromTables:
    def test_indices_assigned(self):
        hints = hints_from_probability_tables([{0: 1.0}, {2: 1.0}])
        assert [h.index for h in hints] == [0, 1]
        assert hints[1].centered == 2.0

    def test_perfect_detection(self):
        hints = hints_from_probability_tables([{5: 1.0}, {1: 0.6, 2: 0.4}])
        assert hints[0].is_perfect
        assert not hints[1].is_perfect


class TestSignConditional:
    def test_zero_is_exact(self):
        assert sign_conditional_moments(3.2, 0) == (0.0, 0.0)

    def test_positive_moments(self):
        mean, var = sign_conditional_moments(3.2, 1)
        # discrete positive half-Gaussian: mean ~ 2.89, var ~ 3.33
        assert mean == pytest.approx(2.89, abs=0.05)
        assert var == pytest.approx(3.33, abs=0.1)

    def test_negative_mirrors_positive(self):
        pos = sign_conditional_moments(3.2, 1)
        neg = sign_conditional_moments(3.2, -1)
        assert neg[0] == -pos[0]
        assert neg[1] == pos[1]

    def test_hints_from_signs(self):
        hints = hints_from_signs([0, 1, -1], 3.2)
        assert hints[0].is_perfect
        assert hints[1].centered > 0
        assert hints[2].centered < 0
        assert hints[1].variance == hints[2].variance > 0


class TestApplication:
    def test_apply_hints_offsets(self):
        inst = CoordinateDbdd([1.0] * 4, 0.0)
        apply_hints(inst, [CoefficientHint(0, 2.0, 0.0)], coordinate_offset=2)
        assert not inst.active[2]
        assert inst.active[0] and inst.active[1] and inst.active[3]

    def test_apply_guesses_picks_most_confident(self):
        inst = CoordinateDbdd([10.0] * 4, 0.0)
        hints = [
            CoefficientHint(0, 1.0, 3.0),
            CoefficientHint(1, 2.0, 0.5),
            CoefficientHint(2, 0.0, 0.0),  # already perfect: not guessable
            CoefficientHint(3, -1.0, 1.5),
        ]
        apply_hints(inst, hints, 0)
        guessed = apply_guesses(inst, hints, 0, count=1)
        assert [g.index for g in guessed] == [1]
        assert not inst.active[1]
