"""Unit and property tests for the DBDD instances."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HintError
from repro.hints.dbdd import CoordinateDbdd, DbddInstance


def small_instance(dim=4, variance=9.0, logvol=10.0):
    return DbddInstance(
        mean=np.zeros(dim), covariance=variance * np.eye(dim), log_lattice_volume=logvol
    )


class TestDbddInstance:
    def test_initial_state(self):
        inst = small_instance()
        assert inst.dim == 4
        assert inst.homogenised_dim() == 5
        assert inst.log_det_sigma() == pytest.approx(4 * math.log(9.0))
        assert inst.log_isotropic_volume() == pytest.approx(10.0 - 2 * math.log(9.0))

    def test_perfect_hint_reduces_dimension(self):
        inst = small_instance()
        inst.integrate_perfect_hint([1, 0, 0, 0], 3.0)
        assert inst.homogenised_dim() == 4
        assert inst.mu[0] == pytest.approx(3.0)
        # remaining determinant only over 3 coordinates
        assert inst.log_det_sigma() == pytest.approx(3 * math.log(9.0))

    def test_perfect_hint_nonunit_vector_grows_volume(self):
        inst = small_instance()
        inst.integrate_perfect_hint([3, 4, 0, 0], 0.0)
        assert inst.log_volume == pytest.approx(10.0 + math.log(5.0))

    def test_redundant_perfect_hint_rejected(self):
        inst = small_instance()
        inst.integrate_perfect_hint([1, 0, 0, 0], 2.0)
        with pytest.raises(HintError):
            inst.integrate_perfect_hint([1, 0, 0, 0], 2.0)

    def test_perfect_hint_conditioning_matches_gaussian_algebra(self):
        """2D check against hand-computed conditional distribution."""
        cov = np.array([[4.0, 1.0], [1.0, 2.0]])
        inst = DbddInstance([0.0, 0.0], cov, 0.0)
        inst.integrate_perfect_hint([1, 0], 2.0)  # condition on x = 2
        # conditional of y given x=2: mean = 2 * 1/4, var = 2 - 1/4
        assert inst.mu[1] == pytest.approx(0.5)
        assert inst.sigma[1, 1] == pytest.approx(1.75)
        assert inst.sigma[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_approximate_hint_shrinks_variance(self):
        inst = small_instance()
        before = inst.log_det_sigma()
        inst.integrate_approximate_hint([1, 0, 0, 0], 1.0, noise_variance=1.0)
        # posterior variance = 1/(1/9 + 1/1) = 0.9
        assert inst.sigma[0, 0] == pytest.approx(0.9)
        assert inst.log_det_sigma() < before
        assert inst.homogenised_dim() == 5  # no dimension change

    def test_approximate_hint_converges_to_perfect(self):
        """As the hint noise vanishes, conditioning approaches a perfect hint."""
        loose = small_instance()
        loose.integrate_approximate_hint([0, 1, 0, 0], 2.5, noise_variance=1e-9)
        exact = small_instance()
        exact.integrate_perfect_hint([0, 1, 0, 0], 2.5)
        assert loose.mu[1] == pytest.approx(exact.mu[1], abs=1e-6)
        assert loose.sigma[1, 1] == pytest.approx(0.0, abs=1e-6)

    def test_approximate_hint_validates(self):
        inst = small_instance()
        with pytest.raises(HintError):
            inst.integrate_approximate_hint([1, 0, 0, 0], 0.0, noise_variance=0.0)

    def test_modular_hint_smooth_regime(self):
        inst = small_instance()
        before = inst.log_isotropic_volume()
        inst.integrate_modular_hint([1, 0, 0, 0], 1, 2)
        assert inst.log_isotropic_volume() == pytest.approx(before + math.log(2))

    def test_modular_hint_outside_smooth_regime_rejected(self):
        inst = small_instance(variance=0.25)
        with pytest.raises(HintError):
            inst.integrate_modular_hint([1, 0, 0, 0], 0, 50)

    def test_short_vector_hint(self):
        inst = small_instance()
        before_vol = inst.log_volume
        inst.integrate_short_vector_hint([2, 0, 0, 0])
        assert inst.log_volume == pytest.approx(before_vol - math.log(2.0))
        assert inst.homogenised_dim() == 4

    def test_vector_validation(self):
        inst = small_instance()
        with pytest.raises(HintError):
            inst.integrate_perfect_hint([0, 0, 0, 0], 1.0)
        with pytest.raises(HintError):
            inst.integrate_perfect_hint([1, 0], 1.0)

    @settings(max_examples=20, deadline=None)
    @given(value=st.floats(-5, 5), seed=st.integers(0, 1000))
    def test_property_perfect_hint_beta_never_larger(self, value, seed):
        """More information can only make the attack easier."""
        rng = np.random.default_rng(seed)
        base = DbddInstance(np.zeros(6), np.diag(rng.uniform(1, 10, 6)), 30.0)
        before = base.estimate_beta()
        base.integrate_perfect_hint([1, 0, 0, 0, 0, 0], value)
        assert base.estimate_beta() <= before + 1e-9


class TestCoordinateDbdd:
    def test_matches_full_instance(self):
        """Diagonal fast path agrees with the general implementation."""
        variances = [4.0, 9.0, 2.0, 7.0]
        full = DbddInstance(np.zeros(4), np.diag(variances), 12.0)
        fast = CoordinateDbdd(variances, 12.0)
        assert fast.homogenised_dim() == full.homogenised_dim()
        assert fast.log_isotropic_volume() == pytest.approx(
            full.log_isotropic_volume()
        )
        full.integrate_perfect_hint([0, 1, 0, 0], 1.0)
        fast.integrate_perfect_hint(1, 1.0)
        assert fast.homogenised_dim() == full.homogenised_dim()
        assert fast.log_isotropic_volume() == pytest.approx(
            full.log_isotropic_volume()
        )
        full.integrate_approximate_hint([0, 0, 1, 0], 0.5, noise_variance=2.0)
        fast.integrate_approximate_hint(2, 0.5, noise_variance=2.0)
        assert fast.log_isotropic_volume() == pytest.approx(
            full.log_isotropic_volume()
        )
        assert fast.centers[2] == pytest.approx(full.mu[2])

    def test_aposteriori_hint_replaces_distribution(self):
        fast = CoordinateDbdd([10.0, 10.0], 5.0)
        fast.integrate_aposteriori_hint(0, 3.0, 0.5)
        assert fast.variances[0] == 0.5
        assert fast.centers[0] == 3.0

    def test_aposteriori_uninformative_ignored(self):
        fast = CoordinateDbdd([10.0, 10.0], 5.0)
        fast.integrate_aposteriori_hint(0, 3.0, 20.0)
        assert fast.variances[0] == 10.0

    def test_aposteriori_tiny_variance_becomes_perfect(self):
        fast = CoordinateDbdd([10.0], 5.0)
        fast.integrate_aposteriori_hint(0, 2.0, 1e-12)
        assert not fast.active[0]
        assert fast.homogenised_dim() == 1

    def test_double_perfect_rejected(self):
        fast = CoordinateDbdd([10.0, 10.0], 5.0)
        fast.integrate_perfect_hint(0, 1.0)
        with pytest.raises(HintError):
            fast.integrate_perfect_hint(0, 1.0)

    def test_index_validation(self):
        fast = CoordinateDbdd([10.0], 5.0)
        with pytest.raises(HintError):
            fast.integrate_perfect_hint(5, 0.0)

    def test_positive_variances_required(self):
        with pytest.raises(HintError):
            CoordinateDbdd([1.0, 0.0], 5.0)
