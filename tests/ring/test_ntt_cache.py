"""Tests for the bounded LRU context cache behind ``get_ntt_context``."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ring import (
    clear_ntt_cache,
    configure_ntt_cache,
    get_ntt_context,
    ntt_cache_stats,
)
from repro.ring.primes import generate_ntt_primes

#: Enough distinct NTT-friendly (q, n) pairs to overflow a small cache.
_PRIMES = generate_ntt_primes(17, 6, 16)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_ntt_cache()
    configure_ntt_cache(64)  # the default capacity
    yield
    clear_ntt_cache()
    configure_ntt_cache(64)


def test_hit_and_miss_counters():
    get_ntt_context(_PRIMES[0], 16)
    get_ntt_context(_PRIMES[0], 16)
    get_ntt_context(_PRIMES[1], 16)
    stats = ntt_cache_stats()
    assert stats["misses"] == 2
    assert stats["hits"] == 1
    assert stats["size"] == 2
    assert stats["evictions"] == 0
    assert stats["max_size"] == 64


def test_capacity_is_bounded_with_lru_eviction():
    configure_ntt_cache(3)
    for prime in _PRIMES[:4]:  # one over capacity
        get_ntt_context(prime, 16)
    stats = ntt_cache_stats()
    assert stats["size"] == 3
    assert stats["evictions"] == 1
    # The oldest entry (primes[0]) was evicted: touching it is a miss...
    misses = stats["misses"]
    get_ntt_context(_PRIMES[0], 16)
    assert ntt_cache_stats()["misses"] == misses + 1
    # ...while the youngest survivors still hit.
    hits = ntt_cache_stats()["hits"]
    get_ntt_context(_PRIMES[3], 16)
    assert ntt_cache_stats()["hits"] == hits + 1


def test_recent_use_protects_from_eviction():
    configure_ntt_cache(2)
    a = get_ntt_context(_PRIMES[0], 16)
    get_ntt_context(_PRIMES[1], 16)
    assert get_ntt_context(_PRIMES[0], 16) is a  # refresh a's recency
    get_ntt_context(_PRIMES[2], 16)  # evicts primes[1], not a
    misses = ntt_cache_stats()["misses"]
    assert get_ntt_context(_PRIMES[0], 16) is a
    assert ntt_cache_stats()["misses"] == misses


def test_configure_evicts_down_immediately():
    for prime in _PRIMES[:5]:
        get_ntt_context(prime, 16)
    configure_ntt_cache(2)
    stats = ntt_cache_stats()
    assert stats["size"] == 2
    assert stats["evictions"] == 3


def test_configure_rejects_non_positive():
    with pytest.raises(ParameterError, match=">= 1"):
        configure_ntt_cache(0)


def test_clear_resets_counters():
    get_ntt_context(_PRIMES[0], 16)
    get_ntt_context(_PRIMES[0], 16)
    clear_ntt_cache()
    stats = ntt_cache_stats()
    assert stats["size"] == 0
    assert stats["hits"] == stats["misses"] == stats["evictions"] == 0


def test_evicted_context_still_works_and_rebuilds():
    configure_ntt_cache(1)
    context = get_ntt_context(_PRIMES[0], 16)
    rng = np.random.default_rng(0)
    a = rng.integers(0, _PRIMES[0].value, 16, dtype=np.int64)
    expected = context.forward(a)
    get_ntt_context(_PRIMES[1], 16)  # evicts it
    # The evicted instance keeps working; a rebuilt twin agrees bit-
    # for-bit (twiddle construction is deterministic).
    assert np.array_equal(context.forward(a), expected)
    rebuilt = get_ntt_context(_PRIMES[0], 16)
    assert rebuilt is not context
    assert np.array_equal(rebuilt.forward(a), expected)
