"""Unit and property tests for the RNS/CRT basis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.ring.modulus import Modulus
from repro.ring.primes import generate_ntt_primes
from repro.ring.rns import RnsBasis


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(generate_ntt_primes(20, 3, 64))


class TestConstruction:
    def test_product(self, basis):
        expected = 1
        for m in basis.moduli:
            expected *= m.value
        assert basis.product == expected
        assert basis.size == 3
        assert basis.total_bits == expected.bit_length()

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            RnsBasis([])

    def test_rejects_duplicates(self):
        m = Modulus(132120577)
        with pytest.raises(ParameterError):
            RnsBasis([m, m])


class TestComposeDecompose:
    def test_roundtrip_small(self, basis):
        for value in (0, 1, 12345, basis.product - 1):
            assert basis.compose_int(basis.decompose_int(value)) == value

    def test_negative_decompose(self, basis):
        residues = basis.decompose_int(-7)
        assert basis.compose_int(residues) == basis.product - 7

    def test_compose_checks_arity(self, basis):
        with pytest.raises(ParameterError):
            basis.compose_int([1, 2])

    def test_array_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(0, 2**40, 10)]
        values = [v % basis.product for v in values]
        matrix = basis.decompose_array(values)
        assert matrix.shape == (3, 10)
        assert basis.compose_array(matrix) == values

    def test_compose_array_shape_check(self, basis):
        with pytest.raises(ParameterError):
            basis.compose_array(np.zeros((2, 4), dtype=np.int64))

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(min_value=0, max_value=2**59))
    def test_property_roundtrip(self, value, basis):
        value %= basis.product
        assert basis.compose_int(basis.decompose_int(value)) == value

    @settings(max_examples=30, deadline=None)
    @given(a=st.integers(0, 2**59), b=st.integers(0, 2**59))
    def test_property_crt_is_ring_hom(self, a, b, basis):
        """Compose(a residues * b residues) == a*b mod Q."""
        a %= basis.product
        b %= basis.product
        prod_residues = [
            m.mul(ra, rb)
            for m, ra, rb in zip(
                basis.moduli, basis.decompose_int(a), basis.decompose_int(b)
            )
        ]
        assert basis.compose_int(prod_residues) == (a * b) % basis.product


class TestCentered:
    def test_centered_range(self, basis):
        half = basis.product // 2
        assert basis.centered(half) == half
        assert basis.centered(half + 1) == half + 1 - basis.product
        assert basis.centered(basis.product - 1) == -1
        assert basis.centered(0) == 0
