"""Tests for exact integer negacyclic multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ring.exact import exact_negacyclic_multiply


def schoolbook(a, b):
    n = len(a)
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            if k >= n:
                out[k - n] -= ai * bj
            else:
                out[k] += ai * bj
    return out


class TestExactMultiply:
    def test_doctest_case(self):
        assert exact_negacyclic_multiply([0, 1], [0, 1]) == [-1, 0]

    def test_zero_operand(self):
        assert exact_negacyclic_multiply([0] * 8, [1] * 8) == [0] * 8

    def test_matches_schoolbook_small(self):
        rng = np.random.default_rng(0)
        a = [int(x) for x in rng.integers(-100, 100, 16)]
        b = [int(x) for x in rng.integers(-100, 100, 16)]
        assert exact_negacyclic_multiply(a, b) == schoolbook(a, b)

    def test_huge_coefficients_exact(self):
        """Values far beyond 64 bits stay exact (CRT limb count adapts)."""
        a = [2**80, -(2**79)] + [0] * 14
        b = [3**40, 1] + [0] * 14
        assert exact_negacyclic_multiply(a, b) == schoolbook(a, b)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            exact_negacyclic_multiply([1, 2], [1])
        with pytest.raises(ValueError):
            exact_negacyclic_multiply([1, 2, 3], [1, 2, 3])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_matches_schoolbook(self, seed):
        rng = np.random.default_rng(seed)
        a = [int(x) for x in rng.integers(-(2**30), 2**30, 8)]
        b = [int(x) for x in rng.integers(-(2**30), 2**30, 8)]
        assert exact_negacyclic_multiply(a, b) == schoolbook(a, b)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_ring_axioms(self, seed):
        rng = np.random.default_rng(seed)
        a = [int(x) for x in rng.integers(-50, 50, 8)]
        b = [int(x) for x in rng.integers(-50, 50, 8)]
        c = [int(x) for x in rng.integers(-50, 50, 8)]
        ab = exact_negacyclic_multiply(a, b)
        ba = exact_negacyclic_multiply(b, a)
        assert ab == ba
        b_plus_c = [x + y for x, y in zip(b, c)]
        lhs = exact_negacyclic_multiply(a, b_plus_c)
        rhs = [
            x + y
            for x, y in zip(
                exact_negacyclic_multiply(a, b), exact_negacyclic_multiply(a, c)
            )
        ]
        assert lhs == rhs
