"""Unit and property tests for the negacyclic NTT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.ring.modulus import Modulus
from repro.ring.ntt import NttContext, _find_primitive_root
from repro.ring.primes import generate_ntt_primes


def naive_negacyclic_multiply(a, b, q, n):
    """Schoolbook reference: product mod (x^n + 1, q)."""
    out = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            term = int(ai) * int(bj)
            if k >= n:
                out[k - n] = (out[k - n] - term) % q
            else:
                out[k] = (out[k] + term) % q
    return [c % q for c in out]


@pytest.fixture(scope="module")
def ctx16():
    q = generate_ntt_primes(17, 1, 16)[0]
    return NttContext(q, 16)


@pytest.fixture(scope="module")
def ctx_paper():
    return NttContext(Modulus(132120577), 1024)


class TestPrimitiveRoot:
    def test_order_is_exact(self):
        q = Modulus(132120577)
        root = _find_primitive_root(q, 2048)
        assert pow(root, 2048, q.value) == 1
        assert pow(root, 1024, q.value) != 1

    def test_rejects_non_dividing_order(self):
        with pytest.raises(ParameterError):
            _find_primitive_root(Modulus(13), 8)


class TestRoundtrip:
    def test_forward_inverse_identity(self, ctx16):
        rng = np.random.default_rng(0)
        a = rng.integers(0, ctx16.modulus.value, 16)
        assert np.array_equal(ctx16.inverse(ctx16.forward(a)), a)

    def test_paper_size_roundtrip(self, ctx_paper):
        rng = np.random.default_rng(1)
        a = rng.integers(0, ctx_paper.modulus.value, 1024)
        assert np.array_equal(ctx_paper.inverse(ctx_paper.forward(a)), a)

    def test_forward_of_zero(self, ctx16):
        z = np.zeros(16, dtype=np.int64)
        assert np.array_equal(ctx16.forward(z), z)

    def test_shape_checked(self, ctx16):
        with pytest.raises(ParameterError):
            ctx16.forward(np.zeros(8, dtype=np.int64))
        with pytest.raises(ParameterError):
            ctx16.inverse(np.zeros(8, dtype=np.int64))

    def test_input_not_mutated(self, ctx16):
        a = np.arange(16, dtype=np.int64)
        before = a.copy()
        ctx16.forward(a)
        assert np.array_equal(a, before)


class TestMultiplication:
    def test_matches_schoolbook_small(self, ctx16):
        rng = np.random.default_rng(2)
        q = ctx16.modulus.value
        a = rng.integers(0, q, 16)
        b = rng.integers(0, q, 16)
        got = ctx16.multiply(a, b)
        want = naive_negacyclic_multiply(a, b, q, 16)
        assert got.tolist() == want

    def test_x_times_xn_minus_1_wraps_negatively(self, ctx16):
        """x * x^(n-1) = x^n = -1 in the negacyclic ring."""
        q = ctx16.modulus.value
        x = np.zeros(16, dtype=np.int64)
        x[1] = 1
        xn1 = np.zeros(16, dtype=np.int64)
        xn1[15] = 1
        got = ctx16.multiply(x, xn1)
        want = np.zeros(16, dtype=np.int64)
        want[0] = q - 1
        assert np.array_equal(got, want)

    def test_multiply_by_one(self, ctx16):
        rng = np.random.default_rng(3)
        a = rng.integers(0, ctx16.modulus.value, 16)
        one = np.zeros(16, dtype=np.int64)
        one[0] = 1
        assert np.array_equal(ctx16.multiply(a, one), a)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_matches_schoolbook(self, seed, ctx16):
        rng = np.random.default_rng(seed)
        q = ctx16.modulus.value
        a = rng.integers(0, q, 16)
        b = rng.integers(0, q, 16)
        assert ctx16.multiply(a, b).tolist() == naive_negacyclic_multiply(a, b, q, 16)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_linearity(self, seed, ctx16):
        """NTT(a + b) == NTT(a) + NTT(b)."""
        rng = np.random.default_rng(seed)
        q = ctx16.modulus.value
        a = rng.integers(0, q, 16)
        b = rng.integers(0, q, 16)
        lhs = ctx16.forward((a + b) % q)
        rhs = (ctx16.forward(a) + ctx16.forward(b)) % q
        assert np.array_equal(lhs, rhs)


class TestContextValidation:
    def test_rejects_non_power_of_two(self):
        q = generate_ntt_primes(17, 1, 16)[0]
        with pytest.raises(ParameterError):
            NttContext(q, 12)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ParameterError):
            NttContext(Modulus(17), 16)
