"""Equivalence tests: level-order vectorized NTT vs the per-group loops."""

import numpy as np
import pytest

from repro.ring.modulus import Modulus
from repro.ring.ntt import NttContext, get_ntt_context

PAPER_Q = 132120577


@pytest.mark.parametrize("n", [8, 1024])
def test_forward_matches_reference(n):
    ctx = NttContext(Modulus(PAPER_Q), n)
    rng = np.random.default_rng(n)
    for _ in range(10):
        values = rng.integers(0, PAPER_Q, n)
        np.testing.assert_array_equal(
            ctx.forward(values), ctx.forward_reference(values)
        )


@pytest.mark.parametrize("n", [8, 1024])
def test_inverse_matches_reference(n):
    ctx = NttContext(Modulus(PAPER_Q), n)
    rng = np.random.default_rng(n + 1)
    for _ in range(10):
        values = rng.integers(0, PAPER_Q, n)
        np.testing.assert_array_equal(
            ctx.inverse(values), ctx.inverse_reference(values)
        )


@pytest.mark.parametrize("n", [8, 1024])
def test_roundtrip(n):
    ctx = NttContext(Modulus(PAPER_Q), n)
    rng = np.random.default_rng(n + 2)
    values = rng.integers(0, PAPER_Q, n)
    np.testing.assert_array_equal(ctx.inverse(ctx.forward(values)), values)


def test_trivial_length_one():
    # q = 1 mod 2 trivially; n = 1 exercises the degenerate no-stage path
    ctx = NttContext(Modulus(PAPER_Q), 1)
    values = np.array([12345], dtype=np.int64)
    np.testing.assert_array_equal(ctx.forward(values), ctx.forward_reference(values))
    np.testing.assert_array_equal(ctx.inverse(values), ctx.inverse_reference(values))


class TestContextCache:
    def test_cache_returns_same_instance(self):
        a = get_ntt_context(PAPER_Q, 1024)
        b = get_ntt_context(Modulus(PAPER_Q), 1024)
        assert a is b

    def test_cache_distinguishes_degree(self):
        assert get_ntt_context(PAPER_Q, 8) is not get_ntt_context(PAPER_Q, 16)

    def test_cached_context_behaves(self):
        ctx = get_ntt_context(PAPER_Q, 8)
        rng = np.random.default_rng(0)
        values = rng.integers(0, PAPER_Q, 8)
        np.testing.assert_array_equal(ctx.inverse(ctx.forward(values)), values)
