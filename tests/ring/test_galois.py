"""Tests for Galois automorphisms of the ring."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ring.exact import exact_negacyclic_multiply
from repro.ring.galois import (
    apply_galois,
    galois_elements_for_rotations,
    galois_index_map,
)
from repro.ring.ntt import NttContext
from repro.ring.poly import RingPoly
from repro.ring.primes import generate_ntt_primes
from repro.ring.rns import RnsBasis

N = 16


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(generate_ntt_primes(20, 1, N))


@pytest.fixture(scope="module")
def ntts(basis):
    return [NttContext(m, N) for m in basis.moduli]


def poly_of(basis, coeffs):
    return RingPoly.from_int_coeffs(basis, N, coeffs)


class TestIndexMap:
    def test_g_one_is_identity(self):
        targets, signs = galois_index_map(N, 1)
        assert targets.tolist() == list(range(N))
        assert all(signs == 1)

    def test_x_to_x_cubed(self, basis):
        x = poly_of(basis, [0, 1] + [0] * (N - 2))
        out = apply_galois(x, 3)
        expected = [0] * N
        expected[3] = 1
        assert out.to_centered_coeffs() == expected

    def test_wraparound_sign_flip(self, basis):
        # x^(n-1) under g=3: exponent 3(n-1) = 3n-3 = n-3 mod 2n -> sign...
        p = poly_of(basis, [0] * (N - 1) + [1])
        out = apply_galois(p, 3)
        coeffs = out.to_centered_coeffs()
        exponent = (3 * (N - 1)) % (2 * N)
        if exponent < N:
            assert coeffs[exponent] == 1
        else:
            assert coeffs[exponent - N] == -1

    def test_rejects_even_element(self):
        with pytest.raises(ParameterError):
            galois_index_map(N, 2)

    def test_rejects_bad_n(self):
        with pytest.raises(ParameterError):
            galois_index_map(12, 3)


class TestAutomorphism:
    def test_is_ring_homomorphism(self, basis, ntts):
        """tau_g(a * b) == tau_g(a) * tau_g(b)."""
        rng = np.random.default_rng(0)
        a = poly_of(basis, [int(x) for x in rng.integers(-10, 10, N)])
        b = poly_of(basis, [int(x) for x in rng.integers(-10, 10, N)])
        for g in (3, 5, 9, 2 * N - 1):
            lhs = apply_galois(a.multiply(b, ntts), g)
            rhs = apply_galois(a, g).multiply(apply_galois(b, g), ntts)
            assert lhs == rhs, g

    def test_additive(self, basis):
        rng = np.random.default_rng(1)
        a = poly_of(basis, [int(x) for x in rng.integers(-10, 10, N)])
        b = poly_of(basis, [int(x) for x in rng.integers(-10, 10, N)])
        assert apply_galois(a + b, 5) == apply_galois(a, 5) + apply_galois(b, 5)

    def test_composition(self, basis):
        """tau_g tau_h = tau_(g*h mod 2n)."""
        rng = np.random.default_rng(2)
        a = poly_of(basis, [int(x) for x in rng.integers(-10, 10, N)])
        g, h = 3, 5
        composed = apply_galois(apply_galois(a, h), g)
        direct = apply_galois(a, (g * h) % (2 * N))
        assert composed == direct

    def test_inverse_element_roundtrip(self, basis):
        rng = np.random.default_rng(3)
        a = poly_of(basis, [int(x) for x in rng.integers(-10, 10, N)])
        g = 3
        g_inv = pow(g, -1, 2 * N)
        assert apply_galois(apply_galois(a, g), g_inv) == a


class TestRotationElements:
    def test_powers_of_three(self):
        elements = galois_elements_for_rotations(N, [0, 1, 2])
        assert elements == [1, 3, 9]

    def test_steps_wrap(self):
        assert galois_elements_for_rotations(N, [N // 2]) == [1]
