"""Unit tests for repro.ring.primes."""

import pytest

from repro.errors import ParameterError
from repro.ring.primes import (
    PAPER_Q_1024,
    SEAL_128_TOTAL_BITS,
    default_coeff_modulus_128,
    generate_ntt_primes,
    is_prime,
)


class TestIsPrime:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 132120577, 2**31 - 1])
    def test_known_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("c", [0, 1, 4, 9, 561, 2**30, 132120575])
    def test_known_composites_and_trivials(self, c):
        assert not is_prime(c)

    def test_carmichael_numbers_rejected(self):
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(carmichael)

    def test_agrees_with_sieve_below_10000(self):
        limit = 10000
        sieve = [True] * limit
        sieve[0] = sieve[1] = False
        for i in range(2, int(limit**0.5) + 1):
            if sieve[i]:
                for j in range(i * i, limit, i):
                    sieve[j] = False
        for n in range(limit):
            assert is_prime(n) == sieve[n], n


class TestGenerateNttPrimes:
    def test_congruence_and_size(self):
        primes = generate_ntt_primes(27, 3, 1024)
        assert len(primes) == 3
        for p in primes:
            assert p.value % 2048 == 1
            assert p.bit_count == 27
            assert is_prime(p.value)

    def test_distinct(self):
        primes = generate_ntt_primes(28, 4, 4096)
        assert len({p.value for p in primes}) == 4

    def test_deterministic(self):
        a = generate_ntt_primes(27, 2, 2048)
        b = generate_ntt_primes(27, 2, 2048)
        assert [p.value for p in a] == [p.value for p in b]

    def test_paper_modulus_is_ntt_friendly(self):
        assert is_prime(PAPER_Q_1024)
        assert PAPER_Q_1024 % 2048 == 1
        # It shows up in a downward search over 27-bit NTT primes.
        primes = generate_ntt_primes(27, 111, 1024)
        assert PAPER_Q_1024 in {p.value for p in primes}

    def test_rejects_bad_degree(self):
        with pytest.raises(ParameterError):
            generate_ntt_primes(27, 1, 1000)

    def test_rejects_oversized(self):
        with pytest.raises(ParameterError):
            generate_ntt_primes(40, 1, 1024)


class TestDefaultCoeffModulus:
    def test_paper_parameter_set(self):
        chain = default_coeff_modulus_128(1024)
        assert len(chain) == 1
        assert chain[0].value == PAPER_Q_1024

    @pytest.mark.parametrize("n", sorted(SEAL_128_TOTAL_BITS))
    def test_total_bits_match_seal_table(self, n):
        chain = default_coeff_modulus_128(n)
        total = sum(p.bit_count for p in chain)
        assert total == SEAL_128_TOTAL_BITS[n]
        for p in chain:
            assert p.value % (2 * n) == 1

    def test_unsupported_degree(self):
        with pytest.raises(ParameterError):
            default_coeff_modulus_128(512)
