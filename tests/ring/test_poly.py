"""Unit and property tests for RingPoly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.ring.ntt import NttContext
from repro.ring.poly import RingPoly
from repro.ring.primes import generate_ntt_primes
from repro.ring.rns import RnsBasis

N = 32


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(generate_ntt_primes(20, 2, N))


@pytest.fixture(scope="module")
def ntts(basis):
    return [NttContext(m, N) for m in basis.moduli]


def random_poly(basis, rng):
    coeffs = [int(c) for c in rng.integers(-50, 50, N)]
    return RingPoly.from_int_coeffs(basis, N, coeffs), coeffs


class TestConstruction:
    def test_zero(self, basis):
        z = RingPoly.zero(basis, N)
        assert z.is_zero()
        assert z.to_bigint_coeffs() == [0] * N

    def test_shape_check(self, basis):
        with pytest.raises(ParameterError):
            RingPoly(basis, N, np.zeros((1, N)))

    def test_from_int_coeffs_length_check(self, basis):
        with pytest.raises(ParameterError):
            RingPoly.from_int_coeffs(basis, N, [1, 2, 3])

    def test_negative_coeff_representation(self, basis):
        p = RingPoly.from_int_coeffs(basis, N, [-3] + [0] * (N - 1))
        for i, m in enumerate(basis.moduli):
            assert p.residues[i, 0] == m.value - 3
        assert p.to_centered_coeffs()[0] == -3

    def test_bigint_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        coeffs = [int(v) % basis.product for v in rng.integers(0, 2**40, N)]
        p = RingPoly.from_bigint_coeffs(basis, N, coeffs)
        assert p.to_bigint_coeffs() == coeffs


class TestArithmetic:
    def test_add_sub_roundtrip(self, basis):
        rng = np.random.default_rng(1)
        a, _ = random_poly(basis, rng)
        b, _ = random_poly(basis, rng)
        assert (a + b) - b == a

    def test_neg(self, basis):
        rng = np.random.default_rng(2)
        a, _ = random_poly(basis, rng)
        assert (a + (-a)).is_zero()

    def test_add_matches_int_coeffs(self, basis):
        rng = np.random.default_rng(3)
        a, ca = random_poly(basis, rng)
        b, cb = random_poly(basis, rng)
        got = (a + b).to_centered_coeffs()
        assert got == [x + y for x, y in zip(ca, cb)]

    def test_scalar_mul(self, basis):
        rng = np.random.default_rng(4)
        a, ca = random_poly(basis, rng)
        got = a.scalar_mul(7).to_centered_coeffs()
        assert got == [7 * c for c in ca]

    def test_scalar_mul_bigint(self, basis):
        rng = np.random.default_rng(5)
        a, _ = random_poly(basis, rng)
        s = basis.product // 3
        got = a.scalar_mul_bigint(s).to_bigint_coeffs()
        want = [(c * s) % basis.product for c in a.to_bigint_coeffs()]
        assert got == want

    def test_incompatible_degree(self, basis):
        a = RingPoly.zero(basis, N)
        b = RingPoly.zero(basis, 2 * N)
        with pytest.raises(ParameterError):
            _ = a + b

    def test_multiply_small_case(self, basis, ntts):
        # (1 + x) * (1 - x) = 1 - x^2
        a = RingPoly.from_int_coeffs(basis, N, [1, 1] + [0] * (N - 2))
        b = RingPoly.from_int_coeffs(basis, N, [1, -1] + [0] * (N - 2))
        got = a.multiply(b, ntts).to_centered_coeffs()
        want = [1, 0, -1] + [0] * (N - 3)
        assert got == want

    def test_multiply_negacyclic_wrap(self, basis, ntts):
        # x^(n-1) * x = -1
        a = RingPoly.from_int_coeffs(basis, N, [0] * (N - 1) + [1])
        b = RingPoly.from_int_coeffs(basis, N, [0, 1] + [0] * (N - 2))
        got = a.multiply(b, ntts).to_centered_coeffs()
        assert got == [-1] + [0] * (N - 1)

    def test_multiply_needs_all_ntts(self, basis, ntts):
        a = RingPoly.zero(basis, N)
        with pytest.raises(ParameterError):
            a.multiply(a, ntts[:1])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_distributive(self, seed, basis, ntts):
        rng = np.random.default_rng(seed)
        a, _ = random_poly(basis, rng)
        b, _ = random_poly(basis, rng)
        c, _ = random_poly(basis, rng)
        lhs = a.multiply(b + c, ntts)
        rhs = a.multiply(b, ntts) + a.multiply(c, ntts)
        assert lhs == rhs

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_commutative(self, seed, basis, ntts):
        rng = np.random.default_rng(seed)
        a, _ = random_poly(basis, rng)
        b, _ = random_poly(basis, rng)
        assert a.multiply(b, ntts) == b.multiply(a, ntts)


class TestMisc:
    def test_copy_is_independent(self, basis):
        a = RingPoly.zero(basis, N)
        b = a.copy()
        b.residues[0, 0] = 1
        assert a.is_zero()
        assert not b.is_zero()

    def test_eq_non_poly(self, basis):
        assert RingPoly.zero(basis, N) != "nope"

    def test_not_hashable(self, basis):
        with pytest.raises(TypeError):
            hash(RingPoly.zero(basis, N))
