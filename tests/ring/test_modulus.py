"""Unit tests for repro.ring.modulus."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ring.modulus import MODULUS_BOUND, Modulus


@pytest.fixture
def q() -> Modulus:
    return Modulus(132120577)


class TestConstruction:
    def test_valid(self, q):
        assert q.value == 132120577
        assert q.bit_count == 27

    def test_rejects_even(self):
        with pytest.raises(ParameterError):
            Modulus(10)

    def test_rejects_too_small(self):
        with pytest.raises(ParameterError):
            Modulus(1)

    def test_rejects_too_large(self):
        with pytest.raises(ParameterError):
            Modulus(MODULUS_BOUND + 1)

    def test_rejects_non_int(self):
        with pytest.raises(ParameterError):
            Modulus(3.0)

    def test_frozen(self, q):
        with pytest.raises(Exception):
            q.value = 5


class TestArithmetic:
    def test_add_wraps(self, q):
        assert q.add(q.value - 1, 5) == 4

    def test_add_no_wrap(self, q):
        assert q.add(3, 4) == 7

    def test_sub_wraps(self, q):
        assert q.sub(2, 5) == q.value - 3

    def test_mul(self, q):
        assert q.mul(123456, 654321) == (123456 * 654321) % q.value

    def test_pow_matches_builtin(self, q):
        assert q.pow(3, 1000) == pow(3, 1000, q.value)

    def test_inv_roundtrip(self, q):
        a = 987654321 % q.value
        assert q.mul(a, q.inv(a)) == 1

    def test_inv_zero_raises(self, q):
        with pytest.raises(ParameterError):
            q.inv(0)

    def test_neg(self, q):
        assert q.neg(0) == 0
        assert q.add(q.neg(17), 17) == 0

    def test_reduce_negative(self, q):
        assert q.reduce(-1) == q.value - 1


class TestCentered:
    def test_small_stays(self, q):
        assert q.centered(5) == 5

    def test_large_goes_negative(self, q):
        assert q.centered(q.value - 3) == -3

    def test_half_boundary(self):
        m = Modulus(17)
        assert m.centered(8) == 8
        assert m.centered(9) == -8

    def test_array_matches_scalar(self, q):
        values = np.array([0, 1, q.value - 1, q.value // 2, q.value // 2 + 1])
        got = q.centered_array(values)
        expected = [q.centered(int(v)) for v in values]
        assert got.tolist() == expected


class TestArrays:
    def test_reduce_array(self, q):
        arr = np.array([-1, 0, q.value, q.value + 5])
        assert q.reduce_array(arr).tolist() == [q.value - 1, 0, 0, 5]
