"""Integration: the complete RevEAL pipeline at toy scale.

One test walks the entire chain the paper describes - victim encrypts
with device-sampled noise, a single trace is captured, the profiled
attack recovers signs and values, high-confidence coefficients become
perfect hints, modular elimination plus the primal lattice attack
recover the encryption sample, and equation (3) yields the plaintext.
"""

import numpy as np
import pytest

from repro.attack.evaluation import run_campaign
from repro.attack.pipeline import SingleTraceAttack
from repro.bfv.decryptor import Decryptor
from repro.bfv.device_encryptor import DeviceBackedEncryptor
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import LatticeError
from repro.lattice.embedding import (
    eliminate_known_errors,
    negacyclic_matrix,
    solve_lwe_primal,
)
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice
from repro.ring.poly import RingPoly

RING_DEGREE = 32
HINT_CONFIDENCE = 0.999


@pytest.fixture(scope="module")
def world():
    context = BfvContext.toy(poly_degree=RING_DEGREE, plain_modulus=17)
    device = GaussianSamplerDevice(
        [m.value for m in context.basis.moduli],
        max_deviation=int(context.params.noise_max_deviation),
    )
    acquisition = TraceAcquisition(device, scope=Oscilloscope(noise_std=0.5), rng=1)
    keygen = KeyGenerator(context, rng=10)
    victim = DeviceBackedEncryptor(context, keygen.public_key(), acquisition)
    adversary = SingleTraceAttack(acquisition, poi_count=28)
    adversary.profile(num_traces=150, coeffs_per_trace=6, first_seed=90_000)
    return context, keygen, victim, adversary


class TestFullPipeline:
    def test_single_trace_to_plaintext(self, world):
        context, keygen, victim, adversary = world
        public_key = victim._host_encryptor.public_key
        rng = np.random.default_rng(3)

        recovered_count = 0
        attempts = 3
        for attempt in range(attempts):
            message = Plaintext(rng.integers(0, context.t, context.n), context.t)
            traced = victim.encrypt(message, rng=100 + attempt)

            # the adversary sees ONLY the e2 trace and public material
            result = adversary.attack(traced.e2_capture)
            assert len(result.estimates) == context.n

            hints = {
                i: max(table, key=table.get)
                for i, table in enumerate(result.probabilities)
                if max(table.values()) >= HINT_CONFIDENCE
            }
            a_matrix = negacyclic_matrix(
                [int(c) for c in public_key.p1.residues[0]], context.q
            )
            b_vector = [int(c) for c in traced.ciphertext.c1.residues[0]]
            reduced_a, reduced_b, reconstructor = eliminate_known_errors(
                a_matrix, b_vector, context.q, hints
            )
            try:
                if reconstructor.reduced_dimension == 0:
                    u_hat = reconstructor.full_secret([])
                else:
                    s_reduced, _ = solve_lwe_primal(
                        reduced_a, reduced_b, context.q, error_bound=41
                    )
                    u_hat = reconstructor.full_secret([int(x) for x in s_reduced])
            except LatticeError:
                continue
            if any(abs(int(x)) > 1 for x in u_hat):
                continue
            u_poly = RingPoly.from_int_coeffs(
                context.basis, context.n, [int(x) for x in u_hat]
            )
            masked = traced.ciphertext.c0 - public_key.p0.multiply(
                u_poly, context.ntts
            )
            coeffs = [
                ((context.t * x + context.q // 2) // context.q) % context.t
                for x in masked.to_bigint_coeffs()
            ]
            if Plaintext(coeffs, context.t) == message:
                recovered_count += 1
        assert recovered_count >= 2, (
            f"only {recovered_count}/{attempts} messages recovered"
        )

    def test_victim_ciphertexts_decrypt_normally(self, world):
        context, keygen, victim, _ = world
        decryptor = Decryptor(context, keygen.secret_key())
        message = Plaintext.constant(7, context.n, context.t)
        traced = victim.encrypt(message, rng=55)
        assert decryptor.decrypt(traced.ciphertext) == message

    def test_campaign_statistics_consistent(self, world):
        _, _, _, adversary = world
        campaign = run_campaign(
            adversary, trace_count=10, coeffs_per_trace=4, first_seed=95_000
        )
        # the toy-scale profiling corpus (900 slices) leaves the branch
        # classifier a little short of the full-scale 100%
        assert campaign.sign_accuracy >= 0.9
        assert campaign.value_accuracy >= 0.4
        stats = campaign.hint_statistics()
        assert stats["perfect_fraction"] > 0.1
