"""Cross-layer equivalence: the Python Fig. 2 port, the golden model
and the RISC-V kernel all agree."""

import numpy as np
import pytest

from repro.bfv.encryptor import set_poly_coeffs_normal
from repro.bfv.params import BfvContext
from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.programs.gaussian import GoldenPolarSampler


class TestCrossLayer:
    def test_python_port_matches_device_buffer(self):
        """Feeding the device's own sampler stream through the Python
        set_poly_coeffs_normal reproduces the device's output buffer
        exactly - the two implementations are branch-for-branch equal."""
        ctx = BfvContext.default()
        device = GaussianSamplerDevice(
            [m.value for m in ctx.basis.moduli],
            max_deviation=int(ctx.params.noise_max_deviation),
        )
        for seed in (3, 17, 101):
            run = device.run(seed, count=64, record_events=False)
            golden = GoldenPolarSampler(seed, max_deviation=41)
            buffer, sampled = set_poly_coeffs_normal(ctx, golden.sample)
            assert sampled[:64] == run.values
            assert buffer[0, :64].tolist() == run.residues[0]

    def test_multi_limb_agreement(self):
        from repro.ring.primes import generate_ntt_primes
        from repro.bfv.params import BfvParameters

        chain = generate_ntt_primes(27, 2, 1024)
        ctx = BfvContext(BfvParameters(1024, tuple(chain)))
        device = GaussianSamplerDevice([m.value for m in chain])
        run = device.run(9, count=32, record_events=False)
        golden = GoldenPolarSampler(9)
        buffer, _ = set_poly_coeffs_normal(ctx, golden.sample)
        for limb in range(2):
            assert buffer[limb, :32].tolist() == run.residues[limb]

    def test_encryption_with_either_sampler_is_identical(self):
        """An Encryptor fed by the golden model produces the same
        ciphertext as one fed by device values."""
        from repro.bfv.encryptor import Encryptor
        from repro.bfv.keygen import KeyGenerator
        from repro.bfv.plaintext import Plaintext

        ctx = BfvContext.toy(poly_degree=32, plain_modulus=17)
        device = GaussianSamplerDevice(
            [m.value for m in ctx.basis.moduli], max_deviation=41
        )
        keygen = KeyGenerator(ctx, rng=0)
        encryptor = Encryptor(ctx, keygen.public_key())
        message = Plaintext.constant(5, ctx.n, ctx.t)
        rng = np.random.default_rng(4)
        u = [int(c) for c in rng.integers(-1, 2, ctx.n)]

        run1 = device.run(21, count=ctx.n, record_events=False)
        run2 = device.run(22, count=ctx.n, record_events=False)
        via_device = encryptor.encrypt_with_randomness(
            message, u, run1.values, run2.values
        )
        g1 = GoldenPolarSampler(21).sample_vector(ctx.n)
        g2 = GoldenPolarSampler(22).sample_vector(ctx.n)
        via_golden = encryptor.encrypt_with_randomness(message, u, g1, g2)
        assert via_device == via_golden
