"""Public-API hygiene: every documented export exists and imports."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.attack",
    "repro.bfv",
    "repro.defenses",
    "repro.hints",
    "repro.lattice",
    "repro.power",
    "repro.ring",
    "repro.riscv",
    "repro.riscv.programs",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_docstrings_on_public_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


SUBMODULES = [
    "repro.attack.branch",
    "repro.attack.cpa",
    "repro.attack.evaluation",
    "repro.attack.metrics",
    "repro.attack.persistence",
    "repro.attack.pipeline",
    "repro.attack.poi",
    "repro.attack.recovery",
    "repro.attack.search",
    "repro.attack.segmentation",
    "repro.attack.template",
    "repro.bfv.ciphertext",
    "repro.bfv.decryptor",
    "repro.bfv.device_encryptor",
    "repro.bfv.encoder",
    "repro.bfv.encryptor",
    "repro.bfv.evaluator",
    "repro.bfv.keygen",
    "repro.bfv.keys",
    "repro.bfv.noise",
    "repro.bfv.params",
    "repro.bfv.plaintext",
    "repro.bfv.sampler",
    "repro.bfv.serialization",
    "repro.defenses.ct_sampler",
    "repro.defenses.shuffling",
    "repro.hints.dbdd",
    "repro.hints.estimator",
    "repro.hints.hintgen",
    "repro.hints.security",
    "repro.lattice.bkz",
    "repro.lattice.embedding",
    "repro.lattice.enumeration",
    "repro.lattice.gsa",
    "repro.lattice.gso",
    "repro.lattice.hnf",
    "repro.lattice.lll",
    "repro.power.capture",
    "repro.power.leakage",
    "repro.power.scope",
    "repro.power.trace",
    "repro.reproduce",
    "repro.ring.exact",
    "repro.ring.galois",
    "repro.ring.modulus",
    "repro.ring.ntt",
    "repro.ring.poly",
    "repro.ring.primes",
    "repro.ring.rns",
    "repro.riscv.assembler",
    "repro.riscv.cpu",
    "repro.riscv.cycles",
    "repro.riscv.device",
    "repro.riscv.disasm",
    "repro.riscv.isa",
    "repro.riscv.lanes",
    "repro.riscv.memory",
    "repro.riscv.threaded",
    "repro.riscv.programs.gaussian",
    "repro.utils.bitops",
    "repro.utils.rng",
    "repro.utils.validation",
]


@pytest.mark.parametrize("name", SUBMODULES)
def test_submodule_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__) > 20, name
