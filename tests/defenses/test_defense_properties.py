"""Property-based countermeasure checks over many seeds.

The example-based suite pins one seed per sign class; these properties
sweep Hypothesis-drawn seeds: the constant-time kernel must emit the
*same* post-value instruction stream for every sampled coefficient (not
merely one per sign), and the shuffled kernel's store order must always
be a valid permutation that still yields the correct values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defenses.ct_sampler import constant_time_device
from repro.defenses.shuffling import shuffled_device
from repro.riscv import cycles as cy
from repro.riscv.device import _OUT_BASE, GaussianSamplerDevice

Q = 132120577
GOLDEN_SIGMA_Q16 = 209060

seeds = st.integers(1, 2**20)


@pytest.fixture(scope="module")
def base_device():
    return GaussianSamplerDevice([Q])


@pytest.fixture(scope="module")
def ct_device():
    return constant_time_device([Q])


@pytest.fixture(scope="module")
def sh_device():
    return shuffled_device([Q])


def _post_value_stream(run):
    """Instruction words from the final sigma multiply onwards."""
    words = []
    recording = False
    for event in run.events:
        if event.op_class == cy.OP_MUL and event.rs2_value == GOLDEN_SIGMA_Q16:
            recording = True
            words = []
        if recording:
            words.append(event.word)
    return tuple(words)


class TestConstantTimeProperty:
    @settings(max_examples=40)
    @given(seeds)
    def test_instruction_stream_is_value_independent(self, ct_device, seed):
        run = ct_device.run(seed, 1)
        baseline = ct_device.run(1, 1)
        assert _post_value_stream(run) == _post_value_stream(baseline)

    @settings(max_examples=40)
    @given(seeds)
    def test_values_match_vulnerable_kernel(self, base_device, ct_device, seed):
        assert (
            ct_device.run(seed, 4, record_events=False).values
            == base_device.run(seed, 4, record_events=False).values
        )

    @settings(max_examples=40)
    @given(seeds)
    def test_cycle_count_is_value_independent(self, ct_device, seed):
        # Data-independent control flow implies data-independent timing
        # for the sign-assignment tail: single-coefficient runs may
        # still differ in the rejection loop, so compare the post-value
        # stream length instead of total cycles.
        stream = _post_value_stream(ct_device.run(seed, 1))
        baseline = _post_value_stream(ct_device.run(2, 1))
        assert len(stream) == len(baseline)


class TestShufflingProperty:
    @settings(max_examples=25)
    @given(seeds, st.sampled_from([4, 8, 16]))
    def test_store_order_is_a_permutation(self, sh_device, seed, n):
        run = sh_device.run(seed, n)
        stores = [
            event.address
            for event in run.events
            if event.op_class == cy.OP_STORE
            and _OUT_BASE <= event.address < _OUT_BASE + 4 * n
        ]
        indices = [(address - _OUT_BASE) // 4 for address in stores]
        assert sorted(indices) == list(range(n))

    @settings(max_examples=25)
    @given(seeds)
    def test_values_are_preserved_as_a_multiset(self, base_device, sh_device, seed):
        n = 8
        shuffled = sh_device.run(seed, n, record_events=False).values
        base = base_device.run(seed, n, record_events=False).values
        # The Fisher-Yates pass consumes PRNG output, so the sampled
        # values themselves differ from the unshuffled kernel; what must
        # hold is internal consistency: residues encode exactly values.
        run = sh_device.run(seed, n)
        for value, residue in zip(run.values, run.residues[0]):
            assert residue == (value if value >= 0 else Q + value)
        assert len(shuffled) == len(base) == n
