"""Tests for the shuffling and constant-time countermeasures."""

import numpy as np
import pytest

from repro.defenses.ct_sampler import constant_time_device, constant_time_sampler_source
from repro.defenses.shuffling import shuffled_device, shuffled_sampler_source
from repro.riscv import cycles as cy
from repro.riscv.device import _OUT_BASE, GaussianSamplerDevice

Q = 132120577


@pytest.fixture(scope="module")
def base_device():
    return GaussianSamplerDevice([Q])


@pytest.fixture(scope="module")
def ct_device():
    return constant_time_device([Q])


@pytest.fixture(scope="module")
def sh_device():
    return shuffled_device([Q])


class TestConstantTime:
    def test_functionally_identical(self, base_device, ct_device):
        for seed in (1, 7, 99):
            assert (
                ct_device.run(seed, 16, record_events=False).values
                == base_device.run(seed, 16, record_events=False).values
            )

    def test_residue_encoding(self, ct_device):
        run = ct_device.run(5, 32, record_events=False)
        for v, r in zip(run.values, run.residues[0]):
            assert r == (v if v >= 0 else Q + v)

    def test_no_sign_dependent_control_flow(self, ct_device):
        """The instruction sequence after the value computation is the
        same for positive, negative and zero coefficients."""
        streams = {}
        for seed in range(1, 80):
            run = ct_device.run(seed, 1)
            value = run.values[0]
            sign = 0 if value == 0 else (1 if value > 0 else -1)
            if sign in streams:
                continue
            # instruction words from the last sigma-multiply onwards
            words = []
            recording = False
            for e in run.events:
                if e.op_class == cy.OP_MUL and e.rs2_value == 209060:
                    recording = True
                    words = []
                if recording:
                    words.append(e.word)
            streams[sign] = tuple(words)
            if len(streams) == 3:
                break
        assert len(streams) == 3, "did not observe all three signs"
        assert streams[0] == streams[1] == streams[-1]

    def test_vulnerable_kernel_has_sign_dependent_flow(self, base_device):
        """Control (sanity): the original kernel's streams differ by sign."""
        streams = {}
        for seed in range(1, 80):
            run = base_device.run(seed, 1)
            value = run.values[0]
            sign = 0 if value == 0 else (1 if value > 0 else -1)
            if sign in streams:
                continue
            words = []
            recording = False
            for e in run.events:
                if e.op_class == cy.OP_MUL and e.rs2_value == 209060:
                    recording = True
                    words = []
                if recording:
                    words.append(e.word)
            streams[sign] = tuple(words)
            if len(streams) == 3:
                break
        assert len(streams) == 3
        assert streams[1] != streams[-1]
        assert streams[1] != streams[0]

    def test_source_contains_no_assignment_branches(self):
        source = constant_time_sampler_source()
        assert "pos_branch" not in source
        assert "neg_branch" not in source
        assert "ct_loop" in source


class TestShuffling:
    def test_single_coefficient_matches_base(self, base_device, sh_device):
        """With n=1 the permutation is trivial and the PRNG stream aligned."""
        for seed in (3, 11):
            assert (
                sh_device.run(seed, 1, record_events=False).values
                == base_device.run(seed, 1, record_events=False).values
            )

    def test_every_coefficient_written_once(self, sh_device):
        n = 16
        run = sh_device.run(9, n)
        stores = [
            e.address
            for e in run.events
            if e.op_class == cy.OP_STORE and _OUT_BASE <= e.address < _OUT_BASE + 4 * n
        ]
        indices = [(a - _OUT_BASE) // 4 for a in stores]
        assert sorted(indices) == list(range(n))

    def test_order_is_permuted(self, sh_device):
        n = 16
        run = sh_device.run(9, n)
        stores = [
            e.address
            for e in run.events
            if e.op_class == cy.OP_STORE and _OUT_BASE <= e.address < _OUT_BASE + 4 * n
        ]
        indices = [(a - _OUT_BASE) // 4 for a in stores]
        assert indices != list(range(n))

    def test_permutation_varies_with_seed(self, sh_device):
        def order(seed):
            run = sh_device.run(seed, 8)
            return [
                (e.address - _OUT_BASE) // 4
                for e in run.events
                if e.op_class == cy.OP_STORE and _OUT_BASE <= e.address < _OUT_BASE + 32
            ]

        assert order(10) != order(11)

    def test_values_still_gaussian_like(self, sh_device):
        run = sh_device.run(21, 128, record_events=False)
        values = np.array(run.values)
        assert abs(values.mean()) < 1.5
        assert 2.0 < values.std() < 4.5
        assert all(-41 <= v <= 41 for v in values)

    def test_source_contains_fisher_yates(self):
        source = shuffled_sampler_source()
        assert "fy_loop" in source
        assert "remu" in source
