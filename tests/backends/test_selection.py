"""Unit tests for the compute-backend registry.

The differential suite (``tests/differential/test_backends.py``) and
the ``backend.*`` oracles prove kernel equivalence; this file pins the
registry's own contract — probing, validation, selection precedence,
the explicit/auto split that gates non-exact kernels, and graceful
degradation when a backend's dependency is absent.
"""

import numpy as np
import pytest

from repro import backends
from repro.backends import (
    BACKEND_NAMES,
    available_backends,
    backend_id,
    get_backend,
    get_kernel,
    kernel_exactness,
    probe_backend,
    probe_error,
    reset_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.errors import ParameterError

#: Compiled backends that actually probed on this host (the reference
#: backend always probes; it carries no kernels).
COMPILED = [b for b in available_backends() if b != "reference"]


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Each test starts from auto-selection with no env override."""
    monkeypatch.delenv("REVEAL_BACKEND", raising=False)
    reset_backend()
    yield
    reset_backend()


class TestResolve:
    def test_valid_names_pass_through(self):
        for name in BACKEND_NAMES:
            assert resolve_backend(name) == name

    def test_normalizes_case_and_whitespace(self):
        assert resolve_backend(" Native ") == "native"

    def test_unknown_name_lists_options(self):
        with pytest.raises(ParameterError, match="unknown backend 'warp'"):
            resolve_backend("warp")
        with pytest.raises(ParameterError, match="reference, native, numba"):
            resolve_backend("warp")

    def test_env_fallback_and_validation(self, monkeypatch):
        assert resolve_backend(None) is None  # unset: auto-select
        monkeypatch.setenv("REVEAL_BACKEND", "  ")
        assert resolve_backend(None) is None  # blank: auto-select
        monkeypatch.setenv("REVEAL_BACKEND", "reference")
        assert resolve_backend(None) == "reference"
        monkeypatch.setenv("REVEAL_BACKEND", "warp")
        with pytest.raises(ParameterError, match="unknown REVEAL_BACKEND"):
            resolve_backend(None)


class TestProbe:
    def test_reference_always_available(self):
        backend = probe_backend("reference")
        assert backend is not None
        assert backend.name == "reference"
        assert backend.kernels == {}  # call sites keep inline numpy paths
        assert "reference" in available_backends()

    def test_missing_dependency_degrades_without_raising(self):
        # On hosts without numba the probe must cache a reason and
        # return None — never propagate the ImportError.
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed: absence path not exercised")
        except ImportError:
            pass
        assert probe_backend("numba") is None
        assert "numba" not in available_backends()
        assert probe_error("numba")  # reason recorded
        # Selection still works end to end.
        assert get_backend().name in available_backends()

    def test_unavailable_backend_raises_only_on_explicit_request(
        self, monkeypatch
    ):
        monkeypatch.setitem(backends._PROBED, "numba", None)
        monkeypatch.setitem(
            backends._PROBE_ERRORS, "numba", "ImportError: no module"
        )
        with pytest.raises(ParameterError, match="unavailable"):
            set_backend("numba")
        monkeypatch.setenv("REVEAL_BACKEND", "numba")
        with pytest.raises(ParameterError, match="unavailable"):
            get_backend()

    def test_kernel_exactness_empty_for_unavailable(self, monkeypatch):
        monkeypatch.setitem(backends._PROBED, "numba", None)
        assert kernel_exactness("numba") == {}


class TestSelection:
    def test_auto_selects_highest_priority_available(self):
        chosen = get_backend()
        assert chosen.name in available_backends()
        best = max(
            (probe_backend(n) for n in available_backends()),
            key=lambda b: b.priority,
        )
        assert chosen.priority == best.priority

    def test_env_override_wins_over_probe(self, monkeypatch):
        monkeypatch.setenv("REVEAL_BACKEND", "reference")
        reset_backend()
        assert get_backend().name == "reference"
        assert backend_id().startswith("reference-")

    def test_set_backend_wins_until_reset(self):
        set_backend("reference")
        assert get_backend().name == "reference"
        reset_backend()
        assert get_backend().name in available_backends()

    def test_use_backend_restores_prior_selection(self):
        before = get_backend().name
        with use_backend("reference") as backend:
            assert backend.name == "reference"
            assert get_backend().name == "reference"
        assert get_backend().name == before

    def test_backend_id_is_name_dash_version(self):
        name, _, version = backend_id().partition("-")
        assert name in BACKEND_NAMES
        assert version


@pytest.mark.skipif(not COMPILED, reason="no compiled backend on this host")
class TestKernelGating:
    def test_exact_kernels_armed_under_auto_probe(self):
        assert get_kernel("ntt_forward") is not None
        assert get_kernel("expand_events") is not None

    def test_non_exact_kernels_need_explicit_selection(self):
        # Auto-probed: the template kernel is withheld so default
        # outputs stay bit-identical to a reference-only install.
        active = get_backend().name
        assert get_kernel("template_quad") is None
        with use_backend(active):
            assert get_kernel("template_quad") is not None
        assert get_kernel("template_quad") is None  # restored

    def test_reference_never_serves_kernels(self):
        with use_backend("reference"):
            assert get_kernel("ntt_forward") is None
            assert get_kernel("template_quad") is None

    def test_exactness_declarations(self):
        for name in COMPILED:
            exactness = kernel_exactness(name)
            assert exactness.get("ntt_forward") is True
            assert exactness.get("expand_events") is True
            assert exactness.get("lane_select") is True
            assert exactness.get("template_quad") is False
            if name == "native":  # the block emitter is C-only
                assert exactness.get("expand_block") is True

    def test_unknown_kernel_name_is_none(self):
        assert get_kernel("no_such_kernel") is None


@pytest.mark.skipif(not COMPILED, reason="no compiled backend on this host")
class TestReportPlumbing:
    def test_campaign_report_defaults_and_records_backend(self):
        import dataclasses

        from repro.attack.campaign import CampaignReport

        (field,) = [
            f for f in dataclasses.fields(CampaignReport)
            if f.name == "backend"
        ]
        # Pre-backend archives deserialise to the reference ident.
        assert field.default == "reference"

    def test_profile_cache_key_tracks_backend(self):
        from repro.attack.campaign import profile_cache_key
        from repro.attack.pipeline import SingleTraceAttack
        from repro.power.capture import TraceAcquisition
        from repro.power.scope import Oscilloscope
        from repro.riscv.device import GaussianSamplerDevice

        bench = TraceAcquisition(
            GaussianSamplerDevice([132120577]),
            scope=Oscilloscope(noise_std=1.0),
            rng=0,
        )
        attack = SingleTraceAttack(bench, poi_count=4)
        args = (4, 2, 1, "sequential")
        with use_backend("reference"):
            reference_key = profile_cache_key(attack, *args)
            assert reference_key == profile_cache_key(attack, *args)
        with use_backend(COMPILED[0]):
            assert profile_cache_key(attack, *args) != reference_key
