"""Golden end-to-end fixtures: the Table 1/2 flow at toy scale.

The committed JSON pins the *entire* pipeline — firmware cycles,
leakage synthesis, segmentation, templates, campaign statistics,
posterior tables — bit-for-bit.  A legitimate behaviour change shows
up as a reviewable fixture diff::

    PYTHONPATH=src python -m pytest tests/golden -q --regen-goldens
"""

import json
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.verify import goldens

FIXTURE = Path(__file__).parent / "campaign_small.json"


def test_campaign_golden_is_bit_exact(regen_goldens):
    payload = goldens.golden_payload()
    if regen_goldens:
        goldens.save_golden(goldens.canonical(payload), FIXTURE)
        return
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; generate with --regen-goldens"
    )
    mismatches = goldens.compare_golden(payload, goldens.load_golden(FIXTURE))
    assert not mismatches, "\n".join(
        ["golden campaign fixture diverged:", *mismatches[:20],
         "if intentional, rerun with --regen-goldens and commit the diff"]
    )


def test_payload_is_worker_count_invariant():
    sequential = goldens.golden_payload(workers=1)
    threaded = goldens.golden_payload(workers=3)
    assert goldens.compare_golden(sequential, goldens.canonical(threaded)) == []


def test_fixture_sanity():
    payload = goldens.load_golden(FIXTURE)
    table1 = payload["table1"]
    # The paper's headline at toy scale: sign recovery is perfect.
    assert table1["sign_accuracy"] == 1.0
    assert table1["traces_failed"] == 0
    assert table1["coefficients_attacked"] == (
        goldens.GOLDEN_CAMPAIGN["trace_count"]
        * goldens.GOLDEN_CAMPAIGN["coeffs_per_trace"]
    )
    outcomes = payload["table2"]["outcomes"]
    assert len(outcomes) == table1["coefficients_attacked"]
    for entry in outcomes[: goldens.TABLES_COMMITTED]:
        total = sum(entry["table"].values())
        assert abs(total - 1.0) < 1e-9
        assert entry["variance"] >= 0.0


@given(st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_json_float_roundtrip_is_lossless(value):
    # The bit-exactness claim rests on JSON's shortest-repr floats.
    assert json.loads(json.dumps(value)) == value
