"""Tests for the theoretical noise-budget analysis."""

import numpy as np
import pytest

from repro.bfv.decryptor import Decryptor
from repro.bfv.encryptor import Encryptor
from repro.bfv.evaluator import Evaluator
from repro.bfv.keygen import KeyGenerator
from repro.bfv.noise import (
    addition_noise_growth_bits,
    fresh_encryption_noise,
    multiply_noise_growth_bits,
    supported_multiplication_depth,
)
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext


class TestFreshNoise:
    def test_expected_below_worst_case(self):
        ctx = BfvContext.default()
        estimate = fresh_encryption_noise(ctx)
        assert estimate.expected_bits < estimate.worst_case_bits

    def test_predicts_measured_budget(self):
        """The theoretical expected budget tracks the measured one."""
        ctx = BfvContext.default()
        keygen = KeyGenerator(ctx, rng=0)
        encryptor = Encryptor(ctx, keygen.public_key())
        decryptor = Decryptor(ctx, keygen.secret_key())
        measured = []
        for seed in range(8):
            ct = encryptor.encrypt(Plaintext.constant(1, ctx.n, ctx.t), rng=seed)
            measured.append(decryptor.invariant_noise_budget(ct))
        predicted = fresh_encryption_noise(ctx).budget_bits(ctx)
        assert predicted == pytest.approx(float(np.mean(measured)), abs=3.0)

    def test_larger_ring_larger_noise(self):
        small = fresh_encryption_noise(BfvContext.toy(poly_degree=64))
        large = fresh_encryption_noise(BfvContext.default())
        assert large.expected_bits > small.expected_bits


class TestGrowth:
    def test_addition_is_one_bit(self):
        assert addition_noise_growth_bits() == 1.0

    def test_multiplication_cost_tracks_measurement(self):
        ctx = BfvContext.toy(poly_degree=64, plain_modulus=17, limbs=2)
        keygen = KeyGenerator(ctx, rng=1)
        encryptor = Encryptor(ctx, keygen.public_key())
        decryptor = Decryptor(ctx, keygen.secret_key())
        evaluator = Evaluator(ctx)
        m = Plaintext.constant(2, ctx.n, ctx.t)
        fresh = encryptor.encrypt(m, rng=0)
        prod = evaluator.multiply(fresh, encryptor.encrypt(m, rng=1))
        consumed = decryptor.invariant_noise_budget(fresh) - decryptor.invariant_noise_budget(prod)
        predicted = multiply_noise_growth_bits(ctx)
        assert consumed == pytest.approx(predicted, abs=4.0)

    def test_depth_positive_for_wide_modulus(self):
        wide = BfvContext.toy(poly_degree=64, plain_modulus=17, limbs=2)
        assert supported_multiplication_depth(wide) >= 1

    def test_depth_zero_for_narrow_modulus(self):
        narrow = BfvContext.toy(poly_degree=1024, plain_modulus=256, limbs=1)
        assert supported_multiplication_depth(narrow) == 0

    def test_depth_matches_reality(self):
        """The predicted depth is actually decryptable."""
        ctx = BfvContext.toy(poly_degree=64, plain_modulus=17, limbs=2)
        depth = supported_multiplication_depth(ctx)
        keygen = KeyGenerator(ctx, rng=2)
        encryptor = Encryptor(ctx, keygen.public_key())
        decryptor = Decryptor(ctx, keygen.secret_key())
        evaluator = Evaluator(ctx)
        relin = keygen.relin_keys(decomposition_bits=8)
        ct = encryptor.encrypt(Plaintext.constant(1, ctx.n, ctx.t), rng=0)
        for level in range(depth):
            ct = evaluator.multiply_relin(
                ct, encryptor.encrypt(Plaintext.constant(1, ctx.n, ctx.t), rng=level + 1), relin
            )
        assert decryptor.decrypt(ct) == Plaintext.constant(1, ctx.n, ctx.t)
