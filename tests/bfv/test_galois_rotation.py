"""Tests for homomorphic Galois automorphisms and slot rotations."""

import numpy as np
import pytest

from repro.bfv.decryptor import Decryptor
from repro.bfv.encoder import BatchEncoder, find_batching_plain_modulus
from repro.bfv.encryptor import Encryptor
from repro.bfv.evaluator import Evaluator
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError
from repro.ring.galois import apply_galois
from repro.ring.poly import RingPoly


@pytest.fixture(scope="module")
def setup():
    n = 32
    t = find_batching_plain_modulus(n)
    ctx = BfvContext.toy(poly_degree=n, plain_modulus=t, limbs=2)
    keygen = KeyGenerator(ctx, rng=0)
    return (
        ctx,
        keygen,
        Encryptor(ctx, keygen.public_key()),
        Decryptor(ctx, keygen.secret_key()),
        Evaluator(ctx),
    )


class TestApplyGalois:
    def test_decrypts_to_transformed_plaintext(self, setup):
        ctx, keygen, encryptor, decryptor, evaluator = setup
        galois_keys = keygen.galois_keys(elements=[3], decomposition_bits=8)
        rng = np.random.default_rng(1)
        coeffs = [int(x) for x in rng.integers(0, ctx.t, ctx.n)]
        plain = Plaintext(coeffs, ctx.t)
        ct = evaluator.apply_galois(encryptor.encrypt(plain, rng=2), 3, galois_keys)
        got = decryptor.decrypt(ct)
        # expected: tau_3 applied to the plaintext polynomial over R_t
        plain_poly = RingPoly.from_int_coeffs(ctx.basis, ctx.n, coeffs)
        rotated = apply_galois(plain_poly, 3)
        # reduce the rotated coefficients mod t using centered lift
        expected = Plaintext(
            [c % ctx.t for c in _centered_mod_t(rotated, ctx)], ctx.t
        )
        assert got == expected

    def test_missing_key_rejected(self, setup):
        ctx, keygen, encryptor, _, evaluator = setup
        galois_keys = keygen.galois_keys(elements=[3], decomposition_bits=8)
        ct = encryptor.encrypt(Plaintext.zero(ctx.n, ctx.t), rng=0)
        with pytest.raises(ParameterError):
            evaluator.apply_galois(ct, 5, galois_keys)

    def test_requires_size_2(self, setup):
        ctx, keygen, encryptor, _, evaluator = setup
        galois_keys = keygen.galois_keys(elements=[3], decomposition_bits=8)
        m = Plaintext.constant(1, ctx.n, ctx.t)
        ct3 = evaluator.multiply(
            encryptor.encrypt(m, rng=1), encryptor.encrypt(m, rng=2)
        )
        with pytest.raises(ParameterError):
            evaluator.apply_galois(ct3, 3, galois_keys)


def _centered_mod_t(poly, ctx):
    half = ctx.q // 2
    out = []
    for c in poly.to_bigint_coeffs():
        c = c - ctx.q if c > half else c
        out.append(c % ctx.t)
    return out


class TestSlotRotation:
    def test_rotation_is_slot_permutation(self, setup):
        ctx, keygen, encryptor, decryptor, evaluator = setup
        encoder = BatchEncoder(ctx)
        galois_keys = keygen.galois_keys(steps=[1], decomposition_bits=8)
        values = list(range(1, encoder.slot_count + 1))
        ct = evaluator.rotate_rows(
            encryptor.encrypt(encoder.encode(values), rng=3), 1, galois_keys
        )
        rotated = encoder.decode(decryptor.decrypt(ct))
        assert sorted(rotated) == sorted(values)  # a permutation
        assert rotated != values  # and not the identity

    def test_rotation_permutation_is_input_independent(self, setup):
        """The same step permutes any input the same way (linearity)."""
        ctx, keygen, encryptor, decryptor, evaluator = setup
        encoder = BatchEncoder(ctx)
        galois_keys = keygen.galois_keys(steps=[1], decomposition_bits=8)

        def permutation_of(values, seed):
            ct = evaluator.rotate_rows(
                encryptor.encrypt(encoder.encode(values), rng=seed), 1, galois_keys
            )
            out = encoder.decode(decryptor.decrypt(ct))
            mapping = {}
            for i, v in enumerate(values):
                mapping[i] = out.index(v)
            return mapping

        a = list(range(1, encoder.slot_count + 1))
        b = [3 * v + 7 for v in range(encoder.slot_count)]
        assert permutation_of(a, 4) == permutation_of(b, 5)

    def test_rotation_composes(self, setup):
        """rot(1) twice == rot(2)."""
        ctx, keygen, encryptor, decryptor, evaluator = setup
        encoder = BatchEncoder(ctx)
        galois_keys = keygen.galois_keys(steps=[1, 2], decomposition_bits=8)
        values = [7 * v % ctx.t for v in range(encoder.slot_count)]
        ct = encryptor.encrypt(encoder.encode(values), rng=6)
        twice = evaluator.rotate_rows(
            evaluator.rotate_rows(ct, 1, galois_keys), 1, galois_keys
        )
        direct = evaluator.rotate_rows(ct, 2, galois_keys)
        assert encoder.decode(decryptor.decrypt(twice)) == encoder.decode(
            decryptor.decrypt(direct)
        )

    def test_rotate_columns_is_involution(self, setup):
        ctx, keygen, encryptor, decryptor, evaluator = setup
        encoder = BatchEncoder(ctx)
        galois_keys = keygen.galois_keys(
            elements=[2 * ctx.n - 1], decomposition_bits=8
        )
        values = [5 * v % ctx.t for v in range(encoder.slot_count)]
        ct = encryptor.encrypt(encoder.encode(values), rng=7)
        swapped = evaluator.rotate_columns(ct, galois_keys)
        back = evaluator.rotate_columns(swapped, galois_keys)
        assert encoder.decode(decryptor.decrypt(back)) == values
        assert encoder.decode(decryptor.decrypt(swapped)) != values
