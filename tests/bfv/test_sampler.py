"""Unit and statistical tests for the BFV samplers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.sampler import (
    ClippedNormalDistribution,
    llround,
    sample_noise_coeffs,
    sample_noise_poly,
    sample_ternary_poly,
    sample_uniform_poly,
)
from repro.errors import SamplingError


class TestLlround:
    @pytest.mark.parametrize(
        "x,expected",
        [(0.0, 0), (0.4, 0), (0.5, 1), (1.5, 2), (-0.4, 0), (-0.5, -1), (-1.5, -2)],
    )
    def test_half_away_from_zero(self, x, expected):
        assert llround(x) == expected

    @settings(max_examples=100, deadline=None)
    @given(x=st.floats(-1e6, 1e6))
    def test_property_within_half(self, x):
        assert abs(llround(x) - x) <= 0.5


class TestClippedNormal:
    def test_rejects_bad_params(self):
        with pytest.raises(SamplingError):
            ClippedNormalDistribution(-1.0, 10.0)
        with pytest.raises(SamplingError):
            ClippedNormalDistribution(3.19, 1.0)

    def test_support_bound(self):
        dist = ClippedNormalDistribution(3.19, 41.0)
        assert dist.support_bound == 41

    def test_samples_within_support(self):
        dist = ClippedNormalDistribution(3.19, 41.0)
        rng = np.random.default_rng(0)
        values = dist.sample_vector(rng, 5000)
        assert all(-41 <= v <= 41 for v in values)
        assert all(isinstance(v, int) for v in values)

    def test_tight_clip_forces_resampling(self):
        dist = ClippedNormalDistribution(3.19, 3.19)
        rng = np.random.default_rng(1)
        values = dist.sample_vector(rng, 2000)
        assert all(-3 <= v <= 3 for v in values)

    def test_mean_and_std_match_sigma(self):
        dist = ClippedNormalDistribution(3.19, 41.0)
        rng = np.random.default_rng(2)
        values = np.array(dist.sample_vector(rng, 20000), dtype=float)
        assert abs(values.mean()) < 0.1
        # rounding adds 1/12 variance; clipping at 41 removes almost nothing
        expected_std = math.sqrt(3.19**2 + 1 / 12)
        assert values.std() == pytest.approx(expected_std, rel=0.05)

    def test_observed_range_matches_paper(self):
        """Paper: 220000 draws stayed within [-14, 14] despite the [-41, 41] support."""
        dist = ClippedNormalDistribution(3.19, 41.0)
        rng = np.random.default_rng(3)
        values = dist.sample_vector(rng, 220_000)
        assert min(values) >= -16
        assert max(values) <= 16
        assert max(abs(v) for v in values) >= 12

    def test_distribution_shape(self):
        """Chi-square against the rounded-Gaussian bin probabilities."""
        sigma = 3.19
        dist = ClippedNormalDistribution(sigma, 41.0)
        rng = np.random.default_rng(4)
        count = 50_000
        values = dist.sample_vector(rng, count)
        # probability of bin k = Phi((k+.5)/sigma) - Phi((k-.5)/sigma)
        phi = lambda x: 0.5 * (1 + math.erf(x / math.sqrt(2)))
        chi2 = 0.0
        dof = 0
        for k in range(-8, 9):
            p = phi((k + 0.5) / sigma) - phi((k - 0.5) / sigma)
            observed = sum(1 for v in values if v == k)
            expected = p * count
            chi2 += (observed - expected) ** 2 / expected
            dof += 1
        # dof=17 bins; p=0.001 critical value ~ 40
        assert chi2 < 40.0


class TestPolySamplers:
    def test_noise_poly_coeffs_small(self, ctx):
        p = sample_noise_poly(ctx, np.random.default_rng(0))
        centered = p.to_centered_coeffs()
        assert all(abs(c) <= 41 for c in centered)

    def test_noise_coeffs_deterministic_by_seed(self, ctx):
        a = sample_noise_coeffs(ctx, np.random.default_rng(7))
        b = sample_noise_coeffs(ctx, np.random.default_rng(7))
        assert a == b

    def test_ternary_poly(self, ctx):
        p = sample_ternary_poly(ctx, np.random.default_rng(1))
        centered = p.to_centered_coeffs()
        assert set(centered) <= {-1, 0, 1}
        # all three values occur in 64 draws with overwhelming probability
        assert len(set(centered)) == 3

    def test_uniform_poly_spread(self, ctx):
        p = sample_uniform_poly(ctx, np.random.default_rng(2))
        coeffs = p.to_bigint_coeffs()
        assert max(coeffs) > ctx.q // 2
        assert len(set(coeffs)) > ctx.n // 2

    def test_uniform_poly_within_range(self, ctx):
        p = sample_uniform_poly(ctx, np.random.default_rng(3))
        for i, m in enumerate(ctx.basis.moduli):
            assert p.residues[i].min() >= 0
            assert p.residues[i].max() < m.value
