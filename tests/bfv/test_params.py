"""Unit tests for BFV parameters and context."""

import pytest

from repro.errors import ParameterError
from repro.ring.primes import PAPER_Q_1024, generate_ntt_primes
from repro.bfv.params import (
    DEFAULT_NOISE_MAX_DEVIATION,
    DEFAULT_NOISE_STANDARD_DEVIATION,
    BfvContext,
    BfvParameters,
)


class TestDefaults:
    def test_paper_configuration(self):
        ctx = BfvContext.default()
        assert ctx.n == 1024
        assert ctx.q == PAPER_Q_1024
        assert ctx.t == 256
        assert ctx.params.noise_standard_deviation == pytest.approx(3.19)
        assert ctx.params.noise_max_deviation == 41.0

    def test_sigma_is_8_over_sqrt_2pi(self):
        import math

        assert DEFAULT_NOISE_STANDARD_DEVIATION == pytest.approx(
            8 / math.sqrt(2 * math.pi), abs=0.01
        )

    def test_delta(self):
        ctx = BfvContext.default()
        assert ctx.delta == ctx.q // ctx.t

    def test_larger_degrees_supported(self):
        ctx = BfvContext.default(poly_degree=4096)
        assert ctx.n == 4096
        assert ctx.coeff_mod_count >= 2
        assert 105 <= ctx.total_coeff_modulus_bits() <= 112

    def test_toy_context(self):
        ctx = BfvContext.toy()
        assert ctx.n == 64
        assert ctx.t == 17


class TestValidation:
    def test_rejects_non_power_of_two_degree(self):
        chain = generate_ntt_primes(20, 1, 64)
        with pytest.raises(ParameterError):
            BfvParameters(60, tuple(chain))

    def test_rejects_empty_modulus(self):
        with pytest.raises(ParameterError):
            BfvParameters(64, ())

    def test_rejects_small_plain_modulus(self):
        chain = generate_ntt_primes(20, 1, 64)
        with pytest.raises(ParameterError):
            BfvParameters(64, tuple(chain), plain_modulus=1)

    def test_rejects_unfriendly_modulus(self):
        chain = generate_ntt_primes(20, 1, 128)  # 1 mod 256, not 1 mod 512
        values_ok = all((m.value - 1) % 512 == 0 for m in chain)
        if values_ok:
            pytest.skip("generated prime happens to be friendly for 256 too")
        with pytest.raises(ParameterError):
            BfvParameters(256, tuple(chain))

    def test_rejects_negative_sigma(self):
        chain = generate_ntt_primes(20, 1, 64)
        with pytest.raises(ParameterError):
            BfvParameters(64, tuple(chain), noise_standard_deviation=-1.0)

    def test_rejects_max_dev_below_sigma(self):
        chain = generate_ntt_primes(20, 1, 64)
        with pytest.raises(ParameterError):
            BfvParameters(64, tuple(chain), noise_max_deviation=1.0)

    def test_rejects_t_close_to_q(self):
        chain = generate_ntt_primes(20, 1, 64)
        with pytest.raises(ParameterError):
            BfvParameters(64, tuple(chain), plain_modulus=chain[0].value)

    def test_repr(self):
        assert "n=1024" in repr(BfvContext.default())
