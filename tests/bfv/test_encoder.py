"""Unit tests for the integer and batch encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.encoder import BatchEncoder, IntegerEncoder, find_batching_plain_modulus
from repro.bfv.params import BfvContext
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def batch_ctx():
    # The ~17-bit batching prime needs a wide (2-limb) modulus for the
    # slot-wise multiplication test to have noise budget.
    n = 64
    t = find_batching_plain_modulus(n)
    return BfvContext.toy(poly_degree=n, plain_modulus=t, limbs=2)


class TestIntegerEncoder:
    @pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 255, -255, 2**30])
    def test_roundtrip(self, ctx, value):
        enc = IntegerEncoder(ctx)
        assert enc.decode(enc.encode(value)) == value

    @settings(max_examples=50, deadline=None)
    @given(value=st.integers(-(2**40), 2**40))
    def test_property_roundtrip(self, value, ctx):
        enc = IntegerEncoder(ctx)
        assert enc.decode(enc.encode(value)) == value

    def test_rejects_oversized(self, ctx):
        enc = IntegerEncoder(ctx)
        with pytest.raises(ParameterError):
            enc.encode(1 << ctx.n)

    def test_homomorphic_add(self, ctx, encryptor, decryptor, evaluator):
        enc = IntegerEncoder(ctx)
        ct = evaluator.add(
            encryptor.encrypt(enc.encode(5), rng=0),
            encryptor.encrypt(enc.encode(7), rng=1),
        )
        assert enc.decode(decryptor.decrypt(ct)) == 12

    def test_homomorphic_multiply(self, ctx, encryptor, decryptor, evaluator):
        enc = IntegerEncoder(ctx)
        ct = evaluator.multiply(
            encryptor.encrypt(enc.encode(3), rng=2),
            encryptor.encrypt(enc.encode(4), rng=3),
        )
        assert enc.decode(decryptor.decrypt(ct)) == 12


class TestBatchEncoder:
    def test_modulus_finder(self):
        t = find_batching_plain_modulus(64)
        assert t % 128 == 1

    def test_requires_batching_modulus(self, ctx):
        with pytest.raises(ParameterError):
            BatchEncoder(ctx)  # toy t=17 is not 1 mod 128

    def test_roundtrip(self, batch_ctx):
        enc = BatchEncoder(batch_ctx)
        rng = np.random.default_rng(0)
        slots = [int(v) for v in rng.integers(0, batch_ctx.t, enc.slot_count)]
        assert enc.decode(enc.encode(slots)) == slots

    def test_short_input_padded(self, batch_ctx):
        enc = BatchEncoder(batch_ctx)
        decoded = enc.decode(enc.encode([1, 2, 3]))
        assert decoded[:3] == [1, 2, 3]
        assert all(v == 0 for v in decoded[3:])

    def test_too_many_slots(self, batch_ctx):
        enc = BatchEncoder(batch_ctx)
        with pytest.raises(ParameterError):
            enc.encode([0] * (enc.slot_count + 1))

    def test_slotwise_homomorphic_ops(self, batch_ctx):
        from repro.bfv.decryptor import Decryptor
        from repro.bfv.encryptor import Encryptor
        from repro.bfv.evaluator import Evaluator
        from repro.bfv.keygen import KeyGenerator

        enc = BatchEncoder(batch_ctx)
        keygen = KeyGenerator(batch_ctx, rng=0)
        encryptor = Encryptor(batch_ctx, keygen.public_key())
        decryptor = Decryptor(batch_ctx, keygen.secret_key())
        evaluator = Evaluator(batch_ctx)

        a = list(range(enc.slot_count))
        b = [2 * v + 1 for v in range(enc.slot_count)]
        ct = evaluator.multiply(
            encryptor.encrypt(enc.encode(a), rng=1),
            encryptor.encrypt(enc.encode(b), rng=2),
        )
        got = enc.decode(decryptor.decrypt(ct))
        want = [(x * y) % batch_ctx.t for x, y in zip(a, b)]
        assert got == want
