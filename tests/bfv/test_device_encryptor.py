"""Integration tests: encryption with device-sampled noise + traces."""

import numpy as np
import pytest

from repro.bfv.device_encryptor import DeviceBackedEncryptor
from repro.bfv.decryptor import Decryptor
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice


@pytest.fixture(scope="module")
def setup():
    ctx = BfvContext.toy(poly_degree=32, plain_modulus=17)
    device = GaussianSamplerDevice(
        [m.value for m in ctx.basis.moduli],
        max_deviation=int(ctx.params.noise_max_deviation),
    )
    acquisition = TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)
    keygen = KeyGenerator(ctx, rng=1)
    victim = DeviceBackedEncryptor(ctx, keygen.public_key(), acquisition)
    return ctx, keygen, victim


class TestDeviceBackedEncryption:
    def test_decrypts_correctly(self, setup):
        ctx, keygen, victim = setup
        rng = np.random.default_rng(0)
        plain = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        traced = victim.encrypt(plain, rng=2)
        decryptor = Decryptor(ctx, keygen.secret_key())
        assert decryptor.decrypt(traced.ciphertext) == plain

    def test_traces_cover_both_polynomials(self, setup):
        ctx, _, victim = setup
        traced = victim.encrypt(Plaintext.zero(ctx.n, ctx.t), rng=3)
        assert len(traced.e1) == ctx.n
        assert len(traced.e2) == ctx.n
        assert len(traced.e1_capture.trace) > 1000
        assert traced.e1_capture.seed != traced.e2_capture.seed

    def test_ground_truth_matches_ciphertext(self, setup):
        """Recovering e2 from the capture recovers the message."""
        from repro.attack.recovery import recover_message

        ctx, keygen, victim = setup
        rng = np.random.default_rng(4)
        plain = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        traced = victim.encrypt(plain, rng=5)
        pk = victim._host_encryptor.public_key
        assert recover_message(ctx, traced.ciphertext, pk, traced.e2) == plain

    def test_reproducible_by_seed(self, setup):
        ctx, _, victim = setup
        plain = Plaintext.constant(3, ctx.n, ctx.t)
        a = victim.encrypt(plain, rng=7)
        b = victim.encrypt(plain, rng=7)
        assert a.ciphertext == b.ciphertext

    def test_fresh_randomness_differs(self, setup):
        ctx, _, victim = setup
        plain = Plaintext.constant(3, ctx.n, ctx.t)
        assert victim.encrypt(plain, rng=8).ciphertext != victim.encrypt(
            plain, rng=9
        ).ciphertext

    def test_mismatched_device_rejected(self, setup):
        ctx, keygen, _ = setup
        wrong_device = GaussianSamplerDevice([132120577])  # paper q != toy q
        acquisition = TraceAcquisition(wrong_device, rng=0)
        with pytest.raises(ParameterError):
            DeviceBackedEncryptor(ctx, keygen.public_key(), acquisition)
