"""Tests for BFV object serialisation."""

import numpy as np
import pytest

from repro.bfv.serialization import (
    load_ciphertext,
    load_plaintext,
    load_public_key,
    load_relin_keys,
    load_secret_key,
    save_ciphertext,
    save_plaintext,
    save_public_key,
    save_relin_keys,
    save_secret_key,
)
from repro.bfv.decryptor import Decryptor
from repro.bfv.encryptor import Encryptor
from repro.bfv.evaluator import Evaluator
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError


class TestRoundtrips:
    def test_plaintext(self, ctx, tmp_path):
        rng = np.random.default_rng(0)
        plain = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        save_plaintext(ctx, plain, tmp_path / "m.npz")
        assert load_plaintext(ctx, tmp_path / "m.npz") == plain

    def test_ciphertext_still_decrypts(self, ctx, encryptor, decryptor, tmp_path):
        plain = Plaintext.constant(9, ctx.n, ctx.t)
        ct = encryptor.encrypt(plain, rng=1)
        save_ciphertext(ctx, ct, tmp_path / "ct.npz")
        restored = load_ciphertext(ctx, tmp_path / "ct.npz")
        assert restored == ct
        assert decryptor.decrypt(restored) == plain

    def test_size3_ciphertext(self, ctx, encryptor, evaluator, tmp_path):
        m = Plaintext.constant(2, ctx.n, ctx.t)
        ct3 = evaluator.multiply(encryptor.encrypt(m, rng=2), encryptor.encrypt(m, rng=3))
        save_ciphertext(ctx, ct3, tmp_path / "ct3.npz")
        assert load_ciphertext(ctx, tmp_path / "ct3.npz").size == 3

    def test_key_material(self, ctx, keygen, tmp_path):
        sk = keygen.secret_key()
        pk = keygen.public_key()
        rk = keygen.relin_keys(decomposition_bits=8)
        save_secret_key(ctx, sk, tmp_path / "sk.npz")
        save_public_key(ctx, pk, tmp_path / "pk.npz")
        save_relin_keys(ctx, rk, tmp_path / "rk.npz")
        assert load_secret_key(ctx, tmp_path / "sk.npz").s == sk.s
        loaded_pk = load_public_key(ctx, tmp_path / "pk.npz")
        assert loaded_pk.p0 == pk.p0 and loaded_pk.p1 == pk.p1
        loaded_rk = load_relin_keys(ctx, tmp_path / "rk.npz")
        assert loaded_rk.decomposition_bits == 8
        assert len(loaded_rk.pairs) == len(rk.pairs)
        assert all(
            a == b and c == d
            for (a, c), (b, d) in zip(loaded_rk.pairs, rk.pairs)
        )

    def test_restored_keys_work_end_to_end(self, ctx, keygen, tmp_path):
        save_public_key(ctx, keygen.public_key(), tmp_path / "pk.npz")
        save_secret_key(ctx, keygen.secret_key(), tmp_path / "sk.npz")
        encryptor = Encryptor(ctx, load_public_key(ctx, tmp_path / "pk.npz"))
        decryptor = Decryptor(ctx, load_secret_key(ctx, tmp_path / "sk.npz"))
        plain = Plaintext.constant(4, ctx.n, ctx.t)
        assert decryptor.decrypt(encryptor.encrypt(plain, rng=5)) == plain


class TestValidation:
    def test_kind_mismatch(self, ctx, tmp_path):
        plain = Plaintext.zero(ctx.n, ctx.t)
        save_plaintext(ctx, plain, tmp_path / "m.npz")
        with pytest.raises(ParameterError):
            load_ciphertext(ctx, tmp_path / "m.npz")

    def test_parameter_mismatch(self, ctx, tmp_path):
        plain = Plaintext.zero(ctx.n, ctx.t)
        save_plaintext(ctx, plain, tmp_path / "m.npz")
        other = BfvContext.toy(poly_degree=ctx.n, plain_modulus=ctx.t + 2)
        with pytest.raises(ParameterError):
            load_plaintext(other, tmp_path / "m.npz")
