"""Integration tests for homomorphic evaluation."""

import numpy as np
import pytest

from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError


def random_plain(ctx, seed):
    rng = np.random.default_rng(seed)
    return Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)


def plain_add(ctx, a, b):
    return Plaintext((a.coeffs + b.coeffs) % ctx.t, ctx.t)


def plain_negacyclic_mul(ctx, a, b):
    from repro.ring.exact import exact_negacyclic_multiply

    prod = exact_negacyclic_multiply(list(a.coeffs), list(b.coeffs))
    return Plaintext([c % ctx.t for c in prod], ctx.t)


class TestLinearOps:
    def test_add(self, ctx, encryptor, decryptor, evaluator):
        ma, mb = random_plain(ctx, 0), random_plain(ctx, 1)
        ct = evaluator.add(encryptor.encrypt(ma, rng=0), encryptor.encrypt(mb, rng=1))
        assert decryptor.decrypt(ct) == plain_add(ctx, ma, mb)

    def test_sub_self_is_zero(self, ctx, encryptor, decryptor, evaluator):
        m = random_plain(ctx, 2)
        ct = encryptor.encrypt(m, rng=2)
        got = decryptor.decrypt(evaluator.sub(ct, ct))
        assert got == Plaintext.zero(ctx.n, ctx.t)

    def test_negate(self, ctx, encryptor, decryptor, evaluator):
        m = random_plain(ctx, 3)
        ct = evaluator.negate(encryptor.encrypt(m, rng=3))
        expected = Plaintext((-m.coeffs) % ctx.t, ctx.t)
        assert decryptor.decrypt(ct) == expected

    def test_add_plain(self, ctx, encryptor, decryptor, evaluator):
        ma, mb = random_plain(ctx, 4), random_plain(ctx, 5)
        ct = evaluator.add_plain(encryptor.encrypt(ma, rng=4), mb)
        assert decryptor.decrypt(ct) == plain_add(ctx, ma, mb)

    def test_sub_plain(self, ctx, encryptor, decryptor, evaluator):
        ma, mb = random_plain(ctx, 6), random_plain(ctx, 7)
        ct = evaluator.sub_plain(encryptor.encrypt(ma, rng=5), mb)
        expected = Plaintext((ma.coeffs - mb.coeffs) % ctx.t, ctx.t)
        assert decryptor.decrypt(ct) == expected

    def test_multiply_plain(self, ctx, encryptor, decryptor, evaluator):
        ma, mb = random_plain(ctx, 8), random_plain(ctx, 9)
        ct = evaluator.multiply_plain(encryptor.encrypt(ma, rng=6), mb)
        assert decryptor.decrypt(ct) == plain_negacyclic_mul(ctx, ma, mb)

    def test_multiply_plain_zero_rejected(self, ctx, encryptor, evaluator):
        m = random_plain(ctx, 10)
        with pytest.raises(ParameterError):
            evaluator.multiply_plain(
                encryptor.encrypt(m, rng=7), Plaintext.zero(ctx.n, ctx.t)
            )

    def test_add_commutes_with_plain(self, ctx, encryptor, decryptor, evaluator):
        """Homomorphism: dec(enc(a) + enc(b)) == dec(enc(a) + b_plain)."""
        ma, mb = random_plain(ctx, 11), random_plain(ctx, 12)
        via_ct = evaluator.add(encryptor.encrypt(ma, rng=8), encryptor.encrypt(mb, rng=9))
        via_plain = evaluator.add_plain(encryptor.encrypt(ma, rng=8), mb)
        assert decryptor.decrypt(via_ct) == decryptor.decrypt(via_plain)


class TestMultiplication:
    def test_multiply_small_constants(self, ctx, encryptor, decryptor, evaluator):
        ma = Plaintext.constant(3, ctx.n, ctx.t)
        mb = Plaintext.constant(5, ctx.n, ctx.t)
        ct = evaluator.multiply(encryptor.encrypt(ma, rng=0), encryptor.encrypt(mb, rng=1))
        assert ct.size == 3
        assert decryptor.decrypt(ct) == Plaintext.constant(15 % ctx.t, ctx.n, ctx.t)

    def test_multiply_polynomials(self, ctx, encryptor, decryptor, evaluator):
        ma, mb = random_plain(ctx, 20), random_plain(ctx, 21)
        ct = evaluator.multiply(encryptor.encrypt(ma, rng=2), encryptor.encrypt(mb, rng=3))
        assert decryptor.decrypt(ct) == plain_negacyclic_mul(ctx, ma, mb)

    def test_multiply_rejects_size3(self, ctx, encryptor, evaluator):
        m = Plaintext.constant(1, ctx.n, ctx.t)
        ct3 = evaluator.multiply(encryptor.encrypt(m, rng=4), encryptor.encrypt(m, rng=5))
        with pytest.raises(ParameterError):
            evaluator.multiply(ct3, ct3)

    def test_square(self, ctx, encryptor, decryptor, evaluator):
        m = Plaintext.constant(4, ctx.n, ctx.t)
        ct = evaluator.square(encryptor.encrypt(m, rng=6))
        assert decryptor.decrypt(ct) == Plaintext.constant(16 % ctx.t, ctx.n, ctx.t)


class TestRelinearisation:
    def test_relinearize_preserves_plaintext(
        self, ctx, keygen, encryptor, decryptor, evaluator
    ):
        relin = keygen.relin_keys(decomposition_bits=8)
        ma = Plaintext.constant(3, ctx.n, ctx.t)
        mb = Plaintext.constant(4, ctx.n, ctx.t)
        ct3 = evaluator.multiply(encryptor.encrypt(ma, rng=0), encryptor.encrypt(mb, rng=1))
        ct2 = evaluator.relinearize(ct3, relin)
        assert ct2.size == 2
        assert decryptor.decrypt(ct2) == Plaintext.constant(12 % ctx.t, ctx.n, ctx.t)

    def test_multiply_relin_chain(self):
        """(2 * 3) * 2 = 12 via two chained multiplications.

        Uses a two-limb (54-bit) modulus: the single-limb toy context has
        no noise budget left for depth-2 circuits.
        """
        from repro.bfv.decryptor import Decryptor
        from repro.bfv.encryptor import Encryptor
        from repro.bfv.evaluator import Evaluator
        from repro.bfv.keygen import KeyGenerator
        from repro.bfv.params import BfvContext

        wide = BfvContext.toy(poly_degree=64, plain_modulus=17, limbs=2)
        keygen = KeyGenerator(wide, rng=0)
        encryptor = Encryptor(wide, keygen.public_key())
        decryptor = Decryptor(wide, keygen.secret_key())
        evaluator = Evaluator(wide)
        relin = keygen.relin_keys(decomposition_bits=8)
        m2 = Plaintext.constant(2, wide.n, wide.t)
        m3 = Plaintext.constant(3, wide.n, wide.t)
        ct = evaluator.multiply_relin(
            encryptor.encrypt(m2, rng=2), encryptor.encrypt(m3, rng=3), relin
        )
        ct = evaluator.multiply_relin(ct, encryptor.encrypt(m2, rng=4), relin)
        assert decryptor.decrypt(ct) == Plaintext.constant(12 % wide.t, wide.n, wide.t)

    def test_relinearize_rejects_size2(self, ctx, keygen, encryptor, evaluator):
        relin = keygen.relin_keys()
        ct = encryptor.encrypt(Plaintext.zero(ctx.n, ctx.t), rng=0)
        with pytest.raises(ParameterError):
            evaluator.relinearize(ct, relin)


class TestNoiseGrowth:
    def test_budget_decreases_with_multiplication(
        self, ctx, keygen, encryptor, decryptor, evaluator
    ):
        m = Plaintext.constant(2, ctx.n, ctx.t)
        fresh = encryptor.encrypt(m, rng=0)
        prod = evaluator.multiply(fresh, encryptor.encrypt(m, rng=1))
        assert decryptor.invariant_noise_budget(prod) < decryptor.invariant_noise_budget(
            fresh
        )

    def test_budget_roughly_stable_with_addition(
        self, ctx, encryptor, decryptor, evaluator
    ):
        m = Plaintext.constant(2, ctx.n, ctx.t)
        fresh = encryptor.encrypt(m, rng=0)
        total = evaluator.add(fresh, encryptor.encrypt(m, rng=1))
        assert decryptor.invariant_noise_budget(total) >= (
            decryptor.invariant_noise_budget(fresh) - 2.0
        )
