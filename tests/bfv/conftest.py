"""Shared BFV fixtures: a small fast context and its key material."""

import pytest

from repro.bfv.decryptor import Decryptor
from repro.bfv.encryptor import Encryptor
from repro.bfv.evaluator import Evaluator
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext


@pytest.fixture(scope="session")
def ctx():
    return BfvContext.toy(poly_degree=64, plain_modulus=17)


@pytest.fixture(scope="session")
def keygen(ctx):
    return KeyGenerator(ctx, rng=1234)


@pytest.fixture(scope="session")
def public_key(keygen):
    return keygen.public_key()


@pytest.fixture(scope="session")
def secret_key(keygen):
    return keygen.secret_key()


@pytest.fixture(scope="session")
def encryptor(ctx, public_key):
    return Encryptor(ctx, public_key)


@pytest.fixture(scope="session")
def decryptor(ctx, secret_key):
    return Decryptor(ctx, secret_key)


@pytest.fixture(scope="session")
def evaluator(ctx):
    return Evaluator(ctx)


@pytest.fixture(scope="session")
def paper_ctx():
    """The paper's exact attacked parameter set (n=1024, q=132120577)."""
    return BfvContext.default()
