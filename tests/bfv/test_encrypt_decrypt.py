"""Integration tests: encrypt/decrypt round trips and the Fig. 2 port."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv.encryptor import Encryptor, set_poly_coeffs_normal
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError


class TestRoundtrip:
    def test_zero(self, ctx, encryptor, decryptor):
        m = Plaintext.zero(ctx.n, ctx.t)
        assert decryptor.decrypt(encryptor.encrypt(m, rng=0)) == m

    def test_constant(self, ctx, encryptor, decryptor):
        m = Plaintext.constant(5, ctx.n, ctx.t)
        assert decryptor.decrypt(encryptor.encrypt(m, rng=1)) == m

    def test_random_messages(self, ctx, encryptor, decryptor):
        rng = np.random.default_rng(42)
        for seed in range(10):
            m = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
            ct = encryptor.encrypt(m, rng=seed)
            assert decryptor.decrypt(ct) == m

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32))
    def test_property_roundtrip(self, seed, ctx, encryptor, decryptor):
        rng = np.random.default_rng(seed)
        m = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        assert decryptor.decrypt(encryptor.encrypt(m, rng=rng)) == m

    def test_fresh_randomness_differs(self, ctx, encryptor):
        m = Plaintext.constant(3, ctx.n, ctx.t)
        ct1 = encryptor.encrypt(m, rng=10)
        ct2 = encryptor.encrypt(m, rng=11)
        assert ct1 != ct2

    def test_paper_parameters_roundtrip(self, paper_ctx):
        from repro.bfv.decryptor import Decryptor
        from repro.bfv.keygen import KeyGenerator

        keygen = KeyGenerator(paper_ctx, rng=0)
        enc = Encryptor(paper_ctx, keygen.public_key())
        dec = Decryptor(paper_ctx, keygen.secret_key())
        rng = np.random.default_rng(5)
        m = Plaintext(rng.integers(0, paper_ctx.t, paper_ctx.n), paper_ctx.t)
        assert dec.decrypt(enc.encrypt(m, rng=6)) == m


class TestArtifacts:
    def test_artifacts_are_consistent(self, ctx, encryptor):
        m = Plaintext.constant(2, ctx.n, ctx.t)
        ct, art = encryptor.encrypt_with_artifacts(m, rng=3)
        rebuilt = encryptor.encrypt_with_randomness(m, art.u, art.e1, art.e2)
        assert rebuilt == ct

    def test_artifact_ranges(self, ctx, encryptor):
        m = Plaintext.zero(ctx.n, ctx.t)
        _, art = encryptor.encrypt_with_artifacts(m, rng=4)
        assert set(art.u) <= {-1, 0, 1}
        assert all(abs(e) <= 41 for e in art.e1)
        assert all(abs(e) <= 41 for e in art.e2)
        assert len(art.e1) == ctx.n

    def test_noise_budget_positive_for_fresh(self, ctx, encryptor, decryptor):
        m = Plaintext.constant(1, ctx.n, ctx.t)
        ct = encryptor.encrypt(m, rng=5)
        assert decryptor.invariant_noise_budget(ct) > 0


class TestSetPolyCoeffsNormal:
    """Branch-for-branch equivalence with Fig. 2 of the paper."""

    def _run(self, ctx, values):
        it = iter(values)
        return set_poly_coeffs_normal(ctx, lambda: next(it))

    def test_positive_branch(self, ctx):
        poly, sampled = self._run(ctx, [7] + [0] * (ctx.n - 1))
        assert sampled[0] == 7
        for j, m in enumerate(ctx.basis.moduli):
            assert poly[j, 0] == 7

    def test_negative_branch_subtracts_from_modulus(self, ctx):
        poly, _ = self._run(ctx, [-7] + [0] * (ctx.n - 1))
        for j, m in enumerate(ctx.basis.moduli):
            assert poly[j, 0] == m.value - 7

    def test_zero_branch(self, ctx):
        poly, _ = self._run(ctx, [0] * ctx.n)
        assert not poly.any()

    def test_strided_layout_matches_seal(self, ctx):
        """poly[i + j*coeff_count] in SEAL == poly[j, i] here."""
        values = list(range(1, ctx.n + 1))
        poly, _ = self._run(ctx, values)
        for i in (0, 1, ctx.n - 1):
            for j in range(ctx.coeff_mod_count):
                assert poly[j, i] == values[i]

    def test_matches_ring_poly_reduction(self, ctx):
        """The buffer equals RingPoly.from_int_coeffs of the same values."""
        from repro.ring.poly import RingPoly

        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(-41, 42, ctx.n)]
        poly, sampled = self._run(ctx, values)
        assert sampled == values
        expected = RingPoly.from_int_coeffs(ctx.basis, ctx.n, values).residues
        assert np.array_equal(poly, expected)


class TestValidation:
    def test_wrong_length_plaintext(self, ctx, encryptor):
        with pytest.raises(ParameterError):
            encryptor.encrypt(Plaintext.zero(ctx.n // 2, ctx.t), rng=0)

    def test_wrong_plain_modulus(self, ctx, encryptor):
        with pytest.raises(ParameterError):
            encryptor.encrypt(Plaintext.zero(ctx.n, ctx.t + 1), rng=0)
