"""Repo-wide test configuration: Hypothesis tiers and golden regen.

Two Hypothesis profiles implement the quick/deep testing tiers:

- ``quick`` (default): small deterministic example budgets, suitable
  for every push — the whole suite stays under the CI time floor.
- ``deep`` (``REVEAL_DEEP=1``): 250+ examples per property, run on the
  scheduled CI job.  Both profiles are **derandomized** so a CI failure
  reproduces locally from the printed blob or, for oracle-driven
  differential tests, from the ``python -m repro.verify replay``
  command embedded in the failure notes.

``--regen-goldens`` switches the golden-fixture tests from comparing
to rewriting ``tests/golden/*.json`` (use after an intentional
behaviour change, then commit the diff).
"""

import os

import pytest
from hypothesis import HealthCheck, settings

#: True on the scheduled deep tier (REVEAL_DEEP=1).
DEEP = os.environ.get("REVEAL_DEEP", "") not in ("", "0")

_COMMON = dict(
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)
settings.register_profile("quick", max_examples=25, **_COMMON)
settings.register_profile("deep", max_examples=250, **_COMMON)
settings.load_profile("deep" if DEEP else "quick")


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite golden JSON fixtures instead of comparing",
    )


@pytest.fixture(scope="session")
def regen_goldens(request):
    return request.config.getoption("--regen-goldens")


@pytest.fixture(scope="session")
def deep_tier():
    return DEEP
