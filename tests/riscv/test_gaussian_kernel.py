"""Tests for the device Gaussian kernel: bit-exactness vs the golden
model and statistical agreement with the clipped normal distribution."""

import math

import numpy as np
import pytest

from repro.riscv import cycles as cy
from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.programs.gaussian import GoldenPolarSampler

Q = 132120577


@pytest.fixture(scope="module")
def device():
    return GaussianSamplerDevice([Q])


class TestBitExactness:
    @pytest.mark.parametrize("seed", [1, 2, 0xDEADBEEF, 12345, 2**31])
    def test_matches_golden_model(self, device, seed):
        run = device.run(seed, count=16, record_events=False)
        golden = GoldenPolarSampler(seed).sample_vector(16)
        assert run.values == golden

    def test_zero_seed_coerced(self, device):
        run = device.run(0, count=4, record_events=False)
        golden = GoldenPolarSampler(0).sample_vector(4)
        assert run.values == golden

    def test_deterministic(self, device):
        a = device.run(7, count=8, record_events=False)
        b = device.run(7, count=8, record_events=False)
        assert a.values == b.values


class TestOutputBuffer:
    def test_residue_encoding_matches_fig2(self, device):
        """positive -> value; negative -> q - |value|; zero -> 0."""
        run = device.run(3, count=32, record_events=False)
        for value, residue in zip(run.values, run.residues[0]):
            if value > 0:
                assert residue == value
            elif value < 0:
                assert residue == Q - (-value)
            else:
                assert residue == 0

    def test_multi_limb_strided_layout(self):
        device = GaussianSamplerDevice([Q, 268369921])
        run = device.run(11, count=8, record_events=False)
        for value, r0, r1 in zip(run.values, run.residues[0], run.residues[1]):
            if value >= 0:
                assert r0 == r1 == value
            else:
                assert r0 == Q - (-value)
                assert r1 == 268369921 - (-value)


class TestDistribution:
    def test_values_within_clip(self, device):
        run = device.run(99, count=256, record_events=False)
        assert all(-41 <= v <= 41 for v in run.values)

    def test_statistics_match_clipped_normal(self):
        golden = GoldenPolarSampler(seed=42)
        values = np.array(golden.sample_vector(40_000), dtype=float)
        assert abs(values.mean()) < 0.06
        expected_std = math.sqrt(3.19**2 + 1 / 12)
        assert values.std() == pytest.approx(expected_std, rel=0.03)

    def test_distribution_shape_chi_square(self):
        sigma = 3.19
        golden = GoldenPolarSampler(seed=7)
        count = 50_000
        values = golden.sample_vector(count)
        phi = lambda x: 0.5 * (1 + math.erf(x / math.sqrt(2)))
        chi2 = 0.0
        for k in range(-7, 8):
            p = phi((k + 0.5) / sigma) - phi((k - 0.5) / sigma)
            observed = sum(1 for v in values if v == k)
            chi2 += (observed - p * count) ** 2 / (p * count)
        # 15 bins; generous bound (fixed-point pipeline is approximate)
        assert chi2 < 60.0

    def test_zero_fraction_near_discrete_gaussian(self):
        golden = GoldenPolarSampler(seed=9)
        values = golden.sample_vector(30_000)
        zero_fraction = values.count(0) / len(values)
        assert 0.10 < zero_fraction < 0.15  # 1/(sigma*sqrt(2pi)) ~ 0.125


class TestTiming:
    def test_time_variant_execution(self, device):
        """Different coefficients take different cycle counts (rejection)."""
        cycles = []
        for seed in range(20, 30):
            run = device.run(seed, count=1, record_events=False)
            cycles.append(run.cycle_count)
        assert len(set(cycles)) > 3

    def test_events_contain_mul_bursts(self, device):
        run = device.run(5, count=1)
        mul_count = sum(1 for e in run.events if e.op_class == cy.OP_MUL)
        assert mul_count >= 24  # 12 squaring rounds x 2 muls minimum

    def test_negative_sample_has_negation_event(self, device):
        # find a seed giving a negative coefficient
        for seed in range(1, 60):
            run = device.run(seed, count=1)
            if run.values[0] < 0:
                break
        else:
            pytest.fail("no negative sample found in 60 seeds")
        value = run.values[0]
        negations = [
            e
            for e in run.events
            if e.op_class == cy.OP_ALU and e.result == (-value & 0xFFFFFFFF) == (e.rs2_value * -1) & 0xFFFFFFFF
        ]
        # the `neg` instruction computes 0 - noise
        assert any(
            e.rs1_value == 0 and e.rs2_value == (value & 0xFFFFFFFF) for e in negations
        )
