"""Unit tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.riscv.assembler import assemble
from repro.riscv.isa import decode


class TestBasics:
    def test_empty_and_comments(self):
        prog = assemble("# nothing here\n\n   \n")
        assert len(prog) == 0

    def test_single_instruction(self):
        prog = assemble("addi a0, a0, 1")
        assert len(prog) == 1
        dec = decode(prog.words[0])
        assert dec.mnemonic == "addi"
        assert dec.imm == 1

    def test_labels_forward_and_backward(self):
        prog = assemble(
            """
            start:
                j end
                nop
            end:
                j start
            """
        )
        assert prog.symbols["start"] == 0
        assert prog.symbols["end"] == 8
        assert decode(prog.words[0]).imm == 8  # forward jump
        assert decode(prog.words[2]).imm == -8  # backward jump

    def test_label_on_own_line(self):
        prog = assemble("lone:\n  nop\n")
        assert prog.symbols["lone"] == 0

    def test_word_directive(self):
        prog = assemble(".word 0xdeadbeef, 42")
        assert prog.words == [0xDEADBEEF, 42]

    def test_base_address_offsets_labels(self):
        prog = assemble("here:\n nop", base_address=0x100)
        assert prog.symbols["here"] == 0x100


class TestPseudoInstructions:
    def test_nop(self):
        assert assemble("nop").words[0] == 0x00000013

    def test_mv(self):
        dec = decode(assemble("mv a1, a2").words[0])
        assert (dec.mnemonic, dec.rd, dec.rs1, dec.imm) == ("addi", 11, 12, 0)

    def test_li_small(self):
        prog = assemble("li t0, -7")
        assert len(prog) == 1
        assert decode(prog.words[0]).imm == -7

    def test_li_page_aligned(self):
        prog = assemble("li t0, 0x40000000")
        assert len(prog) == 1
        assert decode(prog.words[0]).mnemonic == "lui"

    def test_li_large_two_words(self):
        prog = assemble("li t0, 0x12345678")
        assert len(prog) == 2
        assert decode(prog.words[0]).mnemonic == "lui"
        assert decode(prog.words[1]).mnemonic == "addi"

    def test_li_negative_low_part(self):
        # values whose low 12 bits look negative need the +0x800 fixup
        prog = assemble("li t0, 0xFFFF")
        assert len(prog) == 2

    def test_neg(self):
        dec = decode(assemble("neg t0, t1").words[0])
        assert (dec.mnemonic, dec.rs1, dec.rs2) == ("sub", 0, 6)

    def test_branch_zero_forms(self):
        prog = assemble(
            """
            top:
                beqz a0, top
                bnez a0, top
                bltz a0, top
                bgez a0, top
                bgtz a0, top
                blez a0, top
            """
        )
        mnems = [decode(w).mnemonic for w in prog.words]
        assert mnems == ["beq", "bne", "blt", "bge", "blt", "bge"]

    def test_bgt_swaps_operands(self):
        dec = decode(assemble("x:\n bgt a0, a1, x").words[0])
        assert dec.mnemonic == "blt"
        assert dec.rs1 == 11  # a1
        assert dec.rs2 == 10  # a0

    def test_call_and_ret(self):
        prog = assemble(
            """
            main:
                call fn
                ebreak
            fn:
                ret
            """
        )
        dec = decode(prog.words[0])
        assert dec.mnemonic == "jal"
        assert dec.rd == 1
        ret = decode(prog.words[2])
        assert (ret.mnemonic, ret.rd, ret.rs1) == ("jalr", 0, 1)


class TestMemoryOperands:
    def test_load(self):
        dec = decode(assemble("lw a0, 8(sp)").words[0])
        assert (dec.mnemonic, dec.rd, dec.rs1, dec.imm) == ("lw", 10, 2, 8)

    def test_store_negative_offset(self):
        dec = decode(assemble("sw a0, -4(sp)").words[0])
        assert (dec.mnemonic, dec.rs2, dec.rs1, dec.imm) == ("sw", 10, 2, -4)

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblyError):
            assemble("lw a0, sp")


class TestErrors:
    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("a:\n nop\na:\n nop")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("j nowhere")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate a0, a1")

    def test_error_mentions_line(self):
        with pytest.raises(AssemblyError, match="frobnicate"):
            assemble("nop\nfrobnicate a0")
