"""Unit tests for the lane-vectorized RV32IM engine.

The differential suite (``tests/differential/test_lanes.py``) and the
``cpu.run_lanes`` oracle prove bit-exactness against the threaded
engine; this file pins the lane engine's own contract — lock-step
scheduling, per-lane fault isolation, the shared event arena, cache
behaviour, and the device-level ``run_lanes`` wrapper.
"""

import pickle

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.riscv.assembler import assemble
from repro.riscv.device import GaussianSamplerDevice, resolve_engine
from repro.riscv.lanes import (
    LaneEngine,
    LaneEventLog,
    clear_lane_cache,
    lane_cache_size,
)
from repro.verify.conformance import (
    assert_engines_match,
    run_lane_engine_case,
    run_scalar_engine,
)

MODULI = [0xFFEE001, 0xFFC4001, 0x7FE2001, 0x7F54001]


def _image(source, size=1 << 16):
    words = np.asarray(assemble(source).words, dtype=np.uint32)
    image = np.zeros(size, dtype=np.uint8)
    image[: 4 * words.size] = words.view(np.uint8)
    return image


def _engine(source, registers, **kwargs):
    """Build a LaneEngine with one lane per register file."""
    engine = LaneEngine(_image(source), lanes=len(registers), **kwargs)
    for index in range(1, 32):
        values = [file.get(index, 0) for file in registers]
        if any(values):
            engine.write_register(index, values)
    return engine


def _lanes_vs_solo(source, files, max_instructions=10_000):
    """Every lane compared against its solo threaded run through the
    shared conformance harness (state, events, retire streams, errors);
    returns the per-lane EngineRun list for extra assertions."""
    words = assemble(source).words
    lanes = run_lane_engine_case(
        words, files, max_instructions=max_instructions
    )
    for file, lane_run in zip(files, lanes):
        solo = run_scalar_engine(
            words, file, engine="threaded", max_instructions=max_instructions
        )
        assert_engines_match(solo, lane_run)
    return lanes


DIVERGENT = (
    "loop:\n"
    "addi x1, x1, -1\n"
    "add x3, x3, x1\n"
    "bnez x1, loop\n"
    "ebreak"
)


def test_lanes_match_solo_runs_under_divergence():
    files = [{1: 3}, {1: 17}, {1: 1}, {1: 60}]
    lanes = _lanes_vs_solo(DIVERGENT, files)
    assert all(run.error is None and run.halted for run in lanes)
    # divergent trip counts leave divergent retire stream lengths
    assert len({run.retires.shape[0] for run in lanes}) == len(files)


def test_faulting_lane_does_not_poison_others():
    source = "sw x2, 0(x1)\nadd x3, x1, x2\nebreak"
    files = [{1: 0x8000, 2: 7}, {1: 0x200000, 2: 7}, {1: 0x8001, 2: 7}]
    lanes = _lanes_vs_solo(source, files)
    assert lanes[0].error is None and lanes[0].halted
    for lane in (1, 2):
        assert lanes[lane].error is not None
        assert not lanes[lane].halted
        assert lanes[lane].retires[-1, 10] == 1  # terminal trap record
    # The healthy lane's stored word landed only in its own memory plane.
    engine = lanes[0].cpu
    m32 = engine.memory.view(np.uint32)
    assert int(m32[0, 0x8000 >> 2]) == 7
    assert int(m32[1, 0x8000 >> 2]) == 0


def test_budget_exhaustion_is_per_lane():
    files = [{1: 2}, {1: 50}]
    lanes = _lanes_vs_solo(DIVERGENT, files, max_instructions=30)
    assert lanes[0].error is None
    assert lanes[1].error is not None
    assert "instruction budget 30 exhausted" in lanes[1].error
    # budget exhaustion truncates the stream without a trap record
    assert lanes[1].retires.shape[0] == 30
    assert not lanes[1].retires[:, 10].any()


def test_run_is_single_shot():
    engine = _engine("ebreak", [{}]).run()
    with pytest.raises(SimulationError, match="single-shot"):
        engine.run()


def test_rejects_bad_construction():
    with pytest.raises(SimulationError):
        LaneEngine(np.zeros(10, dtype=np.uint8), lanes=1)  # not word-sized
    with pytest.raises(SimulationError):
        LaneEngine(np.zeros(64, dtype=np.uint8), lanes=0)


def test_write_register_broadcast_and_per_lane():
    engine = _engine("ebreak", [{}, {}, {}])
    engine.write_register(7, 5)
    engine.write_register(8, [1, 2, 3])
    assert [engine.lane_registers(lane)[7] for lane in range(3)] == [5, 5, 5]
    assert [engine.lane_registers(lane)[8] for lane in range(3)] == [1, 2, 3]
    engine.write_register(0, 9)  # x0 stays hardwired to zero
    assert engine.lane_registers(0)[0] == 0


def test_record_events_off():
    engine = _engine(DIVERGENT, [{1: 3}, {1: 9}], record_events=False).run()
    assert engine.events is None
    assert engine.errors == [None, None]


def test_lane_cache_shared_and_clearable():
    clear_lane_cache()
    _engine(DIVERGENT, [{1: 4}]).run()
    warm = lane_cache_size()
    assert warm > 0
    _engine(DIVERGENT, [{1: 11}, {1: 2}]).run()
    assert lane_cache_size() == warm  # same program, cache hit
    clear_lane_cache()
    assert lane_cache_size() == 0


def test_lane_event_log_arena():
    log = LaneEventLog(lanes=3)
    chunk = np.arange(2 * 2 * 8, dtype=np.int64).reshape(2, 2, 8)
    log.append_chunk(np.array([0, 2]), chunk)
    log.append_rows(1, np.full((1, 8), 7, dtype=np.int64))
    assert list(log.lane_counts()) == [2, 1, 2]
    assert len(log) == 5
    assert np.array_equal(log.lane_rows(0), chunk[0])
    assert np.array_equal(log.lane_rows(2), chunk[1])
    assert log.lane_log(1).columns().shape == (8, 1)
    with pytest.raises(SimulationError):
        log.append_rows(0, np.zeros((1, 8), dtype=np.int64))  # finalized


# ----------------------------------------------------------------------
# Device-level run_lanes
# ----------------------------------------------------------------------
def test_run_lanes_matches_run_per_seed():
    device = GaussianSamplerDevice(MODULI)
    seeds = [5, 6, 7, 1234]
    batch = device.run_lanes(seeds, count=3)
    assert batch.seeds == seeds
    for seed, run in zip(seeds, batch.runs):
        solo = device.run(seed, count=3)
        assert run.values == solo.values
        assert run.residues == solo.residues
        assert run.cycle_count == solo.cycle_count
        assert run.instruction_count == solo.instruction_count
        assert run.events == solo.events


def test_run_engine_lanes_alias():
    device = GaussianSamplerDevice(MODULI)
    assert device.run(9, count=2, engine="lanes").values == \
        device.run(9, count=2).values


def test_run_lanes_shared_arena_mode():
    device = GaussianSamplerDevice(MODULI)
    batch = device.run_lanes([1, 2], count=1, events_per_lane=False)
    assert all(len(run.events) == 0 for run in batch.runs)
    assert list(batch.events.lane_counts()) == [
        len(device.run(1, count=1).events),
        len(device.run(2, count=1).events),
    ]


def test_run_lanes_validates_arguments():
    device = GaussianSamplerDevice(MODULI)
    with pytest.raises(SimulationError):
        device.run_lanes([], count=1)
    with pytest.raises(SimulationError):
        device.run_lanes([1], count=0)


def test_run_lanes_reports_faulting_lane_and_seed():
    device = GaussianSamplerDevice(MODULI)
    with pytest.raises(SimulationError, match=r"lane 0 \(seed 2\): instruction budget"):
        device.run_lanes([2, 3], count=1, max_instructions=5)


def test_resolve_engine_env_default(monkeypatch):
    monkeypatch.delenv("REVEAL_ENGINE", raising=False)
    assert resolve_engine(None) == "threaded"
    monkeypatch.setenv("REVEAL_ENGINE", "lanes")
    assert resolve_engine(None) == "lanes"
    assert resolve_engine("interpreter") == "reference"
    with pytest.raises(ParameterError, match="unknown engine"):
        resolve_engine("warp")
    # A bad env value is caught at resolution time, naming the source.
    monkeypatch.setenv("REVEAL_ENGINE", "warp")
    with pytest.raises(ParameterError, match="unknown REVEAL_ENGINE"):
        resolve_engine(None)


def test_device_pickle_stays_small_after_lane_runs():
    # __getstate__ must drop the warm lane caches (generated code and
    # per-size memory images are unpicklable / enormous): the pickle of
    # a heavily used device must match a fresh one byte-for-byte.
    fresh = len(pickle.dumps(GaussianSamplerDevice(MODULI)))
    device = GaussianSamplerDevice(MODULI)
    device.run(3, count=2)  # warm threaded caches
    device.run_lanes([4, 5, 6], count=2)  # warm lane image + block cache
    assert device._lane_images and device._lane_block_cache
    blob = pickle.dumps(device)
    assert len(blob) == fresh
    clone = pickle.loads(blob)
    assert clone._lane_images == {} and clone._lane_block_cache == {}
    assert clone.run_lanes([4], count=2).runs[0].values == \
        device.run(4, count=2).values
