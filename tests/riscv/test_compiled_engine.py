"""Unit tests for the compiled (generated-C) RV32IM engine.

The conformance fuzz (``cpu.retire_log``) proves cross-engine
bit-exactness at volume; this file pins the targeted hard paths the
ISSUE names — SMC invalidation, mid-block faults, budget exhaustion at
every block offset — via the shared adversarial generators, plus the
engine's plumbing contract: device parity, graceful no-toolchain
fallback, translation-cache statistics, and the pickle behaviour
(devices never ship compiled caches across process boundaries).

The compiled engine degrades to interpreting through the threaded
engine's generated Python when no C toolchain probes, and stays
bit-identical either way — so every parity test here runs regardless;
only the tests asserting *C modules actually engaged* skip.
"""

import os
import pickle

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.riscv import compiled as compiled_mod
from repro.riscv.assembler import assemble
from repro.riscv.compiled import (
    CompiledProgram,
    compiled_available,
    probe_error,
    reset_probe,
    run_compiled,
    translation_cache_stats,
)
from repro.riscv.cpu import Cpu
from repro.riscv.device import ENGINES, GaussianSamplerDevice, effective_engine
from repro.riscv.memory import Memory
from repro.riscv.threaded import (
    clear_translation_cache,
    translation_cache_stats as threaded_cache_stats,
)
from repro.verify import conformance

MODULI = [0xFFEE001, 0xFFC4001]

requires_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason=f"compiled engine unavailable: {probe_error()}",
)


def _match(words, registers=None, *, max_instructions=10_000, setup=None):
    """Assert the compiled engine matches the reference bit-for-bit."""
    kwargs = dict(max_instructions=max_instructions, setup=setup)
    a = conformance.run_scalar_engine(
        words, registers, engine="reference", **kwargs
    )
    b = conformance.run_scalar_engine(
        words, registers, engine="compiled", **kwargs
    )
    conformance.assert_engines_match(a, b)
    return b


# ----------------------------------------------------------------------
# Adversarial sweeps: the generators the fuzz uses, deterministically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", conformance.ADVERSARIAL_KINDS)
def test_adversarial_kind_sweep(kind):
    rng = np.random.default_rng(0xC0FFEE ^ hash(kind) % (1 << 16))
    generator = conformance._ADVERSARIAL_GENERATORS[kind]
    for _ in range(12):
        case = generator(rng)
        _match(
            assemble(case["source"]).words,
            case["registers"],
            max_instructions=case["max_instructions"],
        )


def test_budget_exhaustion_at_every_block_offset():
    """The budget raise must land on the same instruction at any offset.

    A straight-line 10-instruction block + ebreak, run under every
    budget 0..12: exhaustion hits before the block, inside it at every
    offset, exactly at its end, and not at all.
    """
    source = "\n".join(f"addi x1, x1, {i + 1}" for i in range(10)) + "\nebreak"
    words = assemble(source).words
    for budget in range(13):
        run = _match(words, max_instructions=budget)
        if budget <= 10:
            assert run.error == (
                f"instruction budget {budget} exhausted at pc={4 * budget:#x}"
            )
        else:
            assert run.error is None and run.halted


def test_mid_block_fault_unwinds_prefix():
    """A fault mid-block retires the prefix and reports the exact string."""
    source = "\n".join(
        ["addi x1, x0, 7", "addi x6, x0, 257", "lw x7, 0(x6)", "ebreak"]
    )
    run = _match(assemble(source).words)
    assert run.error == "misaligned 4-byte access at 0x101"
    assert run.instruction_count == 2  # the two addis retired
    assert run.registers[7] == 0  # the load never committed


def test_out_of_range_fault_message():
    source = "\n".join(
        ["lui x6, 512", "lw x7, 0(x6)", "ebreak"]  # 0x200000 >= 64 KiB
    )
    run = _match(assemble(source).words)
    assert run.error == "memory access at 0x200000 (+4) outside [0, 0x10000)"


def test_smc_patch_ahead_and_loop_flavors():
    """Both SMC shapes: patch-ahead in-block and patch inside a loop."""
    rng = np.random.default_rng(42)
    for _ in range(16):
        case = conformance._smc_case(rng)
        _match(
            assemble(case["source"]).words,
            case["registers"],
            max_instructions=case["max_instructions"],
        )


@requires_compiled
def test_smc_drops_compiled_module_and_recompiles_next_run():
    """An SMC hit drops the module mid-run; the next run recompiles."""
    case = {"source": None}
    rng = np.random.default_rng(7)
    while True:  # find a loop-flavor case (patch lands on a hot block)
        case = conformance._smc_case(rng)
        if "loop:" in case["source"]:
            break
    words = assemble(case["source"]).words
    program = CompiledProgram()
    cpu = Cpu(Memory(1 << 16), record_events=True)
    cpu.load_program(list(words), 0)
    run_compiled(cpu, max_instructions=10_000, program=program)
    assert cpu.halted
    assert program.module is None  # dropped by the in-run invalidation
    # Second run on the warm program: attach() recompiles at run start
    # (the compiles counter moves), then the self-patching store drops
    # the module again mid-run — with identical architectural results.
    compiles_before = translation_cache_stats()["compiles"]
    cpu2 = Cpu(Memory(1 << 16), record_events=True)
    cpu2.load_program(list(words), 0)
    run_compiled(cpu2, max_instructions=10_000, program=program)
    assert cpu2.halted
    assert translation_cache_stats()["compiles"] > compiles_before
    assert program.module is None  # this run self-modified too
    assert cpu2.registers == cpu.registers


# ----------------------------------------------------------------------
# Device plumbing
# ----------------------------------------------------------------------
def test_engine_registered():
    assert "compiled" in ENGINES
    assert ("reference", "compiled") in conformance.ENGINE_PAIRS
    assert ("threaded", "compiled") in conformance.ENGINE_PAIRS
    assert ("compiled", "lanes") in conformance.ENGINE_PAIRS


def test_device_parity_with_threaded():
    device = GaussianSamplerDevice(MODULI)
    a = device.run(99, 4, engine="threaded", record_retires=True)
    b = device.run(99, 4, engine="compiled", record_retires=True)
    assert a.values == b.values
    assert a.residues == b.residues
    assert a.cycle_count == b.cycle_count
    assert a.instruction_count == b.instruction_count
    assert np.array_equal(a.events.columns(), b.events.columns())
    assert np.array_equal(a.retires.columns(), b.retires.columns())


@requires_compiled
def test_device_reuses_warm_compiled_program():
    device = GaussianSamplerDevice(MODULI)
    device.run(1, 2, engine="compiled")
    program = device._compiled_program
    assert program is not None
    device.run(2, 2, engine="compiled")
    assert device._compiled_program is program


def test_device_pickle_drops_compiled_caches():
    device = GaussianSamplerDevice(MODULI)
    baseline = len(pickle.dumps(device))
    device.run(5, 4, engine="compiled", record_retires=True)
    device.run(5, 4, engine="threaded")
    blob = pickle.dumps(device)
    # Warm compiled/threaded caches must not inflate worker pickles:
    # the translated blocks and the extension module stay process-local.
    assert len(blob) < baseline + 2048
    clone = pickle.loads(blob)
    assert clone._compiled_program is None
    assert clone._block_cache == {} and clone._code_words == set()
    assert clone.last_retires is None
    # The unpickled device must still run on the compiled engine.
    run = clone.run(5, 4, engine="compiled")
    assert run.values == device.run(5, 4, engine="threaded").values


# ----------------------------------------------------------------------
# Graceful degradation (no C toolchain)
# ----------------------------------------------------------------------
def test_disable_env_forces_threaded_fallback(monkeypatch):
    monkeypatch.setenv("REVEAL_DISABLE_COMPILED", "1")
    reset_probe()
    try:
        assert not compiled_available()
        assert probe_error() == "disabled by REVEAL_DISABLE_COMPILED"
        assert effective_engine("compiled") == "threaded"
        assert "compiled" not in conformance.active_engines()
        pairs = conformance.active_engine_pairs()
        assert pairs and all("compiled" not in pair for pair in pairs)
        # device.run(engine="compiled") still works — via threaded.
        device = GaussianSamplerDevice(MODULI)
        run = device.run(3, 2, engine="compiled")
        assert len(run.values) == 2
        assert device._compiled_program is None
    finally:
        monkeypatch.delenv("REVEAL_DISABLE_COMPILED")
        reset_probe()


def test_effective_engine_passes_through_other_engines():
    assert effective_engine("threaded") == "threaded"
    assert effective_engine("interpreter") == "reference"
    assert effective_engine("lanes") == "lanes"


def test_engine_filter_validation():
    try:
        with pytest.raises(ValueError, match="unknown engine"):
            conformance.set_engine_filter(["reference", "warp"])
        with pytest.raises(ValueError, match="at least two"):
            conformance.set_engine_filter(["reference"])
        conformance.set_engine_filter(["reference", "threaded"])
        assert conformance.active_engines() == ("reference", "threaded")
        assert conformance.active_engine_pairs() == (("reference", "threaded"),)
    finally:
        conformance.set_engine_filter(None)


def test_run_compiled_without_module_is_pure_python(monkeypatch):
    """compile failure => interpret via threaded blocks, same results."""
    monkeypatch.setattr(
        compiled_mod,
        "_compile_module",
        lambda source: (_ for _ in ()).throw(OSError("no toolchain")),
    )
    words = assemble(
        "addi x1, x0, 9\naddi x2, x1, 33\nebreak"
    ).words
    program = CompiledProgram()
    cpu = Cpu(Memory(1 << 16), record_events=True)
    cpu.load_program(list(words), 0)
    executed = run_compiled(cpu, max_instructions=100, program=program)
    assert program.module is None
    assert "no toolchain" in program.compile_error
    assert executed == 3 and cpu.halted
    assert cpu.registers[1] == 9 and cpu.registers[2] == 42


# ----------------------------------------------------------------------
# Translation-cache statistics
# ----------------------------------------------------------------------
def test_threaded_translation_cache_stats():
    clear_translation_cache()
    stats = threaded_cache_stats()
    assert stats["hits"] == stats["misses"] == stats["invalidations"] == 0
    assert stats["compile_time_s"] == 0.0 and stats["size"] == 0
    assert stats["max_size"] == 8192

    source = "addi x1, x0, 1\naddi x2, x0, 2\nebreak"
    run1 = conformance.run_scalar_engine(
        assemble(source).words, engine="threaded"
    )
    assert run1.halted
    after_first = threaded_cache_stats()
    assert after_first["misses"] >= 1 and after_first["size"] >= 1
    assert after_first["compile_time_s"] > 0.0
    run2 = conformance.run_scalar_engine(
        assemble(source).words, engine="threaded"
    )
    assert run2.halted
    after_second = threaded_cache_stats()
    assert after_second["hits"] > after_first["hits"]
    assert after_second["misses"] == after_first["misses"]

    # SMC bumps the invalidation counter through Cpu._invalidate_blocks.
    rng = np.random.default_rng(11)
    case = conformance._smc_case(rng)
    conformance.run_scalar_engine(
        assemble(case["source"]).words, engine="threaded"
    )
    assert threaded_cache_stats()["invalidations"] >= 1

    clear_translation_cache()
    assert threaded_cache_stats()["misses"] == 0


def test_compiled_translation_cache_stats():
    compiled_mod.clear_compiled_stats()
    stats = translation_cache_stats()
    assert stats["hits"] == stats["misses"] == 0
    assert stats["invalidations"] == stats["compiles"] == 0
    assert stats["max_size"] == compiled_mod.MAX_COMPILED_BLOCKS

    source = "addi x1, x0, 1\nebreak"
    run = conformance.run_scalar_engine(
        assemble(source).words, engine="compiled"
    )
    assert run.halted
    after = translation_cache_stats()
    assert after["compiles"] == 1
    assert after["hits"] >= 1  # the block dispatched (C or Python)
    assert after["compile_time_s"] > 0.0


@requires_compiled
def test_compiled_stats_count_native_dispatches_and_invalidations():
    compiled_mod.clear_compiled_stats()
    source = (
        "addi x2, x0, 3\n"
        "loop:\n"
        "addi x1, x1, 1\n"
        "addi x2, x2, -1\n"
        "bne x2, x0, loop\n"
        "ebreak"
    )
    run = conformance.run_scalar_engine(assemble(source).words, engine="compiled")
    assert run.halted and run.error is None
    stats = translation_cache_stats()
    assert stats["hits"] >= 1 and stats["size"] >= 1
    assert stats["invalidations"] == 0

    rng = np.random.default_rng(5)
    case = conformance._smc_case(rng)
    conformance.run_scalar_engine(
        assemble(case["source"]).words, engine="compiled"
    )
    assert translation_cache_stats()["invalidations"] >= 1


# ----------------------------------------------------------------------
# Probe contract
# ----------------------------------------------------------------------
def test_probe_is_cached_and_resettable():
    first = compiled_available()
    assert compiled_available() == first  # cached, no re-probe
    reset_probe()
    assert compiled_available() == first  # same answer after re-probe


@requires_compiled
def test_probe_reports_no_error_when_available():
    assert probe_error() is None
