"""Unit tests for the RVFI-style retire log.

The differential suite (``tests/differential/test_retire_log.py``) and
the ``cpu.retire_log`` fuzz oracle prove cross-engine bit-exactness;
this file pins the :class:`RetireLog` container contract, the per-field
RVFI semantics on hand-written programs, the trap/budget distinction,
the recording defaults (off everywhere unless asked), and the pickle
behaviour the campaign checkpoints rely on.
"""

import pickle

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu
from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.lanes import LaneEngine
from repro.riscv.memory import Memory
from repro.riscv.retire import (
    RETIRE_FIELDS,
    RetireEvent,
    RetireLog,
    is_budget_error,
    trap_row,
)

MODULI = [0xFFEE001, 0xFFC4001]


def _run(source, registers=None, max_instructions=10_000, engine="reference"):
    cpu = Cpu(Memory(size_bytes=1 << 16), record_events=True, record_retires=True)
    cpu.load_program(assemble(source).words, 0)
    for index, value in (registers or {}).items():
        cpu.write_register(index, value)
    error = None
    try:
        if engine == "threaded":
            cpu.run(max_instructions=max_instructions)
        else:
            cpu.run_reference(max_instructions=max_instructions)
    except SimulationError as exc:
        error = str(exc)
    return cpu, error


# ----------------------------------------------------------------------
# RetireLog container contract
# ----------------------------------------------------------------------
def test_retirelog_append_and_sequence_api():
    log = RetireLog(capacity=2)
    log.append(0, 4, 0x13, 1, 5, 2, 6, 3, 11, 0, 0, 0, 0, 0, 0)
    log.append(4, 8, 0x33, 3, 11, 0, 0, 4, 22, 0, 0, 0, 0, 0, 0)
    assert len(log) == 2
    first = log[0]
    assert isinstance(first, RetireEvent)
    assert first.order == 0 and first.pc_rdata == 0 and first.pc_wdata == 4
    assert log[-1].rd_wdata == 22
    assert log[0:2] == list(log)
    with pytest.raises(IndexError):
        log[2]


def test_retirelog_orders_are_implicit_row_positions():
    log = RetireLog()
    for i in range(5):
        log.append(4 * i, 4 * i + 4, 0x13, 0, 0, 0, 0, 1, i, 0, 0, 0, 0, 0, 0)
    assert list(log.column("order")) == [0, 1, 2, 3, 4]


def test_retirelog_reserve_geometric_growth():
    log = RetireLog(capacity=4)
    capacity_before = log._data.shape[0]
    log.reserve(10 * capacity_before)
    assert log._data.shape[0] >= 10 * capacity_before
    assert log._data.shape[0] % capacity_before == 0
    assert len(log) == 0


def test_retirelog_rows_columns_views_agree():
    log = RetireLog()
    log.append(0, 4, 0x93, 1, 7, 0, 0, 2, 9, 0, 0, 0, 0, 0, 0)
    assert log.rows().shape == (1, 16)
    assert log.columns().shape == (16, 1)
    assert np.array_equal(log.rows().T, log.columns())
    assert int(log.column("rd_wdata")[0]) == 9
    with pytest.raises(ValueError):
        log.column("nonsense")


def test_retirelog_append_rows_and_from_rows_round_trip():
    rows = np.arange(3 * 16, dtype=np.int64).reshape(3, 16)
    log = RetireLog.from_rows(rows)
    other = RetireLog(capacity=1)
    other.append_rows(rows[:2])
    other.append_rows(rows[2:])
    assert log == other
    assert np.array_equal(log.rows(), rows)


def test_retirelog_clear_rezeroes():
    log = RetireLog()
    log.append(0, 4, 1, 2, 3, 4, 5, 6, 7, 0, 8, 1, 0, 9, 0)
    log.clear()
    assert len(log) == 0
    assert not log._data.any()


def test_retirelog_eq_semantics():
    log = RetireLog()
    log.append(0, 4, 0x13, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0)
    clone = RetireLog.from_rows(log.rows())
    assert log == clone
    assert log == list(log)
    assert log.__eq__(42) is NotImplemented
    assert (log == 42) is False


def test_retirelog_pickle_keeps_only_rows():
    log = RetireLog(capacity=1024)
    log.append(0, 4, 0x13, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0)
    clone = pickle.loads(pickle.dumps(log))
    assert clone == log
    # the blob scales with content, not the preallocated capacity
    assert len(pickle.dumps(log)) < 1024 * 16 * 8


def test_trap_row_shape():
    row = trap_row(7, 0x24, 0xDEAD)
    assert row.shape == (16,)
    event = RetireEvent(*(int(v) for v in row))
    assert event.order == 7
    assert event.pc_rdata == event.pc_wdata == 0x24
    assert event.insn == 0xDEAD
    assert event.trap == 1
    assert event.rd_wdata == 0 and event.mem_rmask == 0


def test_is_budget_error_classification():
    assert is_budget_error("instruction budget 5 exhausted at pc=0x8")
    assert not is_budget_error("misaligned 4-byte access at 0x101")
    assert not is_budget_error("memory access at 0x200000 (+4) outside [0, 0x10000)")


# ----------------------------------------------------------------------
# Field semantics on hand-written programs
# ----------------------------------------------------------------------
def test_alu_fields_exact():
    cpu, error = _run("addi x1, x0, 5\nadd x2, x1, x1\nebreak")
    assert error is None
    addi, add, ebreak = list(cpu.retires)
    assert addi == RetireEvent(
        order=0, pc_rdata=0, pc_wdata=4, insn=assemble("addi x1, x0, 5").words[0],
        rs1_addr=0, rs1_rdata=0, rs2_addr=0, rs2_rdata=0,
        rd_addr=1, rd_wdata=5, trap=0,
        mem_addr=0, mem_rmask=0, mem_wmask=0, mem_rdata=0, mem_wdata=0,
    )
    assert add.rs1_addr == 1 and add.rs1_rdata == 5
    assert add.rs2_addr == 1 and add.rs2_rdata == 5
    assert add.rd_addr == 2 and add.rd_wdata == 10
    assert ebreak.rd_addr == 0 and ebreak.rd_wdata == 0
    assert ebreak.pc_rdata == 8 and ebreak.pc_wdata == 12  # halt advances pc


def test_x0_destination_reports_zero_wdata():
    cpu, _ = _run("addi x0, x0, 55\nebreak")
    assert cpu.retires[0].rd_addr == 0
    assert cpu.retires[0].rd_wdata == 0


def test_load_store_masks_and_data():
    cpu, error = _run(
        """
        li x5, 0x8000
        addi x1, x0, -2
        sw x1, 0(x5)
        lhu x2, 0(x5)
        lb x3, 1(x5)
        ebreak
        """
    )
    assert error is None
    by_insn = {event.insn & 0x7F: event for event in cpu.retires}
    store = by_insn[0x23]
    assert store.mem_wmask == 0xF and store.mem_rmask == 0
    assert store.mem_addr == 0x8000
    assert store.mem_wdata == 0xFFFFFFFE
    loads = [e for e in cpu.retires if e.mem_rmask]
    lhu, lb = loads
    assert lhu.mem_rmask == 0x3 and lhu.mem_rdata == 0xFFFE
    assert lhu.rd_wdata == 0xFFFE  # zero-extended load
    assert lb.mem_rmask == 0x1 and lb.mem_addr == 0x8001
    assert lb.mem_rdata == 0xFF
    assert lb.rd_wdata & 0xFFFFFFFF == 0xFFFFFFFF  # sign-extended


def test_branch_pc_chain():
    cpu, _ = _run(
        "addi x1, x0, 1\nbne x1, x0, taken\naddi x2, x0, 9\ntaken:\nebreak"
    )
    branch = cpu.retires[1]
    assert branch.pc_rdata == 4
    assert branch.pc_wdata == 12  # taken: skips the addi
    # the chain is consistent: each pc_wdata is the next pc_rdata
    rows = cpu.retires.rows()
    assert np.array_equal(rows[:-1, 2], rows[1:, 1])


def test_fault_appends_trap_row():
    cpu, error = _run("addi x1, x0, 2\nlw x2, 0(x1)\nebreak")
    assert error is not None and "misaligned" in error
    last = cpu.retires[-1]
    assert last.trap == 1
    assert last.pc_rdata == last.pc_wdata == cpu.pc
    assert last.insn == assemble("lw x2, 0(x1)").words[0]  # pc still fetchable
    assert len(cpu.retires) == 2  # the addi, then the trap


def test_unfetchable_trap_pc_reports_zero_insn():
    cpu, error = _run("addi x1, x0, 6\njalr x0, x1, 0")
    assert error is not None and "misaligned" in error
    assert cpu.retires[-1].trap == 1
    assert cpu.retires[-1].insn == 0  # pc=6 is not word-fetchable


def test_budget_exhaustion_is_not_a_trap():
    cpu, error = _run("jal x0, 0", max_instructions=9)
    assert is_budget_error(error)
    assert len(cpu.retires) == 9
    assert not cpu.retires.column("trap").any()


@pytest.mark.parametrize("engine", ["reference", "threaded"])
def test_smc_retires_patched_instruction(engine):
    patch = assemble("addi x4, x0, 77").words[0]
    low = patch & 0xFFF
    low = low - 4096 if low >= 2048 else low
    source = f"""
    lui x1, {(patch - low) >> 12 & 0xFFFFF}
    addi x1, x1, {low}
    addi x2, x0, 16
    sw x1, 0(x2)
    addi x4, x0, 55
    ebreak
    """
    cpu, error = _run(source, engine=engine)
    assert error is None
    patched = [e for e in cpu.retires if e.pc_rdata == 16]
    assert [e.insn for e in patched] == [patch]
    assert patched[0].rd_wdata == 77


# ----------------------------------------------------------------------
# Recording defaults and gating
# ----------------------------------------------------------------------
def test_record_retires_defaults_off_everywhere():
    assert Cpu(Memory()).record_retires is False
    device = GaussianSamplerDevice(MODULI)
    assert device.run(3, count=1).retires is None
    assert device.run_lanes([3], count=1).runs[0].retires is None
    assert device.last_retires is None
    engine = LaneEngine(np.zeros(64, dtype=np.uint8), lanes=1)
    assert engine.record_retires is False
    with pytest.raises(SimulationError, match="record_retires"):
        engine.retire_rows(0)


def test_record_retires_requires_events():
    with pytest.raises(SimulationError, match="requires record_events"):
        Cpu(Memory(), record_events=False, record_retires=True)
    with pytest.raises(SimulationError, match="requires record_events"):
        LaneEngine(
            np.zeros(64, dtype=np.uint8),
            lanes=1,
            record_events=False,
            record_retires=True,
        )
    cpu = Cpu(Memory())
    with pytest.raises(SimulationError, match="requires record_events"):
        cpu.record_events = False
        cpu.record_retires = True


def test_disabling_events_also_disables_retires():
    cpu = Cpu(Memory(size_bytes=1 << 16), record_retires=True)
    cpu.load_program(assemble("addi x1, x0, 1\nebreak").words, 0)
    cpu.run_reference()
    assert len(cpu.retires) == 2
    cpu.record_events = False
    assert cpu.record_retires is False
    assert len(cpu.retires) == 0


def test_disabled_recording_does_no_retire_work():
    cpu = Cpu(Memory(size_bytes=1 << 16))
    cpu.load_program(assemble("addi x1, x0, 1\nebreak").words, 0)
    cpu.run()
    assert len(cpu.retires) == 0
    cpu2 = Cpu(Memory(size_bytes=1 << 16))
    cpu2.load_program(assemble("addi x1, x0, 1\nebreak").words, 0)
    cpu2.run_reference()
    assert len(cpu2.retires) == 0


def test_run_matches_reference_retires_on_device_kernel():
    device = GaussianSamplerDevice(MODULI)
    threaded = device.run(9, count=2, record_retires=True)
    reference = device.run(9, count=2, engine="reference", record_retires=True)
    lanes = device.run(9, count=2, engine="lanes", record_retires=True)
    assert threaded.retires == reference.retires
    assert lanes.retires == reference.retires
    assert device.last_retires == [lanes.retires]


def test_field_names_are_rvfi_order():
    assert RETIRE_FIELDS == (
        "order", "pc_rdata", "pc_wdata", "insn",
        "rs1_addr", "rs1_rdata", "rs2_addr", "rs2_rdata",
        "rd_addr", "rd_wdata", "trap",
        "mem_addr", "mem_rmask", "mem_wmask", "mem_rdata", "mem_wdata",
    )


# ----------------------------------------------------------------------
# Pickle-size regression (the campaign checkpoints pickle devices)
# ----------------------------------------------------------------------
def test_device_pickle_unchanged_by_retire_runs():
    fresh = len(pickle.dumps(GaussianSamplerDevice(MODULI)))
    device = GaussianSamplerDevice(MODULI)
    device.run(5, count=2, record_retires=True)
    device.run_lanes([5, 6], count=2, record_retires=True)
    assert device.last_retires and all(
        len(log) > 0 for log in device.last_retires
    )
    blob = pickle.dumps(device)
    assert len(blob) == fresh
    assert pickle.loads(blob).last_retires is None
