"""Property fuzz: the CPU's ALU semantics against a Python reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu
from repro.riscv.memory import Memory

_M = 0xFFFFFFFF


def _signed(x):
    return x - (1 << 32) if x & 0x80000000 else x


REFERENCE = {
    "add": lambda a, b: (a + b) & _M,
    "sub": lambda a, b: (a - b) & _M,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & _M,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & _M,
    "slt": lambda a, b: int(_signed(a) < _signed(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: (_signed(a) * _signed(b)) & _M,
    "mulhu": lambda a, b: (a * b) >> 32,
    "mulh": lambda a, b: ((_signed(a) * _signed(b)) >> 32) & _M,
}


def run_op(op, a, b):
    cpu = Cpu(Memory(1 << 12), record_events=False)
    cpu.load_program(assemble(f"{op} a2, a0, a1\nebreak").words)
    cpu.write_register(10, a)
    cpu.write_register(11, b)
    cpu.run()
    return cpu.read_register(12)


class TestAluFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        op=st.sampled_from(sorted(REFERENCE)),
        a=st.integers(0, _M),
        b=st.integers(0, _M),
    )
    def test_property_matches_reference(self, op, a, b):
        assert run_op(op, a, b) == REFERENCE[op](a, b)

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(0, _M), b=st.integers(1, _M))
    def test_property_div_rem_invariant(self, a, b):
        """RISC-V guarantees a == div(a,b)*b + rem(a,b) (signed, trunc)."""
        quotient = _signed(run_op("div", a, b))
        remainder = _signed(run_op("rem", a, b))
        assert (_signed(a) - (quotient * _signed(b) + remainder)) % (1 << 32) == 0

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(0, _M), b=st.integers(1, _M))
    def test_property_divu_remu_invariant(self, a, b):
        quotient = run_op("divu", a, b)
        remainder = run_op("remu", a, b)
        assert quotient * b + remainder == a
        assert remainder < b
