"""Differential tests: threaded engine vs the scalar reference core.

The threaded engine (``repro.riscv.threaded``) must be bit-identical to
``Cpu.step_reference`` — same registers, pc, cycle count, instruction
count, EventLog contents, RVFI retire streams and error messages — on
every program, including the nasty corners: RV32IM division edge
cases, taken and not-taken branches inside superblocks, unrolled loop
iterations that fault midway, instruction budgets landing inside a
block, and self-modifying code invalidating translations.  All
comparisons go through the shared conformance harness
(:mod:`repro.verify.conformance`), the same one the ``cpu.retire_log``
fuzz oracle drives.
"""

import pickle

import pytest

from repro.errors import ParameterError, SimulationError
from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu, EventLog
from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.memory import Memory
from repro.riscv.programs.gaussian import gaussian_sampler_source
from repro.riscv.programs.uniform import ternary_sampler_source, uniform_sampler_source
from repro.riscv.threaded import (
    MAX_BLOCK_INSTRUCTIONS,
    clear_translation_cache,
    translation_cache_size,
)
from repro.verify.conformance import assert_engines_match, run_scalar_engine

MODULI = [0xFFEE001, 0xFFC4001, 0x7FE2001, 0x7F54001]

INT_MIN = 0x80000000


def _run_pair(words, max_instructions=10_000, record_events=True, setup=None):
    """Run the same program on both engines, returning both CPUs.

    A thin wrapper over the shared conformance harness
    (:mod:`repro.verify.conformance`): machine state, EventLog, error
    strings and — when events are on — the full RVFI retire streams
    must all match.
    """
    runs = [
        run_scalar_engine(
            words,
            engine=engine,
            max_instructions=max_instructions,
            memory_size=1 << 20,
            record_events=record_events,
            record_retires=record_events,
            setup=setup,
        )
        for engine in ("threaded", "reference")
    ]
    assert_engines_match(runs[0], runs[1])
    return runs[0].cpu, runs[1].cpu


def _asm(source: str):
    return assemble(source).words


# ----------------------------------------------------------------------
# Per-mnemonic conformance
# ----------------------------------------------------------------------
ALU_RR = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
]
OPERAND_PAIRS = [
    (5, 3),
    (0xFFFFFFF0, 7),
    (INT_MIN, 0xFFFFFFFF),  # INT_MIN / -1
    (INT_MIN, 0),  # division by zero
    (123, 0),
    (0, 0),
]


@pytest.mark.parametrize("mnemonic", ALU_RR)
@pytest.mark.parametrize("a,b", OPERAND_PAIRS)
def test_alu_rr_conformance(mnemonic, a, b):
    source = f"""
    lui x1, {a >> 12}
    addi x1, x1, {_lo12(a)}
    lui x2, {b >> 12}
    addi x2, x2, {_lo12(b)}
    {mnemonic} x3, x1, x2
    ebreak
    """
    _run_pair(_asm(source))


def _lo12(value):
    low = value & 0xFFF
    return low - 4096 if low >= 2048 else low


@pytest.mark.parametrize(
    "source",
    [
        "addi x1, x0, -7\nslti x2, x1, 3\nebreak",
        "addi x1, x0, -7\nsltiu x2, x1, 3\nebreak",
        "addi x1, x0, 0x55\nxori x2, x1, 0x0F\nori x3, x1, 0x700\nandi x4, x1, 0xF\nebreak",
        "lui x1, 0x80000\nsrai x2, x1, 4\nsrli x3, x1, 4\nslli x4, x1, 1\nebreak",
        "auipc x1, 1\nauipc x2, 0xFFFFF\nebreak",
        "lui x1, 0xFFFFF\nebreak",
    ],
)
def test_alu_imm_and_upper(source):
    _run_pair(_asm(source))


def test_div_rem_by_zero_results():
    threaded, _ = _run_pair(
        _asm(
            """
            addi x1, x0, 123
            div x2, x1, x0
            divu x3, x1, x0
            rem x4, x1, x0
            remu x5, x1, x0
            ebreak
            """
        )
    )
    assert threaded.registers[2] == 0xFFFFFFFF
    assert threaded.registers[3] == 0xFFFFFFFF
    assert threaded.registers[4] == 123
    assert threaded.registers[5] == 123


def test_div_overflow_int_min():
    threaded, _ = _run_pair(
        _asm(
            """
            lui x1, 0x80000
            addi x2, x0, -1
            div x3, x1, x2
            rem x4, x1, x2
            ebreak
            """
        )
    )
    assert threaded.registers[3] == INT_MIN
    assert threaded.registers[4] == 0


# ----------------------------------------------------------------------
# Control flow: branches (both directions), jumps, loops
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mnemonic", ["beq", "bne", "blt", "bge", "bltu", "bgeu"])
@pytest.mark.parametrize("a,b", [(1, 1), (1, 2), (0xFFFFFFFF, 1), (1, 0xFFFFFFFF)])
def test_forward_branches(mnemonic, a, b):
    source = f"""
    lui x1, {a >> 12}
    addi x1, x1, {_lo12(a)}
    lui x2, {b >> 12}
    addi x2, x2, {_lo12(b)}
    {mnemonic} x1, x2, taken
    addi x3, x0, 111
    ebreak
taken:
    addi x3, x0, 222
    ebreak
    """
    _run_pair(_asm(source))


def test_backward_branch_loop():
    # Tight backward loop: statically predicted taken, exercised both
    # ways (iterations take it, the final check falls through).
    _run_pair(
        _asm(
            """
            addi x1, x0, 10
            addi x2, x0, 0
        loop:
            addi x2, x2, 3
            addi x1, x1, -1
            bne x1, x0, loop
            ebreak
            """
        )
    )


def test_jal_jalr_linkage():
    _run_pair(
        _asm(
            """
            jal x1, sub
            addi x3, x0, 5
            ebreak
        sub:
            addi x2, x0, 9
            jalr x0, x1, 0
            """
        )
    )


def test_jalr_clears_low_bit():
    _run_pair(
        _asm(
            """
            addi x1, x0, 13
            jalr x2, x1, 0
            ebreak
            addi x3, x0, 1
            ebreak
            """
        )
    )


# ----------------------------------------------------------------------
# Memory
# ----------------------------------------------------------------------
def test_loads_stores_all_widths():
    _run_pair(
        _asm(
            """
            lui x1, 0x10
            addi x2, x0, -2
            sw x2, 0(x1)
            lw x3, 0(x1)
            lh x4, 0(x1)
            lhu x5, 0(x1)
            lb x6, 1(x1)
            lbu x7, 1(x1)
            sh x2, 8(x1)
            sb x2, 12(x1)
            lw x8, 8(x1)
            lw x9, 12(x1)
            ebreak
            """
        )
    )


def test_memory_fault_mid_block():
    # The faulting store commits the prefix of the block exactly.
    _run_pair(
        _asm(
            """
            addi x1, x0, 100
            addi x2, x0, 3
            sw x2, 3(x1)
            ebreak
            """
        )
    )


def test_fault_in_unrolled_iteration():
    # A loop small enough to unroll whose load faults on a *later*
    # unrolled iteration: the partial-commit bookkeeping must match the
    # reference instruction-by-instruction.
    _run_pair(
        _asm(
            """
            lui x6, 0x100
            addi x6, x6, -16
        loop:
            addi x6, x6, 4
            lw x7, 0(x6)
            jal x0, loop
            """
        ),
        max_instructions=100,
    )


def test_misaligned_store_fault():
    _run_pair(
        _asm(
            """
            addi x1, x0, 2
            sw x1, 0(x1)
            ebreak
            """
        )
    )


# ----------------------------------------------------------------------
# Instruction budget: block-granularity check, exact semantics
# ----------------------------------------------------------------------
def test_budget_sweep_straight_line():
    words = _asm("addi x1, x0, 1\n" * 12 + "ebreak")
    for budget in range(0, 15):
        _run_pair(words, max_instructions=budget)


def test_budget_sweep_loop():
    words = _asm(
        """
        addi x1, x0, 5
    loop:
        addi x1, x1, -1
        bne x1, x0, loop
        ebreak
        """
    )
    for budget in range(0, 14):
        _run_pair(words, max_instructions=budget)


def test_budget_jal_self_loop():
    words = _asm("jal x0, 0")
    for budget in (1, 5, 100):
        _run_pair(words, max_instructions=budget)
    with pytest.raises(SimulationError, match="instruction budget"):
        memory = Memory()
        cpu = Cpu(memory)
        cpu.load_program(words, 0)
        cpu.run(max_instructions=50)


def test_budget_error_message_exact():
    memory = Memory()
    cpu = Cpu(memory)
    cpu.load_program(_asm("addi x1, x0, 1\njal x0, 0"), 0)
    with pytest.raises(SimulationError) as err:
        cpu.run(max_instructions=3)
    assert str(err.value) == f"instruction budget 3 exhausted at pc={cpu.pc:#x}"


# ----------------------------------------------------------------------
# Self-modifying code
# ----------------------------------------------------------------------
def test_self_modifying_code_invalidates_blocks():
    # The program overwrites an upcoming instruction (addi x4, x0, 55)
    # with addi x4, x0, 77; the guard must invalidate translations so
    # the patched word executes.
    patch = assemble("addi x4, x0, 77").words[0]
    source = f"""
    lui x1, {patch >> 12}
    addi x1, x1, {_lo12(patch)}
    addi x2, x0, 20
    sw x1, 0(x2)
    addi x3, x0, 1
    addi x4, x0, 55
    ebreak
    """
    threaded, reference = _run_pair(_asm(source))
    assert threaded.registers[4] == 77
    assert reference.registers[4] == 77


def test_smc_reexecution_uses_patched_code():
    # Run the patch loop twice (second entry via warm cache) to make
    # sure invalidation also clears the device-level shared cache.
    device = GaussianSamplerDevice(MODULI)
    first = device.run(seed=11, count=2)
    second = device.run(seed=11, count=2)
    assert first.values == second.values
    assert first.events == second.events


# ----------------------------------------------------------------------
# Full kernels: bit-identical end to end
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "source_fn",
    [gaussian_sampler_source, uniform_sampler_source, ternary_sampler_source],
)
@pytest.mark.parametrize("record_events", [True, False])
def test_kernels_bit_identical(source_fn, record_events):
    program = assemble(source_fn())
    def setup(cpu, memory):
        for j, m in enumerate(MODULI):
            memory.store_word(0x4000 + 4 * j, m)
        cpu.write_register(10, 0x5000)
        cpu.write_register(11, 4)
        cpu.write_register(12, len(MODULI))
        cpu.write_register(13, 0x4000)
        cpu.write_register(14, 0xC0FFEE)
        cpu.write_register(15, 41)
    _run_pair(
        program.words,
        max_instructions=200_000,
        record_events=record_events,
        setup=setup,
    )


@pytest.mark.parametrize("engine", ["threaded", "reference"])
@pytest.mark.parametrize("seed", [1, 77, 4242])
def test_device_engine_parity(engine, seed):
    device = GaussianSamplerDevice(MODULI)
    run = device.run(seed, count=3, engine=engine)
    other = device.run(seed, count=3, engine="reference")
    assert run.values == other.values
    assert run.residues == other.residues
    assert run.cycle_count == other.cycle_count
    assert run.instruction_count == other.instruction_count
    assert run.events == other.events


def test_device_rejects_unknown_engine():
    device = GaussianSamplerDevice(MODULI)
    with pytest.raises(ParameterError, match="unknown engine"):
        device.run(1, count=1, engine="turbo")


def test_warm_cache_second_run_identical():
    device = GaussianSamplerDevice(MODULI)
    cold = device.run(5, count=4)
    assert translation_cache_size() >= 0  # process-level cache exists
    warm = device.run(5, count=4)
    assert cold.values == warm.values
    assert cold.events == warm.events
    assert cold.cycle_count == warm.cycle_count


def test_translation_cache_clear():
    device = GaussianSamplerDevice(MODULI)
    device.run(3, count=1)
    clear_translation_cache()
    assert translation_cache_size() == 0
    rerun = device.run(3, count=1)
    reference = device.run(3, count=1, engine="reference")
    assert rerun.events == reference.events


def test_block_length_cap():
    # A straight-line run longer than any block: correctness across the
    # forced block split at MAX_BLOCK_INSTRUCTIONS.
    body = "addi x1, x1, 1\n" * (3 * MAX_BLOCK_INSTRUCTIONS + 5)
    threaded, _ = _run_pair(_asm(body + "ebreak"))
    assert threaded.registers[1] == 3 * MAX_BLOCK_INSTRUCTIONS + 5


# ----------------------------------------------------------------------
# EventLog API
# ----------------------------------------------------------------------
def test_eventlog_reserve_growth():
    log = EventLog(capacity=4)
    log.reserve(3)
    capacity_before = log._data.shape[0]
    log.reserve(10 * capacity_before)
    assert log._data.shape[0] >= 10 * capacity_before
    # doubled-buffer growth: capacity stays a power-of-two multiple
    assert log._data.shape[0] % capacity_before == 0
    assert len(log) == 0


def test_eventlog_eq_not_implemented_for_generic_iterables():
    log = EventLog()
    log.append(op_class=1, word=2, rs1_value=3, rs2_value=4, result=5,
               old_rd=6, address=7, pc=8)
    assert log.__eq__(42) is NotImplemented
    assert log.__eq__("nope") is NotImplemented
    assert (log == 42) is False
    assert (log != 42) is True


def test_eventlog_pickle_roundtrip_after_threaded_run():
    device = GaussianSamplerDevice(MODULI)
    run = device.run(9, count=2)
    clone = pickle.loads(pickle.dumps(run.events))
    assert clone == run.events
