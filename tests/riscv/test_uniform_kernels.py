"""Tests for the on-device ternary and uniform sampling kernels."""

import numpy as np
import pytest

from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.programs.uniform import (
    GoldenTernarySampler,
    ternary_sampler_source,
    uniform_sampler_source,
)

Q = 132120577


@pytest.fixture(scope="module")
def ternary_device():
    return GaussianSamplerDevice([Q], program_source=ternary_sampler_source())


@pytest.fixture(scope="module")
def uniform_device():
    return GaussianSamplerDevice([Q], program_source=uniform_sampler_source())


class TestTernaryKernel:
    def test_values_are_ternary(self, ternary_device):
        run = ternary_device.run(5, count=128, record_events=False)
        assert set(run.values) <= {-1, 0, 1}
        assert set(run.values) == {-1, 0, 1}

    def test_matches_golden_model(self, ternary_device):
        for seed in (1, 42, 0xABCDEF):
            run = ternary_device.run(seed, count=32, record_events=False)
            assert run.values == GoldenTernarySampler(seed).sample_vector(32)

    def test_residue_encoding(self, ternary_device):
        run = ternary_device.run(9, count=64, record_events=False)
        for value, residue in zip(run.values, run.residues[0]):
            assert residue == (value if value >= 0 else Q - 1)

    def test_roughly_uniform_over_three_values(self, ternary_device):
        run = ternary_device.run(77, count=600, record_events=False)
        counts = {v: run.values.count(v) for v in (-1, 0, 1)}
        for count in counts.values():
            assert 140 < count < 260  # ~200 each

    def test_multi_limb(self):
        from repro.ring.primes import generate_ntt_primes

        moduli = [m.value for m in generate_ntt_primes(20, 2, 64)]
        device = GaussianSamplerDevice(moduli, program_source=ternary_sampler_source())
        run = device.run(3, count=16, record_events=False)
        for value, r0, r1 in zip(run.values, run.residues[0], run.residues[1]):
            if value >= 0:
                assert r0 == r1 == value
            else:
                assert r0 == moduli[0] - 1
                assert r1 == moduli[1] - 1


class TestUniformKernel:
    def test_residues_in_range(self, uniform_device):
        run = uniform_device.run(11, count=256, record_events=False)
        assert all(0 <= r < Q for r in run.residues[0])

    def test_spread(self, uniform_device):
        run = uniform_device.run(12, count=256, record_events=False)
        residues = np.array(run.residues[0], dtype=float)
        assert residues.max() > 0.8 * Q
        assert residues.min() < 0.2 * Q
        assert abs(residues.mean() / Q - 0.5) < 0.08

    def test_deterministic(self, uniform_device):
        a = uniform_device.run(13, count=32, record_events=False)
        b = uniform_device.run(13, count=32, record_events=False)
        assert a.residues[0] == b.residues[0]

    def test_limbs_are_independent_draws(self):
        from repro.ring.primes import generate_ntt_primes

        moduli = [m.value for m in generate_ntt_primes(20, 2, 64)]
        device = GaussianSamplerDevice(moduli, program_source=uniform_sampler_source())
        run = device.run(14, count=64, record_events=False)
        # residues of limb 0 and limb 1 come from separate PRNG draws
        assert run.residues[0] != run.residues[1]
