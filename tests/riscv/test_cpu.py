"""Unit tests for the RV32IM interpreter."""

import pytest

from repro.errors import SimulationError
from repro.riscv import cycles as cy
from repro.riscv.assembler import assemble
from repro.riscv.cpu import Cpu
from repro.riscv.memory import Memory


def run_program(source, registers=None, max_instructions=100000, memory_size=1 << 16):
    cpu = Cpu(Memory(memory_size))
    prog = assemble(source)
    cpu.load_program(prog.words)
    for index, value in (registers or {}).items():
        cpu.write_register(index, value)
    cpu.run(max_instructions=max_instructions)
    return cpu


class TestArithmetic:
    def test_addi_chain(self):
        cpu = run_program("addi a0, zero, 5\naddi a0, a0, 7\nebreak")
        assert cpu.read_register(10) == 12

    def test_sub_wraps(self):
        cpu = run_program("li a0, 0\nli a1, 1\nsub a2, a0, a1\nebreak")
        assert cpu.read_register(12) == 0xFFFFFFFF

    def test_x0_never_written(self):
        cpu = run_program("addi zero, zero, 5\nebreak")
        assert cpu.read_register(0) == 0

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("sll", 1, 5, 32),
            ("srl", 0x80000000, 4, 0x08000000),
            ("sra", 0x80000000, 4, 0xF8000000),
            ("slt", 0xFFFFFFFF, 1, 1),  # -1 < 1 signed
            ("sltu", 0xFFFFFFFF, 1, 0),  # huge unsigned
        ],
    )
    def test_rtype_ops(self, op, a, b, expected):
        cpu = run_program(
            f"{op} a2, a0, a1\nebreak", registers={10: a, 11: b}
        )
        assert cpu.read_register(12) == expected

    def test_shift_amount_masked_to_5_bits(self):
        cpu = run_program("sll a2, a0, a1\nebreak", registers={10: 1, 11: 33})
        assert cpu.read_register(12) == 2

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("mul", 7, 6, 42),
            ("mul", 0xFFFFFFFF, 0xFFFFFFFF, 1),  # (-1)*(-1)
            ("mulh", 0xFFFFFFFF, 0xFFFFFFFF, 0),  # high of 1
            ("mulhu", 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFE),
            ("mulhsu", 0xFFFFFFFF, 2, 0xFFFFFFFF),  # -1 * 2 = -2, high = -1
            ("div", 7, 2, 3),
            ("div", 0xFFFFFFF9, 2, 0xFFFFFFFD),  # -7 / 2 = -3 (trunc)
            ("divu", 7, 2, 3),
            ("rem", 0xFFFFFFF9, 2, 0xFFFFFFFF),  # -7 % 2 = -1 (trunc)
            ("remu", 7, 2, 1),
            ("div", 5, 0, 0xFFFFFFFF),  # div by zero per spec
            ("rem", 5, 0, 5),
            ("div", 0x80000000, 0xFFFFFFFF, 0x80000000),  # overflow case
            ("rem", 0x80000000, 0xFFFFFFFF, 0),
        ],
    )
    def test_m_extension(self, op, a, b, expected):
        cpu = run_program(f"{op} a2, a0, a1\nebreak", registers={10: a, 11: b})
        assert cpu.read_register(12) == expected


class TestControlFlow:
    def test_loop_countdown(self):
        cpu = run_program(
            """
                li   t0, 10
                li   t1, 0
            loop:
                addi t1, t1, 3
                addi t0, t0, -1
                bnez t0, loop
                ebreak
            """
        )
        assert cpu.read_register(6) == 30

    def test_jal_links_return_address(self):
        cpu = run_program(
            """
                call fn
                ebreak
            fn:
                li a0, 99
                ret
            """
        )
        assert cpu.read_register(10) == 99

    def test_branch_cycle_asymmetry(self):
        taken = run_program("x:\n beq zero, zero, y\ny:\n ebreak")
        not_taken = run_program("bne zero, zero, y\ny:\n ebreak")
        assert taken.cycle_count > not_taken.cycle_count

    def test_runaway_budget(self):
        with pytest.raises(SimulationError):
            run_program("x:\n j x\n ebreak", max_instructions=100)


class TestMemoryOps:
    def test_store_load_word(self):
        cpu = run_program(
            """
                li   t0, 0x8000
                li   t1, 0x12345678
                sw   t1, 0(t0)
                lw   a0, 0(t0)
                ebreak
            """
        )
        assert cpu.read_register(10) == 0x12345678

    def test_byte_sign_extension(self):
        cpu = run_program(
            """
                li  t0, 0x8000
                li  t1, 0xFF
                sb  t1, 0(t0)
                lb  a0, 0(t0)
                lbu a1, 0(t0)
                ebreak
            """
        )
        assert cpu.read_register(10) == 0xFFFFFFFF
        assert cpu.read_register(11) == 0xFF

    def test_half_sign_extension(self):
        cpu = run_program(
            """
                li  t0, 0x8000
                li  t1, 0x8001
                sh  t1, 0(t0)
                lh  a0, 0(t0)
                lhu a1, 0(t0)
                ebreak
            """
        )
        assert cpu.read_register(10) == 0xFFFF8001
        assert cpu.read_register(11) == 0x8001

    def test_misaligned_word_faults(self):
        with pytest.raises(SimulationError):
            run_program("li t0, 0x8002\nlw a0, 0(t0)\nebreak")

    def test_out_of_range_faults(self):
        with pytest.raises(SimulationError):
            run_program("li t0, 0x7FFFFFF0\nlw a0, 0(t0)\nebreak")


class TestEvents:
    def test_event_count_matches_instructions(self):
        cpu = run_program("addi a0, zero, 1\naddi a0, a0, 1\nebreak")
        assert len(cpu.events) == cpu.instruction_count == 3

    def test_events_disabled(self):
        cpu = Cpu(Memory(1 << 16), record_events=False)
        prog = assemble("addi a0, zero, 1\nebreak")
        cpu.load_program(prog.words)
        cpu.run()
        assert cpu.events == []
        assert cpu.instruction_count == 2

    def test_event_classes(self):
        cpu = run_program(
            """
                li  t0, 0x8000
                mul t1, t0, t0
                sw  t1, 0(t0)
                lw  t2, 0(t0)
                ebreak
            """
        )
        classes = [e.op_class for e in cpu.events]
        assert cy.OP_MUL in classes
        assert cy.OP_STORE in classes
        assert cy.OP_LOAD in classes
        assert classes[-1] == cy.OP_SYSTEM

    def test_event_carries_operands_and_result(self):
        cpu = run_program("addi a0, zero, 5\nadd a1, a0, a0\nebreak")
        add_event = cpu.events[1]
        assert add_event.rs1_value == 5
        assert add_event.rs2_value == 5
        assert add_event.result == 10

    def test_store_event_has_address_and_data(self):
        cpu = run_program(
            "li t0, 0x8000\nli t1, 7\nsw t1, 4(t0)\nebreak"
        )
        store = [e for e in cpu.events if e.op_class == cy.OP_STORE][0]
        assert store.address == 0x8004
        assert store.result == 7

    def test_cycle_count_accumulates(self):
        cpu = run_program("mul t0, t0, t0\nebreak")
        assert cpu.cycle_count == cy.CYCLES[cy.OP_MUL] + cy.CYCLES[cy.OP_SYSTEM]


class TestEventStorageConsistency:
    """Regressions for stale event buffers around reset / disable."""

    def test_disabling_recording_drops_stale_events(self):
        cpu = run_program("addi a0, zero, 1\nebreak")
        assert len(cpu.events) > 0
        cpu.record_events = False
        assert cpu.events == []

    def test_reload_clears_previous_run_events(self):
        cpu = run_program("addi a0, zero, 1\naddi a0, a0, 1\nebreak")
        first_run = len(cpu.events)
        assert first_run == 3
        prog = assemble("ebreak")
        cpu.load_program(prog.words)
        assert cpu.events == []
        cpu.run()
        assert len(cpu.events) == 1

    def test_no_events_accumulate_while_disabled(self):
        cpu = Cpu(Memory(1 << 16), record_events=False)
        prog = assemble("addi a0, zero, 1\nebreak")
        cpu.load_program(prog.words)
        cpu.run()
        cpu.record_events = True
        assert cpu.events == []

    def test_reenabling_starts_fresh(self):
        cpu = run_program("addi a0, zero, 1\nebreak")
        cpu.record_events = False
        cpu.record_events = True
        assert cpu.events == []
        prog = assemble("addi a0, zero, 2\nebreak")
        cpu.load_program(prog.words)
        cpu.run()
        assert len(cpu.events) == 2
        assert cpu.events[0].rs2_value == 0

    def test_event_log_slicing_and_iteration(self):
        cpu = run_program("addi a0, zero, 1\naddi a0, a0, 1\nebreak")
        events = cpu.events
        as_list = list(events)
        assert len(as_list) == 3
        assert events[0] == as_list[0]
        assert events[-1].op_class == cy.OP_SYSTEM
        assert events[0:2] == as_list[0:2]
        assert events == as_list
