"""Tests for the disassembler: round trip through the assembler."""

import pytest

from repro.riscv.assembler import assemble
from repro.riscv.disasm import disassemble, format_instruction
from repro.riscv.isa import SPECS, decode
from repro.riscv.programs.gaussian import gaussian_sampler_source


class TestFormat:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("addi a0, a1, -5", "addi a0, a1, -5"),
            ("add a0, a1, a2", "add a0, a1, a2"),
            ("lw t0, 8(sp)", "lw t0, 8(sp)"),
            ("sw t0, -4(sp)", "sw t0, -4(sp)"),
            ("slli t1, t2, 7", "slli t1, t2, 7"),
            ("ebreak", "ebreak"),
            ("mul s1, s2, s3", "mul s1, s2, s3"),
        ],
    )
    def test_simple_instructions(self, source, expected):
        word = assemble(source).words[0]
        assert format_instruction(decode(word)) == expected

    def test_branch_shows_absolute_target(self):
        prog = assemble("top:\n nop\n beq a0, a1, top")
        text = format_instruction(decode(prog.words[1]), address=4)
        assert text == "beq a0, a1, 0x0"


class TestRoundTrip:
    def test_kernel_reassembles_identically(self):
        """disassemble(assemble(kernel)) reassembles to the same words."""
        original = assemble(gaussian_sampler_source()).words
        listing = disassemble(original)
        # strip addresses, replace absolute branch/jump targets with
        # offsets the assembler accepts (targets render as hex numbers)
        rebuilt = []
        for address, line in enumerate(listing):
            text = line.split(": ", 1)[1]
            mnemonic = text.split()[0]
            if mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu", "jal"):
                # convert absolute target back to a pc-relative literal
                head, target = text.rsplit(" ", 1)
                offset = int(target, 16) - 4 * address
                text = f"{head} {offset}"
            rebuilt.append(text)
        words = assemble("\n".join(rebuilt)).words
        assert words == original

    def test_every_word_decodable(self):
        words = assemble(gaussian_sampler_source()).words
        lines = disassemble(words)
        assert len(lines) == len(words)
        assert all(":" in line for line in lines)


# ----------------------------------------------------------------------
# Exhaustive opcode coverage: every mnemonic the ISA defines must
# survive assemble -> decode -> format -> assemble bit-exactly.
# ----------------------------------------------------------------------
def _operand_variants(mnemonic: str, fmt: str):
    """Representative source renderings covering the operand corners."""
    if fmt == "U":
        return [f"{mnemonic} a0, 0x12345", f"{mnemonic} t6, 0", f"{mnemonic} s1, 0xFFFFF"]
    if fmt == "J":  # assembled at pc 0, so absolute target == offset
        return [f"{mnemonic} ra, 8", f"{mnemonic} zero, 0"]
    if fmt == "B":
        return [f"{mnemonic} a0, a1, 8", f"{mnemonic} zero, t0, 4"]
    if fmt == "S":
        return [f"{mnemonic} a0, 8(sp)", f"{mnemonic} t1, -4(s0)"]
    if mnemonic == "jalr":
        return ["jalr ra, 0(t0)", "jalr zero, -8(a0)"]
    if mnemonic in ("lb", "lh", "lw", "lbu", "lhu"):
        return [f"{mnemonic} a0, 8(sp)", f"{mnemonic} t1, -4(s0)"]
    if mnemonic in ("slli", "srli", "srai"):
        return [f"{mnemonic} a0, a1, 0", f"{mnemonic} t0, t1, 31"]
    if mnemonic in ("ebreak", "ecall"):
        return [mnemonic]
    if fmt == "I":
        return [f"{mnemonic} a0, a1, -2048", f"{mnemonic} t0, zero, 2047"]
    return [f"{mnemonic} a0, a1, a2", f"{mnemonic} t0, zero, t6"]


@pytest.mark.parametrize("mnemonic", sorted(SPECS))
def test_round_trip_every_mnemonic(mnemonic):
    """assemble(format(decode(assemble(x)))) is the identity per opcode."""
    for source in _operand_variants(mnemonic, SPECS[mnemonic].fmt):
        word = assemble(source).words[0]
        decoded = decode(word)
        assert decoded.mnemonic == mnemonic
        text = format_instruction(decoded, address=0)
        assert assemble(text).words[0] == word, (source, text)
