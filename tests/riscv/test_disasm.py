"""Tests for the disassembler: round trip through the assembler."""

import pytest

from repro.riscv.assembler import assemble
from repro.riscv.disasm import disassemble, format_instruction
from repro.riscv.isa import decode
from repro.riscv.programs.gaussian import gaussian_sampler_source


class TestFormat:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("addi a0, a1, -5", "addi a0, a1, -5"),
            ("add a0, a1, a2", "add a0, a1, a2"),
            ("lw t0, 8(sp)", "lw t0, 8(sp)"),
            ("sw t0, -4(sp)", "sw t0, -4(sp)"),
            ("slli t1, t2, 7", "slli t1, t2, 7"),
            ("ebreak", "ebreak"),
            ("mul s1, s2, s3", "mul s1, s2, s3"),
        ],
    )
    def test_simple_instructions(self, source, expected):
        word = assemble(source).words[0]
        assert format_instruction(decode(word)) == expected

    def test_branch_shows_absolute_target(self):
        prog = assemble("top:\n nop\n beq a0, a1, top")
        text = format_instruction(decode(prog.words[1]), address=4)
        assert text == "beq a0, a1, 0x0"


class TestRoundTrip:
    def test_kernel_reassembles_identically(self):
        """disassemble(assemble(kernel)) reassembles to the same words."""
        original = assemble(gaussian_sampler_source()).words
        listing = disassemble(original)
        # strip addresses, replace absolute branch/jump targets with
        # offsets the assembler accepts (targets render as hex numbers)
        rebuilt = []
        for address, line in enumerate(listing):
            text = line.split(": ", 1)[1]
            mnemonic = text.split()[0]
            if mnemonic in ("beq", "bne", "blt", "bge", "bltu", "bgeu", "jal"):
                # convert absolute target back to a pc-relative literal
                head, target = text.rsplit(" ", 1)
                offset = int(target, 16) - 4 * address
                text = f"{head} {offset}"
            rebuilt.append(text)
        words = assemble("\n".join(rebuilt)).words
        assert words == original

    def test_every_word_decodable(self):
        words = assemble(gaussian_sampler_source()).words
        lines = disassemble(words)
        assert len(lines) == len(words)
        assert all(":" in line for line in lines)
