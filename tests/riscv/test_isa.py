"""Unit tests for RV32IM encode/decode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblyError, SimulationError
from repro.riscv.isa import SPECS, decode, encode, register_number


class TestRegisters:
    def test_abi_names(self):
        assert register_number("zero") == 0
        assert register_number("ra") == 1
        assert register_number("sp") == 2
        assert register_number("a0") == 10
        assert register_number("t6") == 31

    def test_x_names(self):
        for i in range(32):
            assert register_number(f"x{i}") == i

    def test_fp_alias(self):
        assert register_number("fp") == register_number("s0") == 8

    def test_unknown(self):
        with pytest.raises(AssemblyError):
            register_number("q7")


class TestKnownEncodings:
    """Golden words cross-checked against the RISC-V spec examples."""

    @pytest.mark.parametrize(
        "word,mnemonic",
        [
            (0x00100073, "ebreak"),
            (0x00000073, "ecall"),
            (0x00000013, "addi"),  # nop
        ],
    )
    def test_special(self, word, mnemonic):
        assert decode(word).mnemonic == mnemonic
        if mnemonic == "addi":
            assert encode("addi", rd=0, rs1=0, imm=0) == word

    def test_addi_example(self):
        # addi x1, x2, 100 -> imm=100, rs1=2, f3=0, rd=1, op=0x13
        word = encode("addi", rd=1, rs1=2, imm=100)
        assert word == (100 << 20) | (2 << 15) | (1 << 7) | 0x13

    def test_mul_uses_m_extension_funct7(self):
        word = encode("mul", rd=3, rs1=4, rs2=5)
        assert (word >> 25) == 0x01


class TestRoundtrip:
    @pytest.mark.parametrize("mnemonic", sorted(SPECS))
    def test_every_mnemonic_roundtrips(self, mnemonic):
        spec = SPECS[mnemonic]
        kwargs = dict(rd=5, rs1=6, rs2=7, imm=0)
        if spec.fmt == "B":
            kwargs["imm"] = -8
        elif spec.fmt == "J":
            kwargs["imm"] = 2048
        elif spec.fmt == "U":
            kwargs["imm"] = 0x12345
        elif mnemonic in ("slli", "srli", "srai"):
            kwargs["imm"] = 7
        elif spec.fmt in ("I", "S"):
            kwargs["imm"] = -5
        word = encode(mnemonic, **kwargs)
        dec = decode(word)
        assert dec.mnemonic == mnemonic
        if spec.fmt in ("R",):
            assert (dec.rd, dec.rs1, dec.rs2) == (5, 6, 7)
        if spec.fmt == "B":
            assert dec.imm == -8
        if spec.fmt == "J":
            assert dec.imm == 2048

    @settings(max_examples=200, deadline=None)
    @given(
        rd=st.integers(0, 31),
        rs1=st.integers(0, 31),
        imm=st.integers(-2048, 2047),
    )
    def test_property_itype_roundtrip(self, rd, rs1, imm):
        dec = decode(encode("addi", rd=rd, rs1=rs1, imm=imm))
        assert (dec.rd, dec.rs1, dec.imm) == (rd, rs1, imm)

    @settings(max_examples=100, deadline=None)
    @given(imm=st.integers(-4096, 4095).map(lambda x: x * 2).filter(lambda x: -4096 <= x <= 4094))
    def test_property_branch_offset_roundtrip(self, imm):
        dec = decode(encode("beq", rs1=1, rs2=2, imm=imm))
        assert dec.imm == imm

    @settings(max_examples=100, deadline=None)
    @given(imm=st.integers(-(1 << 19), (1 << 19) - 1).map(lambda x: x * 2))
    def test_property_jal_offset_roundtrip(self, imm):
        dec = decode(encode("jal", rd=1, imm=imm))
        assert dec.imm == imm


class TestValidation:
    def test_imm_out_of_range(self):
        with pytest.raises(AssemblyError):
            encode("addi", rd=1, rs1=1, imm=5000)

    def test_odd_branch_offset(self):
        with pytest.raises(AssemblyError):
            encode("beq", rs1=0, rs2=0, imm=3)

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            encode("fmadd", rd=0)

    def test_illegal_word(self):
        with pytest.raises(SimulationError):
            decode(0xFFFFFFFF)

    def test_illegal_system(self):
        with pytest.raises(SimulationError):
            decode(0x30200073)  # mret, unsupported
