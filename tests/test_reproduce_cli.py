"""Smoke tests for the command-line reproduction entry point."""

import pytest

from repro.reproduce import main, run_table3, run_table4


class TestCli:
    def test_table3(self, capsys):
        main(["table3"])
        out = capsys.readouterr().out
        assert "without hints" in out
        assert "382.25" in out  # the paper reference is printed

    def test_table4(self, capsys):
        main(["table4"])
        out = capsys.readouterr().out
        assert "signs alone cannot" in out

    def test_fig3(self, capsys):
        main(["fig3"])
        out = capsys.readouterr().out
        assert out.count("window") == 3

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_table1_prints_campaign_timings(self, capsys):
        main(["table1", "--traces", "8"])
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "sign accuracy" in out
        assert "per-stage timings" in out
        for stage in ("capture", "segment", "classify", "wall"):
            assert stage in out
        assert "threaded engine" in out

    def test_table1_engine_flag(self, capsys):
        main(["table1", "--traces", "8", "--engine", "lanes"])
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "lanes engine" in out

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["table1", "--engine", "warp"])

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["table1", "--backend", "cuda"])

    def test_bad_backend_env_caught_at_parse_time(self, monkeypatch):
        from repro.errors import ParameterError

        monkeypatch.setenv("REVEAL_BACKEND", "cuda")
        with pytest.raises(ParameterError, match="unknown REVEAL_BACKEND"):
            main(["table3"])

    def test_backend_flag_selects_backend(self, capsys, monkeypatch):
        from repro import backends

        monkeypatch.delenv("REVEAL_BACKEND", raising=False)
        backends.reset_backend()
        try:
            main(["table3", "--backend", "reference"])
            assert backends.get_backend().name == "reference"
        finally:
            backends.reset_backend()
        assert "without hints" in capsys.readouterr().out


class TestCampaignCli:
    def test_campaign_prints_orchestrator_summary(self, capsys, tmp_path):
        main([
            "campaign", "--traces", "6", "--workers", "1", "--grain", "2",
            "--profile-cache", str(tmp_path / "profiles"),
        ])
        out = capsys.readouterr().out
        assert "profile cache: miss" in out
        assert "orchestrated campaign:" in out
        assert "sign accuracy" in out
        assert "orchestrator: grain=2" in out

    def test_campaign_checkpoint_then_resume(self, capsys, tmp_path):
        cache = str(tmp_path / "profiles")
        args = [
            "campaign", "--traces", "6", "--workers", "1", "--grain", "2",
            "--campaign-dir", str(tmp_path / "camp"), "--shard-size", "2",
            "--profile-cache", cache,
        ]
        main(args)
        first = capsys.readouterr().out
        assert (tmp_path / "camp" / "manifest.json").exists()
        main(args + ["--resume"])
        resumed = capsys.readouterr().out
        assert "profile cache: hit" in resumed
        keys = ("traces attacked", "sign accuracy", "value accuracy")
        pick = lambda text: [
            line for line in text.splitlines() if line.startswith(keys)
        ]
        assert pick(first) == pick(resumed)

    def test_campaign_resume_needs_dir(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--traces", "4", "--resume"])
