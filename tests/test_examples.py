"""Smoke tests: every example script imports cleanly (full runs are
exercised manually / in the demo; import catches signature drift)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path.name} lacks a main()"
    finally:
        sys.modules.pop(spec.name, None)


def test_example_count():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
