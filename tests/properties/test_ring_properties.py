"""Algebraic properties of the ring layer: CRT and NTT laws.

The oracles pin fast-vs-reference; these pin both against the algebra
itself — CRT compose/decompose are mutually inverse over random bases,
the NTT is linear and invertible, and the negacyclic convolution
theorem holds through the full multiply pipeline.
"""

import random

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.ring.ntt import get_ntt_context
from repro.ring.rns import RnsBasis
from repro.verify.oracles import schoolbook_negacyclic_multiply
from tests.strategies import ntt_cases, rns_bases

value_seeds = st.integers(0, 2**31 - 1)


class TestCrt:
    @given(rns_bases(), value_seeds)
    def test_decompose_compose_roundtrip(self, primes, seed):
        basis = RnsBasis(primes)
        # basis.product can exceed int64; draw big ints in pure Python.
        rng = random.Random(seed)
        for value in (0, 1, basis.product - 1, rng.randrange(basis.product)):
            assert basis.compose_int(basis.decompose_int(value)) == value

    @given(rns_bases(), value_seeds)
    def test_array_roundtrip_matches_scalar(self, primes, seed):
        basis = RnsBasis(primes)
        rng = random.Random(seed)
        values = [rng.randrange(basis.product) for _ in range(16)]
        residues = basis.decompose_array(values)
        assert basis.compose_array(residues) == values
        for column, value in zip(residues.T, values):
            assert list(column) == basis.decompose_int(value)

    @given(rns_bases())
    def test_residues_are_reductions(self, primes):
        basis = RnsBasis(primes)
        value = basis.product - 12345 if basis.product > 12345 else 1
        for residue, modulus in zip(basis.decompose_int(value), primes):
            assert residue == value % modulus.value


class TestNttLaws:
    @given(ntt_cases())
    def test_linearity(self, case):
        context = get_ntt_context(case["modulus"], case["n"])
        q = case["modulus"].value
        lhs = context.forward((case["a"] + case["b"]) % q)
        rhs = (context.forward(case["a"]) + context.forward(case["b"])) % q
        assert np.array_equal(lhs, rhs)

    @given(ntt_cases())
    def test_forward_inverse_identity_both_ways(self, case):
        context = get_ntt_context(case["modulus"], case["n"])
        assert np.array_equal(
            context.inverse(context.forward(case["a"])), case["a"]
        )
        assert np.array_equal(
            context.forward(context.inverse(case["b"])), case["b"]
        )

    @given(ntt_cases())
    def test_convolution_theorem(self, case):
        context = get_ntt_context(case["modulus"], case["n"])
        assert np.array_equal(
            context.multiply(case["a"], case["b"]),
            schoolbook_negacyclic_multiply(
                case["a"], case["b"], case["modulus"].value
            ),
        )

    @given(ntt_cases())
    def test_multiply_by_x_rotates_with_sign(self, case):
        # a(x) * x in Z_q[x]/(x^n + 1): shift right, wraparound negates.
        context = get_ntt_context(case["modulus"], case["n"])
        q = case["modulus"].value
        x = np.zeros(case["n"], dtype=np.int64)
        x[1] = 1
        rotated = context.multiply(case["a"], x)
        expected = np.roll(case["a"], 1)
        expected[0] = (-expected[0]) % q
        assert np.array_equal(rotated, expected)
