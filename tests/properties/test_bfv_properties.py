"""Algebraic properties of the BFV layer.

Property-based complements to the example-based ``tests/bfv`` suite:
encrypt∘decrypt is the identity for *every* plaintext and encryption
randomness, homomorphisms hold within the toy noise budget, and the
clipped-Gaussian sampler matches its nominal distribution (moments and
a χ² goodness-of-fit over the integer support).
"""

import math

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.bfv.plaintext import Plaintext
from repro.bfv.sampler import ClippedNormalDistribution
from repro.ring.exact import exact_negacyclic_multiply

plain_seeds = st.integers(0, 2**31 - 1)
noise_seeds = st.integers(0, 2**31 - 1)


def random_plain(ctx, seed):
    rng = np.random.default_rng(seed)
    return Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)


def plain_mul(ctx, a, b):
    product = exact_negacyclic_multiply(list(a.coeffs), list(b.coeffs))
    return Plaintext([c % ctx.t for c in product], ctx.t)


class TestEncryptDecrypt:
    @given(plain_seeds, noise_seeds)
    def test_identity(self, ctx, encryptor, decryptor, seed, enc_rng):
        message = random_plain(ctx, seed)
        assert decryptor.decrypt(encryptor.encrypt(message, rng=enc_rng)) == message

    @given(noise_seeds)
    def test_identity_at_plaintext_extremes(self, ctx, encryptor, decryptor, enc_rng):
        for coeffs in (np.zeros(ctx.n), np.full(ctx.n, ctx.t - 1)):
            message = Plaintext(coeffs.astype(np.int64), ctx.t)
            assert decryptor.decrypt(encryptor.encrypt(message, rng=enc_rng)) == message


class TestHomomorphism:
    @given(plain_seeds, plain_seeds)
    def test_additive(self, ctx, encryptor, decryptor, evaluator, sa, sb):
        a, b = random_plain(ctx, sa), random_plain(ctx, sb + 1)
        total = evaluator.add(
            encryptor.encrypt(a, rng=sa), encryptor.encrypt(b, rng=sb + 1)
        )
        expected = Plaintext((a.coeffs + b.coeffs) % ctx.t, ctx.t)
        assert decryptor.decrypt(total) == expected

    @given(plain_seeds)
    def test_multiplicative(self, ctx, encryptor, decryptor, evaluator, seed):
        a, b = random_plain(ctx, seed), random_plain(ctx, seed + 1)
        product = evaluator.multiply(
            encryptor.encrypt(a, rng=seed), encryptor.encrypt(b, rng=seed + 1)
        )
        assert decryptor.decrypt(product) == plain_mul(ctx, a, b)

    @given(plain_seeds)
    def test_plain_multiply_matches_ciphertext_multiply(
        self, ctx, encryptor, decryptor, evaluator, seed
    ):
        a, b = random_plain(ctx, seed), random_plain(ctx, seed + 1)
        via_plain = evaluator.multiply_plain(encryptor.encrypt(a, rng=seed), b)
        assert decryptor.decrypt(via_plain) == plain_mul(ctx, a, b)


class TestSamplerDistribution:
    SIGMA = 3.19
    CLIP = 41.0
    DRAWS = 20_000

    def _samples(self, seed=2024):
        dist = ClippedNormalDistribution(self.SIGMA, self.CLIP)
        return np.array(dist.sample_vector(np.random.default_rng(seed), self.DRAWS))

    @staticmethod
    def _bin_probability(k, sigma, clip):
        # P(round(X) == k | |X| <= clip) for X ~ N(0, sigma^2)
        lo = max(k - 0.5, -clip)
        hi = min(k + 0.5, clip)
        z = math.sqrt(2.0) * sigma
        mass = 0.5 * (math.erf(hi / z) - math.erf(lo / z))
        total = math.erf(clip / z)
        return mass / total

    def test_moments(self):
        samples = self._samples()
        # Rounding adds 1/12 to the variance; clipping at ~12.8 sigma is
        # negligible.  Tolerances are ~5 standard errors at 20k draws.
        assert abs(samples.mean()) < 0.12
        expected_var = self.SIGMA**2 + 1.0 / 12.0
        assert abs(samples.var() - expected_var) < 0.5

    def test_chi_squared_goodness_of_fit(self):
        samples = self._samples()
        edge = 9  # bins: -9..9 individually, two tails
        values = np.arange(-edge, edge + 1)
        expected = np.array(
            [self._bin_probability(int(k), self.SIGMA, self.CLIP) for k in values]
        )
        observed = np.array([(samples == k).sum() for k in values], dtype=float)
        tail_expected = 1.0 - expected.sum()
        tail_observed = float((np.abs(samples) > edge).sum())
        expected = np.append(expected, tail_expected) * self.DRAWS
        observed = np.append(observed, tail_observed)
        statistic = ((observed - expected) ** 2 / expected).sum()
        # 19 degrees of freedom; chi2.ppf(0.999, 19) ~ 43.8.  The seed is
        # fixed, so this is a regression pin, not a flaky significance test.
        assert statistic < 43.8

    def test_support_respected(self):
        samples = self._samples()
        assert np.abs(samples).max() <= int(self.CLIP)
