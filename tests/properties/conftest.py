"""Fixtures for the algebraic property suites: a toy BFV deployment."""

import pytest

from repro.bfv.decryptor import Decryptor
from repro.bfv.encryptor import Encryptor
from repro.bfv.evaluator import Evaluator
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext


@pytest.fixture(scope="session")
def ctx():
    return BfvContext.toy(poly_degree=64, plain_modulus=17)


@pytest.fixture(scope="session")
def keygen(ctx):
    return KeyGenerator(ctx, rng=4321)


@pytest.fixture(scope="session")
def encryptor(ctx, keygen):
    return Encryptor(ctx, keygen.public_key())


@pytest.fixture(scope="session")
def decryptor(ctx, keygen):
    return Decryptor(ctx, keygen.secret_key())


@pytest.fixture(scope="session")
def evaluator(ctx):
    return Evaluator(ctx)
