"""Property-based checks of the counter-based noise stream keying.

The ``(entropy, seed, offset)`` addressing of :mod:`repro.power.noise`
is what makes the fused capture pipeline order-free: any consumer may
draw any contiguous span of any trace's stream, in any order, and the
result must match the one-shot draw bit for bit.  Hypothesis sweeps the
keying space — arbitrary split points (including block boundaries),
seed/entropy separation, and the ``add_noise`` accumulation contract.

Failing examples replay via the printed ``standard_noise`` arguments.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.power import noise

entropies = st.integers(0, 2**63 - 1)
seeds = st.integers(0, 2**31 - 1)
# Spans up to a few blocks keep cases fast while still crossing the
# NOISE_BLOCK boundary in a healthy fraction of draws.
counts = st.integers(1, 3 * noise.NOISE_BLOCK)


@given(entropy=entropies, seed=seeds, n=counts, data=st.data())
def test_offset_continuation_matches_one_shot(entropy, seed, n, data):
    split = data.draw(st.integers(0, n), label="split")
    full = noise.standard_noise(entropy, seed, n)
    head = noise.standard_noise(entropy, seed, split)
    tail = noise.standard_noise(entropy, seed, n - split, offset=split)
    np.testing.assert_array_equal(np.concatenate([head, tail]), full)


@given(entropy=entropies, seed=seeds, n=st.integers(64, 4096))
def test_no_collisions_across_seeds(entropy, seed, n):
    base = noise.standard_noise(entropy, seed, n)
    for other in (seed + 1, seed ^ 1, (seed + 12345) % 2**31):
        if other == seed:
            continue
        assert not np.array_equal(
            base, noise.standard_noise(entropy, other, n)
        )


@given(seed=seeds, entropy=entropies, n=st.integers(64, 4096))
def test_no_collisions_across_entropies(seed, entropy, n):
    base = noise.standard_noise(entropy, seed, n)
    other = (entropy + 1) % 2**63
    assert not np.array_equal(base, noise.standard_noise(other, seed, n))


@given(entropy=entropies, seed=seeds, n=counts, offset=st.integers(0, 2**20))
def test_stream_is_a_pure_function_of_its_key(entropy, seed, n, offset):
    a = noise.standard_noise(entropy, seed, n, offset=offset)
    b = noise.standard_noise(entropy, seed, n, offset=offset)
    np.testing.assert_array_equal(a, b)
    assert a.dtype == np.float64
    assert np.isfinite(a).all()


@given(
    entropy=entropies,
    seed=seeds,
    n=st.integers(1, 2048),
    std=st.floats(0.0, 4.0, allow_nan=False),
)
def test_add_noise_is_scaled_stream_addition(entropy, seed, n, std):
    base = np.arange(n, dtype=np.float64)
    out = base.copy()
    noise.add_noise(out, entropy, seed, std)
    np.testing.assert_array_equal(
        out, base + noise.standard_noise(entropy, seed, n) * std
    )
