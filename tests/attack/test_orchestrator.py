"""Tests for the shared-memory, work-stealing campaign orchestrator."""

import asyncio
import dataclasses
import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.attack.campaign import run_campaign
from repro.attack.orchestrator import (
    GrainResult,
    JobSpec,
    Orchestrator,
    WorkerFailed,
    WorkerIdle,
    WorkTable,
    run_orchestrated,
)
from repro.errors import AttackError, ParameterError

PAPER_Q = 132120577


def assert_reports_identical(a, b):
    """The campaign determinism contract: bit-identical outcomes."""
    assert [o[:3] for o in a.outcomes] == [o[:3] for o in b.outcomes]
    for left, right in zip(a.outcomes, b.outcomes):
        assert left[3] == right[3]  # probability tables, exact
    assert a.sign_accuracy == b.sign_accuracy
    assert a.value_accuracy == b.value_accuracy
    assert a.confusion.counts() == b.confusion.counts()
    assert a.failures == b.failures


class TestWorkTable:
    def test_owner_claims_bottom_up(self):
        table = WorkTable(capacity=8, workers=2)
        try:
            table.reset([(0, 10)])
            assert table.claim(0, grain=4, min_steal=2) == (0, 4)
            assert table.claim(0, grain=4, min_steal=2) == (4, 8)
            assert table.claim(0, grain=4, min_steal=2) == (8, 10)
            assert table.remaining() == 0
            assert table.counters()["grains"] == 3
            assert table.counters()["steals"] == 0
        finally:
            table.close()

    def test_free_row_then_steal_from_top(self):
        table = WorkTable(capacity=8, workers=2)
        try:
            table.reset([(0, 8), (100, 120)])
            assert table.claim(0, grain=4, min_steal=2) == (0, 4)
            # Worker 1 takes the remaining free row.
            assert table.claim(1, grain=4, min_steal=2) == (100, 104)
            # Worker 0 drains its own row, then must steal from the top
            # of worker 1's row (the fullest).
            assert table.claim(0, grain=4, min_steal=2) == (4, 8)
            assert table.claim(0, grain=4, min_steal=2) == (116, 120)
            assert table.counters()["steals"] == 1
            # The victim's row shrank: its owner continues below the cut.
            assert table.claim(1, grain=20, min_steal=2) == (104, 116)
        finally:
            table.close()

    def test_thief_leaves_min_steal_tail(self):
        table = WorkTable(capacity=8, workers=2)
        try:
            table.reset([(0, 10)])
            assert table.claim(0, grain=8, min_steal=4) == (0, 8)
            # Two seeds remain on worker 0's row: under min_steal, so a
            # thief backs off rather than racing the owner's tail.
            assert table.claim(1, grain=8, min_steal=4) is None
            assert table.claim(0, grain=8, min_steal=4) == (8, 10)
        finally:
            table.close()

    def test_empty_table_returns_none(self):
        table = WorkTable(capacity=4, workers=1)
        try:
            table.reset([])
            assert table.claim(0, grain=4, min_steal=2) is None
        finally:
            table.close()

    def test_requeue_dead_returns_inflight_grain(self):
        table = WorkTable(capacity=8, workers=2)
        try:
            table.reset([(0, 10)])
            assert table.claim(0, grain=4, min_steal=2) == (0, 4)
            assert table.remaining() == 6
            table.requeue_dead(0)
            # The in-flight grain came back as a fresh free row.
            assert table.remaining() == 10
            spans = set()
            while True:
                claim = table.claim(1, grain=16, min_steal=2)
                if claim is None:
                    break
                spans.add(claim)
            assert spans == {(4, 10), (0, 4)}
        finally:
            table.close()

    def test_complete_clears_inflight(self):
        table = WorkTable(capacity=8, workers=2)
        try:
            table.reset([(0, 4)])
            table.claim(0, grain=4, min_steal=2)
            table.complete(0)
            table.requeue_dead(0)  # nothing in flight: no new row
            assert table.remaining() == 0
        finally:
            table.close()

    def test_capacity_overflow_rejected(self):
        table = WorkTable(capacity=2, workers=1)
        try:
            with pytest.raises(ParameterError):
                table.reset([(0, 1), (2, 3), (4, 5)])
        finally:
            table.close()

    def test_pickle_reattaches_by_name(self):
        table = WorkTable(capacity=4, workers=2)
        try:
            table.reset([(7, 9)])
            clone = pickle.loads(pickle.dumps(table))
            try:
                assert clone.name == table.name
                assert clone.capacity == 4
                assert clone.claim(0, grain=4, min_steal=1) == (7, 9)
                # The mutation happened in the shared segment.
                assert table.remaining() == 0
            finally:
                clone.close()
        finally:
            table.close()


class TestMessagePickleBudget:
    """Satellite: the queue carries headers, never arrays (< 1 KB)."""

    MESSAGES = [
        JobSpec(
            job=3,
            first_seed=1,
            trace_count=1_000_000,
            count=8,
            entropy=2**63 - 1,
            grain=64,
            min_steal=8,
            engine="lanes",
            lanes=64,
            n_labels=83,
            backend="numpy-kernels",
        ),
        GrainResult(worker=7, job=3, slot=15, generation=2**40),
        WorkerIdle(worker=7, job=3),
        WorkerFailed(worker=7, job=3, message="x" * 400),
    ]

    @pytest.mark.parametrize(
        "message", MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_under_one_kilobyte(self, message):
        assert len(pickle.dumps(message)) < 1024

    @pytest.mark.parametrize(
        "message", MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_no_array_payloads(self, message):
        for field in dataclasses.fields(message):
            assert not isinstance(
                getattr(message, field.name), np.ndarray
            ), f"{type(message).__name__}.{field.name} smuggles an array"


class TestOrchestrated:
    def test_requires_profiling(self, bench):
        from repro.attack.pipeline import SingleTraceAttack

        with pytest.raises(AttackError):
            Orchestrator(SingleTraceAttack(bench))

    def test_bit_identical_to_run_campaign(self, profiled_attack):
        baseline = run_campaign(
            profiled_attack, trace_count=10, coeffs_per_trace=4, first_seed=1
        )
        report = run_orchestrated(
            profiled_attack,
            trace_count=10,
            coeffs_per_trace=4,
            first_seed=1,
            workers=2,
            grain=3,
        )
        assert_reports_identical(baseline, report)
        assert report.workers == 2

    def test_worker_count_invariant(self, profiled_attack):
        solo = run_orchestrated(
            profiled_attack, trace_count=8, coeffs_per_trace=4,
            first_seed=40, workers=1, grain=2,
        )
        duo = run_orchestrated(
            profiled_attack, trace_count=8, coeffs_per_trace=4,
            first_seed=40, workers=2, grain=2,
        )
        assert_reports_identical(solo, duo)

    def test_report_carries_orchestrator_metadata(self, profiled_attack):
        report = run_orchestrated(
            profiled_attack, trace_count=6, coeffs_per_trace=4,
            first_seed=1, workers=2, grain=2,
        )
        meta = report.orchestrator
        assert meta is not None
        for key in (
            "grain", "shard_size", "steals", "grains", "checkpoints",
            "arena_bytes", "workers_died", "messages",
        ):
            assert key in meta
        assert meta["grain"] == 2
        assert meta["grains"] >= 3
        assert meta["arena_bytes"] > 0
        assert meta["workers_died"] == 0
        text = report.format_timings()
        assert "orchestrator:" in text
        assert "steals=" in text
        assert "arena=" in text

    def test_warm_resubmit_reuses_workers(self, profiled_attack):
        with Orchestrator(profiled_attack, workers=2, grain=2) as orch:
            first = orch.submit(6, coeffs_per_trace=4, first_seed=1).result()
            pids = sorted(orch.worker_pids())
            second = orch.submit(6, coeffs_per_trace=4, first_seed=1).result()
            assert sorted(orch.worker_pids()) == pids
        assert_reports_identical(first, second)

    def test_single_flight_submit(self, profiled_attack):
        with Orchestrator(profiled_attack, workers=1, grain=2) as orch:
            job = orch.submit(6, coeffs_per_trace=4, first_seed=1)
            with pytest.raises(AttackError):
                orch.submit(4, coeffs_per_trace=4, first_seed=1)
            job.result()

    def test_progress_and_status(self, profiled_attack):
        with Orchestrator(profiled_attack, workers=1, grain=2) as orch:
            job = orch.submit(6, coeffs_per_trace=4, first_seed=1)
            job.result()
            progress = job.progress()
        assert job.status == "completed"
        assert progress.seeds_done == progress.seeds_total == 6
        assert progress.workers_died == 0
        assert progress.wall_seconds > 0

    def test_awaitable_from_asyncio(self, profiled_attack):
        async def drive():
            with Orchestrator(profiled_attack, workers=1, grain=4) as orch:
                job = orch.submit(4, coeffs_per_trace=4, first_seed=1)
                return await job

        report = asyncio.run(drive())
        baseline = run_campaign(
            profiled_attack, trace_count=4, coeffs_per_trace=4, first_seed=1
        )
        assert_reports_identical(baseline, report)


class TestCheckpointResume:
    def test_checkpointed_run_bit_identical(self, profiled_attack, tmp_path):
        baseline = run_orchestrated(
            profiled_attack, trace_count=10, coeffs_per_trace=4,
            first_seed=1, workers=1, grain=2,
        )
        report = run_orchestrated(
            profiled_attack, trace_count=10, coeffs_per_trace=4,
            first_seed=1, workers=2, grain=2,
            campaign_dir=tmp_path / "camp", shard_size=4,
        )
        assert_reports_identical(baseline, report)
        assert report.orchestrator["checkpoints"] == 3
        assert (tmp_path / "camp" / "manifest.json").exists()

    def test_resume_of_complete_campaign_is_instant(
        self, profiled_attack, tmp_path
    ):
        directory = tmp_path / "camp"
        first = run_orchestrated(
            profiled_attack, trace_count=8, coeffs_per_trace=4,
            first_seed=1, workers=1, grain=2,
            campaign_dir=directory, shard_size=4,
        )
        resumed = run_orchestrated(
            profiled_attack, trace_count=8, coeffs_per_trace=4,
            first_seed=1, workers=2, grain=2,
            campaign_dir=directory, resume=True, shard_size=4,
        )
        assert_reports_identical(first, resumed)
        # Nothing was re-attacked: no new grains were claimed.
        assert resumed.orchestrator["grains"] == first.orchestrator["grains"]

    def test_resume_rejects_other_fingerprint(self, profiled_attack, tmp_path):
        directory = tmp_path / "camp"
        run_orchestrated(
            profiled_attack, trace_count=6, coeffs_per_trace=4,
            first_seed=1, workers=1, campaign_dir=directory, shard_size=3,
        )
        with pytest.raises(AttackError, match="fingerprint"):
            run_orchestrated(
                profiled_attack, trace_count=7, coeffs_per_trace=4,
                first_seed=1, workers=1, campaign_dir=directory,
                resume=True, shard_size=3,
            )

    def test_resume_without_dir_rejected(self, profiled_attack):
        with pytest.raises(AttackError, match="campaign_dir"):
            run_orchestrated(
                profiled_attack, trace_count=4, coeffs_per_trace=4,
                resume=True,
            )

    def test_cancel_then_resume_bit_identical(self, profiled_attack, tmp_path):
        baseline = run_orchestrated(
            profiled_attack, trace_count=20, coeffs_per_trace=4,
            first_seed=1, workers=1, grain=2,
        )
        directory = tmp_path / "camp"
        with Orchestrator(profiled_attack, workers=2, grain=2) as orch:
            job = orch.submit(
                20, coeffs_per_trace=4, first_seed=1,
                campaign_dir=directory, shard_size=4,
            )
            deadline = time.monotonic() + 60
            while (
                job.progress().seeds_done < 2
                and not job.done
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            job.cancel()
            try:
                early = job.result(timeout=60)
            except AttackError:
                early = None
        if early is not None:
            # The job outran the cancel: still must match the baseline.
            assert_reports_identical(baseline, early)
            return
        assert job.status == "cancelled"
        resumed = run_orchestrated(
            profiled_attack, trace_count=20, coeffs_per_trace=4,
            first_seed=1, workers=2, grain=2,
            campaign_dir=directory, resume=True, shard_size=4,
        )
        assert_reports_identical(baseline, resumed)

    def test_sigkilled_worker_mid_shard_recovers(
        self, profiled_attack, tmp_path
    ):
        """Satellite: SIGKILL a worker mid-shard; the resumed/recovered
        campaign is bit-identical to an uninterrupted single-worker run."""
        baseline = run_orchestrated(
            profiled_attack, trace_count=24, coeffs_per_trace=4,
            first_seed=1, workers=1, grain=2,
        )
        with Orchestrator(profiled_attack, workers=2, grain=2) as orch:
            job = orch.submit(
                24, coeffs_per_trace=4, first_seed=1,
                campaign_dir=tmp_path / "camp", shard_size=6,
            )
            deadline = time.monotonic() + 60
            while (
                job.progress().seeds_done < 2
                and not job.done
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert not job.done, "campaign finished before the kill"
            os.kill(job.worker_pids()[0], signal.SIGKILL)
            report = job.result(timeout=120)
        assert report.orchestrator["workers_died"] == 1
        assert_reports_identical(baseline, report)
