"""Vectorized template matching vs the scalar reference methods.

The batched entry points (``log_likelihoods_matrix``,
``probabilities_matrix``, ``classify_matrix``) must agree with the
per-slice scalar methods up to float reassociation, and the batched
``SingleTraceAttack.attack_samples`` must reproduce the scalar
per-slice attack loop exactly.
"""

import numpy as np
import pytest

from repro.attack.branch import ZERO, sign_of
from repro.attack.pipeline import SingleTraceAttack
from repro.attack.template import TemplateSet, gaussian_priors
from repro.errors import AttackError
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

MODULI = [0xFFEE001, 0xFFC4001]


@pytest.fixture(scope="module", params=["pooled", "per_class"])
def template_set(request):
    rng = np.random.default_rng(7)
    labels = [-3, -1, 0, 2, 5]
    traces = {l: rng.normal(l, 1.0, size=(30, 40)) for l in labels}
    priors = gaussian_priors(labels, 3.19)
    return TemplateSet.build(
        traces,
        pois=[3, 7, 11, 19, 25, 33],
        priors=priors,
        pooled=request.param == "pooled",
    )


@pytest.fixture(scope="module")
def batch():
    return np.random.default_rng(21).normal(0.0, 2.0, size=(17, 40))


def test_log_likelihood_matrix_matches_scalar(template_set, batch):
    matrix = template_set.log_likelihoods_matrix(batch)
    assert matrix.shape == (len(batch), len(template_set.labels))
    for i, row in enumerate(batch):
        scalar = template_set.log_likelihoods(row)
        for j, label in enumerate(template_set.labels):
            assert matrix[i, j] == pytest.approx(scalar[label], rel=1e-9, abs=1e-9)


def test_probabilities_matrix_matches_scalar(template_set, batch):
    matrix = template_set.probabilities_matrix(batch)
    np.testing.assert_allclose(matrix.sum(axis=1), 1.0, rtol=1e-12)
    for i, row in enumerate(batch):
        scalar = template_set.probabilities(row)
        for j, label in enumerate(template_set.labels):
            assert matrix[i, j] == pytest.approx(scalar[label], abs=1e-9)


def test_probabilities_matrix_label_restriction(template_set, batch):
    restrict = [-3, 2, 5]
    matrix = template_set.probabilities_matrix(batch, restrict=restrict)
    for i, row in enumerate(batch):
        scalar = template_set.probabilities(row, restrict=restrict)
        for j, label in enumerate(template_set.labels):
            assert matrix[i, j] == pytest.approx(scalar.get(label, 0.0), abs=1e-9)


def test_probabilities_matrix_per_row_masks(template_set, batch):
    rng = np.random.default_rng(3)
    mask = rng.random((len(batch), len(template_set.labels))) > 0.4
    mask[:, 0] = True  # keep every row satisfiable
    matrix = template_set.probabilities_matrix(batch, restrict=mask)
    for i, row in enumerate(batch):
        allowed = [l for j, l in enumerate(template_set.labels) if mask[i, j]]
        scalar = template_set.probabilities(row, restrict=allowed)
        for j, label in enumerate(template_set.labels):
            assert matrix[i, j] == pytest.approx(scalar.get(label, 0.0), abs=1e-9)


def test_classify_matrix_matches_scalar(template_set, batch):
    picks = template_set.classify_matrix(batch)
    for i, row in enumerate(batch):
        assert int(picks[i]) == template_set.classify(row)


def test_empty_restriction_raises(template_set, batch):
    with pytest.raises(AttackError, match="excludes every template class"):
        template_set.probabilities_matrix(batch, restrict=[99])
    bad_mask = np.zeros((len(batch), len(template_set.labels)), dtype=bool)
    bad_mask[0, 0] = True  # row 1 onwards excluded
    with pytest.raises(AttackError, match="excludes every template class"):
        template_set.probabilities_matrix(batch, restrict=bad_mask)


def test_mask_shape_mismatch_raises(template_set, batch):
    wrong = np.ones((len(batch), len(template_set.labels) + 1), dtype=bool)
    with pytest.raises(AttackError, match="does not match"):
        template_set.probabilities_matrix(batch, restrict=wrong)


# ----------------------------------------------------------------------
# End-to-end: batched attack loop and engine parity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def bench():
    device = GaussianSamplerDevice(MODULI)
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


@pytest.fixture(scope="module")
def profiled(bench):
    attack = SingleTraceAttack(bench)
    attack.profile(num_traces=60, coeffs_per_trace=8)
    return attack


def _scalar_attack(attack, samples):
    """The pre-vectorization per-slice loop, kept as the test oracle."""
    aligned = attack.segmenter.aligned_slices(samples, refiner=attack.refiner)
    signs, estimates, tables = [], [], []
    all_labels = attack.templates.labels
    for piece in map(attack._normalise, aligned):
        sign = attack.branch_classifier.classify(piece)
        signs.append(sign)
        if sign == ZERO:
            estimates.append(0)
            tables.append({0: 1.0})
            continue
        candidates = [l for l in all_labels if sign_of(l) == sign]
        if not candidates:
            raise AttackError(f"no templates for sign {sign}")
        probs = attack.templates.probabilities(piece, restrict=candidates)
        tables.append(probs)
        estimates.append(max(probs, key=probs.get))
    return signs, estimates, tables


@pytest.mark.parametrize("seed", [9001, 1234])
def test_attack_samples_batched_matches_scalar_loop(profiled, bench, seed):
    captured = bench.capture(seed, 8)
    result = profiled.attack(captured)
    signs, estimates, tables = _scalar_attack(profiled, captured.trace.samples)
    assert result.signs == signs
    assert result.estimates == estimates
    assert len(result.probabilities) == len(tables)
    for got, want in zip(result.probabilities, tables):
        assert set(got) == set(want)
        for label in want:
            assert got[label] == pytest.approx(want[label], abs=1e-9)


def test_profile_attack_identical_across_engines():
    # The whole pipeline (profiling captures + attack trace) must not
    # depend on which interpreter engine produced the traces.
    results = []
    for engine in ("threaded", "reference"):
        device = GaussianSamplerDevice(MODULI)
        original_run = device.run
        def run_with_engine(seed, count, _orig=original_run, _e=engine, **kw):
            kw["engine"] = _e
            return _orig(seed, count, **kw)
        device.run = run_with_engine
        bench = TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)
        attack = SingleTraceAttack(bench)
        attack.profile(num_traces=40, coeffs_per_trace=6)
        captured = bench.capture(31337, 6)
        result = attack.attack(captured)
        results.append((result.signs, result.estimates, result.probabilities,
                        captured.values))
    (signs_a, est_a, prob_a, values_a), (signs_b, est_b, prob_b, values_b) = results
    assert values_a == values_b
    assert signs_a == signs_b
    assert est_a == est_b
    for got, want in zip(prob_a, prob_b):
        assert set(got) == set(want)
        for label in want:
            assert got[label] == pytest.approx(want[label], abs=1e-9)


def test_classify_many_batched(profiled, bench):
    captured = bench.capture(555, 8)
    aligned = profiled.segmenter.aligned_slices(
        captured.trace.samples, refiner=profiled.refiner
    )
    pieces = [profiled._normalise(p) for p in aligned]
    batched = profiled.branch_classifier.classify_many(pieces)
    scalar = [profiled.branch_classifier.classify(p) for p in pieces]
    assert batched == scalar
    assert profiled.branch_classifier.classify_many([]) == []
