"""Tests for the algebraic message recovery (equations 2-3)."""

import numpy as np
import pytest

from repro.attack.recovery import (
    recover_message,
    recover_u,
    recovery_is_plausible,
    residual_e1,
)
from repro.bfv.decryptor import Decryptor
from repro.bfv.encryptor import Encryptor
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext


@pytest.fixture(scope="module")
def setup():
    ctx = BfvContext.toy(poly_degree=64, plain_modulus=17)
    keygen = KeyGenerator(ctx, rng=3)
    pk = keygen.public_key()
    return ctx, pk, Encryptor(ctx, pk), Decryptor(ctx, keygen.secret_key())


def encrypt_with_artifacts(setup, seed=0):
    ctx, pk, encryptor, _ = setup
    rng = np.random.default_rng(seed)
    m = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
    ct, art = encryptor.encrypt_with_artifacts(m, rng=seed + 100)
    return m, ct, art


class TestRecoverU:
    def test_exact_recovery(self, setup):
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, 1)
        u = recover_u(ctx, ct, pk, art.e2)
        assert u.to_centered_coeffs() == art.u

    def test_wrong_e2_gives_non_ternary_u(self, setup):
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, 2)
        wrong = list(art.e2)
        wrong[0] += 1
        u = recover_u(ctx, ct, pk, wrong)
        assert any(abs(c) > 1 for c in u.to_centered_coeffs())


class TestRecoverMessage:
    def test_message_recovered_exactly(self, setup):
        ctx, pk, _, _ = setup
        for seed in range(5):
            m, ct, art = encrypt_with_artifacts(setup, seed)
            recovered = recover_message(ctx, ct, pk, art.e2)
            assert recovered == m

    def test_e1_never_needed(self, setup):
        """e1 is absorbed by rounding - recovery uses only e2."""
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, 7)
        recovered = recover_message(ctx, ct, pk, art.e2)
        assert recovered == m
        implied_e1 = residual_e1(ctx, ct, pk, art.e2, recovered)
        assert implied_e1 == art.e1

    def test_wrong_e2_gives_wrong_message(self, setup):
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, 8)
        wrong = [e + 50 for e in art.e2]
        assert recover_message(ctx, ct, pk, wrong) != m

    def test_paper_parameters(self):
        ctx = BfvContext.default()
        keygen = KeyGenerator(ctx, rng=5)
        pk = keygen.public_key()
        encryptor = Encryptor(ctx, pk)
        rng = np.random.default_rng(0)
        m = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        ct, art = encryptor.encrypt_with_artifacts(m, rng=1)
        assert recover_message(ctx, ct, pk, art.e2) == m


class TestPlausibility:
    def test_correct_e2_plausible(self, setup):
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, 9)
        assert recovery_is_plausible(ctx, ct, pk, art.e2)

    def test_wrong_e2_implausible(self, setup):
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, 10)
        wrong = list(art.e2)
        wrong[3] += 2
        assert not recovery_is_plausible(ctx, ct, pk, wrong)


class TestEndToEndWithDevice:
    """Device-sampled noise -> encryption -> trace attack -> message."""

    def test_device_noise_feeds_encryption(self, setup):
        from repro.riscv.device import GaussianSamplerDevice

        ctx, pk, encryptor, decryptor = setup
        device = GaussianSamplerDevice([m.value for m in ctx.basis.moduli])
        run1 = device.run(seed=11, count=ctx.n, record_events=False)
        run2 = device.run(seed=12, count=ctx.n, record_events=False)
        rng = np.random.default_rng(1)
        m = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        u = [int(c) for c in rng.integers(-1, 2, ctx.n)]
        ct = encryptor.encrypt_with_randomness(m, u, run1.values, run2.values)
        # decrypts correctly and e2 recovery works
        assert decryptor.decrypt(ct) == m
        assert recover_message(ctx, ct, pk, run2.values) == m


class TestRecoveryProperties:
    """Property sweep: equations (2)-(3) invert encryption for any seed."""

    def test_recovery_roundtrip_over_seeds(self, setup):
        ctx, pk, _, _ = setup
        for seed in range(12):
            m, ct, art = encrypt_with_artifacts(setup, seed=seed)
            u = recover_u(ctx, ct, pk, art.e2)
            assert u.to_centered_coeffs() == art.u
            assert recover_message(ctx, ct, pk, art.e2) == m
            assert recovery_is_plausible(ctx, ct, pk, art.e2)

    def test_implied_e1_matches_artifacts(self, setup):
        ctx, pk, _, _ = setup
        m, ct, art = encrypt_with_artifacts(setup, seed=31)
        e1 = residual_e1(ctx, ct, pk, art.e2, m)
        assert e1 == list(art.e1)

    def test_single_symbol_corruption_is_detected(self, setup):
        # Flipping one recovered e2 coefficient must break plausibility
        # (the implied u stops being ternary) in the common case - the
        # keyless self-check the paper relies on to reject bad traces.
        ctx, pk, _, _ = setup
        detected = 0
        trials = 8
        for seed in range(trials):
            _, ct, art = encrypt_with_artifacts(setup, seed=seed + 50)
            corrupted = list(art.e2)
            corrupted[seed % ctx.n] += 7
            if not recovery_is_plausible(ctx, ct, pk, corrupted):
                detected += 1
        assert detected >= trials - 1
