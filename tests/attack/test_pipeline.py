"""Integration tests for the full single-trace attack."""

import numpy as np
import pytest

from repro.attack.branch import NEGATIVE, POSITIVE, ZERO, sign_of
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError


class TestSignOf:
    @pytest.mark.parametrize("value,sign", [(3, 1), (-3, -1), (0, 0), (41, 1)])
    def test_mapping(self, value, sign):
        assert sign_of(value) == sign


class TestProfiling:
    def test_report_contents(self, profiled_attack):
        assert profiled_attack.templates is not None
        assert profiled_attack.branch_classifier is not None
        assert profiled_attack.refiner is not None

    def test_attack_before_profiling_raises(self, bench):
        attack = SingleTraceAttack(bench)
        with pytest.raises(AttackError):
            attack.attack_samples(np.zeros(1000))

    def test_unknown_poi_method_rejected(self, bench):
        with pytest.raises(AttackError):
            SingleTraceAttack(bench, poi_method="magic")


class TestSingleTraceAttack:
    def test_sign_recovery_is_near_perfect(self, bench, profiled_attack):
        """The paper's vulnerability 1: 100% branch identification."""
        correct = total = 0
        for seed in range(900, 925):
            cap = bench.capture(seed, 4)
            result = profiled_attack.attack(cap)
            for value, sign in zip(cap.values, result.signs):
                total += 1
                correct += sign_of(value) == sign
        assert correct / total >= 0.99

    def test_zero_coefficients_recovered_exactly(self, bench, profiled_attack):
        hits = total = 0
        for seed in range(950, 990):
            cap = bench.capture(seed, 4)
            result = profiled_attack.attack(cap)
            for value, estimate in zip(cap.values, result.estimates):
                if value == 0:
                    total += 1
                    hits += estimate == 0
        assert total > 10
        assert hits / total >= 0.95

    def test_negatives_sharper_than_positives(self, bench, profiled_attack):
        """The paper's vulnerability 3: negation disambiguates negatives."""
        cm = ConfusionMatrix()
        for seed in range(700, 760):
            cap = bench.capture(seed, 4)
            result = profiled_attack.attack(cap)
            cm.record_many(cap.values, result.estimates)
        neg = [cm.accuracy(v) for v in range(-5, 0) if cm.total(v) >= 5]
        pos = [cm.accuracy(v) for v in range(2, 6) if cm.total(v) >= 5]
        assert neg and pos
        assert np.mean(neg) > np.mean(pos) + 0.15

    def test_probability_tables_normalised(self, bench, profiled_attack):
        cap = bench.capture(42, 4)
        result = profiled_attack.attack(cap)
        assert len(result) == 4
        for table in result.probabilities:
            assert sum(table.values()) == pytest.approx(1.0)

    def test_probabilities_respect_sign(self, bench, profiled_attack):
        cap = bench.capture(43, 6)
        result = profiled_attack.attack(cap)
        for sign, table in zip(result.signs, result.probabilities):
            assert all(sign_of(v) == sign for v in table)

    def test_estimate_magnitudes_plausible(self, bench, profiled_attack):
        cap = bench.capture(44, 6)
        result = profiled_attack.attack(cap)
        assert all(-41 <= e <= 41 for e in result.estimates)


class TestConfusionMatrix:
    def test_percentages(self):
        cm = ConfusionMatrix()
        cm.record_many([1, 1, 1, 2], [1, 1, 2, 2])
        assert cm.percentage(1, 1) == pytest.approx(100 * 2 / 3)
        assert cm.percentage(1, 2) == pytest.approx(100 / 3)
        assert cm.accuracy() == pytest.approx(0.75)
        assert cm.accuracy(2) == 1.0

    def test_sign_accuracy(self):
        cm = ConfusionMatrix()
        cm.record_many([-3, -2, 4], [-1, 2, 5])
        assert cm.sign_accuracy() == pytest.approx(2 / 3)

    def test_empty(self):
        cm = ConfusionMatrix()
        assert cm.accuracy() == 0.0
        assert cm.percentage(0, 0) == 0.0

    def test_format_table(self):
        cm = ConfusionMatrix()
        cm.record_many([0, 1], [0, 1])
        table = cm.format_table()
        assert "100.0" in table
        assert "pred" in table

    def test_matrix_shape(self):
        cm = ConfusionMatrix()
        cm.record_many([-1, 0, 1], [-1, 0, 1])
        assert cm.matrix().shape == (3, 3)
        assert np.trace(cm.matrix()) == pytest.approx(300.0)
