"""Tests for the CPA utilities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.attack.cpa import (
    correlation_trace,
    hamming_weight_predictions,
    locate_value_leakage,
)
from repro.errors import AttackError


class TestCorrelationTrace:
    def test_finds_synthetic_leak(self):
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 32, 200).astype(float)
        traces = rng.normal(0, 1, (200, 50))
        traces[:, 17] += 0.8 * predictions
        rho = correlation_trace(traces, predictions)
        assert int(np.argmax(np.abs(rho))) == 17
        assert abs(rho[17]) > 0.9

    def test_negative_correlation_detected(self):
        rng = np.random.default_rng(1)
        predictions = rng.integers(0, 32, 200).astype(float)
        traces = rng.normal(0, 1, (200, 20))
        traces[:, 4] -= 0.9 * predictions
        rho = correlation_trace(traces, predictions)
        assert rho[4] < -0.9

    def test_constant_column_is_zero(self):
        rng = np.random.default_rng(2)
        predictions = rng.normal(size=50)
        traces = rng.normal(size=(50, 3))
        traces[:, 1] = 7.0
        rho = correlation_trace(traces, predictions)
        assert rho[1] == 0.0

    def test_validation(self):
        with pytest.raises(AttackError):
            correlation_trace(np.zeros((3, 4, 5)), [1, 2, 3])
        with pytest.raises(AttackError):
            correlation_trace(np.zeros((3, 4)), [1, 2])
        with pytest.raises(AttackError):
            correlation_trace(np.zeros((2, 4)), [1, 2])
        with pytest.raises(AttackError):
            correlation_trace(np.ones((5, 4)), [3, 3, 3, 3, 3])


class TestHwPredictions:
    def test_values(self):
        assert hamming_weight_predictions([0, 1, 3, -1]) == [0, 1, 2, 32]


class TestDeviceLeakage:
    """CPA confirms the paper's vulnerabilities on real device slices."""

    @pytest.fixture(scope="class")
    def corpus(self, bench, profiled_attack):
        slices, values = [], []
        for seed in range(9000, 9060):
            captured = bench.capture(seed, 4)
            aligned = profiled_attack.segmenter.aligned_slices(
                captured.trace.samples, refiner=profiled_attack.refiner
            )
            slices.extend(aligned)
            values.extend(captured.values)
        return np.vstack(slices), values

    def test_value_model_finds_leakage(self, corpus):
        slices, values = corpus
        rho, peaks = locate_value_leakage(slices, values, model="value")
        assert np.max(np.abs(rho)) > 0.5

    def test_negation_model_leaks_for_negatives(self, corpus):
        """HW(-v) correlates on the negative subset (vulnerability 3)."""
        slices, values = corpus
        mask = np.array([v < 0 for v in values])
        if mask.sum() < 10:
            pytest.skip("too few negative coefficients in corpus")
        rho, _ = locate_value_leakage(
            slices[mask], [v for v in values if v < 0], model="hw_negated"
        )
        assert np.max(np.abs(rho)) > 0.4

    def test_unknown_model_rejected(self, corpus):
        slices, values = corpus
        with pytest.raises(AttackError):
            locate_value_leakage(slices, values, model="magic")


seeds = st.integers(0, 2**31 - 1)


class TestCorrelationProperties:
    """Hypothesis sweeps over the Pearson-correlation invariants."""

    @given(seeds)
    def test_bounded_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        traces = rng.normal(0.0, 1.0, (12, 40))
        predictions = rng.normal(0.0, 1.0, 12)
        rho = correlation_trace(traces, predictions)
        assert np.all(np.abs(rho) <= 1.0 + 1e-12)

    @given(seeds)
    def test_affine_invariance_of_predictions(self, seed):
        # Pearson correlation is invariant under positive affine maps
        # of either argument.
        rng = np.random.default_rng(seed)
        traces = rng.normal(0.0, 1.0, (10, 24))
        predictions = rng.normal(0.0, 1.0, 10)
        rho = correlation_trace(traces, predictions)
        scaled = correlation_trace(traces, 3.5 * predictions + 11.0)
        assert np.allclose(rho, scaled, atol=1e-12)

    @given(seeds)
    def test_perfect_leak_correlates_to_one(self, seed):
        rng = np.random.default_rng(seed)
        predictions = rng.normal(0.0, 1.0, 16)
        traces = rng.normal(0.0, 0.001, (16, 8))
        traces[:, 3] = 2.0 * predictions + 7.0  # exact linear leak
        rho = correlation_trace(traces, predictions)
        assert rho[3] > 0.999999
        assert int(np.argmax(np.abs(rho))) == 3

    @given(seeds)
    def test_negating_predictions_flips_sign(self, seed):
        rng = np.random.default_rng(seed)
        traces = rng.normal(0.0, 1.0, (10, 24))
        predictions = rng.normal(0.0, 1.0, 10)
        assert np.allclose(
            correlation_trace(traces, predictions),
            -correlation_trace(traces, -predictions),
            atol=1e-12,
        )


class TestLocateValueLeakage:
    def test_peaks_are_sorted_and_within_slice(self):
        rng = np.random.default_rng(4)
        values = list(rng.integers(-14, 15, 20))
        slices = rng.normal(0.0, 1.0, (20, 30))
        slices[:, 11] += np.array(hamming_weight_predictions(values), dtype=float)
        rho, peaks = locate_value_leakage(slices, values, model="hw", top=5)
        assert len(rho) == 30
        assert peaks == sorted(peaks)
        assert all(0 <= p < 30 for p in peaks)
        assert 11 in peaks

    def test_top_is_clamped_to_slice_length(self):
        rng = np.random.default_rng(5)
        values = list(rng.integers(-14, 15, 12))
        slices = rng.normal(0.0, 1.0, (12, 6))
        _, peaks = locate_value_leakage(slices, values, top=50)
        assert len(peaks) == 6
