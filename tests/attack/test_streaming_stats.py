"""Parity of streaming sufficient statistics with the materialized path.

The streaming profiler must be a pure refactor: same POIs, same
templates (to 1e-9), same attack decisions as the capture-everything
reference, for any chunking of the input.
"""

import numpy as np
import pytest

from repro.attack.branch import BranchClassifier
from repro.attack.pipeline import SingleTraceAttack
from repro.attack.template import MomentAccumulator, RunningMoments, TemplateSet
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


def fresh_bench():
    return TraceAcquisition(
        GaussianSamplerDevice([PAPER_Q]), scope=Oscilloscope(noise_std=1.0), rng=0
    )


class TestRunningMoments:
    def test_matches_batch_statistics(self):
        rng = np.random.default_rng(1)
        data = rng.normal(2.0, 1.5, size=(57, 12))
        m = RunningMoments.from_matrix(data)
        assert m.count == 57
        np.testing.assert_allclose(m.mean, data.mean(axis=0), atol=1e-12)
        np.testing.assert_allclose(m.variances(), data.var(axis=0), atol=1e-12)
        centered = data - data.mean(axis=0)
        np.testing.assert_allclose(m.scatter, centered.T @ centered, atol=1e-9)

    def test_chunking_invariant(self):
        rng = np.random.default_rng(2)
        data = rng.normal(0, 1, size=(40, 6))
        whole = RunningMoments.from_matrix(data)
        pieces = RunningMoments(6)
        for chunk in np.array_split(data, 7):
            pieces.update(chunk)
        np.testing.assert_allclose(pieces.mean, whole.mean, atol=1e-12)
        np.testing.assert_allclose(pieces.scatter, whole.scatter, atol=1e-9)

    def test_merge_is_union(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(10, 4)), rng.normal(size=(15, 4))
        merged = RunningMoments.from_matrix(a).merge(RunningMoments.from_matrix(b))
        union = RunningMoments.from_matrix(np.vstack([a, b]))
        assert merged.count == union.count
        np.testing.assert_allclose(merged.mean, union.mean, atol=1e-12)
        np.testing.assert_allclose(merged.scatter, union.scatter, atol=1e-9)


class TestMomentAccumulator:
    def test_matches_per_label_grouping(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(-3, 4, size=200)
        data = rng.normal(labels[:, None], 1.0, size=(200, 9))
        acc = MomentAccumulator(9, chunk=16)
        for start in range(0, 200, 13):  # uneven feeding
            acc.add(data[start : start + 13], labels[start : start + 13])
        moments = acc.moments()
        assert acc.count == 200
        for value in np.unique(labels):
            group = data[labels == value]
            m = moments[int(value)]
            assert m.count == group.shape[0]
            np.testing.assert_allclose(m.mean, group.mean(axis=0), atol=1e-12)

    def test_label_count_mismatch_raises(self):
        from repro.errors import AttackError

        with pytest.raises(AttackError):
            MomentAccumulator(4).add(np.zeros((3, 4)), [1, 2])


class TestTemplateParity:
    @pytest.fixture(scope="class")
    def labelled(self):
        rng = np.random.default_rng(5)
        labels = list(range(-4, 5))
        return {l: rng.normal(l, 1.0, size=(30, 40)) for l in labels}

    @pytest.mark.parametrize("pooled", [True, False])
    def test_from_moments_matches_build(self, labelled, pooled):
        pois = [3, 7, 11, 19, 23, 31]
        built = TemplateSet.build(labelled, pois, pooled=pooled)
        moments = {l: RunningMoments.from_matrix(t) for l, t in labelled.items()}
        streamed = TemplateSet.from_moments(moments, pois, pooled=pooled)
        np.testing.assert_allclose(
            streamed.precision, built.precision, rtol=0, atol=1e-9
        )
        for label in built.labels:
            np.testing.assert_allclose(
                streamed.means[label], built.means[label], atol=1e-9
            )
            if not pooled:
                np.testing.assert_allclose(
                    streamed.class_precisions[label],
                    built.class_precisions[label],
                    rtol=1e-9,
                    atol=1e-9,
                )
                assert streamed.class_log_dets[label] == pytest.approx(
                    built.class_log_dets[label], abs=1e-9
                )

    def test_branch_from_moments_matches_build(self, labelled):
        by_sign_traces = {
            -1: np.vstack([t for l, t in labelled.items() if l < 0]),
            0: labelled[0],
            1: np.vstack([t for l, t in labelled.items() if l > 0]),
        }
        built = BranchClassifier.build(by_sign_traces, 5, 35)
        by_sign_moments = {
            s: RunningMoments.from_matrix(t) for s, t in by_sign_traces.items()
        }
        streamed = BranchClassifier.from_moments(by_sign_moments, 5, 35)
        assert streamed.templates.pois == built.templates.pois
        np.testing.assert_allclose(
            streamed.templates.precision, built.templates.precision, atol=1e-9
        )
        assert streamed.separation() == pytest.approx(built.separation(), abs=1e-9)


class TestProfileParity:
    """Streaming profile() == materialized profile_reference() end to end."""

    @pytest.fixture(scope="class")
    def pair(self):
        streaming = SingleTraceAttack(fresh_bench(), poi_count=24)
        streaming_report = streaming.profile(
            num_traces=80, coeffs_per_trace=6, first_seed=50_000
        )
        reference = SingleTraceAttack(fresh_bench(), poi_count=24)
        reference_report = reference.profile_reference(
            num_traces=80, coeffs_per_trace=6, first_seed=50_000
        )
        return streaming, streaming_report, reference, reference_report

    def test_same_classes_and_pois(self, pair):
        streaming, s_report, reference, r_report = pair
        assert s_report.slice_count == r_report.slice_count
        assert s_report.classes == r_report.classes
        assert s_report.pois == r_report.pois

    def test_templates_within_1e9(self, pair):
        streaming, _, reference, _ = pair
        np.testing.assert_allclose(
            streaming.templates.precision,
            reference.templates.precision,
            rtol=0,
            atol=1e-9,
        )
        for label in reference.templates.labels:
            np.testing.assert_allclose(
                streaming.templates.means[label],
                reference.templates.means[label],
                rtol=0,
                atol=1e-9,
            )
        np.testing.assert_allclose(
            streaming.branch_classifier.templates.precision,
            reference.branch_classifier.templates.precision,
            rtol=0,
            atol=1e-9,
        )

    def test_identical_attack_decisions(self, pair):
        streaming, _, reference, _ = pair
        bench = fresh_bench()
        for seed in (900, 901, 902):
            captured = bench.capture(seed, 5)
            a = streaming.attack(captured)
            b = reference.attack(captured)
            assert a.signs == b.signs
            assert a.estimates == b.estimates

    def test_timings_reported(self, pair):
        _, s_report, _, _ = pair
        assert set(s_report.timings) == {"capture", "segment", "build"}
        assert all(v >= 0 for v in s_report.timings.values())

    def test_profile_workers_matches_serial_batch_noise(self):
        """Pooled profiling (worker-side segmentation) equals the same
        profile run with workers on a single process — per-seed noise
        makes the accumulation order-independent."""
        one = SingleTraceAttack(fresh_bench(), poi_count=24)
        one.profile(num_traces=30, coeffs_per_trace=4, first_seed=50_000, workers=1)
        # workers=1 short-circuits to the serial segmented path; workers=2
        # exercises the process pool
        two = SingleTraceAttack(fresh_bench(), poi_count=24)
        two.profile(num_traces=30, coeffs_per_trace=4, first_seed=50_000, workers=2)
        assert one.templates.pois == two.templates.pois
        np.testing.assert_array_equal(
            one.templates.precision, two.templates.precision
        )
        for label in one.templates.labels:
            np.testing.assert_array_equal(
                one.templates.means[label], two.templates.means[label]
            )
