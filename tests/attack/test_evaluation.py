"""Tests for the attack-campaign evaluation API."""

import pytest

from repro.attack.evaluation import CampaignResult, run_campaign
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError


@pytest.fixture(scope="module")
def campaign(bench, profiled_attack):
    return run_campaign(profiled_attack, trace_count=12, coeffs_per_trace=4,
                        first_seed=8000)


class TestCampaign:
    def test_requires_profiling(self, bench):
        with pytest.raises(AttackError):
            run_campaign(SingleTraceAttack(bench), trace_count=1)

    def test_counts(self, campaign):
        assert campaign.coefficients_attacked == 48
        assert len(campaign.probability_tables) == 48
        assert campaign.confusion.total() == 48

    def test_accuracies_in_expected_regime(self, campaign):
        assert campaign.sign_accuracy >= 0.95
        assert 0.2 <= campaign.value_accuracy <= 1.0

    def test_hint_statistics(self, campaign):
        stats = campaign.hint_statistics()
        assert 0.05 < stats["perfect_fraction"] < 0.9
        assert stats["mean_approximate_variance"] > 0

    def test_bikz_estimate_below_no_hints(self, campaign):
        from repro.hints.estimator import beta_for_dbdd
        from repro.hints.security import seal_128_dbdd

        beta = campaign.estimate_bikz()
        assert beta < beta_for_dbdd(seal_128_dbdd())

    def test_summary_renders(self, campaign):
        text = campaign.summary()
        assert "sign accuracy" in text
        assert "bikz" in text
