"""Tests for trace segmentation and anchor alignment."""

import numpy as np
import pytest

import repro.attack.segmentation as segmentation
from repro.attack.segmentation import (
    AnchorRefiner,
    Segmenter,
    SegmenterConfig,
    _active_regions,
    _moving_average,
    _moving_average_reference,
)
from repro.errors import AttackError
from repro.riscv import cycles as cy


def true_anchor_ends(device, cap, run):
    """Ground-truth anchor = end of the z*sigma mulh event."""
    starts = cap.event_starts
    return [
        int(starts[i + 1])
        for i, e in enumerate(run.events[:-1])
        if e.op_class == cy.OP_MUL and e.rs2_value == 209060
    ]


class TestHelpers:
    def test_moving_average_identity(self):
        x = np.arange(5, dtype=float)
        assert np.array_equal(_moving_average(x, 1), x)

    def test_moving_average_smooths(self):
        x = np.zeros(20)
        x[10] = 10.0
        y = _moving_average(x, 5)
        assert y.max() == pytest.approx(2.0)

    def test_active_regions_merging(self):
        mask = np.array([1, 1, 0, 0, 1, 1, 0, 0, 0, 0, 1], dtype=bool)
        regions = _active_regions(mask, merge_gap=2, min_length=1)
        assert regions == [(0, 6), (10, 11)]

    def test_active_regions_min_length(self):
        mask = np.array([1, 0, 0, 0, 1, 1, 1], dtype=bool)
        regions = _active_regions(mask, merge_gap=0, min_length=2)
        assert regions == [(4, 7)]

    def test_active_regions_empty(self):
        assert _active_regions(np.zeros(5, dtype=bool), 1, 1) == []

    def test_active_regions_matches_loop_reference(self):
        """The vectorized extractor is integer-exact vs a naive scan."""

        def reference(mask, merge_gap, min_length):
            regions, start, last = [], None, None
            for i in np.flatnonzero(mask):
                i = int(i)
                if start is None:
                    start, last = i, i
                elif i - last <= merge_gap + 1:
                    last = i
                else:
                    regions.append((start, last + 1))
                    start, last = i, i
            if start is not None:
                regions.append((start, last + 1))
            return [(s, e) for s, e in regions if e - s >= min_length]

        rng = np.random.default_rng(42)
        for density in (0.05, 0.3, 0.8):
            mask = rng.random(500) < density
            for merge_gap in (0, 1, 3):
                for min_length in (1, 2, 5):
                    assert _active_regions(mask, merge_gap, min_length) == reference(
                        mask, merge_gap, min_length
                    )


class TestMovingAverageParity:
    """The O(n) cumsum sliding mean must match the convolve reference."""

    def test_numeric_parity_random(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 7, 64, 1000):
            x = rng.normal(0, 3, n)
            for window in (1, 2, 3, 8, 31, n, n + 5):
                np.testing.assert_allclose(
                    _moving_average(x, window),
                    _moving_average_reference(x, window),
                    rtol=0,
                    atol=1e-9,
                )

    def test_window_longer_than_input_falls_back(self):
        x = np.arange(4, dtype=float)
        np.testing.assert_array_equal(
            _moving_average(x, 9), _moving_average_reference(x, 9)
        )

    def test_identical_windows_and_anchors(self, bench, monkeypatch):
        """Swapping in the reference smoother yields the same windows on
        a real trace — the fast path changes nothing downstream."""
        cap = bench.capture(123, 5)
        fast = Segmenter().windows(cap.trace.samples)
        monkeypatch.setattr(
            segmentation, "_moving_average", _moving_average_reference
        )
        slow = Segmenter().windows(cap.trace.samples)
        assert [(w.start, w.end, w.anchor) for w in fast] == [
            (w.start, w.end, w.anchor) for w in slow
        ]


class TestWindows:
    def test_window_count_matches_coefficients(self, bench):
        for seed in (11, 22, 33):
            cap = bench.capture(seed, 5)
            windows = Segmenter().windows(cap.trace.samples)
            assert len(windows) == 5

    def test_windows_are_ordered_and_disjoint(self, bench):
        cap = bench.capture(7, 6)
        windows = Segmenter().windows(cap.trace.samples)
        for a, b in zip(windows, windows[1:]):
            assert a.end == b.start
            assert a.start < a.anchor <= a.end

    def test_flat_trace_raises(self):
        with pytest.raises(AttackError):
            Segmenter().windows(np.zeros(5000))

    def test_single_coefficient(self, bench):
        cap = bench.capture(77, 1)
        windows = Segmenter().windows(cap.trace.samples)
        assert len(windows) == 1


class TestAnchors:
    def test_coarse_anchor_majority_near_truth(self, device, bench):
        errors = []
        for seed in range(300, 312):
            cap = bench.capture(seed, 4)
            run = device.run(seed, count=4)
            truth = true_anchor_ends(device, cap, run)
            windows = Segmenter().windows(cap.trace.samples)
            assert len(windows) == len(truth)
            errors.extend(w.anchor - t for w, t in zip(windows, truth))
        close = sum(1 for e in errors if -20 <= e <= 5)
        assert close / len(errors) > 0.75

    def test_refined_anchor_constant_offset(self, device, bench):
        seg = Segmenter()
        pool = [bench.capture(800 + i, 4).trace.samples for i in range(10)]
        refiner = AnchorRefiner.learn(seg, pool)
        errors = []
        for seed in range(300, 315):
            cap = bench.capture(seed, 4)
            run = device.run(seed, count=4)
            truth = true_anchor_ends(device, cap, run)
            for window, t in zip(seg.windows(cap.trace.samples), truth):
                errors.append(refiner.refine(cap.trace.samples, window) - t)
        # all refined anchors within +-2 samples of one constant offset
        mode = max(set(errors), key=errors.count)
        assert all(abs(e - mode) <= 2 for e in errors)

    def test_refiner_needs_enough_windows(self, bench):
        seg = Segmenter()
        with pytest.raises(AttackError):
            AnchorRefiner.learn(seg, [bench.capture(1, 2).trace.samples])

    def test_refiner_reference_length_checked(self):
        with pytest.raises(AttackError):
            AnchorRefiner(np.zeros(10), before=160, after=60)


class TestAlignedSlices:
    def test_fixed_length(self, bench):
        seg = Segmenter()
        cap = bench.capture(5, 4)
        slices = seg.aligned_slices(cap.trace.samples)
        assert len(slices) == 4
        assert all(len(s) == seg.slice_length for s in slices)

    def test_time_variance_forces_segmentation(self, bench):
        """Windows have varying lengths (the rejection loops), so fixed
        strides cannot work - the premise of section III-C."""
        cap = bench.capture(9, 8)
        windows = Segmenter().windows(cap.trace.samples)
        lengths = {w.end - w.start for w in windows}
        assert len(lengths) > 1
