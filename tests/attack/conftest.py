"""Shared attack fixtures: one profiled attack instance reused by tests.

Profiling takes a few seconds, so the expensive fixtures are
session-scoped and deliberately small; the benchmarks run the
full-scale versions.
"""

import pytest

from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


@pytest.fixture(scope="session")
def device():
    return GaussianSamplerDevice([PAPER_Q])


@pytest.fixture(scope="session")
def bench(device):
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


@pytest.fixture(scope="session")
def profiled_attack(bench):
    attack = SingleTraceAttack(bench, poi_count=24)
    attack.profile(num_traces=120, coeffs_per_trace=6, first_seed=50_000)
    return attack
