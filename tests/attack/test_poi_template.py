"""Unit tests for POI selection and template matching on synthetic data."""

import numpy as np
import pytest

from repro.attack.poi import (
    dom_scores,
    select_pois_dom,
    select_pois_sosd,
    select_pois_sost,
    sosd_scores,
    sost_scores,
)
from repro.attack.template import TemplateSet, gaussian_priors
from repro.errors import AttackError


def synthetic_classes(rng, informative=(5, 20), length=40, per_class=60, noise=0.5):
    """Two classes differing only at the informative indices."""
    by_label = {}
    for label in (0, 1):
        base = np.zeros(length)
        for idx in informative:
            base[idx] = 3.0 * label
        traces = base + rng.normal(0, noise, (per_class, length))
        by_label[label] = traces
    return by_label


class TestPoiSelection:
    def test_sosd_finds_informative_samples(self):
        rng = np.random.default_rng(0)
        by_label = synthetic_classes(rng)
        pois = select_pois_sosd(by_label, 2)
        assert set(pois) == {5, 20}

    def test_sost_finds_informative_samples(self):
        rng = np.random.default_rng(1)
        by_label = synthetic_classes(rng)
        assert set(select_pois_sost(by_label, 2)) == {5, 20}

    def test_dom_finds_informative_samples(self):
        rng = np.random.default_rng(2)
        by_label = synthetic_classes(rng)
        assert set(select_pois_dom(by_label, 2)) == {5, 20}

    def test_min_distance_spacing(self):
        rng = np.random.default_rng(3)
        by_label = synthetic_classes(rng, informative=(5, 6, 7, 30))
        pois = select_pois_sosd(by_label, 3, min_distance=3)
        assert len(pois) == 3
        for a, b in zip(pois, pois[1:]):
            assert b - a >= 3

    def test_scores_nonnegative(self):
        rng = np.random.default_rng(4)
        by_label = synthetic_classes(rng)
        for scores in (sosd_scores(by_label), sost_scores(by_label), dom_scores(by_label)):
            assert (scores >= 0).all()

    def test_empty_raises(self):
        with pytest.raises(AttackError):
            select_pois_sosd({}, 2)


class TestTemplateSet:
    def test_classifies_clean_separation(self):
        rng = np.random.default_rng(5)
        by_label = synthetic_classes(rng, noise=0.3)
        templates = TemplateSet.build(by_label, [5, 20])
        correct = 0
        for label in (0, 1):
            fresh = synthetic_classes(np.random.default_rng(100 + label), noise=0.3)
            for trace in fresh[label][:20]:
                correct += templates.classify(trace) == label
        assert correct >= 38  # 95%+

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(6)
        by_label = synthetic_classes(rng)
        templates = TemplateSet.build(by_label, [5, 20])
        probs = templates.probabilities(by_label[1][0])
        assert sum(probs.values()) == pytest.approx(1.0)
        assert set(probs) == {0, 1}

    def test_restriction(self):
        rng = np.random.default_rng(7)
        by_label = synthetic_classes(rng)
        templates = TemplateSet.build(by_label, [5, 20])
        probs = templates.probabilities(by_label[0][0], restrict=[1])
        assert probs == {1: 1.0}

    def test_restriction_to_nothing_raises(self):
        rng = np.random.default_rng(8)
        templates = TemplateSet.build(synthetic_classes(rng), [5, 20])
        with pytest.raises(AttackError):
            templates.probabilities(np.zeros(40), restrict=[99])

    def test_priors_shift_decision(self):
        rng = np.random.default_rng(9)
        by_label = synthetic_classes(rng, noise=3.0)  # noisy: prior matters
        strong_prior = {0: 0.999, 1: 0.001}
        templates = TemplateSet.build(by_label, [5, 20], priors=strong_prior)
        decisions = [templates.classify(t) for t in by_label[1][:20]]
        assert decisions.count(0) > 5  # the prior drags decisions to 0

    def test_needs_two_traces_per_class(self):
        with pytest.raises(AttackError):
            TemplateSet.build({0: np.zeros((1, 10))}, [0])

    def test_empty_raises(self):
        with pytest.raises(AttackError):
            TemplateSet.build({}, [0])

    def test_log_likelihood_ranks_own_class_higher(self):
        rng = np.random.default_rng(10)
        by_label = synthetic_classes(rng, noise=0.3)
        templates = TemplateSet.build(by_label, [5, 20])
        lls = templates.log_likelihoods(by_label[1][0])
        assert lls[1] > lls[0]


class TestGaussianPriors:
    def test_normalised(self):
        priors = gaussian_priors(range(-5, 6), 3.19)
        assert sum(priors.values()) == pytest.approx(1.0)

    def test_symmetric_and_peaked_at_zero(self):
        priors = gaussian_priors(range(-5, 6), 3.19)
        assert priors[0] == max(priors.values())
        assert priors[-3] == pytest.approx(priors[3])
