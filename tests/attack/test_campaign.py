"""Tests for the parallel campaign engine and the profile cache."""

import numpy as np
import pytest

from repro.attack.campaign import (
    profile_cache_key,
    profiled_attack_cached,
    run_campaign,
)
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


def fresh_bench():
    return TraceAcquisition(
        GaussianSamplerDevice([PAPER_Q]), scope=Oscilloscope(noise_std=1.0), rng=0
    )


class TestRunCampaign:
    def test_requires_profiling(self, bench):
        with pytest.raises(AttackError):
            run_campaign(SingleTraceAttack(bench), trace_count=2)

    def test_serial_report(self, profiled_attack):
        report = run_campaign(
            profiled_attack, trace_count=12, coeffs_per_trace=4, first_seed=1
        )
        assert report.coefficients_attacked == 12 * 4 - 4 * report.traces_failed
        assert report.traces_attacked + report.traces_failed == 12
        assert 0.0 <= report.value_accuracy <= 1.0
        assert report.sign_accuracy >= 0.95
        assert report.workers == 1
        assert report.coefficients_per_second > 0

    def test_pool_bit_identical_to_serial(self, profiled_attack):
        serial = run_campaign(
            profiled_attack, trace_count=10, coeffs_per_trace=4, first_seed=1
        )
        pooled = run_campaign(
            profiled_attack, trace_count=10, coeffs_per_trace=4, first_seed=1,
            workers=2,
        )
        assert pooled.workers == 2
        assert [o[:3] for o in serial.outcomes] == [o[:3] for o in pooled.outcomes]
        for a, b in zip(serial.outcomes, pooled.outcomes):
            assert a[3] == b[3]  # probability tables, exact
        assert serial.sign_accuracy == pooled.sign_accuracy
        assert serial.value_accuracy == pooled.value_accuracy

    def test_per_stage_timings(self, profiled_attack):
        report = run_campaign(
            profiled_attack, trace_count=4, coeffs_per_trace=3, first_seed=1
        )
        assert set(report.timings) == {"capture", "segment", "classify", "score"}
        assert all(v >= 0 for v in report.timings.values())
        text = report.format_timings()
        for stage in ("capture", "segment", "classify", "wall"):
            assert stage in text
        assert "coefficients/s" in text

    def test_to_result_bridges_to_evaluation(self, profiled_attack):
        report = run_campaign(
            profiled_attack, trace_count=6, coeffs_per_trace=4, first_seed=1
        )
        result = report.to_result()
        assert result.coefficients_attacked == report.coefficients_attacked
        assert result.sign_accuracy == report.sign_accuracy
        assert len(result.probability_tables) == report.coefficients_attacked
        stats = result.hint_statistics()
        assert 0.0 <= stats["perfect_fraction"] <= 1.0

    def test_lanes_bit_identical_to_threaded(self, profiled_attack):
        threaded = run_campaign(
            profiled_attack, trace_count=10, coeffs_per_trace=4, first_seed=1
        )
        lanes = run_campaign(
            profiled_attack, trace_count=10, coeffs_per_trace=4, first_seed=1,
            engine="lanes", lanes=4,
        )
        assert lanes.engine == "lanes" and threaded.engine == "threaded"
        assert [o[:3] for o in threaded.outcomes] == [o[:3] for o in lanes.outcomes]
        for a, b in zip(threaded.outcomes, lanes.outcomes):
            assert a[3] == b[3]
        assert threaded.sign_accuracy == lanes.sign_accuracy
        assert threaded.value_accuracy == lanes.value_accuracy
        assert "lanes engine" in lanes.format_timings()

    def test_lanes_pool_bit_identical_to_lanes_serial(self, profiled_attack):
        serial = run_campaign(
            profiled_attack, trace_count=8, coeffs_per_trace=3, first_seed=1,
            engine="lanes", lanes=2,
        )
        pooled = run_campaign(
            profiled_attack, trace_count=8, coeffs_per_trace=3, first_seed=1,
            engine="lanes", lanes=2, workers=2,
        )
        assert pooled.workers == 2
        assert [o[:3] for o in serial.outcomes] == [o[:3] for o in pooled.outcomes]
        assert serial.sign_accuracy == pooled.sign_accuracy

    def test_summary_mentions_budget(self, profiled_attack):
        report = run_campaign(
            profiled_attack, trace_count=4, coeffs_per_trace=2, first_seed=1
        )
        summary = report.summary()
        assert "traces attacked" in summary
        assert "sign accuracy" in summary


class TestProfileCache:
    def test_miss_then_hit(self, tmp_path):
        first, cached1, report1 = profiled_attack_cached(
            fresh_bench(), tmp_path, num_traces=40, coeffs_per_trace=4,
            first_seed=50_000,
        )
        assert not cached1 and report1 is not None
        second, cached2, report2 = profiled_attack_cached(
            fresh_bench(), tmp_path, num_traces=40, coeffs_per_trace=4,
            first_seed=50_000,
        )
        assert cached2 and report2 is None
        assert second.templates.pois == first.templates.pois
        np.testing.assert_allclose(
            second.templates.precision, first.templates.precision, atol=1e-12
        )
        a = run_campaign(first, trace_count=6, coeffs_per_trace=4, first_seed=1)
        b = run_campaign(second, trace_count=6, coeffs_per_trace=4, first_seed=1)
        assert [o[:3] for o in a.outcomes] == [o[:3] for o in b.outcomes]

    def test_key_sensitive_to_configuration(self, tmp_path):
        bench = fresh_bench()
        attack = SingleTraceAttack(bench)
        base = profile_cache_key(attack, 40, 4, 50_000, "sequential")
        assert profile_cache_key(attack, 41, 4, 50_000, "sequential") != base
        assert profile_cache_key(attack, 40, 4, 50_000, "per-seed") != base
        other = SingleTraceAttack(bench, poi_count=attack.poi_count + 1)
        assert profile_cache_key(other, 40, 4, 50_000, "sequential") != base
        standardized = SingleTraceAttack(bench, standardize=True)
        assert profile_cache_key(standardized, 40, 4, 50_000, "sequential") != base

    def test_config_change_misses(self, tmp_path):
        profiled_attack_cached(
            fresh_bench(), tmp_path, num_traces=40, coeffs_per_trace=4,
            first_seed=50_000,
        )
        _, cached, _ = profiled_attack_cached(
            fresh_bench(), tmp_path,
            attack_kwargs={"poi_count": 20},
            num_traces=40, coeffs_per_trace=4, first_seed=50_000,
        )
        assert not cached
