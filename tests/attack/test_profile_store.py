"""Tests for the multi-tenant profile store (atomicity, LRU, listing)."""

import multiprocessing
import os

import pytest

from repro.attack.pipeline import SingleTraceAttack
from repro.attack.profile_store import ProfileStore
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def fresh_bench():
    return TraceAcquisition(
        GaussianSamplerDevice([PAPER_Q]), scope=Oscilloscope(noise_std=1.0), rng=0
    )


class TestNamingAndListing:
    def test_legacy_compatible_paths(self, tmp_path):
        store = ProfileStore(tmp_path)
        path = store.path_for(KEY_A)
        assert path.name == f"profile-{'a' * 16}.npz"
        assert path.parent == tmp_path
        assert not store.contains(KEY_A)

    def test_entries_empty_for_missing_directory(self, tmp_path):
        assert ProfileStore(tmp_path / "nope").entries() == []

    def test_entries_sorted_least_recent_first(self, tmp_path):
        store = ProfileStore(tmp_path)
        for key, age in ((KEY_A, 300), (KEY_B, 100), (KEY_C, 200)):
            path = store.path_for(key)
            path.write_bytes(b"x" * 10)
            os.utime(path, (1_000_000 - age, 1_000_000 - age))
        keys = [entry.key for entry in store.entries()]
        assert keys == ["a" * 16, "c" * 16, "b" * 16]
        assert all(entry.bytes == 10 for entry in store.entries())

    def test_caps_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ProfileStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ProfileStore(tmp_path, max_bytes=0)


class TestSaveLoad:
    def test_roundtrip_and_miss(self, bench, profiled_attack, tmp_path):
        store = ProfileStore(tmp_path)
        assert store.load(bench, KEY_A) is None
        store.save(profiled_attack, KEY_A)
        loaded = store.load(bench, KEY_A)
        assert loaded is not None
        assert list(loaded.templates.labels) == list(
            profiled_attack.templates.labels
        )
        assert loaded.branch_classifier is not None

    def test_save_leaves_no_temp_files(self, profiled_attack, tmp_path):
        store = ProfileStore(tmp_path)
        store.save(profiled_attack, KEY_A)
        assert [p.name for p in tmp_path.iterdir()] == [
            store.path_for(KEY_A).name
        ]

    def test_load_touches_lru_clock(self, bench, profiled_attack, tmp_path):
        store = ProfileStore(tmp_path)
        path = store.save(profiled_attack, KEY_A)
        os.utime(path, (1, 1))
        store.load(bench, KEY_A)
        assert path.stat().st_mtime > 1


class TestEviction:
    def test_max_entries_drops_least_recently_used(
        self, profiled_attack, tmp_path
    ):
        store = ProfileStore(tmp_path, max_entries=2)
        store.save(profiled_attack, KEY_A)
        store.save(profiled_attack, KEY_B)
        os.utime(store.path_for(KEY_A), (1, 1))  # A is now the coldest
        store.save(profiled_attack, KEY_C)
        assert not store.contains(KEY_A)
        assert store.contains(KEY_B)
        assert store.contains(KEY_C)

    def test_touch_on_load_protects_hot_entries(
        self, bench, profiled_attack, tmp_path
    ):
        store = ProfileStore(tmp_path, max_entries=2)
        store.save(profiled_attack, KEY_A)
        store.save(profiled_attack, KEY_B)
        os.utime(store.path_for(KEY_A), (1, 1))
        os.utime(store.path_for(KEY_B), (2, 2))
        store.load(bench, KEY_A)  # refresh A: B becomes the coldest
        store.save(profiled_attack, KEY_C)
        assert store.contains(KEY_A)
        assert not store.contains(KEY_B)

    def test_max_bytes_keeps_just_written_key(self, profiled_attack, tmp_path):
        store = ProfileStore(tmp_path, max_bytes=1)
        path = store.save(profiled_attack, KEY_A)
        # The cap is absurdly small, but the archive just written is
        # protected — a store must never evict its own save.
        assert path.exists()

    def test_uncapped_store_never_evicts(self, profiled_attack, tmp_path):
        store = ProfileStore(tmp_path)
        store.save(profiled_attack, KEY_A)
        assert store.evict() == []
        assert store.contains(KEY_A)


def _stress_writer(directory, key, barrier):
    """Profile a tiny attack and hammer the store with saves."""
    bench = fresh_bench()
    attack = SingleTraceAttack(bench, poi_count=8)
    attack.profile(num_traces=40, coeffs_per_trace=2, first_seed=60_000)
    store = ProfileStore(directory)
    barrier.wait()
    for _ in range(8):
        store.save(attack, key)


class TestConcurrentWriters:
    def test_two_process_write_race_is_benign(self, tmp_path):
        """Satellite: concurrent writers of one key never produce a torn
        archive — every concurrent load sees a complete profile or a miss."""
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(3)
        procs = [
            ctx.Process(target=_stress_writer, args=(tmp_path, KEY_A, barrier))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        bench = fresh_bench()
        store = ProfileStore(tmp_path)
        barrier.wait()
        observed = 0
        while any(proc.is_alive() for proc in procs):
            attack = store.load(bench, KEY_A)
            if attack is not None:
                assert attack.templates is not None
                assert attack.branch_classifier is not None
                observed += 1
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        final = store.load(bench, KEY_A)
        assert final is not None and final.templates is not None
        assert observed > 0
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".")]
        assert leftovers == []
