"""Tests for the best-first search over the remaining space."""

import numpy as np
import pytest

from repro.attack.search import (
    enumerate_candidates,
    expected_search_effort,
    search_message,
)
from repro.bfv.decryptor import Decryptor
from repro.bfv.encryptor import Encryptor
from repro.bfv.keygen import KeyGenerator
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import AttackError


class TestEnumeration:
    def test_order_is_nonincreasing(self):
        tables = [{0: 0.6, 1: 0.4}, {2: 0.9, 3: 0.1}, {5: 0.5, 6: 0.3, 7: 0.2}]
        scores = [s for s, _ in enumerate_candidates(tables, limit=12)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_enumerates_all_combinations(self):
        tables = [{0: 0.6, 1: 0.4}, {2: 0.7, 3: 0.3}]
        candidates = [tuple(c) for _, c in enumerate_candidates(tables, limit=10)]
        assert len(candidates) == 4
        assert len(set(candidates)) == 4

    def test_first_candidate_is_argmax(self):
        tables = [{0: 0.6, 1: 0.4}, {3: 0.3, 2: 0.7}]
        _, first = next(enumerate_candidates(tables))
        assert first == [0, 2]

    def test_limit_respected(self):
        tables = [{v: 1 / 5 for v in range(5)}] * 4
        assert len(list(enumerate_candidates(tables, limit=17))) == 17

    def test_empty_tables_rejected(self):
        with pytest.raises(AttackError):
            next(enumerate_candidates([]))
        with pytest.raises(AttackError):
            next(enumerate_candidates([{}]))


class TestSearchMessage:
    @pytest.fixture(scope="class")
    def setup(self):
        ctx = BfvContext.toy(poly_degree=32, plain_modulus=17)
        keygen = KeyGenerator(ctx, rng=0)
        pk = keygen.public_key()
        return ctx, pk, Encryptor(ctx, pk)

    def _tables_with_uncertainty(self, e2, rng, flip_count):
        """Exact tables except flip_count coefficients get 2-way doubt."""
        tables = []
        uncertain = set(rng.choice(len(e2), size=flip_count, replace=False))
        for i, v in enumerate(e2):
            if i in uncertain:
                tables.append({int(v): 0.55, int(v) + 1: 0.45})
            else:
                tables.append({int(v): 1.0})
        return tables

    def test_recovers_with_exact_tables(self, setup):
        ctx, pk, encryptor = setup
        m = Plaintext.constant(5, ctx.n, ctx.t)
        ct, art = encryptor.encrypt_with_artifacts(m, rng=1)
        tables = [{int(v): 1.0} for v in art.e2]
        result = search_message(ctx, ct, pk, tables)
        assert result.message == m
        assert result.candidates_tried == 1
        assert result.e2 == art.e2

    def test_recovers_with_uncertain_tables(self, setup):
        ctx, pk, encryptor = setup
        rng = np.random.default_rng(2)
        m = Plaintext(rng.integers(0, ctx.t, ctx.n), ctx.t)
        ct, art = encryptor.encrypt_with_artifacts(m, rng=3)
        tables = self._tables_with_uncertainty(art.e2, rng, flip_count=8)
        result = search_message(ctx, ct, pk, tables, budget=2000)
        assert result.message == m
        assert result.e2 == art.e2
        assert result.candidates_tried >= 1

    def test_budget_exhaustion_raises(self, setup):
        ctx, pk, encryptor = setup
        m = Plaintext.constant(1, ctx.n, ctx.t)
        ct, art = encryptor.encrypt_with_artifacts(m, rng=4)
        # tables that exclude the true value everywhere
        tables = [{int(v) + 1: 0.5, int(v) + 2: 0.5} for v in art.e2]
        with pytest.raises(AttackError):
            search_message(ctx, ct, pk, tables, budget=50)

    def test_table_count_validated(self, setup):
        ctx, pk, encryptor = setup
        ct = encryptor.encrypt(Plaintext.zero(ctx.n, ctx.t), rng=5)
        with pytest.raises(AttackError):
            search_message(ctx, ct, pk, [{0: 1.0}])


class TestEffort:
    def test_certain_tables_zero_effort(self):
        assert expected_search_effort([{1: 1.0}] * 10) == 0.0

    def test_uniform_tables_full_entropy(self):
        tables = [{0: 0.5, 1: 0.5}] * 8
        assert expected_search_effort(tables) == pytest.approx(8.0)
