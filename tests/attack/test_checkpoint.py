"""Tests for atomic campaign checkpoints and the resume fingerprint."""

import json

import numpy as np
import pytest

from repro.attack.checkpoint import (
    CHECKPOINT_VERSION,
    CampaignCheckpoint,
    atomic_savez,
    campaign_fingerprint,
)
from repro.errors import AttackError

LABELS = [-3, -2, -1, 1, 2, 3]


def make_checkpoint(directory, trace_count=10, shard_size=4, first_seed=5):
    fingerprint = campaign_fingerprint(first_seed, trace_count, 4, 123, LABELS)
    return CampaignCheckpoint(
        directory, fingerprint, trace_count, first_seed, 4, shard_size
    )


class TestFingerprint:
    def test_deterministic(self):
        a = campaign_fingerprint(1, 10, 4, 99, LABELS)
        b = campaign_fingerprint(1, 10, 4, 99, list(LABELS))
        assert a == b
        assert len(a) == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"first_seed": 2},
            {"trace_count": 11},
            {"coeffs": 5},
            {"entropy": 100},
            {"labels": [-2, -1, 1, 2]},
        ],
    )
    def test_sensitive_to_every_input(self, kwargs):
        base = campaign_fingerprint(1, 10, 4, 99, LABELS)
        changed = campaign_fingerprint(
            kwargs.get("first_seed", 1),
            kwargs.get("trace_count", 10),
            kwargs.get("coeffs", 4),
            kwargs.get("entropy", 99),
            kwargs.get("labels", LABELS),
        )
        assert changed != base


class TestShardGeometry:
    def test_ranges_tile_the_campaign(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path, trace_count=10, shard_size=4)
        assert checkpoint.shards_total == 3
        assert checkpoint.shard_range(0) == range(5, 9)
        assert checkpoint.shard_range(1) == range(9, 13)
        assert checkpoint.shard_range(2) == range(13, 15)  # clamped tail

    def test_rejects_bad_shard_size(self, tmp_path):
        with pytest.raises(AttackError):
            make_checkpoint(tmp_path, shard_size=0)


class TestWriteResume:
    def test_shard_roundtrip_bit_exact(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        tables = np.random.default_rng(0).random((4, 4, len(LABELS)))
        checkpoint.write_shard(
            0,
            ok=np.ones(4, dtype=np.uint8),
            tables=tables,
            errors=np.frombuffer(b"[]", dtype=np.uint8),
        )
        loaded = checkpoint.load_shard(0)
        assert loaded["tables"].tobytes() == tables.tobytes()
        assert loaded["ok"].dtype == np.uint8

    def test_resume_restores_state(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.write_shard(1, ok=np.ones(4, dtype=np.uint8))
        checkpoint.write_shard(0, ok=np.zeros(4, dtype=np.uint8))
        checkpoint.counters = {"steals": 3, "grains": 9}
        checkpoint.write_manifest()
        resumed = CampaignCheckpoint.resume(tmp_path, checkpoint.fingerprint)
        assert resumed.shards_done == [0, 1]
        assert resumed.completed_seeds() == 8
        assert resumed.counters == {"steals": 3, "grains": 9}
        assert resumed.shard_size == 4
        assert resumed.first_seed == 5

    def test_resume_drops_manifest_entries_without_files(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.write_shard(0, ok=np.ones(4, dtype=np.uint8))
        checkpoint.write_shard(1, ok=np.ones(4, dtype=np.uint8))
        checkpoint.shard_path(1).unlink()
        resumed = CampaignCheckpoint.resume(tmp_path, checkpoint.fingerprint)
        assert resumed.shards_done == [0]

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(AttackError, match="manifest"):
            CampaignCheckpoint.resume(tmp_path / "nowhere")

    def test_resume_rejects_other_version(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.write_manifest()
        manifest = json.loads(checkpoint.manifest_path.read_text())
        manifest["version"] = CHECKPOINT_VERSION + 1
        checkpoint.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(AttackError, match="version"):
            CampaignCheckpoint.resume(tmp_path)

    def test_resume_rejects_other_fingerprint(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        checkpoint.write_manifest()
        with pytest.raises(AttackError, match="fingerprint"):
            CampaignCheckpoint.resume(tmp_path, "0" * 64)

    def test_no_temp_files_survive(self, tmp_path):
        checkpoint = make_checkpoint(tmp_path)
        for shard in range(3):
            checkpoint.write_shard(shard, ok=np.ones(4, dtype=np.uint8))
        leftovers = [
            p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")
        ]
        assert leftovers == []


class TestAtomicSavez:
    def test_writes_a_loadable_npz(self, tmp_path):
        path = tmp_path / "blob.npz"
        atomic_savez(path, values=np.arange(5))
        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["values"], np.arange(5))
        assert list(tmp_path.glob(".*")) == []
