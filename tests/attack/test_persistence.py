"""Tests for attack-state serialisation."""

import numpy as np
import pytest

from repro.attack.persistence import load_attack, save_attack
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError


class TestPersistence:
    def test_save_requires_profiling(self, bench, tmp_path):
        attack = SingleTraceAttack(bench)
        with pytest.raises(AttackError):
            save_attack(attack, tmp_path / "attack.npz")

    def test_roundtrip_identical_decisions(self, bench, profiled_attack, tmp_path):
        path = tmp_path / "attack.npz"
        save_attack(profiled_attack, path)
        restored = load_attack(bench, path)

        for seed in (1234, 1235, 1236):
            captured = bench.capture(seed, 4)
            original = profiled_attack.attack(captured)
            loaded = restored.attack(captured)
            assert original.signs == loaded.signs
            assert original.estimates == loaded.estimates
            for a, b in zip(original.probabilities, loaded.probabilities):
                assert set(a) == set(b)
                for label in a:
                    assert a[label] == pytest.approx(b[label], rel=1e-9)

    def test_roundtrip_preserves_configuration(self, bench, profiled_attack, tmp_path):
        path = tmp_path / "attack.npz"
        save_attack(profiled_attack, path)
        restored = load_attack(bench, path)
        assert restored.poi_method == profiled_attack.poi_method
        assert restored.poi_count == profiled_attack.poi_count
        assert restored.sigma == profiled_attack.sigma
        assert restored.templates.pois == profiled_attack.templates.pois
        assert (
            restored.segmenter.config == profiled_attack.segmenter.config
        )

    def test_version_check(self, bench, profiled_attack, tmp_path):
        path = tmp_path / "attack.npz"
        save_attack(profiled_attack, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(AttackError):
            load_attack(bench, path)

    def test_roundtrip_full_configuration(self, bench, tmp_path):
        """Version 2 persists every attack knob: standardize, covariance
        mode, priors, branch region, POI method."""
        attack = SingleTraceAttack(
            bench,
            poi_count=16,
            poi_method="sost",
            use_prior=False,
            standardize=True,
            branch_region=(170, 240),
        )
        attack.profile(num_traces=60, coeffs_per_trace=4, first_seed=50_000)
        path = tmp_path / "attack.npz"
        save_attack(attack, path)
        restored = load_attack(bench, path)
        assert restored.standardize is True
        assert restored.pooled_covariance is True
        assert restored.poi_method == "sost"
        assert restored.use_prior is False
        assert restored.branch_region == (170, 240)
        assert restored.templates.priors is None
        captured = bench.capture(777, 4)
        a, b = attack.attack(captured), restored.attack(captured)
        assert a.signs == b.signs and a.estimates == b.estimates

    def test_roundtrip_per_class_covariances(self, bench, tmp_path):
        """pooled=False templates (per-class precisions) survive the trip."""
        attack = SingleTraceAttack(bench, poi_count=12, pooled_covariance=False)
        attack.profile(num_traces=80, coeffs_per_trace=4, first_seed=50_000)
        assert attack.templates.class_precisions is not None
        path = tmp_path / "attack.npz"
        save_attack(attack, path)
        restored = load_attack(bench, path)
        assert restored.pooled_covariance is False
        assert restored.templates.class_precisions is not None
        for label in attack.templates.labels:
            np.testing.assert_allclose(
                restored.templates.class_precisions[label],
                attack.templates.class_precisions[label],
                atol=1e-12,
            )
            assert restored.templates.class_log_dets[label] == pytest.approx(
                attack.templates.class_log_dets[label]
            )
        captured = bench.capture(778, 4)
        a, b = attack.attack(captured), restored.attack(captured)
        assert a.signs == b.signs and a.estimates == b.estimates
