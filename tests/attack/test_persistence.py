"""Tests for attack-state serialisation."""

import numpy as np
import pytest

from repro.attack.persistence import load_attack, save_attack
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError


class TestPersistence:
    def test_save_requires_profiling(self, bench, tmp_path):
        attack = SingleTraceAttack(bench)
        with pytest.raises(AttackError):
            save_attack(attack, tmp_path / "attack.npz")

    def test_roundtrip_identical_decisions(self, bench, profiled_attack, tmp_path):
        path = tmp_path / "attack.npz"
        save_attack(profiled_attack, path)
        restored = load_attack(bench, path)

        for seed in (1234, 1235, 1236):
            captured = bench.capture(seed, 4)
            original = profiled_attack.attack(captured)
            loaded = restored.attack(captured)
            assert original.signs == loaded.signs
            assert original.estimates == loaded.estimates
            for a, b in zip(original.probabilities, loaded.probabilities):
                assert set(a) == set(b)
                for label in a:
                    assert a[label] == pytest.approx(b[label], rel=1e-9)

    def test_roundtrip_preserves_configuration(self, bench, profiled_attack, tmp_path):
        path = tmp_path / "attack.npz"
        save_attack(profiled_attack, path)
        restored = load_attack(bench, path)
        assert restored.poi_method == profiled_attack.poi_method
        assert restored.poi_count == profiled_attack.poi_count
        assert restored.sigma == profiled_attack.sigma
        assert restored.templates.pois == profiled_attack.templates.pois
        assert (
            restored.segmenter.config == profiled_attack.segmenter.config
        )

    def test_version_check(self, bench, profiled_attack, tmp_path):
        path = tmp_path / "attack.npz"
        save_attack(profiled_attack, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(AttackError):
            load_attack(bench, path)
