"""The attack against a multi-limb (RNS) parameter set.

Larger SEAL degrees use several coefficient moduli; Fig. 2's inner
``for j < coeff_mod_count`` loop then writes one residue per limb.  The
attack pipeline is limb-count agnostic - the assignment region just
gets longer - which this test verifies end to end on a 2-limb device.
"""

import numpy as np
import pytest

from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice
from repro.ring.primes import generate_ntt_primes


@pytest.fixture(scope="module")
def two_limb_attack():
    moduli = [m.value for m in generate_ntt_primes(27, 2, 1024)]
    device = GaussianSamplerDevice(moduli)
    acquisition = TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)
    attack = SingleTraceAttack(acquisition, poi_count=24)
    attack.profile(num_traces=120, coeffs_per_trace=6, first_seed=70_000)
    return acquisition, attack


class TestTwoLimbAttack:
    def test_sign_recovery(self, two_limb_attack):
        acquisition, attack = two_limb_attack
        hits = total = 0
        for seed in range(1, 21):
            captured = acquisition.capture(seed, 4)
            result = attack.attack(captured)
            for value, sign in zip(captured.values, result.signs):
                total += 1
                hits += int(np.sign(value)) == sign
        assert hits / total >= 0.97

    def test_value_recovery_above_chance(self, two_limb_attack):
        acquisition, attack = two_limb_attack
        hits = total = 0
        for seed in range(30, 55):
            captured = acquisition.capture(seed, 4)
            result = attack.attack(captured)
            for value, estimate in zip(captured.values, result.estimates):
                total += 1
                hits += estimate == value
        assert hits / total > 0.3

    def test_negative_branch_leaks_both_limbs(self):
        """The negative path stores q_j - noise for every limb."""
        from repro.riscv import cycles as cy
        from repro.riscv.device import _OUT_BASE

        moduli = [m.value for m in generate_ntt_primes(27, 2, 1024)]
        device = GaussianSamplerDevice(moduli)
        for seed in range(1, 40):
            run = device.run(seed, 1)
            if run.values[0] < 0:
                stores = [
                    e for e in run.events
                    if e.op_class == cy.OP_STORE and e.address >= _OUT_BASE
                ]
                assert len(stores) == 2
                assert stores[0].result == moduli[0] + run.values[0]
                assert stores[1].result == moduli[1] + run.values[0]
                return
        pytest.fail("no negative coefficient in 40 seeds")
