"""Tests for the shared-memory slice arena (the orchestrator's data plane)."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.attack.arena import SliceArena
from repro.errors import ParameterError, VerificationError


@pytest.fixture
def arena():
    arena = SliceArena(slots=4, slot_bytes=4096)
    yield arena
    arena.close()


class TestRoundTrip:
    def test_mixed_dtypes_and_shapes(self, arena):
        arrays = [
            np.arange(5, dtype=np.int64),
            np.ones((2, 3), dtype=np.float64) * 0.125,
            np.array([1, 0, 1], dtype=np.uint8),
            np.zeros((2, 2, 2, 2), dtype=np.float32),
        ]
        generation = arena.write(1, arrays)
        out = arena.read(1, generation)
        assert len(out) == len(arrays)
        for expected, got in zip(arrays, out):
            assert got.dtype == expected.dtype
            assert got.shape == expected.shape
            np.testing.assert_array_equal(got, expected)

    def test_read_returns_copies(self, arena):
        generation = arena.write(0, [np.arange(4, dtype=np.int64)])
        first = arena.read(0, generation)[0]
        first[:] = -1
        second = arena.read(0, generation)[0]
        np.testing.assert_array_equal(second, np.arange(4))

    def test_float64_tables_bit_exact(self, arena):
        rng = np.random.default_rng(3)
        tables = rng.random((4, 8))
        generation = arena.write(2, [tables])
        out = arena.read(2, generation)[0]
        assert out.tobytes() == tables.tobytes()

    def test_generation_increments_per_write(self, arena):
        g1 = arena.write(0, [np.arange(2)])
        g2 = arena.write(0, [np.arange(3)])
        assert g2 == g1 + 1

    def test_packed_bytes_is_aligned_sum(self, arena):
        arrays = [np.zeros(3, dtype=np.uint8), np.zeros(5, dtype=np.int64)]
        assert SliceArena.packed_bytes(arrays) == 8 + 40


class TestProtocolErrors:
    def test_stale_generation_is_hard_error(self, arena):
        old = arena.write(0, [np.arange(2)])
        arena.write(0, [np.arange(2)])
        with pytest.raises(VerificationError, match="generation"):
            arena.read(0, old)

    def test_empty_slot_read_rejected(self, arena):
        with pytest.raises(VerificationError):
            arena.read(3)

    def test_oversize_record_rejected(self, arena):
        with pytest.raises(ParameterError, match="slots hold"):
            arena.write(0, [np.zeros(4097, dtype=np.uint8)])

    def test_too_many_arrays_rejected(self, arena):
        with pytest.raises(ParameterError):
            arena.write(0, [np.zeros(1)] * 17)

    def test_slot_index_bounds(self, arena):
        with pytest.raises(ParameterError):
            arena.write(4, [np.zeros(1)])

    def test_unsupported_dtype_rejected(self, arena):
        with pytest.raises(ParameterError, match="dtype"):
            arena.write(0, [np.array(["x"], dtype=object)])

    def test_constructor_validation(self):
        with pytest.raises(ParameterError):
            SliceArena(slots=0, slot_bytes=4096)
        with pytest.raises(ParameterError):
            SliceArena(slots=1, slot_bytes=8)
        with pytest.raises(ParameterError):
            SliceArena()


class TestScratch:
    def test_scratch_spans_payload(self, arena):
        view = arena.scratch(1)
        assert view.dtype == np.float64
        assert view.size == 4096 // 8

    def test_scratch_aliases_shared_memory(self, arena):
        arena.scratch(1)[:4] = [1.0, 2.0, 3.0, 4.0]
        np.testing.assert_array_equal(
            arena.scratch(1)[:4], [1.0, 2.0, 3.0, 4.0]
        )


def _child_writer(name, slot, result_queue):
    arena = SliceArena(name=name)
    try:
        generation = arena.write(
            slot, [np.arange(6, dtype=np.int64), np.full(3, 2.5)]
        )
        result_queue.put(generation)
    finally:
        arena.close()


class TestCrossProcess:
    def test_pickle_reattaches_by_name(self, arena):
        generation = arena.write(0, [np.arange(8, dtype=np.int64)])
        clone = pickle.loads(pickle.dumps(arena))
        try:
            assert clone.name == arena.name
            np.testing.assert_array_equal(
                clone.read(0, generation)[0], np.arange(8)
            )
        finally:
            clone.close()

    def test_child_process_write_parent_read(self, arena):
        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_writer, args=(arena.name, 2, queue))
        proc.start()
        generation = queue.get(timeout=30)
        proc.join(timeout=30)
        assert proc.exitcode == 0
        arrays = arena.read(2, generation)
        np.testing.assert_array_equal(arrays[0], np.arange(6))
        np.testing.assert_array_equal(arrays[1], np.full(3, 2.5))
