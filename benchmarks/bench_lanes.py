"""Lane-engine throughput benchmark: batched capture vs threaded.

Measures traces/second of the lane-vectorized engine at lane widths
L in {1, 16, 64} against the threaded single-lane baseline, at both
the device level (``run_lanes``, the raw emulation rate) and the
capture level (``capture_batch(engine="lanes")``, the end-to-end rate
the campaign engine sees: emulation + leakage expansion + noise).
Per-lane results are bit-identical to the threaded engine (the
``cpu.run_lanes`` oracle and tests/differential/test_lanes.py), so
this is a pure throughput comparison.

The capture pipeline is dominated by stages both engines share —
leakage expansion and the per-trace scope-noise stream — so the
end-to-end L=64 speedup is bounded well below the raw emulation gain
(Amdahl); measured numbers live in benchmarks/BENCH_core.json under
"lanes".  ``--quick`` is the CI smoke: it requires L=64 capture to
stay at or above the threaded baseline, with a small tolerance so one
noisy shared-runner rep cannot flake the build.

Run directly::

    PYTHONPATH=src python benchmarks/bench_lanes.py            # full (5 reps)
    PYTHONPATH=src python benchmarks/bench_lanes.py --quick    # CI smoke (1 rep)
    PYTHONPATH=src python benchmarks/bench_lanes.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

MODULI = [0xFFEE001, 0xFFC4001, 0x7FE2001, 0x7F54001]
TRACES = 64
COUNT = 8
FIRST_SEED = 1000
LANE_WIDTHS = (1, 16, 64)


def bench_device(repetitions: int) -> Dict[str, float]:
    """Raw emulation rate: traces/second of run_lanes vs run.

    Configurations are interleaved within each repetition (threaded,
    then every lane width) so the reported speedup compares both
    engines under the same instantaneous machine conditions — on a
    shared container the absolute rates drift far more between phases
    than between back-to-back runs.
    """
    device = GaussianSamplerDevice(MODULI)
    seeds = list(range(FIRST_SEED, FIRST_SEED + TRACES))
    results: Dict[str, float] = {}

    device.run(seeds[0], COUNT)  # warm the threaded translation cache
    for width in LANE_WIDTHS:
        device.run_lanes(seeds[:width], COUNT)  # warm the lane block cache
    for _ in range(repetitions):
        start = time.perf_counter()
        for seed in seeds:
            device.run(seed, COUNT)
        rate = TRACES / (time.perf_counter() - start)
        key = "threaded_traces_per_s"
        results[key] = round(max(results.get(key, 0.0), rate), 1)
        for width in LANE_WIDTHS:
            start = time.perf_counter()
            for i in range(0, TRACES, width):
                device.run_lanes(seeds[i : i + width], COUNT)
            rate = TRACES / (time.perf_counter() - start)
            key = f"lanes{width}_traces_per_s"
            results[key] = round(max(results.get(key, 0.0), rate), 1)
    results["speedup_lanes64_vs_threaded"] = round(
        results["lanes64_traces_per_s"] / results["threaded_traces_per_s"], 2
    )
    return results


def bench_capture(repetitions: int) -> Dict[str, float]:
    """End-to-end capture rate: emulation + expansion + scope noise.

    Interleaved like :func:`bench_device`, for the same reason: the
    lanes-vs-threaded ratio is the guarded quantity and must compare
    like-for-like machine conditions.
    """
    bench = TraceAcquisition(
        GaussianSamplerDevice(MODULI), scope=Oscilloscope(noise_std=1.0), rng=0
    )
    results: Dict[str, float] = {}
    configs = [("threaded", {})] + [
        (f"lanes{width}", {"engine": "lanes", "lanes": width})
        for width in LANE_WIDTHS
    ]

    for _, kwargs in configs:  # warm caches once per configuration
        bench.capture_batch(TRACES, coeffs_per_trace=COUNT,
                            first_seed=FIRST_SEED, **kwargs)
    for _ in range(repetitions):
        for name, kwargs in configs:
            start = time.perf_counter()
            bench.capture_batch(TRACES, coeffs_per_trace=COUNT,
                                first_seed=FIRST_SEED, **kwargs)
            rate = TRACES / (time.perf_counter() - start)
            key = f"{name}_traces_per_s"
            results[key] = round(max(results.get(key, 0.0), rate), 1)
    results["speedup_lanes64_vs_threaded"] = round(
        results["lanes64_traces_per_s"] / results["threaded_traces_per_s"], 2
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=5, help="timed repetitions per case"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 1 repetition + L=64-beats-threaded guard",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)
    repetitions = 1 if args.quick else args.repetitions

    device = bench_device(repetitions)
    capture = bench_capture(repetitions)

    print(f"Lane engine ({TRACES} traces x {COUNT} coefficients, traces/sec, "
          f"best of {repetitions}):")
    print("  device level (run_lanes):")
    for key in ("threaded", *(f"lanes{w}" for w in LANE_WIDTHS)):
        print(f"    {key:10s} {device[f'{key}_traces_per_s']:>10,.0f}")
    print(f"    speedup L=64 vs threaded {device['speedup_lanes64_vs_threaded']:.2f}x")
    print("  capture level (capture_batch):")
    for key in ("threaded", *(f"lanes{w}" for w in LANE_WIDTHS)):
        print(f"    {key:10s} {capture[f'{key}_traces_per_s']:>10,.0f}")
    print(f"    speedup L=64 vs threaded {capture['speedup_lanes64_vs_threaded']:.2f}x")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"device": device, "capture": capture}, fh, indent=2)
        print(f"wrote {args.json}")

    # Guard: lanes at L=64 must not fall below the threaded baseline.
    # 0.9 rather than 1.0 because one CI repetition on a shared runner
    # jitters by ~10%; a real regression (lanes losing its batching
    # advantage) lands far below this.
    if args.quick and capture["speedup_lanes64_vs_threaded"] < 0.9:
        print("REGRESSION: lanes L=64 capture throughput fell below the "
              "threaded single-lane baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
