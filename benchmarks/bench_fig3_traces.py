"""Figure 3 reproduction: trace segmentation and branch separability.

Fig. 3(a): a power trace of three coefficient samplings shows
"distinguishable and visible peaks" that delimit each distribution
call.  Fig. 3(b): the three branch sub-traces are distinguishable.

Printed output: the per-coefficient window boundaries and anchors
(3a) and the inter-branch template distances plus single-trace branch
classification accuracy (3b).
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.attack.branch import sign_of
from repro.attack.segmentation import Segmenter


class TestFig3a:
    def test_fig3a_segmentation(self, bench_acquisition, benchmark):
        captured = bench_acquisition.capture(seed=3, count=3)
        segmenter = Segmenter()
        windows = benchmark(segmenter.windows, captured.trace.samples)

        print("\n=== Fig. 3(a): one trace, three coefficient samplings ===")
        print(f"trace length: {len(captured.trace)} samples "
              f"({captured.cycle_count} cycles @ 1 sample/cycle)")
        print(f"sampled coefficients (ground truth): {captured.values}")
        for w in windows:
            peak = float(np.max(captured.trace.samples[w.start : w.end]))
            print(
                f"  coefficient {w.index}: window [{w.start:6d}, {w.end:6d})"
                f"  anchor {w.anchor:6d}  peak amplitude {peak:6.1f}"
            )
        assert len(windows) == 3
        lengths = [w.end - w.start for w in windows]
        print(f"window lengths: {lengths} (time-variant sampling; no fixed stride)")

        from repro.power.visualize import ascii_trace_with_windows

        print("\ntrace rendering (| = window boundary, ^ = value-burst anchor):")
        print(
            ascii_trace_with_windows(
                captured.trace.samples,
                boundaries=[w.start for w in windows],
                anchors=[w.anchor for w in windows],
                width=110,
                height=9,
            )
        )

    def test_fig3a_windows_track_rejections(self, bench_acquisition):
        """Window lengths vary across coefficients (rejection loops)."""
        lengths = set()
        for seed in (5, 6, 7):
            captured = bench_acquisition.capture(seed, 6)
            for w in Segmenter().windows(captured.trace.samples):
                lengths.add(w.end - w.start)
        assert len(lengths) > 3


class TestFig3b:
    def test_fig3b_branch_separation(self, bench_acquisition, profiled_attack, benchmark):
        classifier = profiled_attack.branch_classifier
        print("\n=== Fig. 3(b): the three branches are distinguishable ===")
        print(f"minimum inter-branch template distance: {classifier.separation():.2f}")

        correct = total = 0
        sample_slice = None
        for seed in range(2000, 2000 + scaled(40)):
            captured = bench_acquisition.capture(seed, 4)
            slices = profiled_attack.segmenter.aligned_slices(
                captured.trace.samples, refiner=profiled_attack.refiner
            )
            for value, piece in zip(captured.values, slices):
                total += 1
                correct += classifier.classify(piece) == sign_of(value)
                sample_slice = piece
        accuracy = correct / total
        print(f"single-trace branch identification: {correct}/{total} "
              f"({100 * accuracy:.2f}%)  [paper: 100%]")
        assert accuracy >= 0.995

        benchmark(classifier.classify, sample_slice)
