"""Table III reproduction: cost of the primal attack with/without hints.

SEAL-128 smallest set (q = 132120577, n = 1024, sigma = 3.2):

==============================  ========  ==================
row                             paper     this reproduction
==============================  ========  ==================
attack without hints (bikz)     382.25    printed below
attack with hints (bikz)        12.2      printed below
==============================  ========  ==================

Two "with hints" rows are printed:

- *Table II confidence*: hints carry the paper's reported probability
  quality (~1 for every measurement, i.e. perfect hints) - this
  reproduces the paper's complete-break number;
- *measured posteriors*: hints carry this reproduction's calibrated
  posterior moments.  Positive coefficients genuinely confuse within
  Hamming-weight classes (Table I!), so calibrated hints leave more
  residual hardness - see EXPERIMENTS.md for the discussion of the
  paper's overconfident Table II.
"""

import numpy as np
import pytest

from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
from repro.hints.hintgen import CoefficientHint, apply_hints, hints_from_probability_tables
from repro.hints.security import (
    PAPER_BIKZ_NO_HINTS,
    PAPER_BIKZ_WITH_HINTS,
    seal_128_dbdd,
    seal_128_parameters,
)


def _row(label, beta, paper=None):
    ref = f"   [paper: {paper}]" if paper is not None else ""
    print(f"  {label:<38} {beta:8.2f} bikz = 2^{bikz_to_bits(beta):6.2f}{ref}")


class TestTable3:
    def test_table3_without_hints(self, benchmark):
        instance = seal_128_dbdd()
        beta = benchmark(beta_for_dbdd, instance)
        print("\n=== Table III: cost of attack, SEAL-128 ===")
        _row("without hints", beta, PAPER_BIKZ_NO_HINTS)
        assert beta == pytest.approx(PAPER_BIKZ_NO_HINTS, rel=0.02)
        assert bikz_to_bits(beta) == pytest.approx(128, abs=3)

    def test_table3_with_hints_paper_confidence(self, benchmark):
        """Hints at the paper's Table II confidence: a complete break."""
        params = seal_128_parameters()
        rng = np.random.default_rng(0)
        e2 = np.rint(np.clip(rng.normal(0, params.error_sigma, params.m), -41, 41))

        def build_and_estimate():
            instance = seal_128_dbdd()
            hints = [
                CoefficientHint(i, float(v), 2.7e-10)  # Table II's variances
                for i, v in enumerate(e2)
            ]
            apply_hints(instance, hints, params.n)
            return beta_for_dbdd(instance)

        beta = benchmark(build_and_estimate)
        _row("with hints (Table II confidence)", beta, PAPER_BIKZ_WITH_HINTS)
        print("  -> security reduced from 2^128 to a complete break "
              "(paper: 2^4.4)")
        assert bikz_to_bits(beta) < 5

    def test_table3_with_hints_measured(self, attack_corpus, benchmark):
        """Hints from this reproduction's calibrated posteriors."""
        params = seal_128_parameters()
        instance = seal_128_dbdd()
        tables = [table for _, _, _, table in attack_corpus[: params.m]]
        assert len(tables) == params.m, "attack corpus smaller than n"
        hints = benchmark(hints_from_probability_tables, tables)
        apply_hints(instance, hints, params.n)
        beta = beta_for_dbdd(instance)
        no_hints = beta_for_dbdd(seal_128_dbdd())
        perfect = sum(1 for h in hints if h.is_perfect)
        _row("with hints (measured posteriors)", beta)
        print(f"  ({perfect}/{params.m} coefficients recovered with certainty; "
              f"the rest contribute approximate hints)")
        assert beta < no_hints - 80  # hints help massively...
        assert beta > 20  # ...but calibrated positives retain hardness
