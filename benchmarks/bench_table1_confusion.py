"""Table I reproduction: template-attack success percentages.

The paper profiles with 220,000 executions and attacks 25,000 traces;
rows are the predicted template, columns the actual sampled
coefficient.  We reproduce the matrix at a reduced (REVEAL_SCALE-able)
trace budget and assert the paper's structural findings:

- the sign of the coefficient is recovered (essentially) always;
- zero coefficients are recovered exactly;
- negative coefficients are recovered far more reliably than positive
  ones (the negation - vulnerability 3 - disambiguates them);
- positive confusion happens within Hamming-weight classes.
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.attack.branch import sign_of


class TestTable1:
    def test_table1_confusion_matrix(self, attack_corpus, confusion, benchmark):
        labels = [v for v in range(-7, 8) if confusion.total(v) >= 3]
        print("\n=== Table I: attack success percentages (%) ===")
        print(f"attack budget: {len(attack_corpus)} single-trace coefficient "
              f"recoveries (paper: 25,000 traces)")
        print(confusion.format_table(labels))

        sign_accuracy = sum(
            1 for value, sign, _, _ in attack_corpus if sign_of(value) == sign
        ) / len(attack_corpus)
        print(f"\nsign recovery:  {100 * sign_accuracy:.2f}%   [paper: 100%]")
        print(f"zero recovery:  {100 * confusion.accuracy(0):.1f}%   [paper: 100%]")

        negatives = [confusion.accuracy(v) for v in range(-7, 0) if confusion.total(v) >= 5]
        positives = [confusion.accuracy(v) for v in range(1, 8) if confusion.total(v) >= 5]
        print(f"mean negative-coefficient accuracy: {100 * np.mean(negatives):.1f}%  "
              f"[paper -1..-7: ~64%]")
        print(f"mean positive-coefficient accuracy: {100 * np.mean(positives):.1f}%  "
              f"[paper 1..7: ~22%]")

        assert sign_accuracy >= 0.995
        assert confusion.accuracy(0) >= 0.95
        assert np.mean(negatives) > np.mean(positives) + 0.1

        # time one full single-trace attack (segmentation + matching)
        benchmark(self._one_attack, confusion)

    @staticmethod
    def _one_attack(confusion):
        # cheap stand-in so the table rendering itself is what's timed
        return confusion.matrix()

    def test_table1_positive_confusion_within_hw_classes(self, confusion):
        """Value 1 is confused with 2 and 4 (HW=1) more than with 3 (HW=2)."""
        if confusion.total(1) < 20:
            pytest.skip("not enough value-1 observations at this scale")
        same_hw = confusion.percentage(1, 2) + confusion.percentage(1, 4)
        other_hw = confusion.percentage(1, 3)
        print(f"\nactual=1: predicted 2 or 4 (same HW) {same_hw:.1f}% vs "
              f"predicted 3 (HW 2) {other_hw:.1f}%")
        assert same_hw >= other_hw

    def test_table1_negatives_sharper_than_positives_pairwise(self, confusion):
        """|v| for v in 2..4: accuracy(-v) > accuracy(+v) (vulnerability 3)."""
        checked = 0
        better = 0
        for v in (2, 3, 4):
            if confusion.total(v) >= 10 and confusion.total(-v) >= 10:
                checked += 1
                better += confusion.accuracy(-v) >= confusion.accuracy(v)
        assert checked >= 2
        assert better >= checked - 1
