"""Microbenchmarks of the core building blocks (pytest-benchmark).

Not a paper table - these guard the reproduction's own performance:
NTT, BFV encrypt/decrypt, device simulation, leakage expansion,
segmentation, template matching, LLL and the bikz estimator.
"""

import numpy as np
import pytest

from repro.attack.segmentation import Segmenter
from repro.bfv import BfvContext, Decryptor, Encryptor, KeyGenerator, Plaintext
from repro.hints.estimator import beta_for_dbdd
from repro.hints.security import seal_128_dbdd
from repro.lattice.lll import lll_reduce
from repro.power.leakage import LeakageModel
from repro.ring.modulus import Modulus
from repro.ring.ntt import NttContext


@pytest.fixture(scope="module")
def paper_ntt():
    return NttContext(Modulus(132120577), 1024)


@pytest.fixture(scope="module")
def bfv_setup():
    context = BfvContext.default()
    keygen = KeyGenerator(context, rng=0)
    encryptor = Encryptor(context, keygen.public_key())
    decryptor = Decryptor(context, keygen.secret_key())
    rng = np.random.default_rng(1)
    plain = Plaintext(rng.integers(0, context.t, context.n), context.t)
    ciphertext = encryptor.encrypt(plain, rng=2)
    return context, encryptor, decryptor, plain, ciphertext


class TestRingPerf:
    def test_ntt_forward_n1024(self, paper_ntt, benchmark):
        rng = np.random.default_rng(0)
        values = rng.integers(0, paper_ntt.modulus.value, 1024)
        benchmark(paper_ntt.forward, values)

    def test_ntt_roundtrip_n1024(self, paper_ntt, benchmark):
        rng = np.random.default_rng(1)
        values = rng.integers(0, paper_ntt.modulus.value, 1024)

        def roundtrip():
            return paper_ntt.inverse(paper_ntt.forward(values))

        benchmark(roundtrip)


class TestBfvPerf:
    def test_encrypt_n1024(self, bfv_setup, benchmark):
        _, encryptor, _, plain, _ = bfv_setup
        seed = iter(range(10_000_000))

        def encrypt():
            return encryptor.encrypt(plain, rng=next(seed))

        benchmark(encrypt)

    def test_decrypt_n1024(self, bfv_setup, benchmark):
        _, _, decryptor, _, ciphertext = bfv_setup
        benchmark(decryptor.decrypt, ciphertext)


class TestDevicePerf:
    def test_device_run_8_coefficients(self, device, benchmark):
        seed = iter(range(1, 10_000_000))

        def run():
            return device.run(next(seed), count=8, record_events=False)

        benchmark(run)

    def test_leakage_expansion(self, device, benchmark):
        run = device.run(3, count=4)
        model = LeakageModel()
        benchmark(model.expand, run.events)

    def test_leakage_expansion_64_coefficients(self, device, benchmark):
        run = device.run(9, count=64)
        model = LeakageModel()
        benchmark(model.expand, run.events)


class TestCapturePerf:
    def test_capture_batch_serial(self, bench_acquisition, benchmark):
        benchmark(
            bench_acquisition.capture_batch, 8, coeffs_per_trace=1, first_seed=100
        )

    def test_capture_batch_workers4(self, bench_acquisition, benchmark):
        benchmark(
            bench_acquisition.capture_batch,
            8,
            coeffs_per_trace=1,
            first_seed=100,
            workers=4,
        )


class TestAttackPerf:
    def test_segmentation_8_coefficients(self, bench_acquisition, benchmark):
        captured = bench_acquisition.capture(17, 8)
        segmenter = Segmenter()
        benchmark(segmenter.aligned_slices, captured.trace.samples)

    def test_full_single_trace_attack(self, bench_acquisition, profiled_attack, benchmark):
        captured = bench_acquisition.capture(18, 8)
        benchmark(profiled_attack.attack_samples, captured.trace.samples)


class TestLatticePerf:
    def test_lll_dim20(self, benchmark):
        rng = np.random.default_rng(5)
        basis = rng.integers(-50, 51, (20, 20))
        while abs(np.linalg.det(basis.astype(float))) < 0.5:
            basis = rng.integers(-50, 51, (20, 20))
        benchmark(lll_reduce, basis)

    def test_bikz_estimator_seal128(self, benchmark):
        benchmark(lambda: beta_for_dbdd(seal_128_dbdd()))
