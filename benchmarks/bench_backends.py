"""Compute-backend kernel benchmark: accelerated vs reference numpy.

For every backend that probes available on this host (``native`` when a
C compiler exists, ``numba`` when importable) this measures each hot
kernel A/B against the inline numpy reference path — the same call
sites, with the backend armed via ``use_backend`` on one side and
pinned to ``reference`` on the other.  The two sides are interleaved
within each repetition (best-of-N per side, like bench_lanes.py /
bench_fused_capture.py) so speedups compare like-for-like machine
conditions on shared runners.

Kernels:

* ``ntt_forward`` / ``ntt_inverse`` — n=1024 butterflies at the
  paper's modulus (Shoup multiplication vs the numpy ladder);
* ``pointwise_mulmod`` — the negacyclic product's O(n) core;
* ``expand`` — ``LeakageModel.expand`` over a real device event log
  (the compiled event emitter vs the vectorized numpy expansion);
* ``expand_arena`` — ``LeakageModel.expand_arena`` over a 64-lane
  deferred-record arena (the C block kernel vs the generated numpy
  per-block emitters);
* ``template`` — ``TemplateSet.log_likelihoods_matrix`` on a
  profiling-sized batch (per-class Mahalanobis forms);
* ``lane_select`` — the warp scheduler's per-dispatch scan;
* ``fused_capture`` — end-to-end lane-major capture of a 64-trace
  batch, the tentpole's bottom line.

Run directly::

    PYTHONPATH=src python benchmarks/bench_backends.py           # full (5 reps)
    PYTHONPATH=src python benchmarks/bench_backends.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_backends.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.backends import available_backends, backend_id, use_backend

PAPER_Q = 132120577
N = 1024
MODULI = [0xFFEE001, 0xFFC4001, 0x7FE2001, 0x7F54001]
TRACES = 64
COUNT = 8
FIRST_SEED = 1000

#: (kernel name, inner calls per timing sample).  Inner iteration
#: counts keep each sample well above timer resolution for the
#: microsecond-scale kernels.
KERNELS: Tuple[Tuple[str, int], ...] = (
    ("ntt_forward", 50),
    ("ntt_inverse", 50),
    ("pointwise_mulmod", 50),
    ("expand", 50),
    ("expand_arena", 10),
    ("template", 10),
    ("lane_select", 500),
    ("fused_capture", 1),
)


def _build_cases() -> Dict[str, Callable[[], None]]:
    """One closure per kernel, running the call site under test."""
    from repro.attack.template import TemplateSet
    from repro.power.capture import TraceAcquisition
    from repro.power.leakage import LeakageModel
    from repro.power.scope import Oscilloscope
    from repro.riscv.device import GaussianSamplerDevice
    from repro.ring.ntt import get_ntt_context

    rng = np.random.default_rng(0)
    context = get_ntt_context(PAPER_Q, N)
    a = rng.integers(0, PAPER_Q, N, dtype=np.int64)
    b = rng.integers(0, PAPER_Q, N, dtype=np.int64)

    model = LeakageModel()
    events = GaussianSamplerDevice([PAPER_Q]).run(
        seed=7, count=COUNT, record_events=True
    ).events

    k, classes, slices_n = 24, 11, 400
    basis = rng.normal(0.0, 1.0, (k, k))
    precision = basis @ basis.T + k * np.eye(k)
    labels = list(range(-5, 6))
    templates = TemplateSet(
        pois=list(range(k)),
        means={label: rng.normal(0.0, 5.0, k) for label in labels},
        precision=precision,
        class_precisions={label: precision for label in labels},
        class_log_dets={label: 0.0 for label in labels},
    )
    slices = rng.normal(0.0, 5.0, (slices_n, 2 * k))

    lanes = 64
    pcs = (rng.integers(0, 64, lanes) * 4).astype(np.int64)
    wraps = rng.integers(0, 2, lanes).astype(np.int64)
    alive = rng.random(lanes) < 0.8

    def lane_select_site() -> None:
        # The exact selection LaneEngine.run performs per dispatch,
        # kernel or numpy depending on the armed backend.
        from repro.backends import get_kernel

        kernel = get_kernel("lane_select")
        if kernel is not None:
            kernel(pcs, wraps, alive)
            return
        active = np.nonzero(alive)[0]
        key = (wraps << 32) + pcs
        lead = active[np.argmin(key[active])]
        active[pcs[active] == int(pcs[lead])]

    bench = TraceAcquisition(
        GaussianSamplerDevice(MODULI), scope=Oscilloscope(noise_std=1.0),
        rng=0,
    )

    arena_device = GaussianSamplerDevice(MODULI)
    arena = arena_device.run_lanes(
        [FIRST_SEED + i for i in range(TRACES)], COUNT,
        events_per_lane=False,
    )
    arena_totals = [run.cycle_count for run in arena.runs]

    return {
        "ntt_forward": lambda: context.forward(a),
        "ntt_inverse": lambda: context.inverse(a),
        "pointwise_mulmod": lambda: context.multiply(a, b),
        "expand": lambda: model.expand(events),
        "expand_arena": lambda: model.expand_arena(
            arena.events, arena_totals
        ),
        "template": lambda: templates.log_likelihoods_matrix(slices),
        "lane_select": lane_select_site,
        "fused_capture": lambda: bench.capture_batch(
            TRACES, coeffs_per_trace=COUNT, first_seed=FIRST_SEED,
            engine="lanes", lanes=TRACES,
        ),
    }


def bench_backend(
    backend: str, repetitions: int
) -> Dict[str, Dict[str, float]]:
    """Best-of-N per-call seconds for ``backend`` vs ``reference``."""
    cases = _build_cases()
    sides = [backend, "reference"]
    best: Dict[str, Dict[str, float]] = {name: {} for name, _ in KERNELS}

    for side in sides:  # warm kernels, caches, compiled emitters
        with use_backend(side):
            for name, _ in KERNELS:
                cases[name]()

    for _ in range(repetitions):
        for name, inner in KERNELS:
            for side in sides:
                with use_backend(side):
                    run = cases[name]
                    start = time.perf_counter()
                    for _i in range(inner):
                        run()
                    per_call = (time.perf_counter() - start) / inner
                prev = best[name].get(side)
                best[name][side] = (
                    per_call if prev is None else min(prev, per_call)
                )

    for name, _ in KERNELS:
        best[name]["speedup"] = round(
            best[name]["reference"] / best[name][backend], 2
        )
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=5, help="timed repetitions per case"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 1 repetition + kernel speedup guards",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)
    repetitions = 1 if args.quick else args.repetitions

    compiled = [b for b in available_backends() if b != "reference"]
    if not compiled:
        print("no compiled backend available on this host "
              "(no C compiler, no numba); nothing to measure")
        return 0

    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    failures: List[str] = []
    for backend in compiled:
        with use_backend(backend):
            ident = backend_id()
        print(f"backend {ident} vs reference "
              f"({TRACES}x{COUNT} capture, n={N} NTT, best of {repetitions}):")
        table = bench_backend(backend, repetitions)
        results[backend] = table
        for name, _ in KERNELS:
            row = table[name]
            print(f"  {name:17s} {1e6 * row[backend]:>10.1f}us vs "
                  f"{1e6 * row['reference']:>10.1f}us  "
                  f"-> {row['speedup']:.2f}x")

        # Guard: the compiled kernels must hold a decisive win on the
        # hottest microbenches.  Measured ~9x (NTT forward), ~2.9x
        # (expand) and ~1.9x (expand_arena) for the native backend on
        # the dev container; the floors tolerate one noisy shared-
        # runner repetition while still catching a backend that
        # silently fell back to numpy (1.0x).  A floor only applies
        # when the backend declares the kernel that accelerates the
        # bench (numba carries no block-emitter kernel, say).
        if args.quick:
            from repro.backends import kernel_exactness

            declared = kernel_exactness(backend)
            for bench_name, kernel, floor in (
                ("ntt_forward", "ntt_forward", 2.0),
                ("expand", "expand_events", 1.5),
                ("expand_arena", "expand_block", 1.2),
            ):
                if kernel not in declared:
                    continue
                if table[bench_name]["speedup"] < floor:
                    failures.append(
                        f"{backend}: {bench_name} speedup "
                        f"{table[bench_name]['speedup']:.2f}x < {floor}x"
                    )

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.json}")

    if failures:
        print("REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
