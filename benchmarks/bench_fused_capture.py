"""Fused lane-major capture benchmark: single-pass vs per-trace.

Measures the stream-v2 fused pipeline (``run_lanes`` with deferred
dispatch records -> ``expand_arena`` compiled block emitters ->
``capture_batch`` keyed-noise scope chain, one lane-major pass over the
whole batch) against the per-trace threaded path (``run`` -> ``expand``
-> ``capture_keyed``, once per trace).  Both produce bit-identical
traces (the ``capture.fused`` / ``leakage.expand_arena`` oracles and
tests/power/test_noise_v2.py), so this is a pure throughput
comparison.

Two views are reported:

* end-to-end traces/second at L=64, interleaved with the threaded
  baseline inside each repetition (best-of-N, like bench_lanes.py) —
  the guarded quantity;
* a per-stage breakdown (emulate / expand / scope) of one batch on
  each path, so regressions can be attributed to a stage instead of
  re-profiling from scratch.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fused_capture.py          # full (5 reps)
    PYTHONPATH=src python benchmarks/bench_fused_capture.py --quick  # CI smoke (1 rep)
    PYTHONPATH=src python benchmarks/bench_fused_capture.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

MODULI = [0xFFEE001, 0xFFC4001, 0x7FE2001, 0x7F54001]
TRACES = 64
COUNT = 8
FIRST_SEED = 1000
LANES = 64


def _bench_parts():
    bench = TraceAcquisition(
        GaussianSamplerDevice(MODULI), scope=Oscilloscope(noise_std=1.0), rng=0
    )
    return bench, bench.device, bench.leakage, bench.scope


def bench_end_to_end(repetitions: int) -> Dict[str, float]:
    """Best-of-N traces/second, fused L=64 vs per-trace threaded.

    The two configurations are interleaved within each repetition so
    the reported speedup compares like-for-like machine conditions —
    on a shared container absolute rates drift far more between phases
    than between back-to-back runs.
    """
    bench, *_ = _bench_parts()
    results: Dict[str, float] = {}
    configs = [
        ("threaded", {"engine": "threaded"}),
        ("fused64", {"engine": "lanes", "lanes": LANES}),
    ]

    for _, kwargs in configs:  # warm translation/emitter caches
        bench.capture_batch(TRACES, coeffs_per_trace=COUNT,
                            first_seed=FIRST_SEED, **kwargs)
    for _ in range(repetitions):
        for name, kwargs in configs:
            start = time.perf_counter()
            bench.capture_batch(TRACES, coeffs_per_trace=COUNT,
                                first_seed=FIRST_SEED, **kwargs)
            rate = TRACES / (time.perf_counter() - start)
            key = f"{name}_traces_per_s"
            results[key] = round(max(results.get(key, 0.0), rate), 1)
    results["speedup_fused64_vs_threaded"] = round(
        results["fused64_traces_per_s"] / results["threaded_traces_per_s"], 2
    )
    return results


def bench_stages(repetitions: int) -> Dict[str, Dict[str, float]]:
    """Per-stage wall time (ms per 64-trace batch, best of N).

    Fused stages: one ``run_lanes`` batch, one ``expand_arena`` pass,
    one ``capture_batch`` scope pass.  Threaded stages: the same three
    conceptual stages summed over the 64 per-trace iterations.
    """
    bench, device, leakage, scope = _bench_parts()
    seeds = list(range(FIRST_SEED, FIRST_SEED + TRACES))
    entropy = bench.batch_entropy()
    best: Dict[str, Dict[str, float]] = {
        "fused": {}, "threaded": {},
    }

    def record(side: str, stage: str, elapsed: float) -> None:
        ms = round(1e3 * elapsed, 2)
        prev = best[side].get(stage)
        best[side][stage] = ms if prev is None else min(prev, ms)

    # warm caches
    device.run(seeds[0], COUNT)
    batch = device.run_lanes(seeds, COUNT, events_per_lane=False)
    leakage.expand_arena(batch.events, [r.cycle_count for r in batch.runs])
    for _ in range(repetitions):
        # fused: one pass per stage over the whole batch
        start = time.perf_counter()
        batch = device.run_lanes(seeds, COUNT, events_per_lane=False)
        record("fused", "emulate_run_lanes", time.perf_counter() - start)
        start = time.perf_counter()
        flat, bounds, _starts = leakage.expand_arena(
            batch.events, [r.cycle_count for r in batch.runs]
        )
        record("fused", "expand_arena", time.perf_counter() - start)
        start = time.perf_counter()
        scope.capture_batch(flat, bounds, entropy, seeds)
        record("fused", "scope_capture_batch", time.perf_counter() - start)

        # threaded: per-trace stages, summed
        emulate = expand = noise_t = 0.0
        for seed in seeds:
            start = time.perf_counter()
            run = device.run(seed, count=COUNT, record_events=True)
            emulate += time.perf_counter() - start
            start = time.perf_counter()
            noiseless, _ = leakage.expand(run.events)
            expand += time.perf_counter() - start
            start = time.perf_counter()
            scope.capture_keyed(noiseless, entropy, seed, out=noiseless)
            noise_t += time.perf_counter() - start
        record("threaded", "emulate_run", emulate)
        record("threaded", "expand", expand)
        record("threaded", "scope_capture_keyed", noise_t)

    for side in best:
        best[side]["total"] = round(sum(best[side].values()), 2)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=5, help="timed repetitions per case"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 1 repetition + fused-beats-threaded guard",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)
    repetitions = 1 if args.quick else args.repetitions

    end_to_end = bench_end_to_end(repetitions)
    stages = bench_stages(repetitions)

    print(f"Fused capture ({TRACES} traces x {COUNT} coefficients, "
          f"best of {repetitions}):")
    print("  end-to-end (traces/sec):")
    for key in ("threaded", "fused64"):
        print(f"    {key:10s} {end_to_end[f'{key}_traces_per_s']:>10,.0f}")
    print(f"    speedup fused L={LANES} vs threaded "
          f"{end_to_end['speedup_fused64_vs_threaded']:.2f}x")
    print("  per-stage (ms per batch):")
    for side in ("threaded", "fused"):
        row = ", ".join(
            f"{stage}={ms:.1f}" for stage, ms in stages[side].items()
        )
        print(f"    {side:9s} {row}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"end_to_end": end_to_end, "stages_ms": stages}, fh,
                      indent=2)
        print(f"wrote {args.json}")

    # Guard: the fused pipeline must hold a clear win over per-trace
    # capture.  Measured 1.6x-1.75x same-conditions on the CI container
    # (stage totals: 137.7ms threaded vs 79.3ms fused per 64-trace
    # batch); 1.3 leaves one noisy shared-runner repetition ~20% of
    # headroom while still catching any real loss of the fusion
    # advantage — falling back to per-lane materialization lands near
    # the old 1.3x lanes number, and losing lane batching lands near 1x.
    if args.quick and end_to_end["speedup_fused64_vs_threaded"] < 1.3:
        print("REGRESSION: fused L=64 capture throughput fell below 1.3x "
              "the per-trace threaded baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
