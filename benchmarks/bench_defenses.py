"""Defense benchmark: the attack against the three kernel variants.

Section V-A of the paper: shuffling/randomisation is recommended over
masking; SEAL v3.6 replaced the if/else assignment with a branchless
iterator.  We quantify both countermeasures against the identical
attack pipeline.
"""

import numpy as np
import pytest

from benchmarks.conftest import PAPER_Q, scaled
from repro.attack.pipeline import SingleTraceAttack
from repro.defenses import constant_time_device, shuffled_device
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope


def run_attack(device, coeffs=8, traces=None, profile_traces=None, rng_seed=0):
    acquisition = TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=rng_seed)
    attack = SingleTraceAttack(acquisition, poi_count=24)
    attack.profile(
        num_traces=profile_traces or scaled(200),
        coeffs_per_trace=coeffs,
        first_seed=500_000,
    )
    sign_hits = value_hits = total = 0
    for seed in range(1, (traces or scaled(30)) + 1):
        captured = acquisition.capture(seed, coeffs)
        result = attack.attack_samples(captured.trace.samples)
        if len(result.estimates) != coeffs:
            continue
        for value, sign, estimate in zip(
            captured.values, result.signs, result.estimates
        ):
            total += 1
            sign_hits += int(np.sign(value)) == sign
            value_hits += estimate == value
    return sign_hits / max(total, 1), value_hits / max(total, 1), total


class TestDefenses:
    @pytest.fixture(scope="class")
    def results(self, device):
        return {
            "vulnerable (v3.2)": run_attack(device),
            "constant-time (v3.6)": run_attack(constant_time_device([PAPER_Q])),
            "shuffled": run_attack(shuffled_device([PAPER_Q])),
        }

    def test_defense_comparison(self, results, benchmark):
        print("\n=== Defense evaluation (per-coefficient recovery) ===")
        for name, (sign_acc, value_acc, total) in results.items():
            print(
                f"  {name:<22} sign {100 * sign_acc:5.1f}%  "
                f"value {100 * value_acc:5.1f}%  ({total} coefficients)"
            )
        benchmark(lambda: sorted(results))

    def test_baseline_attack_works(self, results):
        sign_acc, value_acc, _ = results["vulnerable (v3.2)"]
        assert sign_acc >= 0.99
        assert value_acc >= 0.35

    def test_shuffling_destroys_positional_recovery(self, results):
        """Values leak, but the coefficient *positions* are randomised:
        per-position value accuracy collapses toward the blind-guess
        rate, making DBDD coordinate hints unusable."""
        _, value_vuln, _ = results["vulnerable (v3.2)"]
        _, value_shuffled, _ = results["shuffled"]
        assert value_shuffled < value_vuln - 0.15

    def test_constant_time_removes_branch_leakage(self, device):
        """The v3.6-style kernel executes one instruction stream for all
        signs; the classifier must now rely purely on data leakage."""
        from repro.riscv import cycles as cy

        ct_device = constant_time_device([PAPER_Q])
        streams = {}
        for seed in range(1, 120):
            run = ct_device.run(seed, 1)
            sign = int(np.sign(run.values[0]))
            words = []
            recording = False
            for event in run.events:
                if event.op_class == cy.OP_MUL and event.rs2_value == 209060:
                    recording = True
                    words = []
                if recording:
                    words.append(event.word)
            streams.setdefault(sign, tuple(words))
            if len(streams) == 3:
                break
        assert len(streams) == 3
        assert streams[-1] == streams[0] == streams[1]
