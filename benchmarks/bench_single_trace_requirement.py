"""Why the attack must work from a SINGLE trace (paper sections I-II).

"Such an attack has to succeed with a single power measurement trace
because the sampled coefficients change for each encryption."

Two demonstrations:

1. *hypothetical replay* (same PRNG seed re-measured K times): trace
   averaging suppresses the scope noise and the attack improves - this
   is what multi-trace attacks exploit, and what fresh encryption
   randomness denies;
2. *real encryptions* (fresh randomness per trace): the traces are not
   even length-compatible - the rejection loops give every encryption a
   different timing footprint, so averaging is meaningless.
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.power.trace import Trace


class TestSingleTraceRequirement:
    def test_replay_averaging_would_help(self, device, bench_acquisition, profiled_attack, benchmark):
        """If the device *replayed* its randomness, averaging K traces
        divides the noise by sqrt(K) and accuracy rises - masking-style
        defenses target exactly this, which is why the paper's
        single-trace attack evades them."""
        from repro.power.capture import CapturedTrace

        improvements = []
        single_hits = averaged_hits = total = 0
        for seed in range(7000, 7000 + scaled(20)):
            # one noisy capture
            single = bench_acquisition.capture(seed, 4)
            # sixteen captures of the SAME execution, averaged
            stack = [bench_acquisition.capture(seed, 4) for _ in range(8)]
            mean_samples = np.mean([c.trace.samples for c in stack], axis=0)
            averaged = CapturedTrace(
                trace=Trace(mean_samples),
                values=single.values,
                seed=seed,
                cycle_count=single.cycle_count,
            )
            res_single = profiled_attack.attack(single)
            res_avg = profiled_attack.attack(averaged)
            for value, est_s, est_a in zip(
                single.values, res_single.estimates, res_avg.estimates
            ):
                total += 1
                single_hits += est_s == value
                averaged_hits += est_a == value
        print("\n=== Why single-trace: replay averaging (hypothetical) ===")
        print(f"  single trace:       {100 * single_hits / total:5.1f}% value accuracy")
        print(f"  8-trace average:    {100 * averaged_hits / total:5.1f}% value accuracy")
        assert averaged_hits >= single_hits
        benchmark(lambda: averaged_hits - single_hits)

    def test_fresh_randomness_defeats_averaging(self, device, bench_acquisition):
        """Real encryptions: every trace has different length and content."""
        lengths = {
            len(bench_acquisition.capture(seed, 4).trace)
            for seed in range(7100, 7110)
        }
        print(f"\ntrace lengths of 10 fresh encryptions: {sorted(lengths)}")
        assert len(lengths) > 3, "traces should be length-incompatible"

    def test_averaged_fresh_traces_are_garbage(self, bench_acquisition, profiled_attack):
        """Truncate-and-average across fresh encryptions, then attack:
        per-coefficient recovery collapses to (below) chance."""
        captures = [bench_acquisition.capture(seed, 4) for seed in range(7200, 7208)]
        min_length = min(len(c.trace) for c in captures)
        mean_samples = np.mean(
            [c.trace.samples[:min_length] for c in captures], axis=0
        )
        try:
            result = profiled_attack.attack_samples(mean_samples)
        except Exception:
            return  # segmentation failure is an equally valid outcome
        hits = sum(
            1
            for value, est in zip(captures[0].values, result.estimates)
            if value == est
        )
        # the averaged blob carries no per-encryption information
        assert hits <= 2
