"""Orchestrator-vs-campaign throughput benchmark (A/B, interleaved).

Compares two ways to run the same attack campaign:

- **A: per-call campaign engine** — ``repro.attack.campaign.run_campaign``
  with a process pool: every call re-spawns the pool, re-pickles the
  profiled attack into the initializers, and pickles every per-seed
  ``SeedOutcome`` (probability tables included) back over the result
  queue;
- **B: warm orchestrator** — one persistent
  :class:`repro.attack.orchestrator.Orchestrator`: workers forked once,
  work claimed grain-at-a-time from the shared work-stealing table, and
  results crossing as packed arrays in shared-memory arena slots (only
  ~100-byte headers on the queue).

On a 1-vCPU container (the CI box) extra workers buy no parallelism,
so the win is pure overhead removal: no per-call pool spin-up, no
pickled attack, no per-seed pickles — the gap therefore *grows* with
the worker count, which is what the ``--quick`` floor pins (>= 1.3x at
4 workers).  The A and B runs are interleaved within each repetition
(A, B, A, B, ...) so drift on a shared box hits both sides equally,
and each side scores its minimum across repetitions.

Run directly::

    PYTHONPATH=src python benchmarks/bench_orchestrator.py            # full
    PYTHONPATH=src python benchmarks/bench_orchestrator.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_orchestrator.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.attack.campaign import run_campaign
from repro.attack.orchestrator import Orchestrator
from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577
FIRST_PROFILE_SEED = 100_000


def _fresh_bench() -> TraceAcquisition:
    device = GaussianSamplerDevice([PAPER_Q])
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


def _profiled(traces: int, coeffs: int) -> SingleTraceAttack:
    attack = SingleTraceAttack(_fresh_bench(), poi_count=24)
    attack.profile(
        num_traces=traces, coeffs_per_trace=coeffs,
        first_seed=FIRST_PROFILE_SEED,
    )
    return attack


def _identical(a, b) -> bool:
    if [o[:3] for o in a.outcomes] != [o[:3] for o in b.outcomes]:
        return False
    return all(x[3] == y[3] for x, y in zip(a.outcomes, b.outcomes))


def bench_workers(
    attack: SingleTraceAttack,
    workers: int,
    traces: int,
    coeffs: int,
    reps: int,
    grain: int,
) -> Dict:
    """Interleaved A/B at one worker count; min-of-reps each side."""
    campaign_s: List[float] = []
    orchestrated_s: List[float] = []
    with Orchestrator(
        attack, workers=workers, grain=grain, engine="lanes"
    ) as orchestrator:
        # Warm the service once (fork + first-touch) outside the timed
        # region: the orchestrator is a persistent engine and its
        # steady state is what a campaign sees; run_campaign pays its
        # spin-up on every call *by design* — that cost is the point.
        orchestrator.submit(
            min(8, traces), coeffs_per_trace=coeffs, first_seed=1
        ).result()
        reference = None
        for _ in range(reps):
            start = time.perf_counter()
            baseline = run_campaign(
                attack,
                trace_count=traces,
                coeffs_per_trace=coeffs,
                first_seed=1,
                workers=workers,
                engine="threaded",
            )
            campaign_s.append(time.perf_counter() - start)

            start = time.perf_counter()
            report = orchestrator.submit(
                traces, coeffs_per_trace=coeffs, first_seed=1
            ).result()
            orchestrated_s.append(time.perf_counter() - start)
            reference = reference or baseline
            if not _identical(baseline, report):
                raise AssertionError(
                    f"orchestrated report diverged at workers={workers}"
                )
    coefficients = traces * coeffs
    a, b = min(campaign_s), min(orchestrated_s)
    return {
        "workers": workers,
        "run_campaign_s": round(a, 3),
        "orchestrated_s": round(b, 3),
        "run_campaign_coeffs_per_s": round(coefficients / a, 1),
        "orchestrated_coeffs_per_s": round(coefficients / b, 1),
        "speedup": round(a / b, 2),
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--traces", type=int, default=200, help="profiling trace budget"
    )
    parser.add_argument(
        "--attack-traces", type=int, default=64, help="campaign trace budget"
    )
    parser.add_argument(
        "--coeffs", type=int, default=8, help="coefficients per trace"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--grain", type=int, default=64, help="orchestrator steal grain"
    )
    parser.add_argument(
        "--reps", type=int, default=3, help="interleaved repetitions per side"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller budgets plus the 1.3x floor check",
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)
    if args.quick:
        args.traces = min(args.traces, 80)
        args.attack_traces = min(args.attack_traces, 64)
        args.reps = min(args.reps, 2)

    attack = _profiled(args.traces, args.coeffs)
    coefficients = args.attack_traces * args.coeffs
    print(
        f"Orchestrator A/B ({args.attack_traces} traces x {args.coeffs} "
        f"coefficients, grain {args.grain}, min of {args.reps}):"
    )
    rows = []
    for workers in args.workers:
        row = bench_workers(
            attack,
            workers,
            args.attack_traces,
            args.coeffs,
            args.reps,
            args.grain,
        )
        rows.append(row)
        print(
            f"  workers={workers}: run_campaign {row['run_campaign_s']:>7.3f} s "
            f"({row['run_campaign_coeffs_per_s']:,.0f} coeffs/s)  "
            f"orchestrator {row['orchestrated_s']:>7.3f} s "
            f"({row['orchestrated_coeffs_per_s']:,.0f} coeffs/s)  "
            f"{row['speedup']:.2f}x  bit-identical: {row['bit_identical']}"
        )

    results = {
        "attack_traces": args.attack_traces,
        "coeffs_per_trace": args.coeffs,
        "coefficients": coefficients,
        "grain": args.grain,
        "reps": args.reps,
        "sweep": rows,
    }
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.json}")

    if args.quick:
        floor_rows = [r for r in rows if r["workers"] == max(args.workers)]
        if floor_rows and floor_rows[0]["speedup"] < 1.3:
            print(
                f"FAIL: orchestrator speedup {floor_rows[0]['speedup']:.2f}x "
                f"at {floor_rows[0]['workers']} workers is below the 1.3x floor"
            )
            return 1
        print("quick floor: orchestrator >= 1.3x at "
              f"{max(args.workers)} workers -- ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
