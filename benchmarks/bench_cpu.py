"""Interpreter and template-matching throughput benchmark.

Measures instructions/second of the RV32IM core on the Gaussian
sampling kernel — the compiled (generated-C), threaded
(block-translating) and scalar reference engines, with and without
event recording — plus the batched vs scalar template-matching rate.
The acceptance bars are >= 5x reference for the threaded engine with
recording enabled, and >= 1x threaded for the compiled engine on the
no-event path (it measures ~10x; the guard only proves the C modules
actually engaged).

Every arm pins its program seed explicitly (``--seed``/``--count``
flow into each ``device.run`` call), so interleaved A/B comparisons
always execute the identical instruction stream — nothing inherits
ambient generator state between arms.

Run directly::

    PYTHONPATH=src python benchmarks/bench_cpu.py             # full (5 reps)
    PYTHONPATH=src python benchmarks/bench_cpu.py --quick     # CI smoke (1 rep)
    PYTHONPATH=src python benchmarks/bench_cpu.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

import numpy as np

from repro.attack.template import TemplateSet, gaussian_priors
from repro.riscv.compiled import compiled_available, probe_error
from repro.riscv.device import GaussianSamplerDevice

MODULI = [0xFFEE001, 0xFFC4001, 0x7FE2001, 0x7F54001]
COUNT = 8
SEED = 1234


def bench_cpu(
    repetitions: int, seed: int = SEED, count: int = COUNT
) -> Dict[str, float]:
    """Best-of-N instructions/second for each engine/recording combo.

    ``seed``/``count`` are passed explicitly to every run so all arms
    execute the same program on the same data.  The compiled engine's
    rows appear only where its toolchain probe passes; the probe
    failure reason is recorded under ``compiled_unavailable`` instead.
    """
    device = GaussianSamplerDevice(MODULI)
    results: Dict[str, float] = {}
    engines = ["threaded", "reference"]
    if compiled_available():
        engines.insert(1, "compiled")
    else:
        results["compiled_unavailable"] = probe_error()  # type: ignore[assignment]
    for engine in engines:
        for record in (True, False):
            # warm-up covers translation, C compilation and numpy
            # one-time costs
            device.run(seed, count, record_events=record, engine=engine)
            best = 0.0
            for _ in range(repetitions):
                start = time.perf_counter()
                run = device.run(seed, count, record_events=record, engine=engine)
                elapsed = time.perf_counter() - start
                best = max(best, run.instruction_count / elapsed)
            key = f"{engine}_{'events_on' if record else 'events_off'}"
            results[key] = round(best, 1)
    results["speedup_events_on"] = round(
        results["threaded_events_on"] / results["reference_events_on"], 2
    )
    results["speedup_events_off"] = round(
        results["threaded_events_off"] / results["reference_events_off"], 2
    )
    if "compiled_events_on" in results:
        results["compiled_vs_threaded_events_on"] = round(
            results["compiled_events_on"] / results["threaded_events_on"], 2
        )
        results["compiled_vs_threaded_events_off"] = round(
            results["compiled_events_off"] / results["threaded_events_off"], 2
        )
    results.update(bench_retire_overhead(repetitions, device, seed, count))
    return results


def bench_retire_overhead(
    repetitions: int,
    device: GaussianSamplerDevice,
    seed: int = SEED,
    count: int = COUNT,
) -> Dict[str, float]:
    """Threaded events-on throughput with and without retire logging.

    The two configurations run *interleaved per repetition* on the same
    explicit seed so machine drift cancels and both arms execute the
    identical instruction stream; ``retire_off_vs_on`` is the quantity
    the ``--quick`` guard checks — the capture path (retires disabled,
    the default) must never pay for the conformance-only retire
    projection.
    """
    for record_retires in (False, True):  # warm both paths
        device.run(seed, count, engine="threaded", record_retires=record_retires)
    best_off = best_on = 0.0
    for _ in range(repetitions):
        start = time.perf_counter()
        run = device.run(seed, count, engine="threaded")
        best_off = max(
            best_off, run.instruction_count / (time.perf_counter() - start)
        )
        start = time.perf_counter()
        run = device.run(seed, count, engine="threaded", record_retires=True)
        best_on = max(
            best_on, run.instruction_count / (time.perf_counter() - start)
        )
    return {
        "threaded_events_on_retires": round(best_on, 1),
        "retire_off_vs_on": round(best_off / best_on, 3),
    }


def bench_template_matching(repetitions: int) -> Dict[str, float]:
    """Slices/second: batched probabilities_matrix vs the scalar loop."""
    rng = np.random.default_rng(5)
    labels = list(range(-14, 15))
    traces = {l: rng.normal(l, 1.0, size=(40, 160)) for l in labels}
    templates = TemplateSet.build(
        traces,
        pois=sorted(rng.choice(160, size=24, replace=False).tolist()),
        priors=gaussian_priors(labels, 3.19),
    )
    slices = rng.normal(0.0, 2.0, size=(256, 160))
    best_batched = best_scalar = 0.0
    for _ in range(repetitions + 1):  # first rep is warm-up
        start = time.perf_counter()
        templates.probabilities_matrix(slices)
        best_batched = max(best_batched, len(slices) / (time.perf_counter() - start))
        start = time.perf_counter()
        for row in slices:
            templates.probabilities(row)
        best_scalar = max(best_scalar, len(slices) / (time.perf_counter() - start))
    return {
        "batched_slices_per_s": round(best_batched, 1),
        "scalar_slices_per_s": round(best_scalar, 1),
        "speedup": round(best_batched / best_scalar, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repetitions", type=int, default=5, help="timed repetitions per case"
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: 1 repetition"
    )
    parser.add_argument(
        "--seed", type=int, default=SEED, help="sampler PRNG seed (every arm)"
    )
    parser.add_argument(
        "--count", type=int, default=COUNT, help="coefficients per run"
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)
    repetitions = 1 if args.quick else args.repetitions

    cpu = bench_cpu(repetitions, seed=args.seed, count=args.count)
    template = bench_template_matching(repetitions)

    print(f"RV32IM interpreter (Gaussian kernel, count={args.count}, "
          f"seed={args.seed}, instr/sec, best of {repetitions}):")
    for key in ("compiled_events_on", "threaded_events_on",
                "reference_events_on", "compiled_events_off",
                "threaded_events_off", "reference_events_off"):
        if key in cpu:
            print(f"  {key:26s} {cpu[key]:>14,.0f}")
    print(f"  speedup events on  {cpu['speedup_events_on']:.2f}x")
    print(f"  speedup events off {cpu['speedup_events_off']:.2f}x")
    if "compiled_vs_threaded_events_off" in cpu:
        print(f"  compiled vs threaded events on  "
              f"{cpu['compiled_vs_threaded_events_on']:.2f}x")
        print(f"  compiled vs threaded events off "
              f"{cpu['compiled_vs_threaded_events_off']:.2f}x")
    else:
        print(f"  compiled engine unavailable, rows skipped "
              f"({cpu.get('compiled_unavailable')})")
    print(f"  {'threaded_events_on_retires':26s} "
          f"{cpu['threaded_events_on_retires']:>14,.0f}")
    print(f"  retires off vs on  {cpu['retire_off_vs_on']:.3f}x "
          "(interleaved; capture path must not pay for retire logging)")
    if args.quick and cpu["retire_off_vs_on"] < 0.98:
        print(
            "FAIL: the default events-on path (record_retires=False) ran "
            f"slower than 98% of the retire-logging path "
            f"({cpu['retire_off_vs_on']:.3f}x) — the disabled path is "
            "doing retire work"
        )
        return 1
    if args.quick and cpu.get("compiled_vs_threaded_events_off", 99.0) < 1.0:
        print(
            "FAIL: the compiled engine ran slower than threaded on the "
            f"no-event path ({cpu['compiled_vs_threaded_events_off']:.2f}x) "
            "— the generated-C modules are not engaging"
        )
        return 1
    print("Template matching (256 slices, 29 classes, 24 POIs, slices/sec):")
    print(f"  batched {template['batched_slices_per_s']:>14,.0f}")
    print(f"  scalar  {template['scalar_slices_per_s']:>14,.0f}")
    print(f"  speedup {template['speedup']:.2f}x")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"cpu": cpu, "template_matching": template}, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
