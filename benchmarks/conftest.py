"""Shared benchmark fixtures.

Every experiment of the paper's evaluation section has a bench module
here; expensive artefacts (the profiled attack, the attack-trace
corpus) are session-scoped so that the full suite stays in the
minutes range.

The ``REVEAL_SCALE`` environment variable scales the trace budgets:
1.0 (default) runs a reduced but statistically meaningful version of
the paper's 220,000-profile / 25,000-attack campaign; raise it for
tighter statistics.  ``REVEAL_WORKERS`` (default: serial) fans
profiling and the attack campaign across a process pool via the
campaign engine — results are bit-identical for any worker count.
"""

import os

import numpy as np
import pytest

from repro.attack.campaign import run_campaign
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


def scale() -> float:
    return float(os.environ.get("REVEAL_SCALE", "1.0"))


def scaled(count: int) -> int:
    return max(8, int(count * scale()))


def workers():
    """Process-pool size from ``REVEAL_WORKERS`` (None = serial)."""
    value = int(os.environ.get("REVEAL_WORKERS", "0"))
    return value if value > 1 else None


@pytest.fixture(scope="session")
def device():
    return GaussianSamplerDevice([PAPER_Q])


@pytest.fixture(scope="session")
def bench_acquisition(device):
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


@pytest.fixture(scope="session")
def profiled_attack(bench_acquisition):
    """The profiled single-trace attack shared by the table benches."""
    attack = SingleTraceAttack(bench_acquisition, poi_count=24)
    attack.profile(
        num_traces=scaled(400),
        coeffs_per_trace=8,
        first_seed=100_000,
        workers=workers(),
    )
    return attack


@pytest.fixture(scope="session")
def attack_corpus(profiled_attack):
    """Attack-phase outcomes: (true value, sign, estimate, probabilities).

    The paper captures 25,000 attack traces; we default to
    ``scaled(150) * 8`` coefficients and report the budget used.  The
    corpus comes off the campaign engine (per-seed noise streams), so
    it is identical for any ``REVEAL_WORKERS`` value.
    """
    report = run_campaign(
        profiled_attack,
        trace_count=scaled(150),
        coeffs_per_trace=8,
        first_seed=1,
        workers=workers(),
    )
    return report.outcomes


@pytest.fixture(scope="session")
def confusion(attack_corpus):
    matrix = ConfusionMatrix()
    for value, _, estimate, _ in attack_corpus:
        matrix.record(value, estimate)
    return matrix
