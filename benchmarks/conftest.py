"""Shared benchmark fixtures.

Every experiment of the paper's evaluation section has a bench module
here; expensive artefacts (the profiled attack, the attack-trace
corpus) are session-scoped so that the full suite stays in the
minutes range.

The ``REVEAL_SCALE`` environment variable scales the trace budgets:
1.0 (default) runs a reduced but statistically meaningful version of
the paper's 220,000-profile / 25,000-attack campaign; raise it for
tighter statistics.
"""

import os

import numpy as np
import pytest

from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577


def scale() -> float:
    return float(os.environ.get("REVEAL_SCALE", "1.0"))


def scaled(count: int) -> int:
    return max(8, int(count * scale()))


@pytest.fixture(scope="session")
def device():
    return GaussianSamplerDevice([PAPER_Q])


@pytest.fixture(scope="session")
def bench_acquisition(device):
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


@pytest.fixture(scope="session")
def profiled_attack(bench_acquisition):
    """The profiled single-trace attack shared by the table benches."""
    attack = SingleTraceAttack(bench_acquisition, poi_count=24)
    attack.profile(
        num_traces=scaled(400), coeffs_per_trace=8, first_seed=100_000
    )
    return attack


@pytest.fixture(scope="session")
def attack_corpus(bench_acquisition, profiled_attack):
    """Attack-phase outcomes: (true value, sign, estimate, probabilities).

    The paper captures 25,000 attack traces; we default to
    ``scaled(150) * 8`` coefficients and report the budget used.
    """
    outcomes = []
    for seed in range(1, scaled(150) + 1):
        captured = bench_acquisition.capture(seed, 8)
        result = profiled_attack.attack(captured)
        for value, sign, estimate, table in zip(
            captured.values, result.signs, result.estimates, result.probabilities
        ):
            outcomes.append((value, sign, estimate, table))
    return outcomes


@pytest.fixture(scope="session")
def confusion(attack_corpus):
    matrix = ConfusionMatrix()
    for value, _, estimate, _ in attack_corpus:
        matrix.record(value, estimate)
    return matrix
