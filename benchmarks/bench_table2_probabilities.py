"""Table II reproduction: per-measurement guessing probabilities.

For each attacked coefficient the template attack produces a
probability table; the last two columns of the paper's Table II are
that table's mean ("centered") and variance - precisely what the
LWE-with-hints framework consumes.  We print example rows for secrets
in [-2, 2] (as the paper does "for simplicity") and the aggregate
posterior statistics.
"""

import numpy as np
import pytest

from repro.hints.hintgen import moments_of_table


class TestTable2:
    def test_table2_probability_rows(self, attack_corpus, benchmark):
        print("\n=== Table II: guessing probabilities from selected measurements ===")
        header = f"{'secret':>7} | " + " ".join(f"{v:>8}" for v in range(-2, 3))
        header += f" | {'centered':>9} {'variance':>10}"
        print(header)
        shown = set()
        example_table = None
        for value, _, _, table in attack_corpus:
            if value in shown or not (-2 <= value <= 2):
                continue
            shown.add(value)
            cells = " ".join(f"{table.get(v, 0.0):8.2e}" for v in range(-2, 3))
            mean, variance = moments_of_table(table)
            print(f"{value:>7} | {cells} | {mean:9.3f} {variance:10.3e}")
            example_table = table
            if len(shown) == 5:
                break
        assert len(shown) >= 4, "corpus lacked small-coefficient measurements"

        benchmark(moments_of_table, example_table)

    def test_table2_zero_and_minus_one_are_certain(self, attack_corpus):
        """The paper marks probabilities ~1; our 0 and -1 posteriors are
        (near-)deterministic as well."""
        for target in (0, -1):
            variances = [
                moments_of_table(table)[1]
                for value, _, _, table in attack_corpus
                if value == target
            ]
            assert variances, f"no measurements of value {target}"
            assert float(np.median(variances)) < 1e-3

    def test_table2_posterior_means_track_truth(self, attack_corpus):
        """The centered column is an (approximately) unbiased estimate."""
        errors = [
            moments_of_table(table)[0] - value
            for value, _, _, table in attack_corpus
            if -4 <= value <= 4
        ]
        assert abs(float(np.mean(errors))) < 0.6

    def test_table2_probabilities_normalised(self, attack_corpus):
        for _, _, _, table in attack_corpus[:200]:
            assert sum(table.values()) == pytest.approx(1.0)
