"""Ablation: pooled vs per-class covariance templates (calibration).

EXPERIMENTS.md's Table II discussion in benchmark form: classic
per-class-covariance templates (Chari et al., what the paper used)
produce *overconfident* posteriors - probabilities near 1 while the
argmax is frequently wrong - whereas the pooled-covariance templates
this reproduction defaults to are approximately calibrated.  The
paper's 12.2-bikz "complete break" number inherits this confidence, so
the distinction matters for interpreting Table III.
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.attack.pipeline import SingleTraceAttack


def calibration_stats(bench, pooled, traces):
    attack = SingleTraceAttack(
        bench, poi_count=24, use_prior=False, pooled_covariance=pooled
    )
    attack.profile(num_traces=scaled(200), coeffs_per_trace=8, first_seed=700_000)
    confidences = []
    hits = []
    for seed in range(1, traces + 1):
        captured = bench.capture(seed, 8)
        result = attack.attack(captured)
        for value, estimate, table in zip(
            captured.values, result.estimates, result.probabilities
        ):
            if value == 0:
                continue  # zeros are decided by the branch stage
            confidences.append(max(table.values()))
            hits.append(estimate == value)
    return float(np.mean(confidences)), float(np.mean(hits))


class TestTemplateCalibration:
    @pytest.fixture(scope="class")
    def stats(self, bench_acquisition):
        return {
            "pooled (ours)": calibration_stats(
                bench_acquisition, pooled=True, traces=scaled(40)
            ),
            "per-class (classic)": calibration_stats(
                bench_acquisition, pooled=False, traces=scaled(40)
            ),
        }

    def test_calibration_comparison(self, stats, benchmark):
        print("\n=== Ablation: template covariance model (calibration) ===")
        print(f"  {'mode':<22} {'mean top-probability':>21} {'actual accuracy':>17}")
        for mode, (confidence, accuracy) in stats.items():
            print(f"  {mode:<22} {100 * confidence:20.1f}% {100 * accuracy:16.1f}%")
        pooled_gap = stats["pooled (ours)"][0] - stats["pooled (ours)"][1]
        classic_gap = stats["per-class (classic)"][0] - stats["per-class (classic)"][1]
        print(f"  overconfidence (top-prob minus accuracy): "
              f"pooled {100 * pooled_gap:+.1f} points, "
              f"per-class {100 * classic_gap:+.1f} points")
        benchmark(lambda: pooled_gap)

    def test_per_class_is_more_overconfident(self, stats):
        pooled_conf, pooled_acc = stats["pooled (ours)"]
        classic_conf, classic_acc = stats["per-class (classic)"]
        assert (classic_conf - classic_acc) > (pooled_conf - pooled_acc) - 0.02

    def test_pooled_roughly_calibrated(self, stats):
        confidence, accuracy = stats["pooled (ours)"]
        assert abs(confidence - accuracy) < 0.2
