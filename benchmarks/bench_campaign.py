"""Campaign-engine throughput benchmark.

Measures the three layers the campaign engine accelerates:

- **profiling**: the materialized capture-everything reference
  (``SingleTraceAttack.profile_reference``) vs the one-pass streaming
  path (``profile``), serial and with worker-side segmentation;
- **attack campaign**: the legacy per-trace serial evaluator
  (``repro.attack.evaluation.run_campaign``) vs the campaign engine
  (``repro.attack.campaign.run_campaign``), serial and pooled;
- the campaign engine's per-stage timing counters.

Worker numbers depend on core count; on a 1-vCPU container the pool
pays startup for no gain, so ``--workers`` defaults to serial and CI
smoke runs serial only.

Run directly::

    PYTHONPATH=src python benchmarks/bench_campaign.py            # full
    PYTHONPATH=src python benchmarks/bench_campaign.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_campaign.py --workers 4
    PYTHONPATH=src python benchmarks/bench_campaign.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Optional

from repro.attack import evaluation
from repro.attack.campaign import run_campaign
from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

PAPER_Q = 132120577
FIRST_PROFILE_SEED = 100_000


def _fresh_bench() -> TraceAcquisition:
    device = GaussianSamplerDevice([PAPER_Q])
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


def _profile(method: str, traces: int, coeffs: int, workers=None):
    """Time one profiling run on a fresh bench; returns (attack, seconds)."""
    attack = SingleTraceAttack(_fresh_bench(), poi_count=24)
    runner = getattr(attack, method)
    start = time.perf_counter()
    report = runner(
        num_traces=traces,
        coeffs_per_trace=coeffs,
        first_seed=FIRST_PROFILE_SEED,
        workers=workers,
    )
    return attack, report, time.perf_counter() - start


def bench_profiling(traces: int, coeffs: int, workers: Optional[int]) -> Dict:
    slices = traces * coeffs
    results: Dict = {"traces": traces, "coeffs_per_trace": coeffs}
    _, _, reference_s = _profile("profile_reference", traces, coeffs)
    attack, report, streaming_s = _profile("profile", traces, coeffs)
    results["reference_s"] = round(reference_s, 3)
    results["streaming_s"] = round(streaming_s, 3)
    results["reference_slices_per_s"] = round(slices / reference_s, 1)
    results["streaming_slices_per_s"] = round(slices / streaming_s, 1)
    results["streaming_speedup"] = round(reference_s / streaming_s, 2)
    results["streaming_stage_s"] = {
        k: round(v, 3) for k, v in (report.timings or {}).items()
    }
    if workers:
        _, _, pooled_s = _profile("profile", traces, coeffs, workers=workers)
        results[f"streaming_workers{workers}_s"] = round(pooled_s, 3)
        results[f"streaming_workers{workers}_slices_per_s"] = round(
            slices / pooled_s, 1
        )
    return attack, results


def bench_campaign(
    attack: SingleTraceAttack, traces: int, coeffs: int, workers: Optional[int]
) -> Dict:
    coefficients = traces * coeffs
    results: Dict = {"traces": traces, "coeffs_per_trace": coeffs}

    start = time.perf_counter()
    evaluation.run_campaign(
        attack, trace_count=traces, coeffs_per_trace=coeffs, first_seed=1
    )
    legacy_s = time.perf_counter() - start
    results["legacy_serial_s"] = round(legacy_s, 3)
    results["legacy_serial_coeffs_per_s"] = round(coefficients / legacy_s, 1)

    report = run_campaign(
        attack, trace_count=traces, coeffs_per_trace=coeffs, first_seed=1
    )
    results["engine_serial_s"] = round(report.wall_seconds, 3)
    results["engine_serial_coeffs_per_s"] = round(
        report.coefficients_per_second, 1
    )
    results["engine_stage_s"] = {
        k: round(v, 3) for k, v in report.timings.items()
    }
    results["engine_speedup_vs_legacy"] = round(legacy_s / report.wall_seconds, 2)

    if workers:
        pooled = run_campaign(
            attack,
            trace_count=traces,
            coeffs_per_trace=coeffs,
            first_seed=1,
            workers=workers,
        )
        results[f"engine_workers{workers}_s"] = round(pooled.wall_seconds, 3)
        results[f"engine_workers{workers}_coeffs_per_s"] = round(
            pooled.coefficients_per_second, 1
        )
        same = [a[:3] for a in report.outcomes] == [
            b[:3] for b in pooled.outcomes
        ]
        results["pool_matches_serial"] = same
        if not same:
            raise AssertionError("pooled campaign diverged from serial")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--traces", type=int, default=200, help="profiling trace budget"
    )
    parser.add_argument(
        "--attack-traces", type=int, default=64, help="campaign trace budget"
    )
    parser.add_argument(
        "--coeffs", type=int, default=8, help="coefficients per trace"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also measure a process pool of this size (default: serial only)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: tiny budgets"
    )
    parser.add_argument("--json", metavar="PATH", help="also write results as JSON")
    args = parser.parse_args(argv)
    if args.quick:
        args.traces = min(args.traces, 60)
        args.attack_traces = min(args.attack_traces, 16)
        args.coeffs = min(args.coeffs, 4)

    attack, profiling = bench_profiling(args.traces, args.coeffs, args.workers)
    campaign = bench_campaign(
        attack, args.attack_traces, args.coeffs, args.workers
    )

    print(f"Profiling ({args.traces} traces x {args.coeffs} coefficients):")
    print(f"  reference (materialized) {profiling['reference_s']:>8.3f} s  "
          f"({profiling['reference_slices_per_s']:,.0f} slices/s)")
    print(f"  streaming (one-pass)     {profiling['streaming_s']:>8.3f} s  "
          f"({profiling['streaming_slices_per_s']:,.0f} slices/s, "
          f"{profiling['streaming_speedup']:.2f}x)")
    stages = "  ".join(
        f"{k} {v:.2f}s" for k, v in profiling["streaming_stage_s"].items()
    )
    print(f"  streaming stages: {stages}")
    if args.workers:
        key = f"streaming_workers{args.workers}"
        print(f"  streaming, {args.workers} workers  {profiling[key + '_s']:>8.3f} s  "
              f"({profiling[key + '_slices_per_s']:,.0f} slices/s)")

    print(f"Campaign ({args.attack_traces} traces x {args.coeffs} coefficients):")
    print(f"  legacy serial evaluator  {campaign['legacy_serial_s']:>8.3f} s  "
          f"({campaign['legacy_serial_coeffs_per_s']:,.0f} coeffs/s)")
    print(f"  campaign engine, serial  {campaign['engine_serial_s']:>8.3f} s  "
          f"({campaign['engine_serial_coeffs_per_s']:,.0f} coeffs/s, "
          f"{campaign['engine_speedup_vs_legacy']:.2f}x)")
    stages = "  ".join(
        f"{k} {v:.2f}s" for k, v in campaign["engine_stage_s"].items()
    )
    print(f"  engine stages: {stages}")
    if args.workers:
        key = f"engine_workers{args.workers}"
        print(f"  campaign engine, {args.workers} workers {campaign[key + '_s']:>7.3f} s  "
              f"({campaign[key + '_coeffs_per_s']:,.0f} coeffs/s)  "
              f"pool==serial: {campaign['pool_matches_serial']}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"profiling": profiling, "campaign": campaign}, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
