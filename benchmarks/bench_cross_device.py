"""Cross-device portability (the paper's section V-B drawback).

"We limit our attack to a single device, cross-device attacks may need
a more complicated, machine-learning-based profiling [20]."

We quantify that drawback: templates profiled on device A are applied
to device B whose leakage coefficients differ (process variation,
probe placement, amplifier gain), and per-trace standardisation is
evaluated as a first-order remedy.
"""

import numpy as np
import pytest

from benchmarks.conftest import PAPER_Q, scaled
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.power.capture import TraceAcquisition
from repro.power.leakage import LeakageModel
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice

#: "Device B": the same netlist with shifted electrical characteristics.
VARIED_LEAKAGE = LeakageModel(
    weight_data=1.12,
    weight_transition=0.7,
    weight_fetch=0.45,
    weight_engine=0.92,
    engine_offset=37.0,
    baseline=5.0,
)


def score(attack, acquisition, traces):
    matrix = ConfusionMatrix()
    sign_hits = total = 0
    for seed in range(1, traces + 1):
        captured = acquisition.capture(seed, 8)
        result = attack.attack(captured)
        matrix.record_many(captured.values, result.estimates)
        for value, sign in zip(captured.values, result.signs):
            total += 1
            sign_hits += int(np.sign(value)) == sign
    return sign_hits / total, matrix.accuracy()


class TestCrossDevice:
    @pytest.fixture(scope="class")
    def results(self, device):
        rows = {}
        device_b = TraceAcquisition(
            device, leakage=VARIED_LEAKAGE, scope=Oscilloscope(noise_std=1.0), rng=3
        )
        for label, standardize in (("raw templates", False), ("standardised", True)):
            acquisition_a = TraceAcquisition(
                device, scope=Oscilloscope(noise_std=1.0), rng=0
            )
            attack = SingleTraceAttack(
                acquisition_a, poi_count=24, standardize=standardize
            )
            attack.profile(
                num_traces=scaled(200), coeffs_per_trace=8, first_seed=600_000
            )
            same = score(attack, acquisition_a, scaled(25))
            cross = score(attack, device_b, scaled(25))
            rows[label] = (same, cross)
        return rows

    def test_cross_device_portability(self, results, benchmark):
        print("\n=== Cross-device attack (section V-B drawback) ===")
        print(f"  {'profiling':<16} {'same-device':>24} {'cross-device':>24}")
        for label, (same, cross) in results.items():
            print(
                f"  {label:<16} sign {100*same[0]:5.1f}% value {100*same[1]:5.1f}%"
                f"    sign {100*cross[0]:5.1f}% value {100*cross[1]:5.1f}%"
            )
        benchmark(lambda: sorted(results))

    def test_raw_templates_degrade_across_devices(self, results):
        same, cross = results["raw templates"]
        assert cross[1] < same[1] - 0.05  # value accuracy drops

    def test_sign_channel_more_portable_than_values(self, results):
        """Control flow survives device variation better than data flow."""
        _, cross = results["raw templates"]
        assert cross[0] > cross[1]

    def test_standardisation_helps_cross_device(self, results):
        _, cross_raw = results["raw templates"]
        _, cross_std = results["standardised"]
        assert cross_std[1] >= cross_raw[1] - 0.02
