"""Ablation: closed-form GSA-intersection vs BKZ-simulator beta estimate.

The paper's bikz numbers come from the leaky-LWE-estimator's
closed-form model; this bench cross-checks our implementation against a
Chen-Nguyen-style profile simulation.  Agreement within ~15% is the
expected fidelity of these asymptotic models at beta ~ 400.
"""

import pytest

from repro.hints.estimator import (
    beta_for_usvp,
    beta_for_usvp_simulated,
    bikz_to_bits,
)
from repro.hints.security import PAPER_BIKZ_NO_HINTS, seal_128_dbdd


class TestEstimatorAblation:
    def test_closed_form_vs_simulation(self, benchmark):
        instance = seal_128_dbdd()
        dim = instance.homogenised_dim()
        volume = instance.log_isotropic_volume()

        closed = benchmark(beta_for_usvp, dim, volume)
        simulated = beta_for_usvp_simulated(dim, volume)

        print("\n=== Ablation: bikz estimation model ===")
        print(f"  closed-form GSA intersection: {closed:8.2f} bikz "
              f"(2^{bikz_to_bits(closed):.1f})  [paper: {PAPER_BIKZ_NO_HINTS}]")
        print(f"  BKZ profile simulation:       {simulated:8d} bikz "
              f"(2^{bikz_to_bits(simulated):.1f})")
        print(f"  relative gap: {100 * abs(simulated - closed) / closed:.1f}% "
              f"(asymptotic-model fidelity)")
        assert abs(simulated - closed) / closed < 0.2

    def test_models_agree_on_hinted_instance(self):
        """After heavy hinting both models report a much easier instance."""
        instance = seal_128_dbdd()
        for i in range(768):
            instance.integrate_perfect_hint(1024 + i, 0.0)
        dim = instance.homogenised_dim()
        volume = instance.log_isotropic_volume()
        closed = beta_for_usvp(dim, volume)
        simulated = beta_for_usvp_simulated(dim, volume)
        assert closed < 120
        assert simulated < 140
