"""Ablation: attack quality vs measurement noise, and the value of the
negation leak (vulnerability 3).

The paper fixes the operating point (1.5 MHz, shunt + 1 GS/s scope);
our synthetic scope exposes the noise knob directly.  We sweep it and
report sign accuracy, value accuracy and the resulting with-hints bikz,
and we quantify how much of the negative coefficients' advantage comes
from the negation/`q - noise` data path by comparing negative-vs-
positive accuracy at every noise level.
"""

import numpy as np
import pytest

from benchmarks.conftest import PAPER_Q, scaled
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
from repro.hints.hintgen import apply_hints, hints_from_probability_tables
from repro.hints.security import seal_128_dbdd, seal_128_parameters
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice


class TestNoiseSweep:
    @pytest.fixture(scope="class")
    def sweep(self, device):
        params = seal_128_parameters()
        rows = []
        for noise in (0.5, 1.0, 2.0, 4.0):
            acquisition = TraceAcquisition(
                device, scope=Oscilloscope(noise_std=noise), rng=0
            )
            attack = SingleTraceAttack(acquisition, poi_count=24)
            attack.profile(
                num_traces=scaled(200), coeffs_per_trace=8, first_seed=400_000
            )
            matrix = ConfusionMatrix()
            tables = []
            sign_hits = total = 0
            for seed in range(1, scaled(40) + 1):
                captured = acquisition.capture(seed, 8)
                result = attack.attack(captured)
                matrix.record_many(captured.values, result.estimates)
                tables.extend(result.probabilities)
                for value, sign in zip(captured.values, result.signs):
                    total += 1
                    sign_hits += int(np.sign(value)) == sign
            # bikz from the measured posteriors (repeat tables up to n)
            hints = hints_from_probability_tables(
                (tables * ((params.m // len(tables)) + 1))[: params.m]
            )
            instance = seal_128_dbdd()
            apply_hints(instance, hints, params.n)
            rows.append(
                (noise, sign_hits / total, matrix.accuracy(), beta_for_dbdd(instance))
            )
        return rows

    def test_noise_sweep(self, sweep, benchmark):
        print("\n=== Ablation: scope noise vs attack quality ===")
        print(f"  {'noise':>6} {'sign acc':>9} {'value acc':>10} "
              f"{'with-hints bikz':>16} {'bits':>7}")
        for noise, sign_acc, value_acc, beta in sweep:
            print(
                f"  {noise:6.1f} {100 * sign_acc:8.1f}% {100 * value_acc:9.1f}% "
                f"{beta:16.2f} {bikz_to_bits(beta):7.2f}"
            )
        # monotone degradation (allowing small statistical wiggle)
        accuracies = [row[2] for row in sweep]
        assert accuracies[0] >= accuracies[-1]
        betas = [row[3] for row in sweep]
        assert betas[0] <= betas[-1] + 5
        benchmark(lambda: max(betas))

    def test_sign_robust_to_noise(self, sweep):
        """Control-flow leakage survives noise far better than data flow."""
        for noise, sign_acc, value_acc, _ in sweep:
            assert sign_acc >= value_acc


class TestNegationValue:
    def test_negation_advantage(self, confusion):
        """Vulnerability 3: accuracy(-v) - accuracy(+v) is large."""
        gaps = []
        for v in (2, 3, 4, 5):
            if confusion.total(v) >= 10 and confusion.total(-v) >= 10:
                gaps.append(confusion.accuracy(-v) - confusion.accuracy(v))
        assert gaps
        print("\nnegation advantage per |value| (acc(-v) - acc(+v)):")
        for v, gap in zip((2, 3, 4, 5), gaps):
            print(f"  |v|={v}: {100 * gap:+.1f} points")
        assert float(np.mean(gaps)) > 0.1
