"""Table IV reproduction: cost of attack using only the branch vulnerability.

==================================  ========  ==================
row                                 paper     this reproduction
==================================  ========  ==================
attack without hints (bikz)         382.25    printed below
attack with hints (bikz)            253.29    printed below
attack with hints & guesses (bikz)  252.83    printed below
number of guesses                   1         1
success probability                 20%       printed below
==================================  ========  ==================

The paper's conclusion - "signs alone cannot recover the plaintext
message" - is asserted: the sign-only adversary is left with a large
residual security level.
"""

import numpy as np
import pytest

from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
from repro.hints.hintgen import (
    apply_guesses,
    apply_hints,
    hints_from_signs,
    sign_conditional_moments,
)
from repro.hints.security import (
    PAPER_BIKZ_BRANCH_AND_GUESS,
    PAPER_BIKZ_BRANCH_ONLY,
    PAPER_BIKZ_NO_HINTS,
    seal_128_dbdd,
    seal_128_parameters,
)


def _row(label, value, paper=None):
    ref = f"   [paper: {paper}]" if paper is not None else ""
    if isinstance(value, float):
        print(f"  {label:<38} {value:8.2f}{ref}")
    else:
        print(f"  {label:<38} {value!s:>8}{ref}")


class TestTable4:
    def test_table4_branch_only(self, benchmark):
        params = seal_128_parameters()
        rng = np.random.default_rng(7)
        e2 = np.rint(np.clip(rng.normal(0, params.error_sigma, params.m), -41, 41))
        signs = np.sign(e2.astype(int))

        no_hints = beta_for_dbdd(seal_128_dbdd())

        def with_sign_hints():
            instance = seal_128_dbdd()
            apply_hints(instance, hints_from_signs(signs, params.error_sigma), params.n)
            return instance

        instance = benchmark(with_sign_hints)
        with_hints = beta_for_dbdd(instance)

        hints = hints_from_signs(signs, params.error_sigma)
        guessed = apply_guesses(instance, hints, params.n, count=1)
        with_guess = beta_for_dbdd(instance)

        # guess success probability: the probability that the guessed
        # coefficient's most likely value is correct, from the
        # conditional distribution the guess is drawn from
        mean, variance = sign_conditional_moments(params.error_sigma, 1)
        import math
        sigma = params.error_sigma
        weights = {
            k: math.exp(-(k**2) / (2 * sigma**2)) for k in range(1, 42)
        }
        total = sum(weights.values())
        success = max(weights.values()) / total

        print("\n=== Table IV: branch vulnerability only, SEAL-128 ===")
        _row("attack without hints (bikz)", no_hints, PAPER_BIKZ_NO_HINTS)
        _row("attack with hints (bikz)", with_hints, PAPER_BIKZ_BRANCH_ONLY)
        _row("attack with hints & guesses (bikz)", with_guess, PAPER_BIKZ_BRANCH_AND_GUESS)
        _row("number of guesses", len(guessed), 1)
        _row("success probability", f"{100 * success:.0f}%", "20%")
        print(f"\n  residual security {bikz_to_bits(with_hints):.1f} bits "
              f"[paper: 84.9] -> signs alone cannot recover the message")

        assert no_hints == pytest.approx(PAPER_BIKZ_NO_HINTS, rel=0.02)
        # shape: hints help substantially but leave the scheme unbroken
        assert no_hints - with_hints > 50
        assert bikz_to_bits(with_hints) > 80
        # one guess gives a sub-bikz improvement, as in the paper
        assert 0.05 < with_hints - with_guess < 2.0
        # the most-likely positive value (1) is guessed with ~27% success
        # (paper reports 20%)
        assert 0.1 < success < 0.4

    def test_table4_zero_fraction_matches_gaussian(self):
        """~1/8 of coefficients are zero and become perfect sign-hints."""
        params = seal_128_parameters()
        rng = np.random.default_rng(8)
        e2 = np.rint(rng.normal(0, params.error_sigma, 20_000)).astype(int)
        zero_fraction = float(np.mean(e2 == 0))
        assert zero_fraction == pytest.approx(0.124, abs=0.01)
