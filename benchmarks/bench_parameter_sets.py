"""Parameter-set sweep: the attack across SEAL configurations.

The paper attacks the smallest SEAL-128 set (n=1024, one modulus limb)
but states the attack "is applicable to all security levels and values
of n".  This bench runs the pipeline against a two-limb modulus chain
(the Fig. 2 inner loop actually iterating) and prints the estimator's
no-hint hardness for the 128/192/256-bit parameter families
(section V-B: higher levels are harder to *attack mathematically*; the
side channel itself is unchanged).
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.attack.evaluation import run_campaign
from repro.attack.pipeline import SingleTraceAttack
from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
from repro.hints.security import higher_security_parameters, make_dbdd
from repro.power.capture import TraceAcquisition
from repro.power.scope import Oscilloscope
from repro.riscv.device import GaussianSamplerDevice
from repro.ring.primes import generate_ntt_primes


class TestParameterSets:
    def test_two_limb_modulus_chain(self, benchmark):
        """Fig. 2's inner loop over coeff_mod_count > 1."""
        moduli = [m.value for m in generate_ntt_primes(27, 2, 1024)]
        device = GaussianSamplerDevice(moduli)
        acquisition = TraceAcquisition(
            device, scope=Oscilloscope(noise_std=1.0), rng=0
        )
        attack = SingleTraceAttack(acquisition, poi_count=24)
        attack.profile(
            num_traces=scaled(150), coeffs_per_trace=8, first_seed=800_000
        )
        campaign = run_campaign(
            attack, trace_count=scaled(25), coeffs_per_trace=8, first_seed=1
        )
        print("\n=== Parameter sweep: two-limb coefficient modulus ===")
        print(f"  sign accuracy  {100 * campaign.sign_accuracy:5.1f}%")
        print(f"  value accuracy {100 * campaign.value_accuracy:5.1f}%")
        assert campaign.sign_accuracy >= 0.97
        assert campaign.value_accuracy >= 0.3
        captured = acquisition.capture(999, 8)
        benchmark(attack.attack_samples, captured.trace.samples)

    def test_security_level_hardness(self, benchmark):
        """Smaller q (higher security level) = harder residual lattice."""
        print("\n=== Parameter sweep: security levels (no-hint bikz) ===")
        betas = {}
        for level in (128, 192, 256):
            params = higher_security_parameters(level)
            beta = beta_for_dbdd(make_dbdd(params))
            betas[level] = beta
            print(f"  SEAL-{level} (q ~ 2^{params.q.bit_length()}): "
                  f"{beta:7.2f} bikz = 2^{bikz_to_bits(beta):6.2f}")
        assert betas[128] < betas[192] < betas[256]
        print("  -> the paper's V-B expectation: higher levels resist the "
              "post-leakage lattice step more")
        benchmark(lambda: beta_for_dbdd(make_dbdd(higher_security_parameters(128))))
