"""Ablation: POI selection method (SOSD - the paper's choice - vs SOST/DOM).

The paper uses the sum-of-squared-differences method [30] to pick
points of interest.  This bench compares the attack's value-recovery
accuracy across the three selection statistics under the same
profiling budget.
"""

import numpy as np
import pytest

from benchmarks.conftest import scaled
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack


class TestPoiAblation:
    @pytest.fixture(scope="class")
    def accuracies(self, bench_acquisition):
        results = {}
        for method in ("sosd", "sost", "dom"):
            attack = SingleTraceAttack(
                bench_acquisition, poi_count=24, poi_method=method
            )
            attack.profile(
                num_traces=scaled(200), coeffs_per_trace=8, first_seed=300_000
            )
            matrix = ConfusionMatrix()
            for seed in range(1, scaled(40) + 1):
                captured = bench_acquisition.capture(seed, 8)
                result = attack.attack(captured)
                matrix.record_many(captured.values, result.estimates)
            results[method] = matrix.accuracy()
        return results

    def test_poi_method_comparison(self, accuracies, benchmark):
        print("\n=== Ablation: POI selection statistic ===")
        for method, accuracy in accuracies.items():
            marker = "  <- paper's choice" if method == "sosd" else ""
            print(f"  {method:>5}: value accuracy {100 * accuracy:5.1f}%{marker}")
        # all three find the leaking samples; none should collapse
        for method, accuracy in accuracies.items():
            assert accuracy > 0.25, f"{method} accuracy collapsed"
        benchmark(lambda: sorted(accuracies.values()))

    def test_sosd_competitive(self, accuracies):
        """SOSD within a few points of the best variant."""
        best = max(accuracies.values())
        assert accuracies["sosd"] >= best - 0.12
