"""Encrypted SIMD dot product: the cloud workload RevEAL's victim runs.

The paper's introduction motivates HE with encrypted machine-learning
and genomic workloads (nGraph-HE etc.); their building block is the
batched dot product.  This example packs two vectors into single
ciphertexts (BatchEncoder), multiplies them slot-wise, and sums the
slots with rotate-and-add using Galois rotation keys - the standard
log-depth reduction.

Usage:  python examples/simd_dot_product.py
"""

import numpy as np

from repro.bfv import (
    BatchEncoder,
    BfvContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
    find_batching_plain_modulus,
)


def main() -> None:
    n = 64
    t = find_batching_plain_modulus(n, bit_size=13)
    context = BfvContext.toy(poly_degree=n, plain_modulus=t, limbs=2)
    print(f"context: {context} (batching modulus t={t})")

    keygen = KeyGenerator(context, rng=11)
    encoder = BatchEncoder(context)
    encryptor = Encryptor(context, keygen.public_key())
    decryptor = Decryptor(context, keygen.secret_key())
    evaluator = Evaluator(context)
    relin_keys = keygen.relin_keys(decomposition_bits=8)
    # rotation keys for the log-depth slot reduction
    steps = [1 << k for k in range(int(np.log2(n // 2)))]
    galois_keys = keygen.galois_keys(steps=steps, decomposition_bits=8)
    column_keys = keygen.galois_keys(
        elements=[2 * context.n - 1], decomposition_bits=8
    )

    rng = np.random.default_rng(0)
    a = [int(x) for x in rng.integers(0, 8, encoder.slot_count)]
    b = [int(x) for x in rng.integers(0, 8, encoder.slot_count)]
    expected = sum(x * y for x, y in zip(a, b)) % t
    print(f"dot product of two {encoder.slot_count}-slot vectors, "
          f"expected {expected} (mod {t})")

    ct_a = encryptor.encrypt(encoder.encode(a), rng=1)
    ct_b = encryptor.encrypt(encoder.encode(b), rng=2)

    # slot-wise product
    product = evaluator.multiply_relin(ct_a, ct_b, relin_keys)
    print(f"after multiply: noise budget "
          f"{decryptor.invariant_noise_budget(product):.1f} bits")

    # rotate-and-add reduction over the row of n/2 slots, then fold rows
    accumulator = product
    for step in steps:
        rotated = evaluator.rotate_rows(accumulator, step, galois_keys)
        accumulator = evaluator.add(accumulator, rotated)
    folded = evaluator.add(
        accumulator, evaluator.rotate_columns(accumulator, column_keys)
    )

    slots = encoder.decode(decryptor.decrypt(folded))
    print(f"slot 0 of the reduced ciphertext: {slots[0]}")
    print(f"all slots equal: {len(set(slots)) == 1}")
    print(f"correct: {slots[0] == expected}")


if __name__ == "__main__":
    main()
