"""Toy-scale primal lattice attack, with and without side-channel hints.

The paper's final stage *estimates* the BKZ cost of the residual
instance.  At toy scale we can run the reduction for real: a small LWE
instance is solved via Kannan's embedding, and integrating sign hints
(the branch vulnerability) visibly shrinks the effort - the lattice
dimension drops for every perfectly known coefficient.

Usage:  python examples/toy_lattice_recovery.py
"""

import time

import numpy as np

from repro.lattice import solve_lwe_primal
from repro.lattice.embedding import eliminate_known_errors


def make_instance(rng, n, m, q, sigma):
    secret = rng.integers(-1, 2, n)
    a_matrix = rng.integers(0, q, (m, n))
    error = np.rint(rng.normal(0, sigma, m)).astype(int)
    b_vector = (a_matrix @ secret + error) % q
    return a_matrix, b_vector, secret, error


def main() -> None:
    rng = np.random.default_rng(3)
    n, m, q, sigma = 10, 24, 3329, 1.2
    a_matrix, b_vector, secret, error = make_instance(rng, n, m, q, sigma)
    print(f"toy LWE: n={n}, m={m}, q={q}, sigma={sigma}")

    # --- no hints ----------------------------------------------------------
    start = time.perf_counter()
    s_hat, _ = solve_lwe_primal(a_matrix, b_vector, q, beta=10, error_bound=6)
    elapsed = time.perf_counter() - start
    ok = [int(x) for x in s_hat] == list(secret)
    print(f"\nprimal attack without hints: solved={ok} in {elapsed:.1f}s "
          f"(embedding dim {n + m + 1})")

    # --- with sign hints: zeros become perfect hints -------------------------
    known = {i: 0 for i, e in enumerate(error) if e == 0}
    print(f"\nbranch-only side channel: {len(known)} coefficients known zero")
    reduced_a, reduced_b, reconstructor = eliminate_known_errors(
        a_matrix, b_vector, q, known
    )
    dim = reconstructor.reduced_dimension + reduced_a.shape[0] + 1
    start = time.perf_counter()
    if reconstructor.reduced_dimension == 0:
        full = reconstructor.full_secret([])
        elapsed2 = time.perf_counter() - start
        print("hints solved the instance by linear algebra alone!")
    else:
        s_red, _ = solve_lwe_primal(reduced_a, reduced_b, q, beta=8, error_bound=6)
        full = reconstructor.full_secret([int(x) for x in s_red])
        elapsed2 = time.perf_counter() - start
    ok2 = [int(x) for x in full] == list(secret)
    print(f"primal attack with zero-hints: solved={ok2} in {elapsed2:.1f}s "
          f"(embedding dim {dim}, was {n + m + 1})")

    # --- with full hints: trivial linear algebra ------------------------------
    known_all = dict(enumerate(error))
    _, _, full_rec = eliminate_known_errors(a_matrix, b_vector, q, known_all)
    if full_rec.reduced_dimension == 0:
        s_linear = full_rec.full_secret([])
        ok3 = [int(x) for x in s_linear] == list(secret)
        print(f"\nfull template hints: every e_i known, the instance becomes")
        print(f"exact linear equations; solved by elimination alone: {ok3}.")
        print("This is the toy analogue of the paper's 2^128 -> 2^4.4 headline.")


if __name__ == "__main__":
    main()
