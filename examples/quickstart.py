"""Quickstart: the four HE functions of Fig. 1 on the paper's parameters.

Runs KeyGen / Encrypt / Evaluate / Decrypt with the exact configuration
RevEAL attacks (n = 1024, q = 132120577, t = 256, sigma = 3.19) and
shows homomorphic integer arithmetic through the IntegerEncoder.

Usage:  python examples/quickstart.py
"""

from repro.bfv import (
    BfvContext,
    Decryptor,
    Encryptor,
    Evaluator,
    IntegerEncoder,
    KeyGenerator,
)


def main() -> None:
    # --- KeyGen (client) -------------------------------------------------
    context = BfvContext.default()  # the paper's SEAL-128, n=1024 set
    print(f"context: {context}")
    keygen = KeyGenerator(context, rng=2024)
    public_key = keygen.public_key()
    secret_key = keygen.secret_key()

    encryptor = Encryptor(context, public_key)
    decryptor = Decryptor(context, secret_key)
    evaluator = Evaluator(context)
    encoder = IntegerEncoder(context)

    # --- Encrypt (client) --------------------------------------------------
    a, b = 12345, -678
    ct_a = encryptor.encrypt(encoder.encode(a), rng=1)
    ct_b = encryptor.encrypt(encoder.encode(b), rng=2)
    print(f"encrypted {a} and {b}")
    print(f"fresh noise budget: {decryptor.invariant_noise_budget(ct_a):.1f} bits")

    # --- Evaluate (cloud): the cloud never sees a, b or the secret key ---
    ct_sum = evaluator.add(ct_a, ct_b)
    ct_diff = evaluator.sub(ct_a, ct_b)
    ct_scaled = evaluator.multiply_plain(ct_a, encoder.encode(3))

    # --- Decrypt (client) --------------------------------------------------
    print(f"dec(enc(a) + enc(b)) = {encoder.decode(decryptor.decrypt(ct_sum))}"
          f"  (expected {a + b})")
    print(f"dec(enc(a) - enc(b)) = {encoder.decode(decryptor.decrypt(ct_diff))}"
          f"  (expected {a - b})")
    print(f"dec(enc(a) * 3)      = {encoder.decode(decryptor.decrypt(ct_scaled))}"
          f"  (expected {a * 3})")

    # ciphertext-ciphertext multiplication on a smaller ring (faster demo)
    small = BfvContext.toy(poly_degree=256, plain_modulus=65537, limbs=2)
    kg = KeyGenerator(small, rng=7)
    enc = Encryptor(small, kg.public_key())
    dec = Decryptor(small, kg.secret_key())
    ev = Evaluator(small)
    ienc = IntegerEncoder(small)
    relin = kg.relin_keys(decomposition_bits=16)
    product = ev.multiply_relin(
        enc.encrypt(ienc.encode(127), rng=1), enc.encrypt(ienc.encode(89), rng=2), relin
    )
    print(f"dec(enc(127) * enc(89)) = {ienc.decode(dec.decrypt(product))}"
          f"  (expected {127 * 89})")
    print(f"noise budget after multiply+relin: "
          f"{dec.invariant_noise_budget(product):.1f} bits")


if __name__ == "__main__":
    main()
