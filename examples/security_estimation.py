"""LWE-with-hints security estimation (Tables III and IV of the paper).

Reproduces the paper's bikz numbers for the smallest SEAL-128 parameter
set (q = 132120577, n = 1024, sigma = 3.2):

- no hints:            382.25 bikz  (~128-bit security)
- full template hints:  12.2 bikz   (~2^4.4 - a complete break)
- branch (sign) hints: 253.29 bikz  (~2^84.9 - signs alone do NOT break it)

and sweeps the number of hinted coefficients to show where the security
collapses.

Usage:  python examples/security_estimation.py
"""

import numpy as np

from repro.hints import (
    PAPER_BIKZ_BRANCH_ONLY,
    PAPER_BIKZ_NO_HINTS,
    PAPER_BIKZ_WITH_HINTS,
    beta_for_dbdd,
    bikz_to_bits,
    hints_from_signs,
    seal_128_dbdd,
    seal_128_parameters,
)
from repro.hints.hintgen import apply_guesses, apply_hints
from repro.hints.security import make_dbdd


def row(label: str, beta: float, paper: float = None) -> None:
    ref = f"   (paper: {paper})" if paper is not None else ""
    print(f"  {label:<42} {beta:8.2f} bikz = 2^{bikz_to_bits(beta):6.2f}{ref}")


def main() -> None:
    rng = np.random.default_rng(0)
    params = seal_128_parameters()
    true_e2 = np.rint(np.clip(rng.normal(0, params.error_sigma, params.m), -41, 41))
    true_e2 = true_e2.astype(int)

    print("SEAL-128 smallest set: q = 132120577, n = 1024, sigma = 3.2\n")
    print("Table III - cost of the primal attack:")
    row("without hints", beta_for_dbdd(seal_128_dbdd()), PAPER_BIKZ_NO_HINTS)

    # full-confidence hints on every e2 coefficient (the paper's Table II
    # reports per-measurement probabilities ~ 1, i.e. perfect hints)
    inst = seal_128_dbdd()
    for i, v in enumerate(true_e2):
        inst.integrate_perfect_hint(params.n + i, float(v))
    row("with hints (Table II confidence)", beta_for_dbdd(inst), PAPER_BIKZ_WITH_HINTS)

    print("\nTable IV - branch (sign) vulnerability only:")
    row("without hints", beta_for_dbdd(seal_128_dbdd()), PAPER_BIKZ_NO_HINTS)
    inst = seal_128_dbdd()
    sign_hints = hints_from_signs(np.sign(true_e2), params.error_sigma)
    apply_hints(inst, sign_hints, params.n)
    row("with sign/zero hints", beta_for_dbdd(inst), PAPER_BIKZ_BRANCH_ONLY)
    apply_guesses(inst, sign_hints, params.n, count=1)
    row("with hints & 1 guess", beta_for_dbdd(inst), 252.83)
    print("  => signs alone cannot recover the plaintext message.\n")

    print("Security collapse vs number of perfectly hinted coefficients:")
    for count in (0, 128, 256, 512, 768, 896, 1024):
        inst = seal_128_dbdd()
        for i in range(count):
            inst.integrate_perfect_hint(params.n + i, float(true_e2[i]))
        beta = beta_for_dbdd(inst)
        bar = "#" * int(bikz_to_bits(beta) / 2)
        print(f"  {count:5d} hints: {beta:8.2f} bikz = 2^{bikz_to_bits(beta):6.2f} {bar}")

    print("\nModelling note: the estimator (like the one the paper applies)")
    print("treats the ternary encryption sample u as Gaussian; the exact")
    print("ternary model is slightly easier:")
    exact = make_dbdd(seal_128_parameters(ternary_secret=True))
    row("without hints, exact ternary-u model", beta_for_dbdd(exact))


if __name__ == "__main__":
    main()
