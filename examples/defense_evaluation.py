"""Evaluating the paper's recommended countermeasures.

Section V-A of the paper recommends shuffling / randomisation and
branchless code over masking.  This example attacks three devices with
the same profiled pipeline:

1. the vulnerable SEAL v3.2 kernel (baseline - attack works);
2. the constant-time (v3.6-style) kernel - the branch vulnerability
   disappears, but data-flow leakage of the stored value remains,
   matching the paper's warning that v3.6 "may have a different
   vulnerability";
3. the shuffled kernel - values still leak, but the adversary no longer
   knows *which* coefficient each value belongs to, so coordinate hints
   for the lattice stage become unusable.

Usage:  python examples/defense_evaluation.py
"""

import numpy as np

from repro.attack.pipeline import SingleTraceAttack
from repro.defenses import constant_time_device, shuffled_device
from repro.errors import AttackError
from repro.power import Oscilloscope, TraceAcquisition
from repro.riscv.device import GaussianSamplerDevice

Q = 132120577
COEFFS = 8
ATTACK_TRACES = 30


def evaluate(name, device, profile_device=None):
    bench = TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)
    profile_bench = bench
    if profile_device is not None:
        profile_bench = TraceAcquisition(
            profile_device, scope=Oscilloscope(noise_std=1.0), rng=1
        )
    attack = SingleTraceAttack(profile_bench, poi_count=24)
    try:
        attack.profile(num_traces=200, coeffs_per_trace=COEFFS, first_seed=40_000)
    except AttackError as exc:
        print(f"{name:<24} profiling failed: {exc}")
        return
    sign_hits = value_hits = total = 0
    for seed in range(1, ATTACK_TRACES + 1):
        captured = bench.capture(seed, COEFFS)
        try:
            result = attack.attack_samples(captured.trace.samples)
        except AttackError:
            continue
        if len(result.estimates) != COEFFS:
            continue
        for value, sign, estimate in zip(
            captured.values, result.signs, result.estimates
        ):
            total += 1
            sign_hits += int(np.sign(value)) == sign
            value_hits += estimate == value
    if total == 0:
        print(f"{name:<24} attack produced no usable windows")
        return
    print(
        f"{name:<24} sign accuracy {100 * sign_hits / total:5.1f}%   "
        f"per-coefficient value accuracy {100 * value_hits / total:5.1f}%"
    )


def main() -> None:
    print(f"attacking {ATTACK_TRACES} single traces of {COEFFS} coefficients each\n")
    evaluate("vulnerable (v3.2)", GaussianSamplerDevice([Q]))
    evaluate("constant-time (v3.6)", constant_time_device([Q]))
    # the shuffled device is profiled on itself; per-position accuracy is
    # what the lattice stage needs, and shuffling destroys it
    evaluate("shuffled", shuffled_device([Q]))
    print(
        "\nshuffling leaves the value distribution observable but decouples"
        "\nvalues from coefficient indices: the DBDD coordinate hints that"
        "\nproduce the paper's 2^4.4 break can no longer be formed."
    )


if __name__ == "__main__":
    main()
