"""End-to-end RevEAL attack on a toy-scale BFV encryption.

The full pipeline of the paper, actually executed:

1. a victim encrypts a secret message; the error polynomials e1/e2 are
   sampled *on the simulated PicoRV32 device* while the power trace is
   captured (single trace per polynomial);
2. the adversary profiles an identical device, then runs the
   single-trace attack on the victim's e2 trace: segmentation, branch
   (sign) classification, SOSD + template matching;
3. the remaining search space is explored exactly as the paper
   prescribes: high-confidence coefficients become perfect hints that
   shrink the lattice (modular elimination), and the residual LWE
   instance is *actually solved* with the primal lattice attack (at
   toy scale BKZ is feasible, where the paper could only estimate);
4. the plaintext message is recovered from the encryption sample u via
   equations (2) and (3) - without ever touching the secret key.

A toy ring degree (n = 64) keeps the runtime to tens of seconds; the
statistical behaviour of every stage matches the full-size benchmarks.

Usage:  python examples/full_attack_demo.py
"""

import numpy as np

from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.attack.search import expected_search_effort, search_message
from repro.bfv import BfvContext, Decryptor, Encryptor, KeyGenerator, Plaintext
from repro.errors import AttackError, LatticeError
from repro.lattice.embedding import (
    eliminate_known_errors,
    negacyclic_matrix,
    solve_lwe_primal,
)
from repro.power import Oscilloscope, TraceAcquisition
from repro.riscv.device import GaussianSamplerDevice

RING_DEGREE = 64
SCOPE_NOISE = 0.5  # a clean probe station; raise for a harder attack
PROFILE_TRACES = 250
HINT_CONFIDENCE = 0.999  # posterior mass needed for a perfect hint
SEARCH_BUDGET = 30_000  # fallback best-first search budget


def main() -> None:
    context = BfvContext.toy(poly_degree=RING_DEGREE, plain_modulus=17)
    device = GaussianSamplerDevice(
        [m.value for m in context.basis.moduli],
        max_deviation=int(context.params.noise_max_deviation),
    )
    bench = TraceAcquisition(device, scope=Oscilloscope(noise_std=SCOPE_NOISE), rng=7)

    # --- victim side ------------------------------------------------------
    keygen = KeyGenerator(context, rng=99)
    public_key = keygen.public_key()
    encryptor = Encryptor(context, public_key)
    rng = np.random.default_rng(5)
    message = Plaintext(rng.integers(0, context.t, context.n), context.t)
    u = [int(c) for c in rng.integers(-1, 2, context.n)]
    # the device samples e1 and e2; the scope captures the e2 run
    e1_run = device.run(seed=2001, count=context.n, record_events=False)
    e2_capture = bench.capture(seed=2002, count=context.n)
    ciphertext = encryptor.encrypt_with_randomness(
        message, u, e1_run.values, e2_capture.values
    )
    print(f"victim encrypted a message with {context}")
    print(f"captured one power trace of the e2 sampling "
          f"({len(e2_capture.trace)} samples, {e2_capture.cycle_count} cycles)")

    # --- adversary: profiling ----------------------------------------------
    print(f"\nprofiling the device with {PROFILE_TRACES} traces ...")
    attack = SingleTraceAttack(bench, poi_count=32)
    report = attack.profile(num_traces=PROFILE_TRACES, coeffs_per_trace=8,
                            first_seed=50_000)
    print(f"  {report.slice_count} labelled slices, "
          f"{len(report.classes)} template classes, POIs at {report.pois[:8]}...")

    # --- adversary: the single-trace attack --------------------------------
    result = attack.attack(e2_capture)
    cm = ConfusionMatrix()
    cm.record_many(e2_capture.values, result.estimates)
    sign_hits = sum(
        1 for v, s in zip(e2_capture.values, result.signs) if np.sign(v) == s
    )
    print(f"\nsingle-trace attack on the victim's e2:")
    print(f"  sign recovery: {sign_hits}/{context.n}")
    print(f"  exact value recovery: {round(cm.accuracy() * context.n)}/{context.n}")
    print(f"  remaining search space: 2^{expected_search_effort(result.probabilities):.1f} "
          f"(paper reduces 2^128 to 2^4.4 at full scale)")

    # --- exploring the remaining space (perfect hints + lattice) -----------
    q = context.q
    hints = {
        i: max(table, key=table.get)
        for i, table in enumerate(result.probabilities)
        if max(table.values()) >= HINT_CONFIDENCE
    }
    print(f"\n{len(hints)}/{context.n} coefficients recovered with certainty "
          f"-> perfect hints")
    a_matrix = negacyclic_matrix(
        [int(c) for c in public_key.p1.residues[0]], q
    )
    b_vector = [int(c) for c in ciphertext.c1.residues[0]]
    reduced_a, reduced_b, reconstructor = eliminate_known_errors(
        a_matrix, b_vector, q, hints
    )
    dim = reconstructor.reduced_dimension + reduced_a.shape[0] + 1
    print(f"modular elimination shrinks the primal lattice from "
          f"{2 * context.n + 1} to {dim} dimensions")

    recovered = None
    try:
        if reconstructor.reduced_dimension == 0:
            u_hat = reconstructor.full_secret([])
            print("hints alone solved the system by linear algebra!")
        else:
            print("running the primal lattice attack on the residual ...")
            s_reduced, _ = solve_lwe_primal(
                reduced_a, reduced_b, q, error_bound=41
            )
            u_hat = reconstructor.full_secret([int(x) for x in s_reduced])
        if all(abs(int(x)) <= 1 for x in u_hat):
            # equation (3): m = round(t/q * (c0 - p0*u))
            from repro.ring.poly import RingPoly

            u_poly = RingPoly.from_int_coeffs(
                context.basis, context.n, [int(x) for x in u_hat]
            )
            masked = ciphertext.c0 - public_key.p0.multiply(u_poly, context.ntts)
            coeffs = [
                ((context.t * x + q // 2) // q) % context.t
                for x in masked.to_bigint_coeffs()
            ]
            recovered = Plaintext(coeffs, context.t)
    except LatticeError as exc:
        print(f"  lattice stage failed ({exc})")

    if recovered is None or recovered != message:
        # fallback: best-first search over the posterior
        print(f"falling back to best-first posterior search "
              f"(budget {SEARCH_BUDGET}, expected effort "
              f"2^{expected_search_effort(result.probabilities):.1f}) ...")
        try:
            search = search_message(
                context, ciphertext, public_key, result.probabilities,
                budget=SEARCH_BUDGET,
            )
            recovered = search.message
            print(f"  plausible e2 after {search.candidates_tried} candidates")
        except AttackError as exc:
            print(f"  search failed: {exc}")

    # --- verdict -------------------------------------------------------------
    success = recovered == message
    print(f"\nmessage recovered: {success}")
    decryptor = Decryptor(context, keygen.secret_key())
    assert decryptor.decrypt(ciphertext) == message
    if success:
        print("the adversary read the plaintext from ONE power trace, "
              "never holding the secret key.")


if __name__ == "__main__":
    main()
