"""BFV decryption and invariant-noise budget measurement.

``Decrypt: output [round(t/q * [c0 + c1*s (+ c2*s^2)]_q)]_t``

The scaling step needs exact arithmetic on the full modulus q, so the
RNS residues are CRT-composed to Python integers before rounding.
"""

from __future__ import annotations

import math
from typing import List

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.keys import SecretKey
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError
from repro.ring.poly import RingPoly


class Decryptor:
    """Holds the secret key and decrypts ciphertexts of any size."""

    def __init__(self, context: BfvContext, secret_key: SecretKey) -> None:
        self.context = context
        self.secret_key = secret_key

    # ------------------------------------------------------------------
    def _dot_with_secret_powers(self, ciphertext: Ciphertext) -> RingPoly:
        """Compute ``sum_i c_i * s^i`` in R_q."""
        ctx = self.context
        acc = ciphertext.polys[0].copy()
        s_power = None
        for c_i in ciphertext.polys[1:]:
            if s_power is None:
                s_power = self.secret_key.s
            else:
                s_power = s_power.multiply(self.secret_key.s, ctx.ntts)
            acc = acc + c_i.multiply(s_power, ctx.ntts)
        return acc

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Decrypt to a plaintext in R_t."""
        ctx = self.context
        if ciphertext.polys[0].n != ctx.n:
            raise ParameterError("ciphertext degree does not match context")
        phase = self._dot_with_secret_powers(ciphertext)
        coeffs: List[int] = []
        q, t = ctx.q, ctx.t
        for x in phase.to_bigint_coeffs():
            # round(t*x/q) with exact integer arithmetic
            scaled = (t * x + q // 2) // q
            coeffs.append(scaled % t)
        return Plaintext(coeffs, t)

    # ------------------------------------------------------------------
    def invariant_noise_budget(self, ciphertext: Ciphertext) -> float:
        """Remaining noise budget in bits (SEAL's ``invariant_noise_budget``).

        The invariant noise ``v`` satisfies ``(t/q)(c0 + c1 s) = m + v + a*t``;
        decryption is correct while ``||v||_inf < 1/2``.  The budget is
        ``-log2(2*||v||_inf)``, i.e. bits of headroom before failure.
        Returns 0.0 when the ciphertext is already undecryptable.
        """
        ctx = self.context
        phase = self._dot_with_secret_powers(ciphertext)
        q, t = ctx.q, ctx.t
        max_num = 0
        for x in phase.to_bigint_coeffs():
            # v_i = frac(t*x/q) centered: numerator of the distance from the
            # nearest integer, as a fraction over q.
            r = (t * x) % q
            dist = min(r, q - r)
            max_num = max(max_num, dist)
        if max_num == 0:
            # Noise-free (e.g. trivial encryption of zero): infinite budget,
            # reported as the full modulus headroom.
            return float(q.bit_length())
        budget = -(math.log2(2 * max_num) - math.log2(q))
        return max(budget, 0.0)

    def decryption_is_correct(self, ciphertext: Ciphertext, plain: Plaintext) -> bool:
        """Convenience check used by tests and examples."""
        return self.decrypt(ciphertext) == plain
