"""BFV encryption with device-sampled noise and trace capture.

``DeviceBackedEncryptor`` is the victim of the paper's threat model in
one object: the Gaussian noise of each encryption is sampled by the
simulated PicoRV32 (two kernel executions - one per error polynomial)
while the "oscilloscope" records the power consumption.  The returned
:class:`TracedEncryption` carries the ciphertext together with the two
captures; the adversary gets ``e2_capture.trace`` and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.encryptor import Encryptor
from repro.bfv.keys import PublicKey
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.bfv.sampler import sample_ternary_coeffs
from repro.errors import ParameterError
from repro.power.capture import CapturedTrace, TraceAcquisition
from repro.utils.rng import new_rng


@dataclass
class TracedEncryption:
    """One encryption plus its side-channel observables."""

    ciphertext: Ciphertext
    e1_capture: CapturedTrace
    e2_capture: CapturedTrace

    @property
    def e1(self):
        """Ground-truth first error polynomial (evaluation only)."""
        return self.e1_capture.values

    @property
    def e2(self):
        """Ground-truth second error polynomial (evaluation only)."""
        return self.e2_capture.values


class DeviceBackedEncryptor:
    """Encrypts with noise sampled on the (instrumented) device.

    Parameters
    ----------
    context / public_key:
        The BFV scheme configuration and recipient key.
    acquisition:
        The measurement bench whose device must run the same coefficient
        modulus chain as the context.
    """

    def __init__(
        self,
        context: BfvContext,
        public_key: PublicKey,
        acquisition: TraceAcquisition,
    ) -> None:
        device_moduli = acquisition.device.moduli
        context_moduli = [m.value for m in context.basis.moduli]
        if device_moduli != context_moduli:
            raise ParameterError(
                f"device moduli {device_moduli} do not match context {context_moduli}"
            )
        if acquisition.device.max_deviation != int(
            context.params.noise_max_deviation
        ):
            raise ParameterError("device clipping bound does not match context")
        self.context = context
        self.acquisition = acquisition
        self._host_encryptor = Encryptor(context, public_key)

    def encrypt(self, plain: Plaintext, rng=None) -> TracedEncryption:
        """Encrypt; the two error polynomials run on the device.

        The device PRNG seeds are derived from ``rng`` so the whole
        encryption stays reproducible.
        """
        rng = new_rng(rng)
        u = sample_ternary_coeffs(self.context, rng)
        seed_e1 = int(rng.integers(1, 2**32))
        seed_e2 = int(rng.integers(1, 2**32))
        e1_capture = self.acquisition.capture(seed_e1, self.context.n)
        e2_capture = self.acquisition.capture(seed_e2, self.context.n)
        ciphertext = self._host_encryptor.encrypt_with_randomness(
            plain, u, e1_capture.values, e2_capture.values
        )
        return TracedEncryption(
            ciphertext=ciphertext,
            e1_capture=e1_capture,
            e2_capture=e2_capture,
        )
