"""Random samplers used by BFV key generation and encryption.

``ClippedNormalDistribution`` reproduces SEAL v3.2's sampler of the same
name: draw from a continuous normal distribution with the configured
standard deviation, resample while the magnitude exceeds
``noise_max_deviation``, then round to the nearest integer.  The
if/elif/else *assignment* of the resulting value into the polynomial —
the part the paper attacks — lives in :mod:`repro.bfv.encryptor`.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import SamplingError
from repro.ring.poly import RingPoly
from repro.utils.rng import new_rng

#: Safety valve for the rejection loop (SEAL loops forever; we diagnose).
_MAX_REJECTIONS = 10_000


def llround(x: float) -> int:
    """Round half away from zero, matching C's ``llround``.

    >>> llround(2.5)
    3
    >>> llround(-2.5)
    -3
    """
    return int(math.floor(x + 0.5)) if x >= 0 else int(math.ceil(x - 0.5))


class ClippedNormalDistribution:
    """SEAL's clipped, rounded normal distribution.

    Parameters
    ----------
    standard_deviation:
        Gaussian sigma (SEAL default 3.19).
    max_deviation:
        Resample while ``|x| > max_deviation`` (SEAL clips the continuous
        draw; the paper reports resulting integers in [-41, 41]).
    """

    def __init__(self, standard_deviation: float, max_deviation: float) -> None:
        if standard_deviation <= 0:
            raise SamplingError("standard deviation must be positive")
        if max_deviation < standard_deviation:
            raise SamplingError("max deviation must be >= standard deviation")
        self.standard_deviation = standard_deviation
        self.max_deviation = max_deviation

    def __call__(self, rng: np.random.Generator) -> int:
        """Draw one clipped, rounded sample (an ``int64_t noise`` in Fig. 2)."""
        for _ in range(_MAX_REJECTIONS):
            x = rng.normal(0.0, self.standard_deviation)
            if abs(x) <= self.max_deviation:
                return llround(x)
        raise SamplingError(
            f"rejected {_MAX_REJECTIONS} consecutive draws; "
            f"max_deviation={self.max_deviation} is implausibly tight"
        )

    def sample_vector(self, rng: np.random.Generator, count: int) -> List[int]:
        """Draw ``count`` independent samples."""
        return [self(rng) for _ in range(count)]

    @property
    def support_bound(self) -> int:
        """Largest magnitude an output can take."""
        return int(math.floor(self.max_deviation))


def sample_noise_coeffs(context, rng) -> List[int]:
    """Sample n signed noise coefficients from chi (the error distribution)."""
    dist = ClippedNormalDistribution(
        context.params.noise_standard_deviation,
        context.params.noise_max_deviation,
    )
    return dist.sample_vector(new_rng(rng), context.n)


def sample_noise_poly(context, rng) -> RingPoly:
    """Sample an error polynomial e <- chi as a ring element."""
    return RingPoly.from_int_coeffs(context.basis, context.n, sample_noise_coeffs(context, rng))


def sample_ternary_coeffs(context, rng) -> List[int]:
    """Sample n coefficients uniformly from {-1, 0, 1} (the R_2 distribution)."""
    rng = new_rng(rng)
    return [int(c) for c in rng.integers(-1, 2, context.n)]


def sample_ternary_poly(context, rng) -> RingPoly:
    """Sample a ternary polynomial (secret key s, encryption sample u)."""
    return RingPoly.from_int_coeffs(
        context.basis, context.n, sample_ternary_coeffs(context, rng)
    )


def sample_uniform_poly(context, rng) -> RingPoly:
    """Sample a uniform element of R_q (the public-key ``a`` polynomial).

    Uniformity over Z_Q is equivalent to independent uniformity per RNS
    limb by the CRT bijection, so we sample limb-wise.
    """
    rng = new_rng(rng)
    residues = np.empty((context.basis.size, context.n), dtype=np.int64)
    for i, m in enumerate(context.basis.moduli):
        residues[i] = rng.integers(0, m.value, context.n)
    return RingPoly(context.basis, context.n, residues)
