"""Noise-budget analysis: theoretical bounds and measured budgets.

SEAL exposes ``invariant_noise_budget`` (implemented on
:class:`repro.bfv.decryptor.Decryptor`); this module adds the
*theoretical* side: worst-case and expected bounds for fresh
encryptions and the budget consumption of each homomorphic operation,
so parameter sets can be sized without trial decryption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bfv.params import BfvContext


@dataclass(frozen=True)
class NoiseEstimate:
    """Expected and worst-case infinity norms of the invariant noise."""

    expected_bits: float
    worst_case_bits: float

    def budget_bits(self, context: BfvContext) -> float:
        """Expected remaining budget: ``log2(q / (2t)) - expected_bits``."""
        headroom = math.log2(context.q) - math.log2(2 * context.t)
        return max(headroom - self.expected_bits, 0.0)


def fresh_encryption_noise(context: BfvContext) -> NoiseEstimate:
    """Noise of a fresh public-key encryption.

    The invariant-noise numerator is ``e1 + e2*s - e*u`` whose
    coefficients are sums of ``2n`` products of a Gaussian (sigma) with
    a ternary value (variance 2/3) plus one Gaussian; the expected
    infinity norm over n coefficients is approximated by the
    ``sqrt(2 ln n)``-sigma quantile.
    """
    n = context.n
    sigma = context.params.noise_standard_deviation
    ternary_variance = 2.0 / 3.0
    variance = sigma**2 * (1 + 2 * n * ternary_variance)
    expected_peak = math.sqrt(variance) * math.sqrt(2 * math.log(max(n, 2)))
    worst = context.params.noise_max_deviation * (1 + 2 * n)
    return NoiseEstimate(
        expected_bits=math.log2(max(expected_peak, 1.0)),
        worst_case_bits=math.log2(max(worst, 1.0)),
    )


def addition_noise_growth_bits() -> float:
    """Homomorphic addition at most doubles the noise: <= 1 bit."""
    return 1.0


def multiply_noise_growth_bits(context: BfvContext) -> float:
    """Approximate budget consumed by one ciphertext multiplication.

    The dominant textbook term scales the noise by about ``2 t n``;
    in bits: ``log2(2 t n)`` (plus O(1) rounding terms, absorbed by one
    extra bit).
    """
    return math.log2(2 * context.t * context.n) + 1.0


def relinearisation_noise_bits(context: BfvContext, decomposition_bits: int) -> float:
    """Additive key-switching noise in bits.

    Base-w decomposition adds about ``l * n * w * sigma`` to the raw
    noise, where ``l`` is the number of levels.
    """
    levels = (context.q.bit_length() + decomposition_bits - 1) // decomposition_bits
    added = (
        levels
        * context.n
        * (1 << decomposition_bits)
        * context.params.noise_standard_deviation
    )
    # relative to the invariant-noise scale q/t
    return math.log2(added) - math.log2(context.q / context.t)


def supported_multiplication_depth(
    context: BfvContext, decomposition_bits: int = 16
) -> int:
    """How many multiply+relinearise levels a fresh ciphertext supports."""
    fresh = fresh_encryption_noise(context)
    budget = fresh.budget_bits(context)
    per_level = multiply_noise_growth_bits(context)
    depth = 0
    while budget > per_level and depth < 64:
        budget -= per_level
        depth += 1
    return depth
