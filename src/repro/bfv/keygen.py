"""BFV key generation (SecretKeyGen / PublicKeyGen / RelinKeyGen).

Follows section II-A of the paper:

- ``SecretKeyGen``: sample ``s <- R_2`` (ternary), output ``sk = s``.
- ``PublicKeyGen``: sample ``a <- R_q`` uniform and ``e <- chi``; output
  ``pk = ([-(a s + e)]_q, a)``.
- Relinearisation keys use the classic base-w decomposition
  ``evk_i = ([-(a_i s + e_i) + w^i s^2]_q, a_i)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bfv.keys import GaloisKeys, PublicKey, RelinKeys, SecretKey
from repro.bfv.params import BfvContext
from repro.bfv.sampler import (
    sample_noise_poly,
    sample_ternary_poly,
    sample_uniform_poly,
)
from repro.ring.galois import apply_galois, galois_elements_for_rotations
from repro.ring.poly import RingPoly
from repro.utils.rng import new_rng


class KeyGenerator:
    """Generates all BFV key material for one context."""

    def __init__(self, context: BfvContext, rng=None) -> None:
        self.context = context
        self._rng = new_rng(rng)
        self._secret = SecretKey(sample_ternary_poly(context, self._rng))

    def secret_key(self) -> SecretKey:
        """The secret key generated at construction time."""
        return self._secret

    def public_key(self) -> PublicKey:
        """Generate a fresh public key for the held secret."""
        ctx = self.context
        a = sample_uniform_poly(ctx, self._rng)
        e = sample_noise_poly(ctx, self._rng)
        p0 = -(a.multiply(self._secret.s, ctx.ntts) + e)
        return PublicKey(p0, a)

    def _key_switching_pairs(
        self, target: RingPoly, decomposition_bits: int
    ) -> "List":
        """Pairs ``([-(a_i s + e_i) + w^i * target]_q, a_i)`` for all levels."""
        ctx = self.context
        s = self._secret.s
        levels = (ctx.q.bit_length() + decomposition_bits - 1) // decomposition_bits
        pairs = []
        w_power = 1
        for _ in range(levels):
            a_i = sample_uniform_poly(ctx, self._rng)
            e_i = sample_noise_poly(ctx, self._rng)
            b_i = (
                -(a_i.multiply(s, ctx.ntts) + e_i)
                + target.scalar_mul_bigint(w_power)
            )
            pairs.append((b_i, a_i))
            w_power <<= decomposition_bits
        return pairs

    def galois_keys(
        self,
        elements: Optional[Sequence[int]] = None,
        steps: Optional[Sequence[int]] = None,
        decomposition_bits: int = 16,
    ) -> GaloisKeys:
        """Key-switching keys for Galois automorphisms.

        Pass explicit odd ``elements`` or slot-rotation ``steps`` (which
        are translated via the generator 3).  The column-swap element
        ``2n - 1`` can be requested explicitly.
        """
        ctx = self.context
        if elements is None:
            if steps is None:
                raise ValueError("provide elements or steps")
            elements = galois_elements_for_rotations(ctx.n, list(steps))
        pairs_by_element = {}
        for g in elements:
            rotated_secret = apply_galois(self._secret.s, g)
            pairs_by_element[int(g)] = self._key_switching_pairs(
                rotated_secret, decomposition_bits
            )
        return GaloisKeys(decomposition_bits, pairs_by_element)

    def relin_keys(self, decomposition_bits: int = 16) -> RelinKeys:
        """Generate relinearisation keys with base ``w = 2**decomposition_bits``.

        Each level encrypts ``w^i * s^2``; the evaluator recombines the
        base-w digits of ``c_2`` against these pairs.
        """
        ctx = self.context
        s = self._secret.s
        s_squared = s.multiply(s, ctx.ntts)
        return RelinKeys(
            decomposition_bits,
            self._key_switching_pairs(s_squared, decomposition_bits),
        )
