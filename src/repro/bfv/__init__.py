"""SEAL-v3.2-style implementation of the BFV homomorphic encryption scheme.

The module layout mirrors the SEAL components the paper discusses:

- :mod:`repro.bfv.params` — encryption parameters and precomputed context
  (the paper's SEAL-128 sets, with n = 1024 / q = 132120577 pinned).
- :mod:`repro.bfv.sampler` — ``ClippedNormalDistribution`` and the
  uniform/ternary samplers used by key generation and encryption.
- :mod:`repro.bfv.keygen` / :mod:`repro.bfv.keys` — secret, public and
  relinearisation keys.
- :mod:`repro.bfv.encryptor` — BFV encryption including the *vulnerable*
  ``set_poly_coeffs_normal`` routine of Fig. 2 of the paper.
- :mod:`repro.bfv.decryptor` — decryption and invariant-noise budget.
- :mod:`repro.bfv.evaluator` — homomorphic add / multiply / relinearise.
- :mod:`repro.bfv.encoder` — integer and batch (CRT/SIMD) encoders.
"""

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.decryptor import Decryptor
from repro.bfv.encoder import BatchEncoder, IntegerEncoder, find_batching_plain_modulus
from repro.bfv.encryptor import EncryptionArtifacts, Encryptor, set_poly_coeffs_normal
from repro.bfv.evaluator import Evaluator
from repro.bfv.keygen import KeyGenerator
from repro.bfv.keys import PublicKey, RelinKeys, SecretKey
from repro.bfv.params import BfvContext, BfvParameters
from repro.bfv.plaintext import Plaintext
from repro.bfv.sampler import (
    ClippedNormalDistribution,
    sample_noise_poly,
    sample_ternary_poly,
    sample_uniform_poly,
)

__all__ = [
    "BatchEncoder",
    "BfvContext",
    "BfvParameters",
    "Ciphertext",
    "ClippedNormalDistribution",
    "Decryptor",
    "EncryptionArtifacts",
    "Encryptor",
    "Evaluator",
    "IntegerEncoder",
    "KeyGenerator",
    "Plaintext",
    "PublicKey",
    "RelinKeys",
    "SecretKey",
    "find_batching_plain_modulus",
    "sample_noise_poly",
    "sample_ternary_poly",
    "sample_uniform_poly",
    "set_poly_coeffs_normal",
]
