"""Ciphertext container: a tuple of ``R_q`` polynomials.

Fresh encryptions have size 2 (``c0``, ``c1``); a homomorphic
multiplication yields size 3 until relinearisation brings it back to 2.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ParameterError
from repro.ring.poly import RingPoly


class Ciphertext:
    """An ordered tuple of ring polynomials ``(c_0, ..., c_{k-1})``."""

    def __init__(self, polys: Sequence[RingPoly]) -> None:
        if len(polys) < 2:
            raise ParameterError("a ciphertext needs at least two polynomials")
        n = polys[0].n
        for p in polys:
            if p.n != n:
                raise ParameterError("ciphertext polynomials must share a degree")
        self.polys: List[RingPoly] = list(polys)

    @property
    def size(self) -> int:
        """Number of polynomials (2 for fresh, 3 after multiply)."""
        return len(self.polys)

    @property
    def c0(self) -> RingPoly:
        """First component."""
        return self.polys[0]

    @property
    def c1(self) -> RingPoly:
        """Second component."""
        return self.polys[1]

    def copy(self) -> "Ciphertext":
        """Deep copy."""
        return Ciphertext([p.copy() for p in self.polys])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ciphertext):
            return NotImplemented
        return self.size == other.size and all(
            a == b for a, b in zip(self.polys, other.polys)
        )

    def __repr__(self) -> str:
        return f"Ciphertext(size={self.size}, n={self.polys[0].n})"
