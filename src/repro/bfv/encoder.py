"""Plaintext encoders: integer (binary) and batch (CRT/SIMD).

``IntegerEncoder`` maps machine integers to low-degree polynomials via
their binary expansion, like SEAL's encoder of the same name; the
homomorphic correspondence is ``decode(dec(ct1 op ct2)) == m1 op m2`` as
long as coefficients do not wrap modulo t.

``BatchEncoder`` packs a vector of n slots using the CRT/NTT structure
of ``R_t`` when t is a prime congruent to 1 mod 2n (SEAL's
``BatchEncoder``).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError
from repro.ring.modulus import Modulus
from repro.ring.ntt import get_ntt_context
from repro.ring.primes import generate_ntt_primes, is_prime


class IntegerEncoder:
    """Binary (base-2) integer encoder.

    Non-negative integers become 0/1 coefficient polynomials; negative
    integers use coefficients ``t - 1`` (i.e. ``-1 mod t``), exactly like
    SEAL's ``IntegerEncoder`` with base 2.
    """

    def __init__(self, context: BfvContext) -> None:
        self.context = context

    def encode(self, value: int) -> Plaintext:
        """Encode a signed integer whose bit length fits the ring degree."""
        ctx = self.context
        magnitude = abs(int(value))
        if magnitude.bit_length() > ctx.n:
            raise ParameterError(
                f"|value| needs {magnitude.bit_length()} bits, ring degree is {ctx.n}"
            )
        digit = 1 if value >= 0 else ctx.t - 1
        coeffs = [0] * ctx.n
        for i in range(magnitude.bit_length()):
            if (magnitude >> i) & 1:
                coeffs[i] = digit
        return Plaintext(coeffs, ctx.t)

    def decode(self, plain: Plaintext) -> int:
        """Evaluate the polynomial at x = 2 using centered coefficients."""
        total = 0
        for i, c in enumerate(plain.centered_coeffs()):
            total += c << i
        return total


def find_batching_plain_modulus(poly_degree: int, bit_size: int = 0) -> int:
    """Find a prime t = 1 mod 2n enabling SIMD batching.

    With ``bit_size=0`` the smallest workable size is used (keeping the
    noise cost of a large t down); pass an explicit size for wider
    plaintext spaces.

    >>> find_batching_plain_modulus(64)
    257
    """
    if bit_size == 0:
        bit_size = (2 * poly_degree).bit_length() + 1
    return generate_ntt_primes(bit_size, 1, poly_degree)[0].value


class BatchEncoder:
    """SIMD (CRT) encoder packing n integer slots into one plaintext.

    Requires the context's plain modulus to be a prime ``t = 1 mod 2n``;
    slot-wise addition and multiplication then commute with the
    homomorphic operations.
    """

    def __init__(self, context: BfvContext) -> None:
        t = context.t
        n = context.n
        if not is_prime(t) or (t - 1) % (2 * n) != 0:
            raise ParameterError(
                f"batching requires a prime t = 1 mod {2 * n}; got t={t} "
                f"(use find_batching_plain_modulus)"
            )
        self.context = context
        self._ntt = get_ntt_context(Modulus(t), n)

    @property
    def slot_count(self) -> int:
        """Number of SIMD slots (= ring degree)."""
        return self.context.n

    def encode(self, values: Sequence[int]) -> Plaintext:
        """Pack up to n slot values (short inputs are zero-padded)."""
        ctx = self.context
        values = [int(v) % ctx.t for v in values]
        if len(values) > ctx.n:
            raise ParameterError(f"too many slots: {len(values)} > {ctx.n}")
        values = values + [0] * (ctx.n - len(values))
        coeffs = self._ntt.inverse(np.array(values, dtype=np.int64))
        return Plaintext([int(c) for c in coeffs], ctx.t)

    def decode(self, plain: Plaintext) -> List[int]:
        """Unpack a plaintext back into its n slot values."""
        values = self._ntt.forward(plain.coeffs)
        return [int(v) for v in values]
