"""Key material containers for BFV."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ring.poly import RingPoly


@dataclass
class SecretKey:
    """The ternary secret polynomial s."""

    s: RingPoly


@dataclass
class PublicKey:
    """The encryption key ``pk = (p0, p1) = ([-(a s + e)]_q, a)``."""

    p0: RingPoly
    p1: RingPoly


@dataclass
class GaloisKeys:
    """Key-switching keys for Galois automorphisms.

    ``pairs_by_element[g][i]`` encrypts ``w^i * tau_g(s)`` under s,
    enabling :meth:`repro.bfv.evaluator.Evaluator.apply_galois`.
    """

    decomposition_bits: int
    pairs_by_element: "dict[int, List[Tuple[RingPoly, RingPoly]]]"

    def elements(self) -> "List[int]":
        """Galois elements these keys support."""
        return sorted(self.pairs_by_element)


@dataclass
class RelinKeys:
    """Relinearisation (evaluation) keys.

    ``pairs[i]`` encrypts ``w^i * s^2`` under s, where w = 2**decomposition_bits,
    following the classic BFV relinearisation version 1.
    """

    decomposition_bits: int
    pairs: List[Tuple[RingPoly, RingPoly]]

    @property
    def level_count(self) -> int:
        """Number of decomposition levels l = ceil(log2(q) / w_bits)."""
        return len(self.pairs)
