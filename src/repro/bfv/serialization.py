"""Serialisation of BFV objects (keys, ciphertexts, plaintexts).

SEAL ships binary save/load for every object; we provide the same for
downstream workflows (generate keys once, encrypt on a device, attack
offline).  Containers are ``.npz`` archives carrying the residue
matrices plus a JSON header with the ring parameters, which are
verified against the loading context.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.keys import PublicKey, RelinKeys, SecretKey
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError
from repro.ring.poly import RingPoly

_PathLike = Union[str, Path]


def _header(context: BfvContext, kind: str) -> np.ndarray:
    payload = {
        "kind": kind,
        "n": context.n,
        "moduli": [m.value for m in context.basis.moduli],
        "t": context.t,
    }
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def _check_header(archive, context: BfvContext, kind: str) -> dict:
    header = json.loads(bytes(archive["header"].tobytes()).decode())
    if header["kind"] != kind:
        raise ParameterError(f"archive holds a {header['kind']}, expected {kind}")
    if header["n"] != context.n or header["t"] != context.t:
        raise ParameterError("archive parameters do not match the context")
    if header["moduli"] != [m.value for m in context.basis.moduli]:
        raise ParameterError("archive coefficient modulus does not match")
    return header


# ----------------------------------------------------------------------
# Ciphertext / plaintext
# ----------------------------------------------------------------------
def save_ciphertext(context: BfvContext, ct: Ciphertext, path: _PathLike) -> None:
    """Write a ciphertext of any size to ``path``."""
    payload = {"header": _header(context, "ciphertext")}
    for i, poly in enumerate(ct.polys):
        payload[f"poly{i}"] = poly.residues
    np.savez_compressed(Path(path), **payload)


def load_ciphertext(context: BfvContext, path: _PathLike) -> Ciphertext:
    """Read a ciphertext written by :func:`save_ciphertext`."""
    archive = np.load(Path(path), allow_pickle=False)
    _check_header(archive, context, "ciphertext")
    polys = []
    index = 0
    while f"poly{index}" in archive:
        polys.append(RingPoly(context.basis, context.n, archive[f"poly{index}"]))
        index += 1
    return Ciphertext(polys)


def save_plaintext(context: BfvContext, plain: Plaintext, path: _PathLike) -> None:
    """Write a plaintext to ``path``."""
    np.savez_compressed(
        Path(path), header=_header(context, "plaintext"), coeffs=plain.coeffs
    )


def load_plaintext(context: BfvContext, path: _PathLike) -> Plaintext:
    """Read a plaintext written by :func:`save_plaintext`."""
    archive = np.load(Path(path), allow_pickle=False)
    _check_header(archive, context, "plaintext")
    return Plaintext([int(c) for c in archive["coeffs"]], context.t)


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def save_secret_key(context: BfvContext, key: SecretKey, path: _PathLike) -> None:
    """Write the secret key (protect this file!)."""
    np.savez_compressed(
        Path(path), header=_header(context, "secret-key"), s=key.s.residues
    )


def load_secret_key(context: BfvContext, path: _PathLike) -> SecretKey:
    """Read a secret key."""
    archive = np.load(Path(path), allow_pickle=False)
    _check_header(archive, context, "secret-key")
    return SecretKey(RingPoly(context.basis, context.n, archive["s"]))


def save_public_key(context: BfvContext, key: PublicKey, path: _PathLike) -> None:
    """Write a public key."""
    np.savez_compressed(
        Path(path),
        header=_header(context, "public-key"),
        p0=key.p0.residues,
        p1=key.p1.residues,
    )


def load_public_key(context: BfvContext, path: _PathLike) -> PublicKey:
    """Read a public key."""
    archive = np.load(Path(path), allow_pickle=False)
    _check_header(archive, context, "public-key")
    return PublicKey(
        RingPoly(context.basis, context.n, archive["p0"]),
        RingPoly(context.basis, context.n, archive["p1"]),
    )


def save_relin_keys(context: BfvContext, keys: RelinKeys, path: _PathLike) -> None:
    """Write relinearisation keys."""
    payload = {
        "header": _header(context, "relin-keys"),
        "decomposition_bits": np.array([keys.decomposition_bits]),
    }
    for i, (b_i, a_i) in enumerate(keys.pairs):
        payload[f"b{i}"] = b_i.residues
        payload[f"a{i}"] = a_i.residues
    np.savez_compressed(Path(path), **payload)


def load_relin_keys(context: BfvContext, path: _PathLike) -> RelinKeys:
    """Read relinearisation keys."""
    archive = np.load(Path(path), allow_pickle=False)
    _check_header(archive, context, "relin-keys")
    pairs = []
    index = 0
    while f"b{index}" in archive:
        pairs.append(
            (
                RingPoly(context.basis, context.n, archive[f"b{index}"]),
                RingPoly(context.basis, context.n, archive[f"a{index}"]),
            )
        )
        index += 1
    return RelinKeys(int(archive["decomposition_bits"][0]), pairs)
