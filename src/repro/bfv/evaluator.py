"""Homomorphic evaluation on BFV ciphertexts.

Implements the cloud-side ``Evaluate`` function of Fig. 1 of the paper:
addition, subtraction, negation, plaintext addition/multiplication, full
ciphertext-ciphertext multiplication (tensor + exact ``t/q`` scaling)
and relinearisation with base-w key switching.
"""

from __future__ import annotations

from typing import List

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.keys import GaloisKeys, RelinKeys
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import ParameterError
from repro.ring.exact import exact_negacyclic_multiply
from repro.ring.galois import apply_galois as _apply_galois_poly
from repro.ring.galois import galois_elements_for_rotations
from repro.ring.poly import RingPoly


class Evaluator:
    """Stateless homomorphic-operation provider for one context."""

    def __init__(self, context: BfvContext) -> None:
        self.context = context

    # ------------------------------------------------------------------
    # Linear operations
    # ------------------------------------------------------------------
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition; sizes may differ (shorter is zero-padded)."""
        longer, shorter = (a, b) if a.size >= b.size else (b, a)
        polys = [p.copy() for p in longer.polys]
        for i, p in enumerate(shorter.polys):
            polys[i] = polys[i] + p
        return Ciphertext(polys)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction ``a - b``."""
        return self.add(a, self.negate(b))

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        return Ciphertext([-p for p in a.polys])

    def add_plain(self, a: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Add an unencrypted plaintext (scaled by Delta) to a ciphertext."""
        ctx = self._check_plain(plain)
        scaled = RingPoly.from_bigint_coeffs(
            ctx.basis, ctx.n, [ctx.delta * int(c) for c in plain.coeffs]
        )
        polys = [p.copy() for p in a.polys]
        polys[0] = polys[0] + scaled
        return Ciphertext(polys)

    def sub_plain(self, a: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Subtract an unencrypted plaintext from a ciphertext."""
        ctx = self._check_plain(plain)
        scaled = RingPoly.from_bigint_coeffs(
            ctx.basis, ctx.n, [ctx.delta * int(c) for c in plain.coeffs]
        )
        polys = [p.copy() for p in a.polys]
        polys[0] = polys[0] - scaled
        return Ciphertext(polys)

    def multiply_plain(self, a: Ciphertext, plain: Plaintext) -> Ciphertext:
        """Multiply by an unencrypted plaintext (no Delta rescaling needed)."""
        ctx = self._check_plain(plain)
        if plain.is_zero():
            raise ParameterError(
                "multiply_plain by zero produces a transparent ciphertext; "
                "multiply by Plaintext.constant(0, ...) via add instead"
            )
        plain_poly = RingPoly.from_int_coeffs(
            ctx.basis, ctx.n, [int(c) for c in plain.coeffs]
        )
        return Ciphertext([p.multiply(plain_poly, ctx.ntts) for p in a.polys])

    # ------------------------------------------------------------------
    # Multiplication and relinearisation
    # ------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Full BFV multiplication of two size-2 ciphertexts (size-3 result).

        Computes the integer tensor products of the *centered lifts* and
        scales each by ``t/q`` with exact rounding, per the textbook BFV
        multiplication.
        """
        if a.size != 2 or b.size != 2:
            raise ParameterError("multiply expects size-2 ciphertexts")
        ctx = self.context
        q, t = ctx.q, ctx.t
        lifts_a = [p.to_centered_coeffs() for p in a.polys]
        lifts_b = [p.to_centered_coeffs() for p in b.polys]

        prod00 = exact_negacyclic_multiply(lifts_a[0], lifts_b[0])
        prod01 = exact_negacyclic_multiply(lifts_a[0], lifts_b[1])
        prod10 = exact_negacyclic_multiply(lifts_a[1], lifts_b[0])
        prod11 = exact_negacyclic_multiply(lifts_a[1], lifts_b[1])
        cross = [x + y for x, y in zip(prod01, prod10)]

        def scale(coeffs: List[int]) -> RingPoly:
            # round(t*c/q) using floor division, valid for signed numerators
            rounded = [((t * c + q // 2) // q) % q for c in coeffs]
            return RingPoly.from_bigint_coeffs(ctx.basis, ctx.n, rounded)

        return Ciphertext([scale(prod00), scale(cross), scale(prod11)])

    def relinearize(self, a: Ciphertext, relin_keys: RelinKeys) -> Ciphertext:
        """Reduce a size-3 ciphertext back to size 2 via base-w key switching."""
        if a.size != 3:
            raise ParameterError("relinearize expects a size-3 ciphertext")
        ctx = self.context
        w_bits = relin_keys.decomposition_bits
        c2_coeffs = a.polys[2].to_bigint_coeffs()
        c0 = a.polys[0].copy()
        c1 = a.polys[1].copy()
        for level, (b_i, a_i) in enumerate(relin_keys.pairs):
            digits = [(c >> (w_bits * level)) & ((1 << w_bits) - 1) for c in c2_coeffs]
            digit_poly = RingPoly.from_bigint_coeffs(ctx.basis, ctx.n, digits)
            c0 = c0 + digit_poly.multiply(b_i, ctx.ntts)
            c1 = c1 + digit_poly.multiply(a_i, ctx.ntts)
        return Ciphertext([c0, c1])

    def multiply_relin(
        self, a: Ciphertext, b: Ciphertext, relin_keys: RelinKeys
    ) -> Ciphertext:
        """Multiply then immediately relinearise."""
        return self.relinearize(self.multiply(a, b), relin_keys)

    # ------------------------------------------------------------------
    # Galois automorphisms / rotations
    # ------------------------------------------------------------------
    def apply_galois(
        self, a: Ciphertext, galois_element: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        """Apply ``tau_g`` homomorphically: ``dec(out) = tau_g(dec(a))``.

        ``tau_g(c0) + tau_g(c1) * tau_g(s)`` decrypts the transformed
        plaintext under the *rotated* secret; key switching with the
        Galois keys brings it back under ``s``.
        """
        if a.size != 2:
            raise ParameterError("apply_galois expects a size-2 ciphertext")
        if galois_element not in galois_keys.pairs_by_element:
            raise ParameterError(
                f"no Galois key for element {galois_element}; "
                f"available: {galois_keys.elements()}"
            )
        ctx = self.context
        rotated_c0 = _apply_galois_poly(a.c0, galois_element)
        rotated_c1 = _apply_galois_poly(a.c1, galois_element)
        # key-switch rotated_c1 * tau_g(s) -> under s
        w_bits = galois_keys.decomposition_bits
        coeffs = rotated_c1.to_bigint_coeffs()
        c0 = rotated_c0
        c1 = RingPoly.zero(ctx.basis, ctx.n)
        for level, (b_i, a_i) in enumerate(galois_keys.pairs_by_element[galois_element]):
            digits = [(c >> (w_bits * level)) & ((1 << w_bits) - 1) for c in coeffs]
            digit_poly = RingPoly.from_bigint_coeffs(ctx.basis, ctx.n, digits)
            c0 = c0 + digit_poly.multiply(b_i, ctx.ntts)
            c1 = c1 + digit_poly.multiply(a_i, ctx.ntts)
        return Ciphertext([c0, c1])

    def rotate_rows(
        self, a: Ciphertext, steps: int, galois_keys: GaloisKeys
    ) -> Ciphertext:
        """Rotate the batched slots by ``steps`` (SEAL's ``rotate_rows``)."""
        (element,) = galois_elements_for_rotations(self.context.n, [steps])
        return self.apply_galois(a, element, galois_keys)

    def rotate_columns(self, a: Ciphertext, galois_keys: GaloisKeys) -> Ciphertext:
        """Swap the two slot rows (the ``2n - 1`` conjugation element)."""
        return self.apply_galois(a, 2 * self.context.n - 1, galois_keys)

    def square(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic squaring (a size-3 result)."""
        return self.multiply(a, a)

    # ------------------------------------------------------------------
    def _check_plain(self, plain: Plaintext) -> BfvContext:
        ctx = self.context
        if plain.n != ctx.n:
            raise ParameterError("plaintext length does not match context")
        if plain.t != ctx.t:
            raise ParameterError("plaintext modulus does not match context")
        return ctx
