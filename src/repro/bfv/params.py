"""BFV encryption parameters and the precomputed context.

The defaults reproduce the paper's target configuration: 128-bit
security, polynomial degree n = 1024, coefficient modulus
q = 132120577, plaintext modulus t = 256 and Gaussian noise with
standard deviation 3.19 (≈ 8/sqrt(2*pi)) clipped to |x| <= 41 — the
range the paper states for sampled coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ParameterError
from repro.ring.modulus import Modulus
from repro.ring.ntt import NttContext, get_ntt_context
from repro.ring.primes import default_coeff_modulus_128
from repro.ring.rns import RnsBasis
from repro.utils.validation import check_power_of_two

#: SEAL's default noise standard deviation (sigma = 3.19 ~ 8/sqrt(2 pi)).
DEFAULT_NOISE_STANDARD_DEVIATION = 3.19

#: Paper section II-A: "each sampled coefficient is between -41 and 41".
DEFAULT_NOISE_MAX_DEVIATION = 41.0

#: SEAL's default plaintext modulus for integer workloads.
DEFAULT_PLAIN_MODULUS = 256


@dataclass(frozen=True)
class BfvParameters:
    """Static BFV scheme parameters (the analogue of SEAL's ``EncryptionParameters``).

    Parameters
    ----------
    poly_degree:
        Ring degree n; a power of two.  SEAL supports 1024..32768.
    coeff_modulus:
        The RNS limbs whose product is the ciphertext modulus q.
    plain_modulus:
        The plaintext modulus t (any integer >= 2; need not be prime).
    noise_standard_deviation / noise_max_deviation:
        Parameters of the clipped Gaussian noise sampler chi.
    """

    poly_degree: int
    coeff_modulus: Sequence[Modulus]
    plain_modulus: int = DEFAULT_PLAIN_MODULUS
    noise_standard_deviation: float = DEFAULT_NOISE_STANDARD_DEVIATION
    noise_max_deviation: float = DEFAULT_NOISE_MAX_DEVIATION

    def __post_init__(self) -> None:
        check_power_of_two("poly_degree", self.poly_degree)
        if not self.coeff_modulus:
            raise ParameterError("coeff_modulus must not be empty")
        if self.plain_modulus < 2:
            raise ParameterError(f"plain_modulus must be >= 2, got {self.plain_modulus}")
        if self.noise_standard_deviation <= 0:
            raise ParameterError("noise_standard_deviation must be positive")
        if self.noise_max_deviation < self.noise_standard_deviation:
            raise ParameterError("noise_max_deviation must be >= standard deviation")
        for m in self.coeff_modulus:
            if (m.value - 1) % (2 * self.poly_degree) != 0:
                raise ParameterError(
                    f"coeff modulus {m.value} is not NTT-friendly for n={self.poly_degree}"
                )
        q = 1
        for m in self.coeff_modulus:
            q *= m.value
        if q // self.plain_modulus < 2:
            raise ParameterError("q/t too small: no room for the message scale Delta")


class BfvContext:
    """Precomputed data shared by all BFV operations (SEAL's ``SEALContext``).

    Holds the RNS basis, per-limb NTT tables, the full modulus ``q`` and
    the message scale ``Delta = floor(q / t)``.
    """

    def __init__(self, params: BfvParameters) -> None:
        self.params = params
        self.n = params.poly_degree
        self.basis = RnsBasis(params.coeff_modulus)
        self.q: int = self.basis.product
        self.t: int = params.plain_modulus
        self.delta: int = self.q // self.t
        self.ntts: List[NttContext] = [
            get_ntt_context(m, self.n) for m in self.basis.moduli
        ]

    # ------------------------------------------------------------------
    @classmethod
    def default(
        cls,
        poly_degree: int = 1024,
        plain_modulus: int = DEFAULT_PLAIN_MODULUS,
        coeff_modulus: Optional[Sequence[Modulus]] = None,
    ) -> "BfvContext":
        """Context for a SEAL-128 default parameter set.

        ``BfvContext.default()`` is exactly the paper's attacked
        configuration (n=1024, q=132120577, sigma=3.19).
        """
        if coeff_modulus is None:
            coeff_modulus = default_coeff_modulus_128(poly_degree)
        return cls(BfvParameters(poly_degree, tuple(coeff_modulus), plain_modulus))

    @classmethod
    def toy(
        cls, poly_degree: int = 64, plain_modulus: int = 17, limbs: int = 1
    ) -> "BfvContext":
        """A small, fast context for unit tests and toy lattice attacks.

        ``limbs`` word-sized primes are used for q; pass 2+ when a test
        needs noise headroom for multiplication chains.
        """
        from repro.ring.primes import generate_ntt_primes

        chain = generate_ntt_primes(27, limbs, poly_degree)
        return cls(BfvParameters(poly_degree, tuple(chain), plain_modulus))

    # ------------------------------------------------------------------
    @property
    def coeff_mod_count(self) -> int:
        """Number of RNS limbs (``coeff_mod_count`` in Fig. 2 of the paper)."""
        return self.basis.size

    def total_coeff_modulus_bits(self) -> int:
        """Bit length of q."""
        return self.q.bit_length()

    def __repr__(self) -> str:
        return (
            f"BfvContext(n={self.n}, q_bits={self.total_coeff_modulus_bits()}, "
            f"t={self.t}, limbs={self.coeff_mod_count})"
        )
