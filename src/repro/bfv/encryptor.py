"""BFV encryption, including the vulnerable noise-assignment routine.

``set_poly_coeffs_normal`` is a line-for-line Python port of the SEAL
v3.2 C++ function the paper reproduces in Fig. 2.  The three highlighted
vulnerabilities live here:

1. the ``if noise > 0 / elif noise < 0 / else`` *branches* (control-flow
   leakage reveals the coefficient's sign, or that it is zero);
2. the *assignment* of the freshly sampled value (data-flow leakage of
   the coefficient magnitude);
3. the *negation* ``noise = -noise`` on the negative path (a second,
   different data-flow leak that disambiguates equal-Hamming-weight
   candidates).

The pure-Python port is used by the scheme itself; the RISC-V assembly
version executed by the simulated PicoRV32 core (which produces the
power traces) lives in :mod:`repro.riscv.programs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.keys import PublicKey
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.bfv.sampler import (
    ClippedNormalDistribution,
    sample_ternary_coeffs,
)
from repro.errors import ParameterError
from repro.ring.poly import RingPoly
from repro.utils.rng import new_rng

#: A noise source is anything yielding one signed sample per call, like
#: ``dist(engine)`` in Fig. 2.  The RISC-V device sampler satisfies this.
NoiseSource = Callable[[], int]


def set_poly_coeffs_normal(
    context: BfvContext, dist: NoiseSource
) -> "tuple[np.ndarray, List[int]]":
    """Fill a strided RNS polynomial buffer with Gaussian noise.

    Mirrors SEAL v3.2's ``Encryptor::set_poly_coeffs_normal`` (Fig. 2 of
    the paper) including its branch structure.  Returns the filled
    ``(coeff_mod_count, coeff_count)`` buffer and the signed noise values
    (the latter are what the attack tries to recover).
    """
    coeff_count = context.n
    coeff_mod_count = context.coeff_mod_count
    coeff_modulus = context.basis.moduli
    poly = np.zeros((coeff_mod_count, coeff_count), dtype=np.int64)
    sampled: List[int] = []
    for i in range(coeff_count):
        noise = dist()
        sampled.append(noise)
        if noise > 0:
            for j in range(coeff_mod_count):
                poly[j, i] = noise
        elif noise < 0:
            noise = -noise
            for j in range(coeff_mod_count):
                poly[j, i] = coeff_modulus[j].value - noise
        else:
            for j in range(coeff_mod_count):
                poly[j, i] = 0
    return poly, sampled


@dataclass
class EncryptionArtifacts:
    """Debug record of one encryption's fresh randomness.

    This is ground truth for attack evaluation only — a real adversary
    never sees it.  ``u`` is the ternary encryption sample; ``e1`` and
    ``e2`` are the signed Gaussian noise coefficients of the two error
    polynomials.
    """

    u: List[int]
    e1: List[int]
    e2: List[int]


class Encryptor:
    """BFV public-key encryption (section II-A of the paper).

    ``(c0, c1) = ([Delta*m + p0*u + e1]_q, [p1*u + e2]_q)``

    Parameters
    ----------
    context:
        The BFV context.
    public_key:
        The recipient's public key.
    noise_source_factory:
        Optional callable ``rng -> NoiseSource`` used to draw the error
        coefficients.  Defaults to :class:`ClippedNormalDistribution`
        bound to the given rng; the power-analysis harness substitutes
        the RISC-V device sampler here so traces and ciphertexts stay
        consistent.
    """

    def __init__(
        self,
        context: BfvContext,
        public_key: PublicKey,
        noise_source_factory: Optional[Callable[[np.random.Generator], NoiseSource]] = None,
    ) -> None:
        self.context = context
        self.public_key = public_key
        if noise_source_factory is None:
            dist = ClippedNormalDistribution(
                context.params.noise_standard_deviation,
                context.params.noise_max_deviation,
            )

            def default_factory(rng: np.random.Generator) -> NoiseSource:
                return lambda: dist(rng)

            noise_source_factory = default_factory
        self._noise_source_factory = noise_source_factory

    # ------------------------------------------------------------------
    def encrypt(self, plain: Plaintext, rng=None) -> Ciphertext:
        """Encrypt a plaintext; fresh randomness is drawn from ``rng``."""
        ct, _ = self.encrypt_with_artifacts(plain, rng)
        return ct

    def encrypt_with_artifacts(
        self, plain: Plaintext, rng=None
    ) -> "tuple[Ciphertext, EncryptionArtifacts]":
        """Encrypt and also return the fresh randomness (for evaluation)."""
        ctx = self.context
        if plain.n != ctx.n:
            raise ParameterError(
                f"plaintext has {plain.n} coefficients, context expects {ctx.n}"
            )
        if plain.t != ctx.t:
            raise ParameterError("plaintext modulus does not match context")
        rng = new_rng(rng)
        u = sample_ternary_coeffs(ctx, rng)
        dist = self._noise_source_factory(rng)
        e1_buffer, e1 = set_poly_coeffs_normal(ctx, dist)
        e2_buffer, e2 = set_poly_coeffs_normal(ctx, dist)
        ct = self._assemble(plain, u, e1_buffer, e2_buffer)
        return ct, EncryptionArtifacts(u=u, e1=e1, e2=e2)

    def encrypt_with_randomness(
        self,
        plain: Plaintext,
        u: Sequence[int],
        e1: Sequence[int],
        e2: Sequence[int],
    ) -> Ciphertext:
        """Encrypt with caller-provided randomness (deterministic; for tests
        and for validating recovered noise against an observed ciphertext)."""
        ctx = self.context
        e1_buffer = RingPoly.from_int_coeffs(ctx.basis, ctx.n, list(e1)).residues
        e2_buffer = RingPoly.from_int_coeffs(ctx.basis, ctx.n, list(e2)).residues
        return self._assemble(plain, list(u), e1_buffer, e2_buffer)

    # ------------------------------------------------------------------
    def _assemble(
        self,
        plain: Plaintext,
        u: List[int],
        e1_buffer: np.ndarray,
        e2_buffer: np.ndarray,
    ) -> Ciphertext:
        ctx = self.context
        u_poly = RingPoly.from_int_coeffs(ctx.basis, ctx.n, u)
        e1_poly = RingPoly(ctx.basis, ctx.n, e1_buffer)
        e2_poly = RingPoly(ctx.basis, ctx.n, e2_buffer)
        scaled_m = RingPoly.from_bigint_coeffs(
            ctx.basis, ctx.n, [ctx.delta * int(c) for c in plain.coeffs]
        )
        c0 = self.public_key.p0.multiply(u_poly, ctx.ntts) + e1_poly + scaled_m
        c1 = self.public_key.p1.multiply(u_poly, ctx.ntts) + e2_poly
        return Ciphertext([c0, c1])
