"""Plaintext container: an element of ``R_t`` with small integer coefficients."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ParameterError


class Plaintext:
    """A polynomial with coefficients reduced modulo the plain modulus t.

    Coefficients are stored in ``[0, t)``; :meth:`centered_coeffs` gives
    the signed representatives.
    """

    def __init__(self, coeffs: Sequence[int], plain_modulus: int) -> None:
        if plain_modulus < 2:
            raise ParameterError("plain_modulus must be >= 2")
        self.t = plain_modulus
        self.coeffs = np.array([int(c) % plain_modulus for c in coeffs], dtype=np.int64)

    @classmethod
    def zero(cls, n: int, plain_modulus: int) -> "Plaintext":
        """The zero plaintext of length n."""
        return cls([0] * n, plain_modulus)

    @classmethod
    def constant(cls, value: int, n: int, plain_modulus: int) -> "Plaintext":
        """Constant polynomial ``value``."""
        coeffs = [value] + [0] * (n - 1)
        return cls(coeffs, plain_modulus)

    @property
    def n(self) -> int:
        """Number of coefficients."""
        return len(self.coeffs)

    def centered_coeffs(self) -> List[int]:
        """Signed representatives in ``(-t/2, t/2]``."""
        half = self.t // 2
        return [int(c) - self.t if c > half else int(c) for c in self.coeffs]

    def is_zero(self) -> bool:
        """True when all coefficients vanish."""
        return not self.coeffs.any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Plaintext):
            return NotImplemented
        return self.t == other.t and np.array_equal(self.coeffs, other.coeffs)

    def __repr__(self) -> str:
        head = ", ".join(str(int(c)) for c in self.coeffs[:8])
        suffix = ", ..." if self.n > 8 else ""
        return f"Plaintext(t={self.t}, [{head}{suffix}])"
