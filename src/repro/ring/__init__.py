"""Polynomial-ring arithmetic over ``R_q = Z_q[x] / (x^n + 1)``.

This is the substrate under the BFV scheme: word-sized prime moduli
(:mod:`repro.ring.modulus`), NTT-friendly prime generation
(:mod:`repro.ring.primes`), the negacyclic number-theoretic transform
(:mod:`repro.ring.ntt`), residue-number-system composition
(:mod:`repro.ring.rns`) and the :class:`~repro.ring.poly.RingPoly`
polynomial container (:mod:`repro.ring.poly`).
"""

from repro.ring.modulus import Modulus
from repro.ring.ntt import (
    NttContext,
    clear_ntt_cache,
    configure_ntt_cache,
    get_ntt_context,
    ntt_cache_stats,
)
from repro.ring.poly import RingPoly
from repro.ring.primes import default_coeff_modulus_128, generate_ntt_primes, is_prime
from repro.ring.rns import RnsBasis

__all__ = [
    "Modulus",
    "NttContext",
    "clear_ntt_cache",
    "configure_ntt_cache",
    "get_ntt_context",
    "ntt_cache_stats",
    "RingPoly",
    "RnsBasis",
    "default_coeff_modulus_128",
    "generate_ntt_primes",
    "is_prime",
]
