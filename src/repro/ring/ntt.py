"""Negacyclic number-theoretic transform over a word-sized prime.

Implements the standard in-place iterative Cooley-Tukey (decimation in
time) forward transform and Gentleman-Sande inverse, merged with the
``psi``-power twist so that pointwise multiplication in the transform
domain realises multiplication modulo ``x^n + 1`` (negacyclic
convolution), exactly as in SEAL's ``SmallNTT``.

The butterflies are level-order vectorized: each stage reshapes the
residue vector into ``(groups, 2 * gap)`` and applies the whole stage's
butterflies as one broadcast against the per-stage twiddle column
(precomputed in :class:`NttContext`), instead of looping over groups in
Python.  With ``q < 2**31`` every intermediate product fits ``int64``
without overflow.  ``forward_reference`` / ``inverse_reference`` keep
the original per-group loops as correctness oracles.

Contexts are cached process-wide by :func:`get_ntt_context` keyed on
``(q, n)`` — the twiddle tables are immutable, so every caller (BFV
limbs, the plaintext encoder, exact CRT multiplies) shares one table
set per modulus/degree pair.  The cache is a bounded LRU
(:func:`configure_ntt_cache`, default 64 contexts) with hit/miss
counters (:func:`ntt_cache_stats`) so long parameter sweeps cannot
grow it without bound.

When a compiled compute backend is active (see :mod:`repro.backends`),
:meth:`~NttContext.forward` / :meth:`~NttContext.inverse` and the
pointwise product in :meth:`~NttContext.multiply` dispatch to its
kernels — bit-identical to the numpy path by the backend contract
(``backend.*.ntt`` oracles); otherwise the level-order vectorized
numpy butterflies below run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple, Union

import numpy as np

from repro.backends import get_kernel
from repro.errors import ParameterError
from repro.ring.modulus import Modulus
from repro.utils.bitops import bit_reverse


def _find_primitive_root(modulus: Modulus, order: int) -> int:
    """Find a primitive ``order``-th root of unity modulo ``q``.

    ``order`` must divide ``q - 1``.  The search is deterministic: generator
    candidates are tried in increasing order.
    """
    q = modulus.value
    if (q - 1) % order != 0:
        raise ParameterError(f"{order} does not divide q-1 for q={q}")
    cofactor = (q - 1) // order
    for candidate in range(2, q):
        root = pow(candidate, cofactor, q)
        # root has order dividing `order`; check it is exactly `order`
        # by verifying root^(order/2) != 1 (order is a power of two here).
        if pow(root, order // 2, q) != 1:
            return root
    raise ParameterError(f"no primitive root of order {order} mod {q}")


class NttContext:
    """Precomputed tables for the negacyclic NTT of length ``n`` mod ``q``.

    Parameters
    ----------
    modulus:
        Word-sized prime with ``q ≡ 1 (mod 2n)``.
    n:
        Transform length; a power of two.
    """

    def __init__(self, modulus: Modulus, n: int) -> None:
        if n <= 0 or n & (n - 1):
            raise ParameterError(f"n must be a power of two, got {n}")
        q = modulus.value
        if (q - 1) % (2 * n) != 0:
            raise ParameterError(f"q={q} is not NTT-friendly for n={n} (need q=1 mod 2n)")
        self.modulus = modulus
        self.n = n
        self._log_n = n.bit_length() - 1

        psi = _find_primitive_root(modulus, 2 * n)
        self.psi = psi
        self.psi_inv = modulus.inv(psi)
        self.n_inv = modulus.inv(n)

        # Powers of psi in bit-reversed order (forward), and of psi^-1
        # (inverse), per the classic Longa-Naehrig layout.
        powers = np.empty(n, dtype=np.int64)
        inv_powers = np.empty(n, dtype=np.int64)
        acc = 1
        acc_inv = 1
        plain = np.empty(n, dtype=np.int64)
        plain_inv = np.empty(n, dtype=np.int64)
        for i in range(n):
            plain[i] = acc
            plain_inv[i] = acc_inv
            acc = (acc * psi) % q
            acc_inv = (acc_inv * self.psi_inv) % q
        for i in range(n):
            j = bit_reverse(i, self._log_n)
            powers[i] = plain[j]
            inv_powers[i] = plain_inv[j]
        self._root_powers = powers
        self._inv_root_powers = inv_powers

        # Per-stage twiddle columns for the level-order vectorized
        # butterflies: forward stage s has 2^s groups using
        # powers[2^s : 2^(s+1)], the inverse stage with h groups uses
        # inv_powers[h : 2h].
        self._stage_twiddles = []
        m = 1
        while m < n:
            self._stage_twiddles.append(powers[m : 2 * m, None].copy())
            m *= 2
        self._inv_stage_twiddles = []
        h = n // 2
        while h >= 1:
            self._inv_stage_twiddles.append(inv_powers[h : 2 * h, None].copy())
            h //= 2

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Forward negacyclic NTT of an int64 residue vector.

        Input is in standard (coefficient) order, output in bit-reversed
        order; :meth:`inverse` consumes that layout, and pointwise products
        commute with the permutation, so callers never need to reorder.
        """
        q = self.modulus.value
        a = np.array(coeffs, dtype=np.int64)
        if a.shape != (self.n,):
            raise ParameterError(f"expected shape ({self.n},), got {a.shape}")
        kernel = get_kernel("ntt_forward")
        if kernel is not None:
            return kernel(self, a)
        t = self.n
        for w in self._stage_twiddles:
            t //= 2
            view = a.reshape(w.shape[0], 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            prod = (hi * w) % q
            hi_new = (lo - prod) % q
            view[:, :t] = (lo + prod) % q
            view[:, t:] = hi_new
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse negacyclic NTT; returns coefficients in standard order."""
        q = self.modulus.value
        a = np.array(values, dtype=np.int64)
        if a.shape != (self.n,):
            raise ParameterError(f"expected shape ({self.n},), got {a.shape}")
        kernel = get_kernel("ntt_inverse")
        if kernel is not None:
            return kernel(self, a)
        t = 1
        for w in self._inv_stage_twiddles:
            view = a.reshape(w.shape[0], 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            hi_new = ((lo - hi) * w) % q
            view[:, :t] = (lo + hi) % q
            view[:, t:] = hi_new
            t *= 2
        a = (a * self.n_inv) % q
        return a

    # ------------------------------------------------------------------
    def forward_reference(self, coeffs: np.ndarray) -> np.ndarray:
        """The original per-group forward loop (correctness oracle)."""
        q = self.modulus.value
        a = np.array(coeffs, dtype=np.int64)
        if a.shape != (self.n,):
            raise ParameterError(f"expected shape ({self.n},), got {a.shape}")
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            for i in range(m):
                w = int(self._root_powers[m + i])
                j1 = 2 * i * t
                lo = a[j1 : j1 + t]
                hi = a[j1 + t : j1 + 2 * t]
                prod = (hi * w) % q
                hi_new = (lo - prod) % q
                lo_new = (lo + prod) % q
                a[j1 : j1 + t] = lo_new
                a[j1 + t : j1 + 2 * t] = hi_new
            m *= 2
        return a

    def inverse_reference(self, values: np.ndarray) -> np.ndarray:
        """The original per-group inverse loop (correctness oracle)."""
        q = self.modulus.value
        a = np.array(values, dtype=np.int64)
        if a.shape != (self.n,):
            raise ParameterError(f"expected shape ({self.n},), got {a.shape}")
        t = 1
        m = self.n
        while m > 1:
            j1 = 0
            h = m // 2
            for i in range(h):
                w = int(self._inv_root_powers[h + i])
                lo = a[j1 : j1 + t]
                hi = a[j1 + t : j1 + 2 * t]
                lo_new = (lo + hi) % q
                hi_new = ((lo - hi) * w) % q
                a[j1 : j1 + t] = lo_new
                a[j1 + t : j1 + 2 * t] = hi_new
                j1 += 2 * t
            t *= 2
            m = h
        a = (a * self.n_inv) % q
        return a

    def multiply(self, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """Negacyclic product of two coefficient vectors mod ``q``."""
        fa = self.forward(lhs)
        fb = self.forward(rhs)
        kernel = get_kernel("pointwise_mulmod")
        if kernel is not None:
            return self.inverse(kernel(fa, fb, self.modulus.value))
        return self.inverse((fa * fb) % self.modulus.value)

    def __repr__(self) -> str:
        return f"NttContext(q={self.modulus.value}, n={self.n})"


#: Process-wide bounded LRU context cache; tables are immutable so
#: sharing is safe.  64 contexts (~a few MB at n=4096) covers every
#: realistic campaign matrix while keeping multi-thousand-pair
#: parameter sweeps from pinning memory for the life of the process.
_CONTEXT_CACHE: "OrderedDict[Tuple[int, int], NttContext]" = OrderedDict()
_CACHE_MAX = 64
_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}


def configure_ntt_cache(max_size: int) -> None:
    """Set the LRU capacity (>= 1), evicting down to it immediately."""
    global _CACHE_MAX
    if max_size < 1:
        raise ParameterError(f"NTT cache size must be >= 1, got {max_size}")
    _CACHE_MAX = int(max_size)
    while len(_CONTEXT_CACHE) > _CACHE_MAX:
        _CONTEXT_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1


def ntt_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters plus current size (benchmarks)."""
    stats = dict(_CACHE_STATS)
    stats["size"] = len(_CONTEXT_CACHE)
    stats["max_size"] = _CACHE_MAX
    return stats


def clear_ntt_cache() -> None:
    """Drop every cached context and zero the counters (tests)."""
    _CONTEXT_CACHE.clear()
    for key in _CACHE_STATS:
        _CACHE_STATS[key] = 0


def get_ntt_context(modulus: Union[Modulus, int], n: int) -> NttContext:
    """The shared :class:`NttContext` for ``(q, n)``, built on first use.

    Twiddle-table construction is O(n) Python work per modulus/degree
    pair; the BFV parameter sets, the encoder and the exact CRT
    multiplier all hit the same pairs repeatedly, so contexts are
    cached LRU for the life of the process (bounded — see
    :func:`configure_ntt_cache`).
    """
    q = modulus.value if isinstance(modulus, Modulus) else int(modulus)
    context = _CONTEXT_CACHE.get((q, n))
    if context is not None:
        _CONTEXT_CACHE.move_to_end((q, n))
        _CACHE_STATS["hits"] += 1
        return context
    _CACHE_STATS["misses"] += 1
    context = NttContext(modulus if isinstance(modulus, Modulus) else Modulus(q), n)
    _CONTEXT_CACHE[(q, n)] = context
    while len(_CONTEXT_CACHE) > _CACHE_MAX:
        _CONTEXT_CACHE.popitem(last=False)
        _CACHE_STATS["evictions"] += 1
    return context
