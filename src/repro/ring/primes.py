"""Primality testing and NTT-friendly prime generation.

The negacyclic NTT over ``Z_q[x]/(x^n + 1)`` needs a primitive 2n-th
root of unity modulo q, which exists exactly when ``q ≡ 1 (mod 2n)``.
SEAL ships hard-coded default coefficient-modulus chains per polynomial
degree; we pin the paper's exact n=1024 modulus (q = 132120577, the
smallest SEAL-128 parameter set attacked in Table III) and generate
NTT-friendly word-sized primes for the larger degrees.
"""

from __future__ import annotations

from typing import List

from repro.errors import ParameterError
from repro.ring.modulus import MODULUS_BOUND, Modulus

#: Deterministic Miller-Rabin witnesses, sufficient for all n < 3.3e24.
_MILLER_RABIN_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

#: Total coefficient-modulus bit counts of SEAL's 128-bit security tables
#: (SEAL v3.2 ``coeff_modulus_128``), per polynomial degree.
SEAL_128_TOTAL_BITS = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}

#: The exact modulus used by the paper for the smallest SEAL-128 set.
PAPER_Q_1024 = 132120577


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit integers.

    >>> is_prime(132120577)
    True
    >>> is_prime(1)
    False
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_ntt_primes(bit_size: int, count: int, poly_degree: int) -> List[Modulus]:
    """Generate ``count`` distinct primes of ``bit_size`` bits, ``≡ 1 mod 2n``.

    Primes are searched downward from ``2**bit_size`` so results are
    deterministic.  Raises :class:`ParameterError` when the request cannot
    be satisfied within the word-size bound.
    """
    if bit_size < 2 or (1 << bit_size) > MODULUS_BOUND:
        raise ParameterError(f"bit_size must be in [2, 31], got {bit_size}")
    if poly_degree <= 0 or poly_degree & (poly_degree - 1):
        raise ParameterError(f"poly_degree must be a power of two, got {poly_degree}")
    step = 2 * poly_degree
    # Largest candidate of the requested size that is 1 mod 2n.
    candidate = ((1 << bit_size) - 1) // step * step + 1
    found: List[Modulus] = []
    while len(found) < count and candidate > (1 << (bit_size - 1)):
        if is_prime(candidate):
            found.append(Modulus(candidate))
        candidate -= step
    if len(found) < count:
        raise ParameterError(
            f"could not find {count} NTT primes of {bit_size} bits for n={poly_degree}"
        )
    return found


def _partition_bits(total_bits: int) -> List[int]:
    """Split a total modulus bit budget into word-sized limb bit counts.

    Limbs are kept between 20 and 30 bits; the split is deterministic and
    sums exactly to ``total_bits``.
    """
    if total_bits <= 30:
        return [total_bits]
    count = (total_bits + 29) // 30
    base = total_bits // count
    extra = total_bits - base * count
    return [base + 1] * extra + [base] * (count - extra)


def default_coeff_modulus_128(poly_degree: int) -> List[Modulus]:
    """Return the default 128-bit-security coefficient modulus chain.

    For n=1024 this is exactly the paper's ``q = 132120577``.  For larger
    degrees, NTT-friendly word-sized primes are generated so that the total
    bit count matches SEAL v3.2's ``coeff_modulus_128`` table, preserving
    the security-vs-noise budget trade-off of the original library.
    """
    if poly_degree not in SEAL_128_TOTAL_BITS:
        raise ParameterError(
            f"no default 128-bit parameters for n={poly_degree}; "
            f"supported: {sorted(SEAL_128_TOTAL_BITS)}"
        )
    if poly_degree == 1024:
        return [Modulus(PAPER_Q_1024)]
    limbs: List[Modulus] = []
    bits = _partition_bits(SEAL_128_TOTAL_BITS[poly_degree])
    for bit_size in sorted(set(bits)):
        needed = bits.count(bit_size)
        limbs.extend(generate_ntt_primes(bit_size, needed, poly_degree))
    return limbs
