"""Ring polynomial container over an RNS basis.

A :class:`RingPoly` stores one element of ``R_q = Z_q[x]/(x^n + 1)`` as a
``(k, n)`` ``int64`` matrix of residues (one row per RNS limb), exactly
like SEAL's strided ``poly`` buffers (``poly[i + j * coeff_count]``).
Arithmetic is vectorised; multiplication goes through per-limb negacyclic
NTTs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.ring.ntt import NttContext
from repro.ring.rns import RnsBasis


class RingPoly:
    """An element of ``R_q`` in RNS (limb-wise) representation.

    Instances are immutable by convention: arithmetic returns new objects.
    """

    def __init__(self, basis: RnsBasis, n: int, residues: np.ndarray) -> None:
        residues = np.asarray(residues, dtype=np.int64)
        if residues.shape != (basis.size, n):
            raise ParameterError(
                f"residue matrix must be ({basis.size}, {n}), got {residues.shape}"
            )
        self.basis = basis
        self.n = n
        self.residues = residues

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, basis: RnsBasis, n: int) -> "RingPoly":
        """The zero polynomial."""
        return cls(basis, n, np.zeros((basis.size, n), dtype=np.int64))

    @classmethod
    def from_int_coeffs(
        cls, basis: RnsBasis, n: int, coeffs: Sequence[int]
    ) -> "RingPoly":
        """Build from signed integer coefficients (reduced per limb).

        This is how small polynomials (secrets, errors, plaintexts) enter
        the ring: a coefficient ``c < 0`` becomes ``q_i - |c|`` in limb i,
        matching lines 20-23 of the paper's Fig. 2.
        """
        coeffs = list(coeffs)
        if len(coeffs) != n:
            raise ParameterError(f"expected {n} coefficients, got {len(coeffs)}")
        rows = []
        for m in basis.moduli:
            rows.append([c % m.value for c in coeffs])
        return cls(basis, n, np.array(rows, dtype=np.int64))

    @classmethod
    def from_bigint_coeffs(
        cls, basis: RnsBasis, n: int, coeffs: Sequence[int]
    ) -> "RingPoly":
        """Build from arbitrary-precision coefficients modulo the product."""
        return cls(basis, n, basis.decompose_array(list(coeffs)))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_bigint_coeffs(self) -> List[int]:
        """CRT-compose into big-integer coefficients in ``[0, Q)``."""
        return self.basis.compose_array(self.residues)

    def to_centered_coeffs(self) -> List[int]:
        """CRT-compose into centered coefficients in ``(-Q/2, Q/2]``."""
        return [self.basis.centered(c) for c in self.to_bigint_coeffs()]

    def copy(self) -> "RingPoly":
        """Deep copy."""
        return RingPoly(self.basis, self.n, self.residues.copy())

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "RingPoly") -> None:
        if self.basis is not other.basis and [m.value for m in self.basis.moduli] != [
            m.value for m in other.basis.moduli
        ]:
            raise ParameterError("polynomials live in different rings")
        if self.n != other.n:
            raise ParameterError("polynomials have different degrees")

    def __add__(self, other: "RingPoly") -> "RingPoly":
        self._check_compatible(other)
        out = np.empty_like(self.residues)
        for i, m in enumerate(self.basis.moduli):
            out[i] = (self.residues[i] + other.residues[i]) % m.value
        return RingPoly(self.basis, self.n, out)

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        self._check_compatible(other)
        out = np.empty_like(self.residues)
        for i, m in enumerate(self.basis.moduli):
            out[i] = (self.residues[i] - other.residues[i]) % m.value
        return RingPoly(self.basis, self.n, out)

    def __neg__(self) -> "RingPoly":
        out = np.empty_like(self.residues)
        for i, m in enumerate(self.basis.moduli):
            out[i] = (-self.residues[i]) % m.value
        return RingPoly(self.basis, self.n, out)

    def multiply(self, other: "RingPoly", ntts: Sequence[NttContext]) -> "RingPoly":
        """Negacyclic product using per-limb NTT contexts."""
        self._check_compatible(other)
        if len(ntts) != self.basis.size:
            raise ParameterError("need one NTT context per limb")
        out = np.empty_like(self.residues)
        for i, ntt in enumerate(ntts):
            out[i] = ntt.multiply(self.residues[i], other.residues[i])
        return RingPoly(self.basis, self.n, out)

    def scalar_mul(self, scalar: int) -> "RingPoly":
        """Multiply every coefficient by an integer scalar."""
        out = np.empty_like(self.residues)
        for i, m in enumerate(self.basis.moduli):
            out[i] = (self.residues[i] * (scalar % m.value)) % m.value
        return RingPoly(self.basis, self.n, out)

    def scalar_mul_bigint(self, scalar: int) -> "RingPoly":
        """Multiply by an arbitrary-precision scalar (reduced per limb)."""
        return self.scalar_mul_per_limb([scalar % m.value for m in self.basis.moduli])

    def scalar_mul_per_limb(self, scalars: Iterable[int]) -> "RingPoly":
        """Multiply limb ``i`` by ``scalars[i]`` (already reduced)."""
        out = np.empty_like(self.residues)
        for i, (m, s) in enumerate(zip(self.basis.moduli, scalars)):
            out[i] = (self.residues[i] * (int(s) % m.value)) % m.value
        return RingPoly(self.basis, self.n, out)

    # ------------------------------------------------------------------
    # Comparisons / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RingPoly):
            return NotImplemented
        return (
            self.n == other.n
            and [m.value for m in self.basis.moduli]
            == [m.value for m in other.basis.moduli]
            and bool(np.array_equal(self.residues, other.residues))
        )

    def __hash__(self) -> int:  # pragma: no cover - polys are not dict keys
        raise TypeError("RingPoly is not hashable")

    def is_zero(self) -> bool:
        """True when every residue is zero."""
        return not self.residues.any()

    def __repr__(self) -> str:
        return f"RingPoly(n={self.n}, limbs={self.basis.size})"
