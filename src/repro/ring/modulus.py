"""Word-sized modulus type, the analogue of SEAL's ``SmallModulus``.

All residue arithmetic in the reproduction is done against ``Modulus``
instances.  Values are kept below 2**31 so that a product of two
residues fits in a signed 64-bit word, which lets the NTT and polynomial
arithmetic run on vectorised numpy ``int64`` arrays without
multi-precision fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError

#: Upper bound (exclusive) on modulus values; keeps a*b inside int64.
MODULUS_BOUND = 1 << 31


@dataclass(frozen=True)
class Modulus:
    """An odd prime modulus below 2**31.

    Parameters
    ----------
    value:
        The modulus value.  Must be a prime in ``[3, 2**31)``; primality
        is the caller's responsibility (use :func:`repro.ring.primes.is_prime`)
        but basic sanity is enforced here.
    """

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int):
            raise ParameterError(f"modulus value must be int, got {type(self.value)}")
        if not (3 <= self.value < MODULUS_BOUND):
            raise ParameterError(
                f"modulus must be in [3, 2**31), got {self.value}"
            )
        if self.value % 2 == 0:
            raise ParameterError(f"modulus must be odd, got {self.value}")

    @property
    def bit_count(self) -> int:
        """Bit length of the modulus value."""
        return self.value.bit_length()

    def reduce(self, x: int) -> int:
        """Reduce an arbitrary integer into ``[0, q)``."""
        return x % self.value

    def reduce_array(self, values: np.ndarray) -> np.ndarray:
        """Reduce an int64 numpy array into ``[0, q)`` elementwise."""
        return np.mod(np.asarray(values, dtype=np.int64), self.value)

    def add(self, a: int, b: int) -> int:
        """Modular addition of two residues."""
        s = a + b
        return s - self.value if s >= self.value else s

    def sub(self, a: int, b: int) -> int:
        """Modular subtraction of two residues."""
        d = a - b
        return d + self.value if d < 0 else d

    def mul(self, a: int, b: int) -> int:
        """Modular multiplication of two residues."""
        return (a * b) % self.value

    def pow(self, base: int, exponent: int) -> int:
        """Modular exponentiation."""
        return pow(base, exponent, self.value)

    def inv(self, a: int) -> int:
        """Modular inverse of ``a``; raises if not invertible."""
        a = a % self.value
        if a == 0:
            raise ParameterError(f"0 has no inverse modulo {self.value}")
        return pow(a, -1, self.value)

    def neg(self, a: int) -> int:
        """Modular negation of a residue."""
        return 0 if a == 0 else self.value - a

    def centered(self, a: int) -> int:
        """Map a residue to its centered representative in ``(-q/2, q/2]``."""
        a = a % self.value
        if a > self.value // 2:
            return a - self.value
        return a

    def centered_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`centered` for an int64 array of residues."""
        values = np.asarray(values, dtype=np.int64)
        half = self.value // 2
        return np.where(values > half, values - self.value, values)

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Modulus({self.value})"
