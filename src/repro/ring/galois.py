"""Galois automorphisms of ``R_q = Z_q[x]/(x^n + 1)``.

The maps ``tau_g : a(x) -> a(x^g)`` for odd ``g`` permute (and
sign-flip) coefficients; they are ring automorphisms and the engine
behind SEAL's batched slot rotations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.ring.poly import RingPoly

_map_cache: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}


def galois_index_map(n: int, g: int) -> Tuple[np.ndarray, np.ndarray]:
    """Destination index and sign for ``x^i -> x^(i*g) mod (x^n + 1)``.

    Returns ``(targets, signs)``: coefficient i of the input lands at
    ``targets[i]`` with sign ``signs[i]``.
    """
    if n <= 0 or n & (n - 1):
        raise ParameterError(f"n must be a power of two, got {n}")
    if g % 2 == 0 or not (0 < g < 2 * n):
        raise ParameterError(f"Galois element must be odd in (0, 2n), got {g}")
    key = (n, g)
    if key not in _map_cache:
        targets = np.empty(n, dtype=np.int64)
        signs = np.empty(n, dtype=np.int64)
        for i in range(n):
            j = (i * g) % (2 * n)
            if j < n:
                targets[i] = j
                signs[i] = 1
            else:
                targets[i] = j - n
                signs[i] = -1
        _map_cache[key] = (targets, signs)
    return _map_cache[key]


def apply_galois(poly: RingPoly, g: int) -> RingPoly:
    """Apply ``tau_g`` to a ring element.

    >>> # tau_3 on x gives x^3
    """
    targets, signs = galois_index_map(poly.n, g)
    out = np.empty_like(poly.residues)
    for limb, modulus in enumerate(poly.basis.moduli):
        values = poly.residues[limb]
        transformed = np.zeros(poly.n, dtype=np.int64)
        transformed[targets] = np.where(signs > 0, values, (-values) % modulus.value)
        out[limb] = transformed
    return RingPoly(poly.basis, poly.n, out)


def rotation_group_generator(n: int) -> int:
    """The generator (3) of the slot-rotation subgroup of ``Z_2n^*``."""
    return 3


def galois_elements_for_rotations(n: int, steps: List[int]) -> List[int]:
    """Galois elements realising the given slot-rotation step counts."""
    elements = []
    for step in steps:
        g = pow(rotation_group_generator(n), step % (n // 2), 2 * n)
        elements.append(g)
    return elements
