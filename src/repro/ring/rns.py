"""Residue number system (RNS) over a chain of word-sized primes.

BFV's ciphertext modulus ``q = q_1 * ... * q_k`` is represented limb-wise;
this module provides exact CRT composition back to Python integers, which
the decryptor needs for the ``round(t/q * .)`` scaling step, and
decomposition of big integers into limbs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.ring.modulus import Modulus


class RnsBasis:
    """A CRT basis ``(q_1, ..., q_k)`` of pairwise-distinct primes."""

    def __init__(self, moduli: Sequence[Modulus]) -> None:
        if not moduli:
            raise ParameterError("RNS basis needs at least one modulus")
        values = [m.value for m in moduli]
        if len(set(values)) != len(values):
            raise ParameterError("RNS basis moduli must be distinct")
        self.moduli: List[Modulus] = list(moduli)
        self.product: int = 1
        for value in values:
            self.product *= value
        # Punctured products Q/q_i and their inverses mod q_i, for CRT.
        self._punctured = [self.product // m.value for m in self.moduli]
        self._punctured_inv = [
            m.inv(punc % m.value) for m, punc in zip(self.moduli, self._punctured)
        ]

    @property
    def size(self) -> int:
        """Number of limbs in the basis."""
        return len(self.moduli)

    @property
    def total_bits(self) -> int:
        """Bit length of the full modulus product."""
        return self.product.bit_length()

    def decompose_int(self, value: int) -> List[int]:
        """Residues of a (possibly negative) integer in each limb."""
        return [value % m.value for m in self.moduli]

    def decompose_array(self, values: Sequence[int]) -> np.ndarray:
        """Decompose an iterable of big integers into a ``(k, n)`` array."""
        values = list(values)
        out = np.empty((self.size, len(values)), dtype=np.int64)
        for i, m in enumerate(self.moduli):
            out[i] = [v % m.value for v in values]
        return out

    def compose_int(self, residues: Sequence[int]) -> int:
        """Exact CRT composition of one residue tuple into ``[0, Q)``."""
        if len(residues) != self.size:
            raise ParameterError(
                f"expected {self.size} residues, got {len(residues)}"
            )
        acc = 0
        for res, m, punc, punc_inv in zip(
            residues, self.moduli, self._punctured, self._punctured_inv
        ):
            acc += punc * ((int(res) * punc_inv) % m.value)
        return acc % self.product

    def compose_array(self, residues: np.ndarray) -> List[int]:
        """CRT-compose a ``(k, n)`` residue matrix into n big integers."""
        residues = np.asarray(residues)
        if residues.shape[0] != self.size:
            raise ParameterError(
                f"expected {self.size} limbs, got shape {residues.shape}"
            )
        n = residues.shape[1]
        out: List[int] = []
        for j in range(n):
            out.append(self.compose_int([int(residues[i, j]) for i in range(self.size)]))
        return out

    def centered(self, value: int) -> int:
        """Centered representative of a residue of the full product."""
        value %= self.product
        if value > self.product // 2:
            value -= self.product
        return value

    def __repr__(self) -> str:
        return f"RnsBasis({[m.value for m in self.moduli]})"
