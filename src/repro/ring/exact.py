"""Exact (unreduced) negacyclic polynomial multiplication over Z.

BFV's homomorphic multiplication scales tensor products by ``t/q``
*before* reduction, so the cross products ``c_i * d_j`` must be computed
exactly over the integers.  We do this with a CRT of word-sized NTT
primes: enough limbs are drawn so the true coefficients (bounded by
``n * max|a| * max|b|``) are recovered unambiguously from their residues.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.ring.ntt import NttContext, get_ntt_context
from repro.ring.primes import generate_ntt_primes
from repro.ring.rns import RnsBasis

_context_cache: Dict[Tuple[int, int], Tuple[RnsBasis, List[NttContext]]] = {}


def _exact_basis(n: int, bound_bits: int) -> Tuple[RnsBasis, List[NttContext]]:
    """A cached CRT basis with > bound_bits + 1 total bits for degree n."""
    limb_bits = 28
    count = (bound_bits + 2 + limb_bits - 1) // limb_bits
    key = (n, count)
    if key not in _context_cache:
        moduli = generate_ntt_primes(limb_bits, count, n)
        basis = RnsBasis(moduli)
        ntts = [get_ntt_context(m, n) for m in moduli]
        _context_cache[key] = (basis, ntts)
    return _context_cache[key]


def exact_negacyclic_multiply(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Product of two integer coefficient vectors modulo ``x^n + 1`` over Z.

    Inputs may be signed and arbitrarily large; the result is exact
    (signed integers, no modular reduction).

    >>> exact_negacyclic_multiply([0, 1], [0, 1])  # x * x = x^2 = -1 for n=2
    [-1, 0]
    """
    n = len(a)
    if len(b) != n:
        raise ValueError("operands must have equal length")
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    max_a = max((abs(int(x)) for x in a), default=0)
    max_b = max((abs(int(x)) for x in b), default=0)
    if max_a == 0 or max_b == 0:
        return [0] * n
    bound = n * max_a * max_b
    basis, ntts = _exact_basis(n, bound.bit_length())
    result_residues = []
    for m, ntt in zip(basis.moduli, ntts):
        ra = [int(x) % m.value for x in a]
        rb = [int(x) % m.value for x in b]
        result_residues.append(ntt.multiply(ra, rb))
    out: List[int] = []
    for j in range(n):
        value = basis.compose_int([int(r[j]) for r in result_residues])
        out.append(basis.centered(value))
    return out
