"""Cross-engine conformance harness built on the RVFI-style retire log.

All four RV32IM engines (the scalar reference interpreter, the
threaded-code engine, the compiled-C engine and the lane-vectorized
engine) emit the same
16-column retire record per committed instruction (see
:mod:`repro.riscv.retire`).  This module is the single differential
oracle over those records:

- :func:`run_scalar_engine` / :func:`run_lane_engine_case` execute one
  case on a named engine and capture the complete comparable state
  (registers, pc, counters, error string, event columns, retire rows)
  as an :class:`EngineRun`;
- :func:`first_retire_divergence` reports the *first* retire record
  where two runs disagree — retire order, disassembled instruction and
  the exact fields that differ — which is the diagnostic the fuzz
  driver and the Hypothesis suites print on failure;
- :func:`compare_runs` / :func:`assert_engines_match` extend that to
  the full machine state (the retire log dominates, but final
  registers, counters and error strings are cross-checked too);
- :func:`random_adversarial_program` generates the hostile cases the
  mostly-well-behaved :func:`repro.verify.oracles.random_program`
  sampler underweights: tight self-loops, guaranteed mid-block memory
  faults, self-modifying code, budget exhaustion inside blocks and the
  div/rem corner semantics.

The per-engine entry points deliberately mirror the ad-hoc ``_run_pair``
/ ``_solo`` helpers that used to live in ``tests/riscv/`` so those
suites can share one harness instead of three private copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.riscv.retire import RETIRE_FIELDS

#: Engines runnable through :func:`run_scalar_engine`.
SCALAR_ENGINES = ("reference", "threaded", "compiled")

#: Every engine the conformance sweeps know about.
ALL_ENGINES = ("reference", "threaded", "compiled", "lanes")

#: Every comparable engine pairing the ``cpu.retire_log`` oracle sweeps.
ENGINE_PAIRS = (
    ("reference", "threaded"),
    ("reference", "compiled"),
    ("threaded", "compiled"),
    ("reference", "lanes"),
    ("threaded", "lanes"),
    ("compiled", "lanes"),
)

#: Optional engine subset applied by :func:`active_engines`
#: (``python -m repro.verify fuzz --engines``).  None = no filter.
_ENGINE_FILTER: Optional[tuple] = None


def set_engine_filter(names: Optional[Sequence[str]]) -> None:
    """Restrict the fuzz sweeps to a subset of engines (None resets).

    Raises :class:`ValueError` on unknown names or a subset with fewer
    than two engines (no pair left to compare).
    """
    global _ENGINE_FILTER
    if names is None:
        _ENGINE_FILTER = None
        return
    subset = tuple(dict.fromkeys(names))
    unknown = [name for name in subset if name not in ALL_ENGINES]
    if unknown:
        raise ValueError(
            f"unknown engine(s) {', '.join(unknown)} (choose from "
            f"{', '.join(ALL_ENGINES)})"
        )
    if len(subset) < 2:
        raise ValueError(
            "engine filter needs at least two engines to form a pair"
        )
    _ENGINE_FILTER = subset


def active_engines() -> tuple:
    """The engines the sweeps actually run here and now.

    Applies the :func:`set_engine_filter` subset, then drops
    ``compiled`` when its capability probe fails (no C toolchain): the
    fuzz must stay green on machines where the engine legitimately
    degrades to threaded.
    """
    engines = _ENGINE_FILTER if _ENGINE_FILTER is not None else ALL_ENGINES
    if "compiled" in engines:
        from repro.riscv.compiled import compiled_available

        if not compiled_available():
            engines = tuple(e for e in engines if e != "compiled")
    return engines


def active_engine_pairs() -> tuple:
    """The :data:`ENGINE_PAIRS` subset over :func:`active_engines`."""
    engines = set(active_engines())
    return tuple(
        pair for pair in ENGINE_PAIRS
        if pair[0] in engines and pair[1] in engines
    )


@dataclass
class EngineRun:
    """Complete comparable state of one engine execution.

    ``cpu`` keeps the live engine object for callers that need to poke
    at internals (the unit suites do); it is excluded from equality and
    from :func:`compare_runs`.
    """

    engine: str
    registers: List[int]
    pc: int
    cycle_count: int
    instruction_count: int
    halted: bool
    error: Optional[str]
    events: np.ndarray  # (8, n) event columns
    retires: np.ndarray  # (m, 16) retire rows
    cpu: Any = field(default=None, compare=False, repr=False)


def run_scalar_engine(
    words: Sequence[int],
    registers: Optional[Dict[int, int]] = None,
    *,
    engine: str = "threaded",
    max_instructions: int = 10_000,
    memory_size: int = 1 << 16,
    record_events: bool = True,
    record_retires: bool = True,
    setup: Optional[Callable[[Any, Any], None]] = None,
) -> EngineRun:
    """Run ``words`` on one scalar engine and capture its full state.

    ``setup(cpu, memory)`` runs after the program and registers are
    loaded, for cases that need extra memory contents.  Guest faults
    are captured as ``error`` (never raised); only harness misuse
    raises.
    """
    from repro.riscv.cpu import Cpu
    from repro.riscv.memory import Memory

    if engine not in SCALAR_ENGINES:
        raise SimulationError(
            f"unknown scalar engine {engine!r} (choose from "
            f"{', '.join(SCALAR_ENGINES)})"
        )
    memory = Memory(size_bytes=memory_size)
    cpu = Cpu(
        memory,
        record_events=record_events,
        record_retires=record_retires and record_events,
    )
    cpu.load_program(list(words), 0)
    for index, value in (registers or {}).items():
        cpu.write_register(index, value)
    if setup is not None:
        setup(cpu, memory)
    error: Optional[str] = None
    try:
        if engine == "threaded":
            cpu.run(max_instructions=max_instructions)
        elif engine == "compiled":
            from repro.riscv.compiled import run_compiled

            run_compiled(cpu, max_instructions=max_instructions)
        else:
            cpu.run_reference(max_instructions=max_instructions)
    except SimulationError as exc:
        error = str(exc)
    return EngineRun(
        engine=engine,
        registers=list(cpu.registers),
        pc=cpu.pc,
        cycle_count=cpu.cycle_count,
        instruction_count=cpu.instruction_count,
        halted=cpu.halted,
        error=error,
        events=cpu.events.columns().copy(),
        retires=cpu.retires.rows().copy(),
        cpu=cpu,
    )


def run_lane_engine_case(
    words: Sequence[int],
    register_files: Sequence[Dict[int, int]],
    *,
    max_instructions: int = 10_000,
    memory_size: int = 1 << 16,
    record_retires: bool = True,
) -> List[EngineRun]:
    """Run ``words`` across one lane per register file; one run per lane.

    Per-lane guest faults surface as each run's ``error`` string, never
    as an exception — matching :func:`run_scalar_engine` so lane runs
    compare directly against scalar runs of the same register file.
    """
    from repro.riscv.lanes import LaneEngine

    code = np.asarray(list(words), dtype=np.uint32)
    image = np.zeros(memory_size, dtype=np.uint8)
    image[: 4 * code.size] = code.view(np.uint8)
    engine = LaneEngine(
        image,
        lanes=len(register_files),
        record_events=True,
        record_retires=record_retires,
    )
    for index in range(1, 32):
        values = [file.get(index, 0) for file in register_files]
        if any(values):
            engine.write_register(index, values)
    engine.run(max_instructions=max_instructions)
    runs = []
    for lane in range(len(register_files)):
        runs.append(
            EngineRun(
                engine="lanes",
                registers=engine.lane_registers(lane),
                pc=int(engine.pcs[lane]),
                cycle_count=int(engine.cycle_counts[lane]),
                instruction_count=int(engine.instruction_counts[lane]),
                halted=bool(engine.halted[lane]),
                error=engine.errors[lane],
                events=engine.events.lane_rows(lane).T.copy(),
                retires=(
                    engine.retire_rows(lane).copy()
                    if record_retires
                    else np.zeros((0, 16), dtype=np.int64)
                ),
                cpu=engine,
            )
        )
    return runs


# ----------------------------------------------------------------------
# Structural divergence reporting
# ----------------------------------------------------------------------
def _disassemble_word(word: int, address: int) -> str:
    from repro.riscv.disasm import format_instruction
    from repro.riscv.isa import decode

    try:
        return format_instruction(decode(word), address)
    except SimulationError:
        return f".word {word:#010x} (undecodable)"


def _describe_retire(row: np.ndarray) -> str:
    pc = int(row[1])
    if int(row[10]):
        return f"order {int(row[0])}: TRAP at pc={pc:#x}"
    return (
        f"order {int(row[0])}: pc={pc:#x} "
        f"{_disassemble_word(int(row[3]), pc)}"
    )


def first_retire_divergence(a: EngineRun, b: EngineRun) -> List[str]:
    """Describe the first retire record where two runs disagree.

    Empty list when the retire streams are identical.  Otherwise the
    report pins the retire order, the instruction as both engines saw
    it, and every RVFI field that differs — in hex, ``field:
    a-value != b-value`` — so a fuzz failure reads like a trace diff,
    not a numpy dump.
    """
    ra, rb = a.retires, b.retires
    common = min(ra.shape[0], rb.shape[0])
    for i in range(common):
        if np.array_equal(ra[i], rb[i]):
            continue
        diffs = [
            f"    {name}: {int(ra[i, j]):#x} ({a.engine}) != "
            f"{int(rb[i, j]):#x} ({b.engine})"
            for j, name in enumerate(RETIRE_FIELDS)
            if ra[i, j] != rb[i, j]
        ]
        return [
            f"retire streams diverge at order {i}",
            f"  {a.engine}: {_describe_retire(ra[i])}",
            f"  {b.engine}: {_describe_retire(rb[i])}",
            *diffs,
        ]
    if ra.shape[0] != rb.shape[0]:
        longer, run = (ra, a) if ra.shape[0] > rb.shape[0] else (rb, b)
        return [
            f"retire counts diverge: {ra.shape[0]} ({a.engine}) != "
            f"{rb.shape[0]} ({b.engine})",
            f"  first extra on {run.engine}: "
            f"{_describe_retire(longer[common])}",
        ]
    return []


def compare_runs(a: EngineRun, b: EngineRun) -> List[str]:
    """All mismatches between two runs; retire divergence reported first."""
    mismatches = first_retire_divergence(a, b)
    for name in ("pc", "cycle_count", "instruction_count", "halted", "error"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            mismatches.append(
                f"{name}: {va!r} ({a.engine}) != {vb!r} ({b.engine})"
            )
    if a.registers != b.registers:
        bad = [
            f"x{i}={va:#x}/{vb:#x}"
            for i, (va, vb) in enumerate(zip(a.registers, b.registers))
            if va != vb
        ]
        mismatches.append(
            f"registers ({a.engine}/{b.engine}): {', '.join(bad)}"
        )
    if not np.array_equal(a.events, b.events):
        mismatches.append(
            f"event columns differ: shapes {a.events.shape} ({a.engine}) "
            f"vs {b.events.shape} ({b.engine})"
        )
    return mismatches


def assert_engines_match(a: EngineRun, b: EngineRun) -> None:
    """Raise :class:`AssertionError` with the structural diff on mismatch."""
    mismatches = compare_runs(a, b)
    if mismatches:
        raise AssertionError(
            f"{a.engine} vs {b.engine}:\n" + "\n".join(mismatches)
        )


# ----------------------------------------------------------------------
# Adversarial case generation
# ----------------------------------------------------------------------
ADVERSARIAL_KINDS = ("self_loop", "fault", "smc", "budget", "divrem")


def _lo12(value: int) -> int:
    low = value & 0xFFF
    return low - 4096 if low >= 2048 else low


def _li32(register: int, value: int) -> List[str]:
    """Load an arbitrary 32-bit constant via lui+addi."""
    value &= 0xFFFFFFFF
    low = _lo12(value)
    high = ((value - low) >> 12) & 0xFFFFF
    return [f"lui x{register}, {high}", f"addi x{register}, x{register}, {low}"]


def _self_loop_case(rng: np.random.Generator) -> Dict[str, Any]:
    """Tight self-loops and two-instruction loops under small budgets.

    The degenerate superblock: the walker immediately revisits its own
    start pc, and the budget lands either exactly on or inside the
    block.  Retire orders and pc_wdata chains must still line up.
    """
    flavor = rng.random()
    if flavor < 0.4:
        source = "jal x0, 0"
    elif flavor < 0.7:
        source = "loop:\naddi x1, x1, 1\njal x0, loop"
    else:
        source = "loop:\naddi x1, x1, 1\nbne x1, x0, loop\nebreak"
    return {
        "kind": "self_loop",
        "source": source,
        "registers": {1: int(rng.choice((0, 0xFFFFFFF0, 0xFFFFFFFF)))},
        "max_instructions": int(rng.integers(1, 25)),
    }


def _fault_case(rng: np.random.Generator) -> Dict[str, Any]:
    """A guaranteed memory fault midway through a straight-line block."""
    flavor = rng.random()
    prefix = [
        f"addi x{int(rng.integers(1, 4))}, x0, {int(rng.integers(0, 100))}"
        for _ in range(int(rng.integers(0, 4)))
    ]
    if flavor < 0.35:
        # out of range: base register points past the 64 KiB memory
        lines = prefix + _li32(6, 0x200000) + ["lw x7, 0(x6)", "ebreak"]
    elif flavor < 0.7:
        # misaligned: odd base address
        width = str(rng.choice(["sw", "sh", "lw", "lh"]))
        lines = prefix + ["addi x6, x0, 257", f"{width} x7, 0(x6)", "ebreak"]
    else:
        # misaligned jump target: jalr to pc|2 traps on the next fetch
        lines = prefix + ["addi x6, x0, 6", "jalr x0, x6, 0", "ebreak"]
    return {
        "kind": "fault",
        "source": "\n".join(lines),
        "registers": {},
        "max_instructions": 10_000,
    }


def _smc_case(rng: np.random.Generator) -> Dict[str, Any]:
    """Self-modifying code: patch an instruction, then execute it.

    The store lands on a word the walker has (or will have) translated,
    so the engines' invalidation paths must agree on exactly which
    instruction retires at the patched pc.
    """
    from repro.riscv.assembler import assemble

    marker = int(rng.integers(1, 2048))
    patch = assemble(f"addi x4, x0, {marker}").words[0]
    loop = rng.random() < 0.5
    lines = _li32(1, patch)  # words 0..1
    if loop:
        # patch inside a loop body: iteration 1 runs the original word
        # at byte 16, the store rewrites it for iterations 2..n.
        lines += [
            "addi x2, x0, 16",  # address of the addi x4 below
            "addi x3, x0, 3",
            "loop:",
            "addi x4, x0, 55",  # word 4 — patched after iteration 1
            "sw x1, 0(x2)",
            "addi x3, x3, -1",
            "bne x3, x0, loop",
            "ebreak",
        ]
    else:
        # patch-ahead: overwrite an upcoming instruction in the same
        # straight-line block before it executes.
        lines += [
            "addi x2, x0, 20",  # address of the addi x4 below
            "sw x1, 0(x2)",
            "addi x3, x0, 1",
            "addi x4, x0, 55",  # word 5 — overwritten above
            "ebreak",
        ]
    return {
        "kind": "smc",
        "source": "\n".join(lines),
        "registers": {},
        "max_instructions": 10_000,
    }


def _budget_case(rng: np.random.Generator) -> Dict[str, Any]:
    """Budget exhaustion landing at every offset inside a block."""
    body = int(rng.integers(3, 12))
    if rng.random() < 0.5:
        lines = [f"addi x1, x1, {i + 1}" for i in range(body)] + ["ebreak"]
    else:
        lines = [
            f"addi x1, x0, {body}",
            "loop:",
            "add x2, x2, x1",
            "addi x1, x1, -1",
            "bne x1, x0, loop",
            "ebreak",
        ]
    return {
        "kind": "budget",
        "source": "\n".join(lines),
        "registers": {},
        "max_instructions": int(rng.integers(1, 3 * body + 2)),
    }


def _divrem_case(rng: np.random.Generator) -> Dict[str, Any]:
    """The RV32IM division corner semantics: INT_MIN/-1 and /0."""
    corners = (0, 1, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF)
    a = int(rng.choice(corners))
    b = int(rng.choice(corners))
    lines = _li32(1, a) + _li32(2, b)
    for rd, op in zip(
        range(3, 11),
        ("div", "divu", "rem", "remu", "mul", "mulh", "mulhsu", "mulhu"),
    ):
        lines.append(f"{op} x{rd}, x1, x2")
    lines.append("ebreak")
    return {
        "kind": "divrem",
        "source": "\n".join(lines),
        "registers": {},
        "max_instructions": 10_000,
    }


_ADVERSARIAL_GENERATORS = {
    "self_loop": _self_loop_case,
    "fault": _fault_case,
    "smc": _smc_case,
    "budget": _budget_case,
    "divrem": _divrem_case,
}


def random_adversarial_program(rng: np.random.Generator) -> Dict[str, Any]:
    """One hostile case targeting the engines' hard paths.

    Dispatches uniformly over :data:`ADVERSARIAL_KINDS`; the payload
    shape matches :func:`repro.verify.oracles.random_program` (source,
    registers, max_instructions) plus a ``kind`` tag for reporting.
    """
    kind = ADVERSARIAL_KINDS[int(rng.integers(0, len(ADVERSARIAL_KINDS)))]
    return _ADVERSARIAL_GENERATORS[kind](rng)
