"""Structural comparison machinery for differential verification.

The oracle harness needs one comparator that can diff whatever a
fast/reference pair returns — machine-state dicts, ``(samples, starts)``
tuples, template dictionaries, nested dataclasses — and report *where*
the first divergence lives, not just that one exists.  ``diff_values``
walks both structures in lockstep and returns human-readable mismatch
paths (``registers[13]``, ``templates.means[-3][7]``...); ``Tolerance``
decides whether two float leaves are "equal" (exact by default, or an
``allclose``-style rtol/atol envelope for pairs that are only pinned up
to float reassociation, like the streaming profiling moments).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, List

import numpy as np

from repro.errors import VerificationError

#: Cap on reported mismatches so a totally-divergent array does not
#: produce a million lines; the first few localise the bug.
MAX_MISMATCHES = 10


@dataclass(frozen=True)
class Tolerance:
    """Float comparison envelope.  ``rtol == atol == 0`` means bit-exact.

    NaNs are always treated as equal to NaNs — a pair that both produce
    NaN at the same leaf agrees (the divergence worth reporting is one
    side producing NaN and the other a number).

    ``overrides`` widens (or tightens) the envelope for specific
    sub-structures: a tuple of ``(path_substring, Tolerance)`` pairs,
    first match wins.  This is for leaves whose error model genuinely
    differs from the rest of the result — e.g. per-class precision
    matrices, where inverting a covariance estimated from a handful of
    profiling slices amplifies last-bit input differences by the
    condition number.
    """

    rtol: float = 0.0
    atol: float = 0.0
    overrides: tuple = ()

    @property
    def exact(self) -> bool:
        return self.rtol == 0.0 and self.atol == 0.0

    def for_path(self, path: str) -> "Tolerance":
        """The envelope that applies at ``path``."""
        for needle, tolerance in self.overrides:
            if needle in path:
                return tolerance
        return self

    def floats_equal(self, a: float, b: float) -> bool:
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        if self.exact:
            return a == b
        return abs(a - b) <= self.atol + self.rtol * abs(b)

    def arrays_equal(self, a: np.ndarray, b: np.ndarray) -> bool:
        if self.exact:
            return bool(np.array_equal(a, b, equal_nan=True))
        return bool(np.allclose(a, b, rtol=self.rtol, atol=self.atol, equal_nan=True))


EXACT = Tolerance()


def _array_mismatches(
    a: np.ndarray, b: np.ndarray, tolerance: Tolerance, path: str
) -> List[str]:
    if a.shape != b.shape:
        return [f"{path}: shape {a.shape} != {b.shape}"]
    tolerance = tolerance.for_path(path)
    if tolerance.arrays_equal(a, b):
        return []
    if a.dtype.kind in "fc" or b.dtype.kind in "fc":
        af = np.asarray(a, dtype=np.float64)
        bf = np.asarray(b, dtype=np.float64)
        both_nan = np.isnan(af) & np.isnan(bf)
        if tolerance.exact:
            bad = ~((af == bf) | both_nan)
        else:
            with np.errstate(invalid="ignore"):
                bad = ~(
                    (np.abs(af - bf) <= tolerance.atol + tolerance.rtol * np.abs(bf))
                    | both_nan
                )
    else:
        bad = a != b
    out = []
    for index in np.argwhere(bad)[:MAX_MISMATCHES]:
        key = tuple(int(i) for i in index)
        spot = key[0] if len(key) == 1 else key
        out.append(f"{path}[{spot}]: {a[key]!r} != {b[key]!r}")
    remaining = int(bad.sum()) - len(out)
    if remaining > 0:
        out.append(f"{path}: ... and {remaining} more differing elements")
    return out


def diff_values(
    fast: Any, reference: Any, tolerance: Tolerance = EXACT, path: str = "value"
) -> List[str]:
    """All mismatch paths between two result structures (empty == equal).

    Handles numpy arrays, dicts, sequences, dataclasses, floats (via
    ``tolerance``) and arbitrary ``==``-comparable leaves.  Containers
    of different shapes or types report one mismatch at the container
    path rather than recursing.
    """
    if fast is None or reference is None:
        return [] if fast is None and reference is None else [
            f"{path}: {type(fast).__name__} != {type(reference).__name__}"
        ]
    if isinstance(fast, np.ndarray) or isinstance(reference, np.ndarray):
        return _array_mismatches(
            np.asarray(fast), np.asarray(reference), tolerance, path
        )
    if dataclasses.is_dataclass(fast) and not isinstance(fast, type):
        if type(fast) is not type(reference):
            return [f"{path}: {type(fast).__name__} != {type(reference).__name__}"]
        out: List[str] = []
        for field in dataclasses.fields(fast):
            out.extend(
                diff_values(
                    getattr(fast, field.name),
                    getattr(reference, field.name),
                    tolerance,
                    f"{path}.{field.name}",
                )
            )
        return out
    if isinstance(fast, dict) and isinstance(reference, dict):
        out = []
        missing = sorted(set(reference) - set(fast), key=repr)
        extra = sorted(set(fast) - set(reference), key=repr)
        if missing:
            out.append(f"{path}: missing keys {missing}")
        if extra:
            out.append(f"{path}: unexpected keys {extra}")
        for key in fast:
            if key in reference:
                out.extend(
                    diff_values(fast[key], reference[key], tolerance, f"{path}[{key!r}]")
                )
        return out
    if isinstance(fast, (list, tuple)) and isinstance(reference, (list, tuple)):
        if len(fast) != len(reference):
            return [f"{path}: length {len(fast)} != {len(reference)}"]
        out = []
        for i, (a, b) in enumerate(zip(fast, reference)):
            out.extend(diff_values(a, b, tolerance, f"{path}[{i}]"))
        return out
    if isinstance(fast, float) or isinstance(reference, float):
        if tolerance.for_path(path).floats_equal(float(fast), float(reference)):
            return []
        return [f"{path}: {fast!r} != {reference!r}"]
    if fast == reference:
        return []
    return [f"{path}: {fast!r} != {reference!r}"]


def assert_equivalent(
    fast: Any,
    reference: Any,
    tolerance: Tolerance = EXACT,
    context: str = "",
) -> None:
    """Raise :class:`~repro.errors.VerificationError` on any divergence."""
    mismatches = diff_values(fast, reference, tolerance)
    if mismatches:
        header = f"fast/reference divergence ({context}):" if context else (
            "fast/reference divergence:"
        )
        raise VerificationError("\n".join([header, *mismatches]))
