"""Command-line front end for the differential verification harness.

::

    python -m repro.verify list
    python -m repro.verify run [oracle ...] [--examples N] [--seed S]
                               [--expensive]
    python -m repro.verify fuzz <oracle> [--cases N] [--seed S]
                                [--tier quick|deep] [--log FILE]
                                [--engines a,b,...]
    python -m repro.verify replay <oracle> --case-seed S
    python -m repro.verify golden [--regen] [--path FILE] [--workers N]

``run`` sweeps seeded random cases through the registered oracles and
prints, for every divergence, the one-line command that replays it.
``fuzz`` is the high-volume variant for a single fuzzable oracle: case
seeds are drawn from one base seed, every failure prints its replay
command, and ``--log`` writes a machine-readable failure report for CI
artifacts.  ``replay`` re-runs a single case (the command printed on
failure, and the one the Hypothesis suites embed in their failure
notes).  ``golden`` checks — or regenerates, with ``--regen`` — the
committed end-to-end fixture.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.verify import oracles as oracle_registry
from repro.verify.oracles import all_oracles, format_repro_command, get_oracle

DEFAULT_GOLDEN = Path("tests/golden/campaign_small.json")


def _cmd_list(_args: argparse.Namespace) -> int:
    groups: dict = {}
    for oracle in all_oracles():
        groups.setdefault(oracle.name.split(".")[0], []).append(oracle)
    for subsystem in sorted(groups):
        print(f"{subsystem}:")
        for oracle in groups[subsystem]:
            markers = ""
            if oracle.expensive:
                markers += " [expensive]"
            if oracle.fuzzable:
                markers += " [fuzz]"
            print(f"  {oracle.name}{markers}")
            print(f"      {oracle.description}")
            if oracle.name == "cpu.retire_log":
                from repro.verify.conformance import ENGINE_PAIRS

                pairs = ", ".join(f"{a}-{b}" for a, b in ENGINE_PAIRS)
                print(f"      pairs: {pairs} (subset via fuzz --engines)")
    return 0


#: Default case counts per fuzz tier; ``--cases`` overrides.
FUZZ_TIERS = {"quick": 100, "deep": 1000}


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import numpy as np

    oracle = get_oracle(args.oracle)
    if not oracle.fuzzable:
        fuzzable = ", ".join(o.name for o in all_oracles() if o.fuzzable)
        print(f"{oracle.name} is not a fuzz oracle (fuzzable: {fuzzable})")
        return 2
    if args.engines:
        from repro.verify import conformance

        try:
            conformance.set_engine_filter(
                [name.strip() for name in args.engines.split(",") if name.strip()]
            )
        except ValueError as exc:
            print(f"--engines: {exc}")
            return 2
        pairs = ", ".join(
            f"{a}-{b}" for a, b in conformance.active_engine_pairs()
        )
        print(f"engine filter: {args.engines} (active pairs: {pairs})")
    cases = args.cases if args.cases is not None else FUZZ_TIERS[args.tier]
    case_seeds = np.random.default_rng(args.seed).integers(
        0, 2**31 - 1, size=cases
    )
    start = time.perf_counter()
    failures = []
    for index, case_seed in enumerate(case_seeds):
        report = oracle.check_seed(int(case_seed))
        if not report.ok:
            failures.append(report)
            print(f"case seed {report.case_seed} ({report.case_summary}):")
            for line in report.mismatches[:10]:
                print(f"  {line}")
            print(f"  replay: {report.repro_command()}")
        if (index + 1) % 100 == 0:
            elapsed = time.perf_counter() - start
            print(
                f"{index + 1}/{cases} cases, {len(failures)} failed "
                f"({elapsed:.1f}s)"
            )
    elapsed = time.perf_counter() - start
    status = "ok" if not failures else f"{len(failures)} FAILED"
    print(
        f"{oracle.name}: {cases} cases (base seed {args.seed}), "
        f"{status} ({elapsed:.1f}s)"
    )
    if args.log:
        import json

        payload = {
            "oracle": oracle.name,
            "base_seed": args.seed,
            "cases": cases,
            "tier": args.tier,
            "failures": [
                {
                    "case_seed": report.case_seed,
                    "case_summary": report.case_summary,
                    "mismatches": report.mismatches,
                    "replay": report.repro_command(),
                }
                for report in failures
            ],
        }
        Path(args.log).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"fuzz report written to {args.log}")
    return 1 if failures else 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.oracles:
        selected = [get_oracle(name) for name in args.oracles]
    else:
        selected = all_oracles(include_expensive=args.expensive)
    failures = 0
    for oracle in selected:
        examples = (
            max(1, args.examples // 10) if oracle.expensive else args.examples
        )
        start = time.perf_counter()
        reports = oracle_registry.run_oracle(oracle, examples, args.seed)
        elapsed = time.perf_counter() - start
        bad = [report for report in reports if not report.ok]
        status = "ok" if not bad else f"{len(bad)} FAILED"
        print(f"{oracle.name}: {len(reports)} cases, {status} ({elapsed:.1f}s)")
        for report in bad:
            failures += 1
            print(f"  case seed {report.case_seed} ({report.case_summary}):")
            for line in report.mismatches[:5]:
                print(f"    {line}")
            print(f"  replay: {report.repro_command()}")
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    oracle = get_oracle(args.oracle)
    report = oracle.check_seed(args.case_seed)
    if report.ok:
        print(f"{oracle.name} case {args.case_seed}: fast == reference")
        return 0
    print(f"{oracle.name} case {args.case_seed} ({report.case_summary}) DIVERGED:")
    for line in report.mismatches:
        print(f"  {line}")
    return 1


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.verify import goldens

    path = Path(args.path)
    payload = goldens.golden_payload(workers=args.workers)
    if args.regen:
        goldens.save_golden(goldens.canonical(payload), path)
        print(f"golden fixture written to {path}")
        return 0
    if not path.exists():
        print(f"no golden fixture at {path}; run with --regen first")
        return 1
    mismatches = goldens.compare_golden(payload, goldens.load_golden(path))
    if not mismatches:
        print(f"golden fixture {path}: bit-exact")
        return 0
    print(f"golden fixture {path} DIVERGED:")
    for line in mismatches[:20]:
        print(f"  {line}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential verification of fast/reference pairs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered oracles").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="sweep random cases through oracles")
    run.add_argument("oracles", nargs="*", help="oracle names (default: all)")
    run.add_argument("--examples", type=int, default=25)
    run.add_argument("--seed", type=int, default=0, help="base case seed")
    run.add_argument(
        "--expensive",
        action="store_true",
        help="include expensive oracles when none are named",
    )
    run.set_defaults(func=_cmd_run)

    fuzz = sub.add_parser(
        "fuzz", help="high-volume seeded sweep of one fuzz oracle"
    )
    fuzz.add_argument("oracle")
    fuzz.add_argument(
        "--cases", type=int, default=None, help="default: tier preset"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="base sweep seed")
    fuzz.add_argument("--tier", choices=sorted(FUZZ_TIERS), default="quick")
    fuzz.add_argument(
        "--log", default=None, help="write a JSON failure report here"
    )
    fuzz.add_argument(
        "--engines",
        default=None,
        help="comma-separated engine subset for conformance oracles "
        "(e.g. reference,compiled); default: all available engines",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    replay = sub.add_parser("replay", help="re-run one failing case")
    replay.add_argument("oracle")
    replay.add_argument("--case-seed", type=int, required=True)
    replay.set_defaults(func=_cmd_replay)

    golden = sub.add_parser("golden", help="check or regenerate the fixture")
    golden.add_argument("--regen", action="store_true")
    golden.add_argument("--path", default=str(DEFAULT_GOLDEN))
    golden.add_argument(
        "--workers", type=int, default=None, help="default: REVEAL_WORKERS or 1"
    )
    golden.set_defaults(func=_cmd_golden)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
