"""Command-line front end for the differential verification harness.

::

    python -m repro.verify list
    python -m repro.verify run [oracle ...] [--examples N] [--seed S]
                               [--expensive]
    python -m repro.verify replay <oracle> --case-seed S
    python -m repro.verify golden [--regen] [--path FILE] [--workers N]

``run`` sweeps seeded random cases through the registered oracles and
prints, for every divergence, the one-line command that replays it.
``replay`` re-runs a single case (the command printed on failure, and
the one the Hypothesis suites embed in their failure notes).  ``golden``
checks — or regenerates, with ``--regen`` — the committed end-to-end
fixture.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.verify import oracles as oracle_registry
from repro.verify.oracles import all_oracles, format_repro_command, get_oracle

DEFAULT_GOLDEN = Path("tests/golden/campaign_small.json")


def _cmd_list(_args: argparse.Namespace) -> int:
    for oracle in all_oracles():
        marker = " [expensive]" if oracle.expensive else ""
        print(f"{oracle.name}{marker}")
        print(f"    {oracle.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.oracles:
        selected = [get_oracle(name) for name in args.oracles]
    else:
        selected = all_oracles(include_expensive=args.expensive)
    failures = 0
    for oracle in selected:
        examples = (
            max(1, args.examples // 10) if oracle.expensive else args.examples
        )
        start = time.perf_counter()
        reports = oracle_registry.run_oracle(oracle, examples, args.seed)
        elapsed = time.perf_counter() - start
        bad = [report for report in reports if not report.ok]
        status = "ok" if not bad else f"{len(bad)} FAILED"
        print(f"{oracle.name}: {len(reports)} cases, {status} ({elapsed:.1f}s)")
        for report in bad:
            failures += 1
            print(f"  case seed {report.case_seed} ({report.case_summary}):")
            for line in report.mismatches[:5]:
                print(f"    {line}")
            print(f"  replay: {report.repro_command()}")
    return 1 if failures else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    oracle = get_oracle(args.oracle)
    report = oracle.check_seed(args.case_seed)
    if report.ok:
        print(f"{oracle.name} case {args.case_seed}: fast == reference")
        return 0
    print(f"{oracle.name} case {args.case_seed} ({report.case_summary}) DIVERGED:")
    for line in report.mismatches:
        print(f"  {line}")
    return 1


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.verify import goldens

    path = Path(args.path)
    payload = goldens.golden_payload(workers=args.workers)
    if args.regen:
        goldens.save_golden(goldens.canonical(payload), path)
        print(f"golden fixture written to {path}")
        return 0
    if not path.exists():
        print(f"no golden fixture at {path}; run with --regen first")
        return 1
    mismatches = goldens.compare_golden(payload, goldens.load_golden(path))
    if not mismatches:
        print(f"golden fixture {path}: bit-exact")
        return 0
    print(f"golden fixture {path} DIVERGED:")
    for line in mismatches[:20]:
        print(f"  {line}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential verification of fast/reference pairs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered oracles").set_defaults(
        func=_cmd_list
    )

    run = sub.add_parser("run", help="sweep random cases through oracles")
    run.add_argument("oracles", nargs="*", help="oracle names (default: all)")
    run.add_argument("--examples", type=int, default=25)
    run.add_argument("--seed", type=int, default=0, help="base case seed")
    run.add_argument(
        "--expensive",
        action="store_true",
        help="include expensive oracles when none are named",
    )
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="re-run one failing case")
    replay.add_argument("oracle")
    replay.add_argument("--case-seed", type=int, required=True)
    replay.set_defaults(func=_cmd_replay)

    golden = sub.add_parser("golden", help="check or regenerate the fixture")
    golden.add_argument("--regen", action="store_true")
    golden.add_argument("--path", default=str(DEFAULT_GOLDEN))
    golden.add_argument(
        "--workers", type=int, default=None, help="default: REVEAL_WORKERS or 1"
    )
    golden.set_defaults(func=_cmd_golden)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
