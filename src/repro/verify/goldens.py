"""Golden end-to-end fixtures for the attack pipeline.

The differential oracles pin each fast path to its reference twin, but
a regression that changes *both* sides identically — a tweak to the
leakage weights, an assembler fix that shifts firmware cycle counts, a
sampler change — slips straight through.  The goldens close that gap:
one small-parameter profiling + campaign run (the Table 1/2 flow at
toy scale) is serialised to JSON and committed under ``tests/golden/``;
every CI run replays the flow and compares **bit-exact**.

Bit-exactness is deliberate and achievable because the whole pipeline
is deterministic: the bench noise is drawn from per-seed
``Philox``-derived streams (so any worker count produces the same
traces), and JSON serialises floats with ``repr`` shortest-round-trip
semantics, so ``loads(dumps(x)) == x`` exactly.  The fixture is
therefore identical for ``REVEAL_WORKERS=1`` and ``=4`` — the
acceptance criterion this module exists to enforce.

When an *intentional* behaviour change lands, regenerate with::

    PYTHONPATH=src python -m pytest tests/golden -q --regen-goldens

or equivalently ``python -m repro.verify golden --regen``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.power.noise import NOISE_STREAM_VERSION
from repro.verify.compare import EXACT, diff_values

#: Fixture scale: big enough that profiling sees every value class and
#: the campaign exercises the parallel path, small enough for CI.
GOLDEN_PROFILE = {"num_traces": 60, "coeffs_per_trace": 6, "first_seed": 100_000}
GOLDEN_CAMPAIGN = {"trace_count": 24, "coeffs_per_trace": 8, "first_seed": 1}

#: Probability tables are large (one float per value class per
#: coefficient); committing the first few keeps the fixture readable
#: while still pinning the posterior arithmetic bit-for-bit.
TABLES_COMMITTED = 10


def golden_workers() -> int:
    """Worker count for golden runs: ``REVEAL_WORKERS``, at least 1.

    Never ``None``: the sequential ``workers=None`` profiling path draws
    bench-sequential noise, while any ``workers >= 1`` uses the per-seed
    batch streams — only the latter is worker-count invariant.
    """
    return max(1, int(os.environ.get("REVEAL_WORKERS", "1")))


def _golden_bench():
    from repro.power.capture import TraceAcquisition
    from repro.power.scope import Oscilloscope
    from repro.riscv.device import GaussianSamplerDevice

    device = GaussianSamplerDevice([132120577])
    return TraceAcquisition(device, scope=Oscilloscope(noise_std=1.0), rng=0)


def build_golden_attack(workers: Optional[int] = None):
    """Profile the fixture attack (the Table 1/2 bench at toy scale).

    Pinned to the ``reference`` compute backend: the fixture's job is
    to pin the *reference* pipeline bit-for-bit, independent of which
    accelerated backends this host happens to probe (an explicitly
    selected backend may arm non-exact kernels that perturb last bits).
    """
    from repro.attack.pipeline import SingleTraceAttack
    from repro.backends import use_backend

    with use_backend("reference"):
        attack = SingleTraceAttack(_golden_bench(), poi_count=24)
        attack.profile(workers=workers or golden_workers(), **GOLDEN_PROFILE)
    return attack


def golden_payload(workers: Optional[int] = None) -> Dict[str, Any]:
    """Run the golden flow end to end and distil the committed payload."""
    from repro.attack.campaign import run_campaign
    from repro.backends import use_backend
    from repro.hints.hintgen import moments_of_table

    workers = workers or golden_workers()
    attack = build_golden_attack(workers)
    with use_backend("reference"):
        report = run_campaign(attack, workers=workers, **GOLDEN_CAMPAIGN)

    counts = report.confusion.counts()
    confusion = [
        [actual, predicted, counts[(actual, predicted)]]
        for actual, predicted in sorted(counts)
    ]
    outcomes: List[Dict[str, Any]] = []
    for index, (value, sign, estimate, table) in enumerate(report.outcomes):
        mean, variance = moments_of_table(table)
        entry: Dict[str, Any] = {
            "value": value,
            "sign": sign,
            "estimate": estimate,
            "mean": mean,
            "variance": variance,
        }
        if index < TABLES_COMMITTED:
            entry["table"] = {
                str(label): probability
                for label, probability in sorted(table.items())
            }
        outcomes.append(entry)

    return {
        "config": {
            "profile": dict(GOLDEN_PROFILE),
            "campaign": dict(GOLDEN_CAMPAIGN),
            "noise_std": 1.0,
            # Bumped with repro.power.noise: a fixture regenerated under
            # a different stream version is an intentional bit-compat
            # break, and the diff must show it.
            "noise_stream": NOISE_STREAM_VERSION,
            "modulus": 132120577,
        },
        "profiling": {
            "classes": attack.templates.labels,
            "pois": list(attack.templates.pois),
        },
        "table1": {
            "sign_accuracy": report.sign_accuracy,
            "value_accuracy": report.value_accuracy,
            "coefficients_attacked": report.coefficients_attacked,
            "traces_attacked": report.traces_attacked,
            "traces_failed": report.traces_failed,
            "confusion": confusion,
        },
        "table2": {"outcomes": outcomes},
    }


def canonical(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The payload exactly as a JSON round-trip normalises it."""
    return json.loads(json.dumps(payload))


def save_golden(payload: Dict[str, Any], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def load_golden(path: Path) -> Dict[str, Any]:
    return json.loads(path.read_text())


def compare_golden(
    actual: Dict[str, Any], expected: Dict[str, Any]
) -> List[str]:
    """Bit-exact mismatch paths between a fresh run and the fixture.

    ``actual`` is canonicalised through a JSON round-trip first, so the
    comparison sees exactly what a committed fixture would contain —
    JSON's shortest-repr float serialisation is lossless for float64,
    which is what makes "bit-exact via JSON" sound.
    """
    return diff_values(canonical(actual), expected, EXACT, path="golden")
