"""Per-backend kernel oracles for the compute-backend registry.

:mod:`repro.backends` promises that every accelerated kernel is either
bit-exact against the inline numpy path it replaces or numerically
equivalent within a declared :class:`~repro.verify.compare.Tolerance`.
This module turns that promise into registered oracles: for every
backend whose capability probe succeeds (``native`` when a C compiler
is present, ``numba`` when importable) it registers one oracle per
kernel group —

- ``backend.<name>.ntt`` — forward/inverse butterflies and the
  negacyclic pointwise product through :class:`~repro.ring.ntt
  .NttContext` (bit-exact: Shoup modular arithmetic lands on the same
  residues as the numpy ladder);
- ``backend.<name>.expand`` — event-log leakage expansion through
  :meth:`LeakageModel.expand` (bit-exact float64: the compiled kernel
  mirrors the numpy expression trees operation for operation, compiled
  without FMA contraction);
- ``backend.<name>.expand_arena`` — the fused lane-arena expansion
  through :meth:`LeakageModel.expand_arena` (bit-exact float64: the
  block kernel resolves each event's template/dynamic fields and runs
  the same per-event expansion the generated numpy emitters encode);
- ``backend.<name>.lane_select`` — the lane engine's warp-scheduling
  scan vs the numpy ``(wraps << 32) + pc`` argmin selection (bit-exact
  incl. first-occurrence tie-breaking and the all-parked sentinel);
- ``backend.<name>.template`` — pooled and per-class Mahalanobis
  log-likelihood matrices (Tolerance: the compiled quadratic form
  necessarily reduces in a different order than ``np.einsum``).

Each fast side runs inside :func:`repro.backends.use_backend` so the
kernel under test is actually armed (including non-exact kernels, which
auto-probe withholds); each reference side pins ``use_backend
("reference")`` so the comparison target is always the inline numpy
path.  Probes that fail register nothing — on a host with neither
compiler nor numba this module is a no-op and the registry is exactly
the pre-backend set.

Replay a failure like any other oracle::

    PYTHONPATH=src python -m repro.verify replay backend.native.ntt --case-seed 7
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.backends import (
    available_backends,
    get_kernel,
    kernel_exactness,
    use_backend,
)
from repro.verify.compare import EXACT, Tolerance
from repro.verify.oracles import (
    Oracle,
    _run_expand_arena,
    _sample_expand_arena_case,
    _sample_leakage_case,
    _sample_ntt_case,
    register,
)

#: The compiled quadratic form accumulates in a different order than
#: ``np.einsum``; on well-conditioned template matrices the drift is
#: ~1e-15 relative, so 1e-9 (the repo's standard float envelope, and
#: what the template-matrix tests pin) leaves ample headroom.
_TEMPLATE_TOLERANCE = Tolerance(rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# NTT: forward / inverse / negacyclic pointwise product
# ----------------------------------------------------------------------
def _ntt_with_backend(case: Dict[str, Any], backend: str) -> Dict[str, Any]:
    from repro.ring.ntt import get_ntt_context

    with use_backend(backend):
        context = get_ntt_context(case["modulus"], case["n"])
        forward = context.forward(case["a"])
        return {
            "forward": forward,
            "inverse": context.inverse(case["b"]),
            "roundtrip": context.inverse(forward),
            "product": context.multiply(case["a"], case["b"]),
        }


# ----------------------------------------------------------------------
# Leakage expansion
# ----------------------------------------------------------------------
def _expand_with_backend(case: Dict[str, Any], backend: str):
    with use_backend(backend):
        return case["model"].expand(case["events"])


def _expand_arena_with_backend(case: Dict[str, Any], backend: str):
    # Re-runs the lane engine and expands its deferred-record arena
    # with the backend's block kernel armed; the reference side takes
    # the generated numpy emitters.  (Both sides are in turn equal to
    # per-lane expand by the ``leakage.expand_arena`` oracle.)
    with use_backend(backend):
        return _run_expand_arena(case)


# ----------------------------------------------------------------------
# Lane selection
# ----------------------------------------------------------------------
def _sample_lane_select_case(rng: np.random.Generator) -> Dict[str, Any]:
    """Random warp states, with duplicate pcs and all-parked corners."""
    lanes = int(rng.integers(1, 33))
    # Few distinct pcs => plenty of exact ties for the first-occurrence
    # tie-breaking the kernel must reproduce.
    pcs = rng.choice(
        rng.integers(0, 1 << 16, size=4) & ~np.int64(3), size=lanes
    ).astype(np.int64)
    wraps = rng.integers(0, 3, size=lanes).astype(np.int64)
    if rng.random() < 0.1:
        alive = np.zeros(lanes, dtype=bool)  # all parked: sentinel path
    else:
        alive = rng.random(lanes) < 0.7
    return {"pcs": pcs, "wraps": wraps, "alive": alive}


def _lane_select_result(
    pc: int, group: Optional[np.ndarray]
) -> Dict[str, Any]:
    return {
        "pc": int(pc),
        "group": None if group is None else np.asarray(group, dtype=np.int64),
    }


def _lane_select_with_backend(
    case: Dict[str, Any], backend: str
) -> Dict[str, Any]:
    with use_backend(backend):
        kernel = get_kernel("lane_select")
        pc, group = kernel(case["pcs"], case["wraps"], case["alive"])
    return _lane_select_result(pc, group)


def _lane_select_reference(case: Dict[str, Any]) -> Dict[str, Any]:
    # The numpy selection from LaneEngine.run, verbatim.
    pcs, wraps, alive = case["pcs"], case["wraps"], case["alive"]
    active = np.nonzero(alive)[0]
    if active.size == 0:
        return _lane_select_result(-1, None)
    key = (wraps << 32) + pcs
    lead = active[np.argmin(key[active])]
    pc = int(pcs[lead])
    return _lane_select_result(pc, active[pcs[active] == pc])


# ----------------------------------------------------------------------
# Template matching
# ----------------------------------------------------------------------
def _sample_template_case(rng: np.random.Generator) -> Dict[str, Any]:
    """A synthetic template set plus a batch of slices to score."""
    from repro.attack.template import TemplateSet

    k = int(rng.integers(2, 12))
    length = k + int(rng.integers(1, 60))

    def spd(size: int) -> np.ndarray:
        basis = rng.normal(0.0, 1.0, (size, size))
        return basis @ basis.T + size * np.eye(size)

    labels = sorted(
        int(v)
        for v in rng.choice(
            np.arange(-14, 15), size=int(rng.integers(2, 9)), replace=False
        )
    )
    pois = sorted(int(p) for p in rng.choice(length, size=k, replace=False))
    means = {label: rng.normal(0.0, 5.0, k) for label in labels}
    priors = None
    if rng.random() < 0.5:
        raw = rng.uniform(0.05, 1.0, len(labels))
        priors = {
            label: float(p / raw.sum()) for label, p in zip(labels, raw)
        }
    class_precisions = class_log_dets = None
    if rng.random() < 0.5:  # per-class covariance path
        class_precisions = {label: spd(k) for label in labels}
        class_log_dets = {
            label: float(rng.normal(0.0, 2.0)) for label in labels
        }
    templates = TemplateSet(
        pois=pois,
        means=means,
        precision=spd(k),
        priors=priors,
        class_precisions=class_precisions,
        class_log_dets=class_log_dets,
    )
    slices = rng.normal(0.0, 5.0, (int(rng.integers(1, 16)), length))
    return {"templates": templates, "slices": slices}


def _template_with_backend(case: Dict[str, Any], backend: str) -> np.ndarray:
    with use_backend(backend):
        return case["templates"].log_likelihoods_matrix(case["slices"])


# ----------------------------------------------------------------------
# Registration: one oracle per (available backend, kernel group)
# ----------------------------------------------------------------------
#: Kernel groups: (oracle suffix, kernels that must all be present,
#: description tail).  Exactness is read off the backend's declarations
#: — a group whose kernels all declare ``exact=True`` registers an
#: EXACT oracle, otherwise the declared Tolerance applies.
_GROUPS: Tuple[Tuple[str, Tuple[str, ...], str], ...] = (
    (
        "ntt",
        ("ntt_forward", "ntt_inverse", "pointwise_mulmod"),
        "NTT forward/inverse + negacyclic pointwise product vs the "
        "inline numpy butterflies",
    ),
    (
        "expand",
        ("expand_events",),
        "leakage event expansion vs the vectorized numpy emitter",
    ),
    (
        "expand_arena",
        ("expand_block",),
        "fused lane-arena expansion vs the generated per-block numpy "
        "emitters",
    ),
    (
        "lane_select",
        ("lane_select",),
        "warp-scheduling lane selection vs the numpy argmin scan",
    ),
    (
        "template",
        ("template_quad",),
        "pooled/per-class Mahalanobis log-likelihood matrices vs "
        "np.einsum",
    ),
)


def _register_backend_oracles() -> None:
    for backend in available_backends():
        if backend == "reference":
            continue
        exactness = kernel_exactness(backend)
        for suffix, kernels, tail in _GROUPS:
            if not all(k in exactness for k in kernels):
                continue
            exact = all(exactness[k] for k in kernels)
            if suffix == "ntt":
                fast = (
                    lambda case, b=backend: _ntt_with_backend(case, b)
                )
                reference = lambda case: _ntt_with_backend(case, "reference")
                sample = _sample_ntt_case
                summarize = (
                    lambda case: f"q={case['modulus'].value}, n={case['n']}"
                )
            elif suffix == "expand":
                fast = (
                    lambda case, b=backend: _expand_with_backend(case, b)
                )
                reference = (
                    lambda case: _expand_with_backend(case, "reference")
                )
                sample = _sample_leakage_case
                summarize = lambda case: f"{len(case['events'])} events"
            elif suffix == "expand_arena":
                fast = (
                    lambda case, b=backend: _expand_arena_with_backend(
                        case, b
                    )
                )
                reference = (
                    lambda case: _expand_arena_with_backend(
                        case, "reference"
                    )
                )
                sample = _sample_expand_arena_case
                summarize = (
                    lambda case: f"{len(case['seeds'])} lanes, "
                    f"count={case['count']}, q={case['modulus']}"
                )
            elif suffix == "lane_select":
                fast = (
                    lambda case, b=backend: _lane_select_with_backend(case, b)
                )
                reference = _lane_select_reference
                sample = _sample_lane_select_case
                summarize = (
                    lambda case: f"{len(case['pcs'])} lanes, "
                    f"{int(np.count_nonzero(case['alive']))} alive"
                )
            else:  # template
                fast = (
                    lambda case, b=backend: _template_with_backend(case, b)
                )
                reference = (
                    lambda case: _template_with_backend(case, "reference")
                )
                sample = _sample_template_case
                summarize = (
                    lambda case: f"{len(case['templates'].labels)} classes, "
                    f"{case['slices'].shape[0]} slices, "
                    f"{len(case['templates'].pois)} POIs"
                )
            register(
                Oracle(
                    name=f"backend.{backend}.{suffix}",
                    description=f"{backend} backend: {tail} "
                    + ("(bit-exact)" if exact else "(declared tolerance)"),
                    sample=sample,
                    fast=fast,
                    reference=reference,
                    tolerance=EXACT if exact else _TEMPLATE_TOLERANCE,
                    summarize=summarize,
                )
            )


_register_backend_oracles()
