"""Differential verification of every fast/reference pair in the repo.

Four layers:

- :mod:`repro.verify.compare` — structural diffing with tolerance
  envelopes (``diff_values``, ``assert_equivalent``);
- :mod:`repro.verify.conformance` — the cross-engine RV32IM harness:
  one-call engine execution capture (:class:`EngineRun`), first-retire
  divergence reporting, and the adversarial case generators behind the
  ``cpu.retire_log`` fuzz oracle;
- :mod:`repro.verify.oracles` — the :class:`Oracle` registry pairing
  each optimised path with its pinned reference, each with a seeded
  case sampler so failures replay from ``(oracle name, case seed)``;
- :mod:`repro.verify.goldens` — bit-exact end-to-end JSON fixtures for
  the Table 1/2 campaign flow.

Run ``python -m repro.verify --help`` for the CLI (list / run / fuzz /
replay / golden); the Hypothesis suites under ``tests/differential/``
drive the same oracles with shrinking strategies.
"""

from repro.verify.compare import (
    EXACT,
    Tolerance,
    assert_equivalent,
    diff_values,
)
from repro.verify.conformance import (
    ADVERSARIAL_KINDS,
    ENGINE_PAIRS,
    EngineRun,
    assert_engines_match,
    compare_runs,
    first_retire_divergence,
    random_adversarial_program,
    run_lane_engine_case,
    run_scalar_engine,
)
from repro.verify.oracles import (
    Oracle,
    OracleReport,
    all_oracles,
    format_repro_command,
    get_oracle,
    register,
    run_oracle,
    sample_retire_case,
)

__all__ = [
    "EXACT",
    "Tolerance",
    "assert_equivalent",
    "diff_values",
    "ADVERSARIAL_KINDS",
    "ENGINE_PAIRS",
    "EngineRun",
    "assert_engines_match",
    "compare_runs",
    "first_retire_divergence",
    "random_adversarial_program",
    "run_lane_engine_case",
    "run_scalar_engine",
    "Oracle",
    "OracleReport",
    "all_oracles",
    "format_repro_command",
    "get_oracle",
    "register",
    "run_oracle",
    "sample_retire_case",
]
