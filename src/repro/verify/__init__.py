"""Differential verification of every fast/reference pair in the repo.

Three layers:

- :mod:`repro.verify.compare` — structural diffing with tolerance
  envelopes (``diff_values``, ``assert_equivalent``);
- :mod:`repro.verify.oracles` — the :class:`Oracle` registry pairing
  each optimised path with its pinned reference, each with a seeded
  case sampler so failures replay from ``(oracle name, case seed)``;
- :mod:`repro.verify.goldens` — bit-exact end-to-end JSON fixtures for
  the Table 1/2 campaign flow.

Run ``python -m repro.verify --help`` for the CLI (list / run /
replay / golden); the Hypothesis suites under ``tests/differential/``
drive the same oracles with shrinking strategies.
"""

from repro.verify.compare import (
    EXACT,
    Tolerance,
    assert_equivalent,
    diff_values,
)
from repro.verify.oracles import (
    Oracle,
    OracleReport,
    all_oracles,
    format_repro_command,
    get_oracle,
    register,
    run_oracle,
)

__all__ = [
    "EXACT",
    "Tolerance",
    "assert_equivalent",
    "diff_values",
    "Oracle",
    "OracleReport",
    "all_oracles",
    "format_repro_command",
    "get_oracle",
    "register",
    "run_oracle",
]
