"""The fast/reference oracle registry.

Every performance PR in this repo keeps the original implementation of
the path it optimised as a ``*_reference`` twin; this module registers
each such pair behind one :class:`Oracle` record so they can all be
driven by the same harness:

- ``riscv.cpu.run`` — threaded-code engine vs the scalar interpreter,
  on randomized RV32IM programs (full machine state + EventLog + error
  parity);
- ``riscv.cpu.run_lanes`` — lane-vectorized engine vs per-lane threaded
  runs, on randomized divergent programs (every lane's registers, pc,
  cycles, events and error string must match bit-for-bit);
- ``power.leakage.expand`` — vectorized trace synthesis vs the scalar
  expansion (bit-exact float64);
- ``power.leakage.expand_lanes`` — batched multi-lane expansion vs
  per-lane :meth:`expand` calls (bit-exact float64 per lane);
- ``attack.segmentation.moving_average`` — cumulative-sum sliding mean
  vs ``np.convolve`` (input-scaled envelope: both reassociate float
  sums, with error proportional to ``eps * sum(|x|)``);
- ``ring.ntt`` — level-order vectorized butterflies vs the per-group
  loops, plus the inverse∘forward identity;
- ``ring.negacyclic_multiply`` — NTT-domain product vs a schoolbook
  O(n²) negacyclic convolution;
- ``attack.persistence`` — profiled-attack save/load round-trip
  (bit-exact template state across the ``.npz`` v2 format);
- ``attack.profile`` — streaming-moments profiling vs the materialized
  flow (1e-9 on raw moments, condition-number headroom on the
  inverted per-class templates; expensive, deep tier only).

Each oracle knows how to *sample* a case from a seeded numpy generator,
so any failure is replayable from two integers: the oracle name and the
case seed.  :func:`format_repro_command` renders the exact command
line.  The Hypothesis suites in ``tests/differential/`` drive the same
``run_fast``/``run_reference`` entry points with shrinking strategies
from ``tests/strategies.py``; this registry is the dependency-free
(no-Hypothesis) core that the CLI, CI smoke and tests all share.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError, VerificationError
from repro.verify.compare import EXACT, Tolerance, diff_values

_MASK32 = 0xFFFFFFFF

#: The paper's coefficient modulus, used by the bench-level oracles.
PAPER_Q = 132120577


# ----------------------------------------------------------------------
# Oracle protocol
# ----------------------------------------------------------------------
@dataclass
class OracleReport:
    """Outcome of checking one sampled case."""

    oracle: str
    case_seed: int
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    case_summary: str = ""

    def repro_command(self) -> str:
        return format_repro_command(self.oracle, self.case_seed)


@dataclass
class Oracle:
    """One registered fast/reference pair.

    ``sample`` draws a case payload from a seeded generator; ``fast``
    and ``reference`` map the payload to comparable result structures;
    ``tolerance`` decides leaf equality (exact unless the pair is only
    pinned up to float reassociation).  It may also be a *callable*
    taking the case and returning a :class:`Tolerance` — for pairs
    whose honest error bound depends on the input (the sliding mean's
    cancellation error scales with ``sum(|x|)``).  ``expensive`` marks
    pairs that cost seconds per case (profiling); the CLI and the quick
    CI tier skip them unless asked.  ``fuzzable`` marks oracles whose
    samplers are cheap and adversarial enough for the high-volume
    ``python -m repro.verify fuzz`` driver.
    """

    name: str
    description: str
    sample: Callable[[np.random.Generator], Any]
    fast: Callable[[Any], Any]
    reference: Callable[[Any], Any]
    tolerance: Any = EXACT
    expensive: bool = False
    fuzzable: bool = False
    summarize: Callable[[Any], str] = staticmethod(lambda case: "")

    def tolerance_for(self, case: Any) -> Tolerance:
        """The comparison envelope for one concrete case."""
        if callable(self.tolerance):
            return self.tolerance(case)
        return self.tolerance

    def check_case(self, case: Any, case_seed: int = -1) -> OracleReport:
        """Run both implementations on one case and diff the results."""
        mismatches = diff_values(
            self.fast(case), self.reference(case), self.tolerance_for(case)
        )
        return OracleReport(
            oracle=self.name,
            case_seed=case_seed,
            ok=not mismatches,
            mismatches=mismatches,
            case_summary=self.summarize(case),
        )

    def check_seed(self, case_seed: int) -> OracleReport:
        """Sample the case for ``case_seed`` and check it."""
        case = self.sample(np.random.default_rng(case_seed))
        return self.check_case(case, case_seed)


_REGISTRY: Dict[str, Oracle] = {}


def register(oracle: Oracle) -> Oracle:
    """Add an oracle to the process-wide registry (name must be new)."""
    if oracle.name in _REGISTRY:
        raise VerificationError(f"oracle {oracle.name!r} registered twice")
    _REGISTRY[oracle.name] = oracle
    return oracle


def get_oracle(name: str) -> Oracle:
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise VerificationError(f"unknown oracle {name!r} (known: {known})")
    return _REGISTRY[name]


def all_oracles(include_expensive: bool = True) -> List[Oracle]:
    """Registered oracles in name order."""
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY)
        if include_expensive or not _REGISTRY[name].expensive
    ]


def format_repro_command(oracle_name: str, case_seed: int) -> str:
    """The exact shell command that replays one failing case."""
    return (
        "PYTHONPATH=src python -m repro.verify replay "
        f"{oracle_name} --case-seed {case_seed}"
    )


def run_oracle(
    oracle: Oracle, examples: int, base_seed: int
) -> List[OracleReport]:
    """Check ``examples`` cases with seeds ``base_seed + i``; all reports."""
    return [oracle.check_seed(base_seed + i) for i in range(examples)]


# ----------------------------------------------------------------------
# Case generators
# ----------------------------------------------------------------------
#: Scratch data region used by generated load/store instructions (well
#: above any generated code, well inside the 64 KiB test memory).
SCRATCH_BASE = 0x8000

_ALU_RR = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
    "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
]
_ALU_IMM = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_SHIFT_IMM = ["slli", "srli", "srai"]
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]
_LOADS = ["lw", "lh", "lhu", "lb", "lbu"]
_STORES = ["sw", "sh", "sb"]

#: Operand values overrepresented in generated registers: the RV32IM
#: corner cases (INT_MIN, -1, 0) that the div/rem and shift semantics
#: special-case.
_SPICY_VALUES = (0, 1, 0xFFFFFFFF, 0x80000000, 0x7FFFFFFF, 2, 0xAAAAAAAA)


def _random_register_file(rng: np.random.Generator) -> Dict[int, int]:
    """Initial values for x1..x15: mostly uniform, corners mixed in."""
    regs = {}
    for index in range(1, 16):
        if rng.random() < 0.3:
            regs[index] = int(rng.choice(_SPICY_VALUES))
        else:
            regs[index] = int(rng.integers(0, 1 << 32))
    return regs


def random_program(rng: np.random.Generator) -> Dict[str, Any]:
    """One randomized RV32IM program case for the engine-parity oracle.

    Mostly well-behaved straight-line code over x1..x15 with loads and
    stores into a scratch region, forward branches over small bodies and
    bounded down-counting loops — plus, occasionally, a wild memory
    access or a tiny instruction budget, because the two engines must
    agree on *faults* (message and machine state) exactly as they agree
    on results.
    """
    lines: List[str] = [f"li x5, {SCRATCH_BASE}"]
    label_count = 0
    n_instr = int(rng.integers(3, 36))
    i = 0
    while i < n_instr:
        kind = rng.random()
        rd = int(rng.integers(1, 16))
        rs1 = int(rng.integers(0, 16))
        rs2 = int(rng.integers(0, 16))
        if kind < 0.40:
            lines.append(f"{rng.choice(_ALU_RR)} x{rd}, x{rs1}, x{rs2}")
        elif kind < 0.55:
            imm = int(rng.integers(-2048, 2048))
            lines.append(f"{rng.choice(_ALU_IMM)} x{rd}, x{rs1}, {imm}")
        elif kind < 0.62:
            lines.append(
                f"{rng.choice(_SHIFT_IMM)} x{rd}, x{rs1}, {int(rng.integers(0, 32))}"
            )
        elif kind < 0.68:
            lines.append(f"lui x{rd}, {int(rng.integers(0, 1 << 20))}")
        elif kind < 0.72:
            lines.append(f"auipc x{rd}, {int(rng.integers(0, 1 << 20))}")
        elif kind < 0.82:
            offset = int(rng.integers(0, 64)) * 4
            if rng.random() < 0.95:
                base = "x5"  # safe scratch pointer
            else:
                base = f"x{int(rng.integers(1, 16))}"  # may fault: parity!
            if rng.random() < 0.5:
                lines.append(f"{rng.choice(_LOADS)} x{rd}, {offset}({base})")
            else:
                lines.append(f"{rng.choice(_STORES)} x{rd}, {offset}({base})")
        elif kind < 0.92:
            # forward branch over a small always-assembled body
            label = f"skip_{label_count}"
            label_count += 1
            lines.append(
                f"{rng.choice(_BRANCHES)} x{rs1}, x{rs2}, {label}"
            )
            for _ in range(int(rng.integers(1, 4))):
                lines.append(
                    f"{rng.choice(_ALU_RR[:10])} "
                    f"x{int(rng.integers(1, 16))}, x{rs1}, x{rs2}"
                )
                i += 1
            lines.append(f"{label}:")
        else:
            # bounded down-counting loop (exercises backward branches,
            # superblock unrolling, warm block-cache replay)
            label = f"loop_{label_count}"
            label_count += 1
            counter = int(rng.integers(6, 10))  # x6..x9, never the scratch base
            lines.append(f"li x{counter}, {int(rng.integers(1, 7))}")
            lines.append(f"{label}:")
            for _ in range(int(rng.integers(1, 3))):
                lines.append(
                    f"{rng.choice(_ALU_RR)} "
                    f"x{int(rng.integers(10, 16))}, x{int(rng.integers(0, 16))}, "
                    f"x{counter}"
                )
                i += 1
            lines.append(f"addi x{counter}, x{counter}, -1")
            lines.append(f"bnez x{counter}, {label}")
            i += 2
        i += 1
    lines.append("ebreak")
    budget = 10_000 if rng.random() < 0.85 else int(rng.integers(1, 40))
    return {
        "source": "\n".join(lines),
        "registers": _random_register_file(rng),
        "max_instructions": budget,
    }


def _run_engine(case: Dict[str, Any], threaded: bool) -> Dict[str, Any]:
    from repro.riscv.assembler import assemble
    from repro.riscv.cpu import Cpu
    from repro.riscv.memory import Memory

    cpu = Cpu(Memory(size_bytes=1 << 16), record_events=True)
    cpu.load_program(assemble(case["source"]).words, 0)
    for index, value in case["registers"].items():
        cpu.write_register(index, value)
    error: Optional[str] = None
    try:
        if threaded:
            cpu.run(max_instructions=case["max_instructions"])
        else:
            cpu.run_reference(max_instructions=case["max_instructions"])
    except SimulationError as exc:
        error = str(exc)
    return {
        "registers": list(cpu.registers),
        "pc": cpu.pc,
        "cycle_count": cpu.cycle_count,
        "instruction_count": cpu.instruction_count,
        "halted": cpu.halted,
        "error": error,
        "events": cpu.events.columns().copy(),
    }


def random_lane_program(rng: np.random.Generator) -> Dict[str, Any]:
    """One randomized multi-lane case for the lane-engine oracle.

    The same program runs in every lane, but each lane starts from its
    own register file — so data-dependent branches, loop trip counts,
    memory faults and budget exhaustion all diverge across lanes, which
    is exactly the reconvergence/fallback machinery the lane engine
    must get bit-exact.
    """
    case = random_program(rng)
    lanes = int(rng.integers(2, 9))
    case["register_files"] = [_random_register_file(rng) for _ in range(lanes)]
    del case["registers"]
    return case


def _run_lane_engine(case: Dict[str, Any]) -> List[Dict[str, Any]]:
    from repro.riscv.assembler import assemble
    from repro.riscv.lanes import LaneEngine

    words = np.asarray(assemble(case["source"]).words, dtype=np.uint32)
    image = np.zeros(1 << 16, dtype=np.uint8)
    image[: 4 * words.size] = words.view(np.uint8)
    files = case["register_files"]
    engine = LaneEngine(image, lanes=len(files), record_events=True)
    for index in range(1, 32):
        values = [file.get(index, 0) for file in files]
        if any(values):
            engine.write_register(index, values)
    engine.run(max_instructions=case["max_instructions"])
    return [
        {
            "registers": engine.lane_registers(lane),
            "pc": int(engine.pcs[lane]),
            "cycle_count": int(engine.cycle_counts[lane]),
            "instruction_count": int(engine.instruction_counts[lane]),
            "halted": bool(engine.halted[lane]),
            "error": engine.errors[lane],
            "events": engine.events.lane_rows(lane).T.copy(),
        }
        for lane in range(len(files))
    ]


def _run_lane_reference(case: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [
        _run_engine(
            {
                "source": case["source"],
                "registers": file,
                "max_instructions": case["max_instructions"],
            },
            threaded=True,
        )
        for file in case["register_files"]
    ]


# ----------------------------------------------------------------------
# Retire-log conformance (the cross-engine fuzz oracle)
# ----------------------------------------------------------------------
def sample_retire_case(rng: np.random.Generator) -> Dict[str, Any]:
    """Half well-behaved programs, half targeted adversarial cases."""
    if rng.random() < 0.5:
        case = random_program(rng)
        case["kind"] = "random"
        return case
    from repro.verify.conformance import random_adversarial_program

    return random_adversarial_program(rng)


def _retire_state(run: Any) -> Dict[str, Any]:
    return {
        "registers": run.registers,
        "pc": run.pc,
        "cycle_count": run.cycle_count,
        "instruction_count": run.instruction_count,
        "halted": run.halted,
        "error": run.error,
        "retire_count": int(run.retires.shape[0]),
        "retires": run.retires,
    }


#: ``state`` payload preference when several engines ran (the first
#: active engine in this order supplies the machine state).
_RETIRE_STATE_PRIORITY = ("threaded", "compiled", "reference", "lanes")


def _retire_fast(case: Dict[str, Any]) -> Dict[str, Any]:
    """Run every active engine pair; report per-pair retire divergence.

    The pair set comes from :func:`repro.verify.conformance.
    active_engine_pairs` — all six pairings of reference / threaded /
    compiled / lanes by default, minus ``compiled`` where no C
    toolchain probes, minus anything outside the ``--engines`` filter.
    The payload's ``state`` comes from the first active engine in
    :data:`_RETIRE_STATE_PRIORITY`, so diffing against
    :func:`_retire_reference` (scalar interpreter state, all
    divergences ``None``) catches both a pair disagreeing and the fast
    engines drifting from the reference machine state.
    """
    from repro.riscv.assembler import assemble
    from repro.verify import conformance

    words = assemble(case["source"]).words
    kwargs = {"max_instructions": case["max_instructions"]}
    engines = conformance.active_engines()
    runs = {
        engine: conformance.run_scalar_engine(
            words, case["registers"], engine=engine, **kwargs
        )
        for engine in engines
        if engine in conformance.SCALAR_ENGINES
    }
    divergence: Dict[str, Optional[str]] = {}
    if "lanes" in engines:
        # Two identical lanes: lane parity catches lane-indexed
        # bookkeeping bugs that a single lane cannot.
        lanes = conformance.run_lane_engine_case(
            words, [case["registers"], case["registers"]], **kwargs
        )
        runs["lanes"] = lanes[0]
    for left, right in conformance.active_engine_pairs():
        mismatches = conformance.compare_runs(runs[left], runs[right])
        divergence[f"{left}_vs_{right}"] = (
            "; ".join(mismatches) if mismatches else None
        )
    if "lanes" in engines:
        mirror = conformance.compare_runs(lanes[0], lanes[1])
        divergence["lane0_vs_lane1"] = "; ".join(mirror) if mirror else None
    state_engine = next(e for e in _RETIRE_STATE_PRIORITY if e in runs)
    return {"divergence": divergence, "state": _retire_state(runs[state_engine])}


def _retire_reference(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.riscv.assembler import assemble
    from repro.verify import conformance

    run = conformance.run_scalar_engine(
        assemble(case["source"]).words,
        case["registers"],
        engine="reference",
        max_instructions=case["max_instructions"],
    )
    engines = conformance.active_engines()
    divergence: Dict[str, Optional[str]] = {
        f"{left}_vs_{right}": None
        for left, right in conformance.active_engine_pairs()
    }
    if "lanes" in engines:
        divergence["lane0_vs_lane1"] = None
    return {"divergence": divergence, "state": _retire_state(run)}


def sample_events(rng: np.random.Generator, max_events: int = 60) -> List[Any]:
    """A synthetic event log: random op classes, adversarial fields."""
    from repro.riscv import cycles as cy
    from repro.riscv.cpu import ExecutionEvent

    count = int(rng.integers(0, max_events + 1))
    events = []
    for _ in range(count):
        op = int(rng.integers(0, len(cy.CYCLES)))
        fields = []
        for _f in range(7):
            if rng.random() < 0.25:
                fields.append(int(rng.choice(_SPICY_VALUES)))
            else:
                fields.append(int(rng.integers(0, 1 << 32)))
        events.append(ExecutionEvent(op, *fields))
    return events


def _sample_leakage_case(rng: np.random.Generator) -> Dict[str, Any]:
    from repro.power.leakage import LeakageModel

    if rng.random() < 0.5:
        model = LeakageModel()
    else:
        model = LeakageModel(
            weight_data=float(rng.uniform(0.0, 2.0)),
            weight_transition=float(rng.uniform(0.0, 2.0)),
            weight_fetch=float(rng.uniform(0.0, 1.0)),
            weight_engine=float(rng.uniform(0.0, 2.0)),
            engine_offset=float(rng.uniform(0.0, 80.0)),
            baseline=float(rng.uniform(0.0, 10.0)),
        )
    return {"model": model, "events": sample_events(rng)}


def _sample_expand_lanes_case(rng: np.random.Generator) -> Dict[str, Any]:
    case = _sample_leakage_case(rng)
    del case["events"]
    lanes = int(rng.integers(1, 7))
    case["lane_events"] = [sample_events(rng, max_events=40) for _ in range(lanes)]
    return case


def _run_expand_lanes(case: Dict[str, Any]) -> List[Any]:
    merged: List[Any] = []
    for events in case["lane_events"]:
        merged.extend(events)
    counts = [len(events) for events in case["lane_events"]]
    return [
        {"samples": samples, "starts": starts}
        for samples, starts in case["model"].expand_lanes(merged, counts)
    ]


def _run_expand_per_lane(case: Dict[str, Any]) -> List[Any]:
    return [
        dict(zip(("samples", "starts"), case["model"].expand(events)))
        for events in case["lane_events"]
    ]


#: Bench devices for the arena/capture oracles, one per modulus.  The
#: device (and its compiled block cache) is deterministic state, so
#: reusing it across cases only skips recompilation.
_ORACLE_DEVICES: Dict[int, Any] = {}


def _oracle_device(modulus: int):
    if modulus not in _ORACLE_DEVICES:
        from repro.riscv.device import GaussianSamplerDevice

        _ORACLE_DEVICES[modulus] = GaussianSamplerDevice([modulus])
    return _ORACLE_DEVICES[modulus]


def _sample_expand_arena_case(rng: np.random.Generator) -> Dict[str, Any]:
    case = _sample_leakage_case(rng)
    del case["events"]
    case["modulus"] = int(rng.choice([PAPER_Q, 0xFFC4001]))
    case["seeds"] = [
        int(s) for s in rng.integers(1, 1 << 31, size=int(rng.integers(1, 9)))
    ]
    case["count"] = int(rng.integers(1, 4))
    return case


def _arena_batch(case: Dict[str, Any]):
    return _oracle_device(case["modulus"]).run_lanes(
        case["seeds"], case["count"], events_per_lane=False
    )


def _run_expand_arena(case: Dict[str, Any]) -> List[Any]:
    batch = _arena_batch(case)
    flat, bounds, starts = case["model"].expand_arena(
        batch.events, [run.cycle_count for run in batch.runs]
    )
    return [
        {
            "samples": flat[int(bounds[lane]) : int(bounds[lane + 1])],
            "starts": starts[lane],
        }
        for lane in range(len(case["seeds"]))
    ]


def _run_expand_arena_reference(case: Dict[str, Any]) -> List[Any]:
    batch = _arena_batch(case)
    return [
        dict(
            zip(
                ("samples", "starts"),
                case["model"].expand(batch.events.lane_log(lane)),
            )
        )
        for lane in range(len(case["seeds"]))
    ]


def _sample_fused_capture_case(rng: np.random.Generator) -> Dict[str, Any]:
    from repro.power.scope import Oscilloscope

    case = _sample_expand_arena_case(rng)
    case["scope"] = Oscilloscope(
        noise_std=float(rng.uniform(0.0, 2.0)),
        gain=float(rng.choice([1.0, 1.0, 0.75, 1.5])),
        bandwidth_window=int(rng.choice([1, 1, 3])),
        adc_bits=None if rng.random() < 0.7 else int(rng.integers(6, 13)),
    )
    case["entropy"] = int(rng.integers(0, 1 << 63))
    return case


def _captures_as_dicts(captures) -> List[Dict[str, Any]]:
    return [
        {
            "samples": c.trace.samples,
            "starts": c.event_starts,
            "values": c.values,
            "cycles": c.cycle_count,
        }
        for c in captures
    ]


def _run_fused_capture(case: Dict[str, Any]) -> List[Dict[str, Any]]:
    from repro.power.capture import _capture_lane_chunk

    return _captures_as_dicts(
        _capture_lane_chunk(
            _oracle_device(case["modulus"]),
            case["model"],
            case["scope"],
            case["seeds"],
            case["count"],
            case["entropy"],
        )
    )


def _run_threaded_capture(case: Dict[str, Any]) -> List[Dict[str, Any]]:
    from repro.power.capture import _capture_one

    device = _oracle_device(case["modulus"])
    return _captures_as_dicts(
        [
            _capture_one(
                device,
                case["model"],
                case["scope"],
                seed,
                case["count"],
                case["entropy"],
            )
            for seed in case["seeds"]
        ]
    )


def _sample_noise_v2_case(rng: np.random.Generator) -> Dict[str, Any]:
    n = int(rng.integers(60_000, 200_000))
    return {
        "entropy": int(rng.integers(0, 1 << 63)),
        "seed": int(rng.integers(0, 1 << 31)),
        "n": n,
        # Spans block boundaries (NOISE_BLOCK = 16384), so the
        # continuation probe exercises mid-stream re-entry.
        "offset": int(rng.integers(1, 40_000)),
    }


def _noise_moments(x: np.ndarray) -> Dict[str, float]:
    return {
        "mean": float(x.mean()),
        "var": float(x.var()),
        "abs_mean": float(np.abs(x).mean()),
        "extreme_frac": float((np.abs(x) > 3.0).mean()),
    }


def _noise_v2_fast(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.power import noise

    entropy, seed, n = case["entropy"], case["seed"], case["n"]
    x = noise.standard_noise(entropy, seed, n)
    off = case["offset"]
    head = noise.standard_noise(entropy, seed, off)
    tail = noise.standard_noise(entropy, seed, n - off, offset=off)
    return {
        "moments": _noise_moments(x),
        # Exact 0/1 indicator floats: the v2 contract's hard guarantees.
        "deterministic": float(
            np.array_equal(x, noise.standard_noise(entropy, seed, n))
        ),
        "offset_continuation": float(
            np.array_equal(np.concatenate([head, tail]), x)
        ),
        "distinct_across_seeds": float(
            not np.array_equal(x, noise.standard_noise(entropy, seed + 1, n))
        ),
    }


def _noise_v2_reference(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.power.capture import _noise_rng

    x = _noise_rng(case["entropy"], case["seed"]).standard_normal(case["n"])
    return {
        "moments": _noise_moments(x),
        "deterministic": 1.0,
        "offset_continuation": 1.0,
        "distinct_across_seeds": 1.0,
    }


def _noise_v2_tolerance(case: Dict[str, Any]) -> Tolerance:
    """Sampling envelope for the v1-vs-v2 marginal-distribution match.

    The streams are *independent* draws from the same N(0, 1), so each
    sample moment differs by ~sqrt(2/n) standard errors; 8 sigma keeps
    the nightly 500-case sweep deterministic-in-practice.  Everything
    outside ``moments`` (the indicator probes) stays bit-exact.
    """
    return Tolerance(
        overrides=(
            ("moments", Tolerance(rtol=0.0, atol=8.0 * math.sqrt(2.0 / case["n"]))),
        )
    )


def _sample_moving_average_case(rng: np.random.Generator) -> Dict[str, Any]:
    n = int(rng.integers(1, 400))
    style = rng.random()
    if style < 0.6:
        x = rng.normal(0.0, float(rng.uniform(0.1, 100.0)), n)
    elif style < 0.8:
        x = np.full(n, float(rng.uniform(-1e6, 1e6)))
    else:
        x = rng.normal(0.0, 1.0, n) * (10.0 ** rng.integers(-6, 7, n))
    window = int(rng.integers(1, max(2, 2 * n)))
    return {"x": x, "window": window}


#: Small NTT-friendly (q, n) pairs used by the ring oracles.  Built
#: lazily so importing the registry stays cheap.
_NTT_PAIRS: List = []


def _ntt_pairs() -> List:
    if not _NTT_PAIRS:
        from repro.ring.primes import generate_ntt_primes

        for n in (4, 8, 16, 32, 64, 128):
            for bits in (17, 23, 28):
                _NTT_PAIRS.append((generate_ntt_primes(bits, 1, n)[0], n))
    return _NTT_PAIRS


def _sample_ntt_case(rng: np.random.Generator) -> Dict[str, Any]:
    pairs = _ntt_pairs()
    modulus, n = pairs[int(rng.integers(0, len(pairs)))]
    return {
        "modulus": modulus,
        "n": n,
        "a": rng.integers(0, modulus.value, n, dtype=np.int64),
        "b": rng.integers(0, modulus.value, n, dtype=np.int64),
    }


def schoolbook_negacyclic_multiply(
    a: np.ndarray, b: np.ndarray, q: int
) -> np.ndarray:
    """O(n²) reference for multiplication modulo ``x^n + 1`` over Z_q.

    The definitional double loop with the ``x^n = -1`` wraparound; used
    as the semantic anchor the NTT pipeline is checked against.
    """
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            term = ai * int(b[j])
            k = i + j
            if k < n:
                out[k] = (out[k] + term) % q
            else:
                out[k - n] = (out[k - n] - term) % q
    return np.array(out, dtype=np.int64)


def _sample_persistence_case(rng: np.random.Generator) -> Dict[str, Any]:
    """A synthetic profiled attack: random templates, classifier, refiner."""
    from repro.attack.branch import NEGATIVE, POSITIVE, ZERO, BranchClassifier
    from repro.attack.pipeline import SingleTraceAttack
    from repro.attack.segmentation import AnchorRefiner, Segmenter, SegmenterConfig
    from repro.attack.template import TemplateSet

    config = SegmenterConfig(
        slice_before=int(rng.integers(40, 120)),
        slice_after=int(rng.integers(60, 180)),
    )
    length = config.slice_before + config.slice_after

    def spd(k: int) -> np.ndarray:
        basis = rng.normal(0.0, 1.0, (k, k))
        return basis @ basis.T + k * np.eye(k)

    def template_set(labels: List[int], k: int, priors: bool, pooled: bool):
        pois = sorted(
            int(p) for p in rng.choice(length, size=k, replace=False)
        )
        means = {label: rng.normal(0.0, 5.0, k) for label in labels}
        prior_map = None
        if priors:
            raw = rng.uniform(0.05, 1.0, len(labels))
            prior_map = {
                label: float(p / raw.sum()) for label, p in zip(labels, raw)
            }
        class_precisions = class_log_dets = None
        if not pooled:
            class_precisions = {label: spd(k) for label in labels}
            class_log_dets = {
                label: float(rng.normal(0.0, 2.0)) for label in labels
            }
        return TemplateSet(
            pois=pois,
            means=means,
            precision=spd(k),
            priors=prior_map,
            class_precisions=class_precisions,
            class_log_dets=class_log_dets,
        )

    value_labels = sorted(
        int(v)
        for v in rng.choice(np.arange(-14, 15), size=int(rng.integers(3, 9)),
                            replace=False)
    )
    attack = SingleTraceAttack(
        acquisition=None,
        segmenter=Segmenter(config),
        poi_count=int(rng.integers(4, 30)),
        poi_method=["sosd", "sost", "dom"][int(rng.integers(0, 3))],
        use_prior=bool(rng.random() < 0.5),
        sigma=float(rng.uniform(1.0, 5.0)),
        pooled_covariance=bool(rng.random() < 0.5),
        standardize=bool(rng.random() < 0.5),
    )
    attack.templates = template_set(
        value_labels,
        int(rng.integers(2, 9)),
        priors=attack.use_prior,
        pooled=attack.pooled_covariance,
    )
    branch_templates = template_set(
        [NEGATIVE, ZERO, POSITIVE], int(rng.integers(2, 6)),
        priors=False, pooled=True,
    )
    attack.branch_classifier = BranchClassifier(
        branch_templates, attack.branch_region[0], attack.branch_region[1]
    )
    before = int(rng.integers(40, 200))
    after = int(rng.integers(10, 80))
    attack.refiner = AnchorRefiner(
        rng.normal(0.0, 1.0, before + after), before=before, after=after
    )
    return {"attack": attack}


def attack_state(attack) -> Dict[str, Any]:
    """Everything ``save_attack`` persists, as one comparable structure."""
    templates = attack.templates
    branch = attack.branch_classifier.templates
    return {
        "config": {
            "segmenter": attack.segmenter.config,
            "poi_method": attack.poi_method,
            "poi_count": attack.poi_count,
            "use_prior": attack.use_prior,
            "sigma": attack.sigma,
            "branch_region": list(attack.branch_region),
            "standardize": attack.standardize,
            "pooled_covariance": attack.pooled_covariance,
        },
        "value": {
            "pois": list(templates.pois),
            "means": {int(k): v for k, v in templates.means.items()},
            "precision": templates.precision,
            "priors": templates.priors,
            "class_precisions": templates.class_precisions,
            "class_log_dets": templates.class_log_dets,
        },
        "branch": {
            "pois": list(branch.pois),
            "means": {int(k): v for k, v in branch.means.items()},
            "precision": branch.precision,
        },
        "refiner": {
            "reference": attack.refiner.reference,
            "before": attack.refiner.before,
            "after": attack.refiner.after,
        },
    }


def _persistence_roundtrip(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.attack.persistence import load_attack, save_attack

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "attack.npz"
        save_attack(case["attack"], path)
        return attack_state(load_attack(None, path))


def _sample_profile_case(rng: np.random.Generator) -> Dict[str, Any]:
    return {
        "standardize": bool(rng.random() < 0.5),
        "pooled": bool(rng.random() < 0.5),
        "num_traces": int(rng.integers(24, 40)),
        "coeffs_per_trace": 4,
        "first_seed": int(rng.integers(1, 200_000)),
    }


def _profile_with(case: Dict[str, Any], reference: bool) -> Dict[str, Any]:
    from repro.attack.pipeline import SingleTraceAttack
    from repro.power.capture import TraceAcquisition
    from repro.power.scope import Oscilloscope
    from repro.riscv.device import GaussianSamplerDevice

    bench = TraceAcquisition(
        GaussianSamplerDevice([PAPER_Q]),
        scope=Oscilloscope(noise_std=1.0),
        rng=0,
    )
    attack = SingleTraceAttack(
        bench,
        poi_count=12,
        standardize=case["standardize"],
        pooled_covariance=case["pooled"],
    )
    profile = attack.profile_reference if reference else attack.profile
    report = profile(
        num_traces=case["num_traces"],
        coeffs_per_trace=case["coeffs_per_trace"],
        first_seed=case["first_seed"],
    )
    state = attack_state(attack)
    state["report"] = {
        "slice_count": report.slice_count,
        "classes": report.classes,
        "pois": report.pois,
    }
    return state


_CAMPAIGN_ORACLE_ATTACK = None


def _campaign_oracle_attack():
    """One profiled attack shared by every campaign-oracle case (the
    profile is a pure function of this fixed configuration)."""
    global _CAMPAIGN_ORACLE_ATTACK
    if _CAMPAIGN_ORACLE_ATTACK is None:
        from repro.attack.pipeline import SingleTraceAttack
        from repro.power.capture import TraceAcquisition
        from repro.power.scope import Oscilloscope
        from repro.riscv.device import GaussianSamplerDevice

        bench = TraceAcquisition(
            GaussianSamplerDevice([PAPER_Q]),
            scope=Oscilloscope(noise_std=1.0),
            rng=0,
        )
        attack = SingleTraceAttack(bench, poi_count=12)
        attack.profile(num_traces=60, coeffs_per_trace=4, first_seed=50_000)
        _CAMPAIGN_ORACLE_ATTACK = attack
    return _CAMPAIGN_ORACLE_ATTACK


def _campaign_payload(report) -> Dict[str, Any]:
    """The deterministic part of a campaign report (timings, wall
    clock, worker counts and schedule metadata excluded by contract)."""
    return {
        "outcomes": [
            [value, sign, estimate, sorted(table.items())]
            for value, sign, estimate, table in report.outcomes
        ],
        "failures": [[seed, message] for seed, message in report.failures],
        "confusion": sorted(
            (list(pair), count) for pair, count in report.confusion.counts().items()
        ),
        "sign_accuracy": report.sign_accuracy,
        "value_accuracy": report.value_accuracy,
        "coefficients_attacked": report.coefficients_attacked,
        "traces_attacked": report.traces_attacked,
        "traces_failed": report.traces_failed,
    }


def _sample_orchestrated_case(rng: np.random.Generator) -> Dict[str, Any]:
    return {
        "trace_count": int(rng.integers(12, 33)),
        "coeffs_per_trace": 4,
        "first_seed": int(rng.integers(1, 200_000)),
        "workers": int(rng.integers(1, 3)),
        "grain": int(rng.integers(4, 17)),
        "interrupt": bool(rng.random() < 0.5),
    }


def _run_orchestrated_case(case: Dict[str, Any]) -> Dict[str, Any]:
    import time as _time

    from repro.attack.orchestrator import Orchestrator, run_orchestrated

    attack = _campaign_oracle_attack()
    if not case["interrupt"]:
        report = run_orchestrated(
            attack,
            case["trace_count"],
            coeffs_per_trace=case["coeffs_per_trace"],
            first_seed=case["first_seed"],
            workers=case["workers"],
            grain=case["grain"],
            engine="lanes",
        )
        return _campaign_payload(report)
    # Interrupted flavour: cancel an in-flight checkpointed job at an
    # arbitrary point, then resume — the contract is that the resumed
    # report is identical wherever the cancellation landed (including
    # "after completion", which exercises the pure checkpoint reload).
    with tempfile.TemporaryDirectory() as tmp:
        with Orchestrator(
            attack, workers=case["workers"], grain=case["grain"], engine="lanes"
        ) as orchestrator:
            job = orchestrator.submit(
                case["trace_count"],
                coeffs_per_trace=case["coeffs_per_trace"],
                first_seed=case["first_seed"],
                campaign_dir=tmp,
                shard_size=max(4, case["grain"]),
            )
            _time.sleep(0.02)
            job.cancel()
            try:
                job.result(timeout=60.0)
            except Exception:
                pass
        report = run_orchestrated(
            attack,
            case["trace_count"],
            coeffs_per_trace=case["coeffs_per_trace"],
            first_seed=case["first_seed"],
            workers=case["workers"],
            grain=case["grain"],
            engine="lanes",
            campaign_dir=tmp,
            resume=True,
            shard_size=max(4, case["grain"]),
        )
        return _campaign_payload(report)


def _run_campaign_reference(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.attack.campaign import run_campaign

    report = run_campaign(
        _campaign_oracle_attack(),
        case["trace_count"],
        coeffs_per_trace=case["coeffs_per_trace"],
        first_seed=case["first_seed"],
    )
    return _campaign_payload(report)


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------
register(
    Oracle(
        name="cpu.run",
        description="threaded-code RV32IM engine vs the scalar interpreter "
        "(registers, pc, cycles, EventLog, faults)",
        sample=random_program,
        fast=lambda case: _run_engine(case, threaded=True),
        reference=lambda case: _run_engine(case, threaded=False),
        fuzzable=True,
        summarize=lambda case: (
            f"{len(case['source'].splitlines())} source lines, "
            f"budget {case['max_instructions']}"
        ),
    )
)

register(
    Oracle(
        name="cpu.retire_log",
        description="RVFI-style retire streams across all four engines "
        "(reference vs threaded vs compiled vs lanes, plus mirrored-lane "
        "parity; honors the fuzz --engines filter)",
        sample=sample_retire_case,
        fast=_retire_fast,
        reference=_retire_reference,
        fuzzable=True,
        summarize=lambda case: (
            f"kind={case.get('kind', 'random')}, "
            f"{len(case['source'].splitlines())} source lines, "
            f"budget {case['max_instructions']}"
        ),
    )
)

register(
    Oracle(
        name="cpu.run_lanes",
        description="lane-vectorized RV32IM engine vs per-lane threaded "
        "runs (registers, pc, cycles, events, faults for every lane)",
        sample=random_lane_program,
        fast=_run_lane_engine,
        reference=_run_lane_reference,
        fuzzable=True,
        summarize=lambda case: (
            f"{len(case['register_files'])} lanes, "
            f"{len(case['source'].splitlines())} source lines, "
            f"budget {case['max_instructions']}"
        ),
    )
)

register(
    Oracle(
        name="leakage.expand",
        description="vectorized leakage expansion vs the scalar per-event "
        "reference (bit-exact float64)",
        sample=_sample_leakage_case,
        fast=lambda case: case["model"].expand(case["events"]),
        reference=lambda case: case["model"].expand_reference(case["events"]),
        summarize=lambda case: f"{len(case['events'])} events",
    )
)

register(
    Oracle(
        name="leakage.expand_lanes",
        description="batched multi-lane leakage expansion vs per-lane "
        "expand calls (bit-exact float64 per lane)",
        sample=_sample_expand_lanes_case,
        fast=_run_expand_lanes,
        reference=_run_expand_per_lane,
        summarize=lambda case: (
            f"{len(case['lane_events'])} lanes, "
            f"{sum(len(e) for e in case['lane_events'])} events"
        ),
    )
)

def _moving_average_tolerance(case: Dict[str, Any]) -> Tolerance:
    """Input-scaled envelope for the cumulative-sum sliding mean.

    The cumsum formulation subtracts two running sums whose magnitude
    can reach ``sum(|x|)``, so its rounding error is *absolute* in that
    scale — up to ``~eps * sum(|x|)`` regardless of how small the
    window mean itself is (catastrophic cancellation).  The convolve
    reference carries a comparable ``eps * window * max|x|`` bound, so
    neither side can promise a fixed 1e-9 on adversarial dynamic range
    (uncovered by Hypothesis: ``x=[3.3554431e7, 0, 1], window=2``
    diverges by 1.6e-9).  The honest comparison is therefore rtol 1e-9
    plus an absolute term scaled to the total input mass, with a
    sqrt(n) factor for error accumulation across the cumulative sum.
    """
    x = np.asarray(case["x"], dtype=np.float64)
    eps = float(np.finfo(np.float64).eps)
    scale = float(np.abs(x).sum())
    atol = max(1e-12, eps * scale * max(8.0, math.sqrt(x.size)))
    return Tolerance(rtol=1e-9, atol=atol)


register(
    Oracle(
        name="segmentation.moving_average",
        description="cumulative-sum sliding mean vs np.convolve "
        "(input-scaled cancellation envelope)",
        sample=_sample_moving_average_case,
        fast=lambda case: __import__(
            "repro.attack.segmentation", fromlist=["_moving_average"]
        )._moving_average(case["x"], case["window"]),
        reference=lambda case: __import__(
            "repro.attack.segmentation", fromlist=["_moving_average_reference"]
        )._moving_average_reference(case["x"], case["window"]),
        tolerance=_moving_average_tolerance,
        summarize=lambda case: f"n={len(case['x'])}, window={case['window']}",
    )
)


def _ntt_fast(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.ring.ntt import get_ntt_context

    context = get_ntt_context(case["modulus"], case["n"])
    forward = context.forward(case["a"])
    return {
        "forward": forward,
        "inverse": context.inverse(case["b"]),
        "roundtrip": context.inverse(forward),
    }


def _ntt_reference(case: Dict[str, Any]) -> Dict[str, Any]:
    from repro.ring.ntt import get_ntt_context

    context = get_ntt_context(case["modulus"], case["n"])
    return {
        "forward": context.forward_reference(case["a"]),
        "inverse": context.inverse_reference(case["b"]),
        "roundtrip": case["a"],
    }


register(
    Oracle(
        name="ring.ntt",
        description="level-order vectorized NTT butterflies vs the per-group "
        "reference loops, plus inverse∘forward identity",
        sample=_sample_ntt_case,
        fast=_ntt_fast,
        reference=_ntt_reference,
        summarize=lambda case: f"q={case['modulus'].value}, n={case['n']}",
    )
)

register(
    Oracle(
        name="ring.negacyclic_multiply",
        description="NTT-domain negacyclic product vs the schoolbook O(n²) "
        "convolution",
        sample=_sample_ntt_case,
        fast=lambda case: __import__(
            "repro.ring.ntt", fromlist=["get_ntt_context"]
        ).get_ntt_context(case["modulus"], case["n"]).multiply(
            case["a"], case["b"]
        ),
        reference=lambda case: schoolbook_negacyclic_multiply(
            case["a"], case["b"], case["modulus"].value
        ),
        summarize=lambda case: f"q={case['modulus'].value}, n={case['n']}",
    )
)

register(
    Oracle(
        name="attack.persistence",
        description="profiled-attack save/load round-trip through the .npz "
        "v2 archive (bit-exact state)",
        sample=_sample_persistence_case,
        fast=_persistence_roundtrip,
        reference=lambda case: attack_state(case["attack"]),
        summarize=lambda case: (
            f"{len(case['attack'].templates.labels)} value classes, "
            f"pooled={case['attack'].pooled_covariance}"
        ),
    )
)

#: Per-class covariances are estimated from only a handful of slices,
#: so inverting them amplifies the streaming-vs-materialized last-bit
#: moment differences by the matrix condition number (uncovered by the
#: deep sweep: case seed 8 drifts ~3e-9 relative in a class precision).
#: The raw moments (means, POIs, pooled precision) stay on the tight
#: 1e-9 envelope; only the inverted per-class blocks get headroom.
_PROFILE_TOLERANCE = Tolerance(
    rtol=1e-9,
    atol=1e-12,
    overrides=(
        ("class_precisions", Tolerance(rtol=1e-5, atol=1e-9)),
        ("class_log_dets", Tolerance(rtol=1e-6, atol=1e-9)),
    ),
)

register(
    Oracle(
        name="attack.profile",
        description="streaming-moments profiling vs the materialized "
        "reference flow (1e-9 envelope, condition-number headroom on "
        "inverted per-class templates; expensive)",
        sample=_sample_profile_case,
        fast=lambda case: _profile_with(case, reference=False),
        reference=lambda case: _profile_with(case, reference=True),
        tolerance=_PROFILE_TOLERANCE,
        expensive=True,
        summarize=lambda case: (
            f"{case['num_traces']}x{case['coeffs_per_trace']} traces, "
            f"standardize={case['standardize']}, pooled={case['pooled']}"
        ),
    )
)

register(
    Oracle(
        name="campaign.orchestrated",
        description="shared-memory work-stealing orchestrator (persistent "
        "workers, arena records, random grain, optional cancel+resume "
        "through the checkpoint) vs serial run_campaign — bit-identical "
        "deterministic report payload; expensive",
        sample=_sample_orchestrated_case,
        fast=_run_orchestrated_case,
        reference=_run_campaign_reference,
        expensive=True,
        summarize=lambda case: (
            f"{case['trace_count']}x{case['coeffs_per_trace']} traces, "
            f"workers={case['workers']}, grain={case['grain']}, "
            f"interrupt={case['interrupt']}"
        ),
    )
)

register(
    Oracle(
        name="power.noise_v2",
        description="counter-based Philox noise stream v2 vs the retained "
        "v1 sequential generator (statistical contract: matching N(0,1) "
        "marginals within 8 sigma; bit-exact determinism, offset "
        "continuation and seed-separation indicators)",
        sample=_sample_noise_v2_case,
        fast=_noise_v2_fast,
        reference=_noise_v2_reference,
        tolerance=_noise_v2_tolerance,
        summarize=lambda case: (
            f"n={case['n']}, offset={case['offset']}, "
            f"seed={case['seed']}"
        ),
    )
)

register(
    Oracle(
        name="leakage.expand_arena",
        description="fused deferred-record arena expansion (compiled "
        "per-block emitters) vs per-lane materialize-then-expand on real "
        "kernel batches (bit-exact)",
        sample=_sample_expand_arena_case,
        fast=_run_expand_arena,
        reference=_run_expand_arena_reference,
        summarize=lambda case: (
            f"{len(case['seeds'])} lanes x count={case['count']}, "
            f"q={case['modulus']}"
        ),
    )
)

register(
    Oracle(
        name="capture.fused",
        description="fused lane-major capture (expand_arena + batched "
        "scope chain) vs the per-trace threaded capture path, same "
        "keyed noise streams (bit-exact)",
        sample=_sample_fused_capture_case,
        fast=_run_fused_capture,
        reference=_run_threaded_capture,
        summarize=lambda case: (
            f"{len(case['seeds'])} lanes x count={case['count']}, "
            f"noise_std={case['scope'].noise_std:.2f}, "
            f"gain={case['scope'].gain}, "
            f"window={case['scope'].bandwidth_window}, "
            f"adc_bits={case['scope'].adc_bits}"
        ),
    )
)

# Per-backend kernel oracles (backend.native.*, backend.numba.*): one
# oracle per (available backend, kernel group), probing the compute
# backends on import.  Registered last so the module can reuse the
# samplers above; a host with neither C compiler nor numba registers
# nothing extra.
from repro.verify import backend_oracles as _backend_oracles  # noqa: E402,F401
