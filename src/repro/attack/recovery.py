"""Algebraic message recovery from a recovered error polynomial.

Section III-A of the paper: once the coefficients of ``e2`` are known,

    u = (c1 - e2) / p1            (equation 2, in R_q)
    m = round(t/q * (c0 - p0*u))  (equation 3, with e1 absorbed by the
                                   rounding since ||e1|| << Delta/2)

The division by ``p1`` is well defined whenever all of ``p1``'s NTT
evaluations are nonzero, which holds with overwhelming probability for
a uniform public polynomial.

:class:`MessageRecovery` precomputes the NTT-domain inverse of ``p1``
so that the search stage can test thousands of ``e2`` candidates
cheaply; the module-level functions are one-shot conveniences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.bfv.ciphertext import Ciphertext
from repro.bfv.keys import PublicKey
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import AttackError
from repro.ring.poly import RingPoly


class MessageRecovery:
    """Recovers ``u``, ``m`` and the implied ``e1`` from ``e2`` candidates.

    Precomputes ``p1^-1`` in the NTT domain once per (ciphertext,
    public key) pair.
    """

    def __init__(
        self, context: BfvContext, ciphertext: Ciphertext, public_key: PublicKey
    ) -> None:
        self.context = context
        self.ciphertext = ciphertext
        self.public_key = public_key
        self._inv_p1_hat: List[np.ndarray] = []
        self._c1_hat: List[np.ndarray] = []
        for i, (m, ntt) in enumerate(zip(context.basis.moduli, context.ntts)):
            p1_hat = ntt.forward(public_key.p1.residues[i])
            if np.any(p1_hat == 0):
                raise AttackError(
                    "p1 is not invertible in R_q (zero NTT evaluation); "
                    "probability ~ n/q, re-key and retry"
                )
            self._inv_p1_hat.append(
                np.array([m.inv(int(v)) for v in p1_hat], dtype=np.int64)
            )
            self._c1_hat.append(ntt.forward(ciphertext.c1.residues[i]))

    # ------------------------------------------------------------------
    def u_from_e2(self, e2: Sequence[int]) -> RingPoly:
        """Equation (2): ``u = (c1 - e2) * p1^-1`` in R_q."""
        ctx = self.context
        e2_poly = RingPoly.from_int_coeffs(ctx.basis, ctx.n, list(e2))
        out = np.empty_like(e2_poly.residues)
        for i, (m, ntt) in enumerate(zip(ctx.basis.moduli, ctx.ntts)):
            e2_hat = ntt.forward(e2_poly.residues[i])
            num_hat = (self._c1_hat[i] - e2_hat) % m.value
            out[i] = ntt.inverse((num_hat * self._inv_p1_hat[i]) % m.value)
        return RingPoly(ctx.basis, ctx.n, out)

    def message_from_u(self, u: RingPoly) -> Plaintext:
        """Equation (3): round away ``Delta*m + e1`` after removing ``p0*u``."""
        ctx = self.context
        masked = self.ciphertext.c0 - self.public_key.p0.multiply(u, ctx.ntts)
        q, t = ctx.q, ctx.t
        coeffs = [((t * x + q // 2) // q) % t for x in masked.to_bigint_coeffs()]
        return Plaintext(coeffs, t)

    def message_from_e2(self, e2: Sequence[int]) -> Plaintext:
        """Full equation-(3) recovery from an ``e2`` candidate."""
        return self.message_from_u(self.u_from_e2(e2))

    def implied_e1(self, u: RingPoly, message: Plaintext) -> List[int]:
        """``e1 = c0 - Delta*m - p0*u`` (centered); small iff consistent."""
        ctx = self.context
        scaled_m = RingPoly.from_bigint_coeffs(
            ctx.basis, ctx.n, [ctx.delta * int(c) for c in message.coeffs]
        )
        residual = (
            self.ciphertext.c0
            - self.public_key.p0.multiply(u, ctx.ntts)
            - scaled_m
        )
        return residual.to_centered_coeffs()

    def is_plausible(self, e2: Sequence[int], bound: Optional[float] = None) -> bool:
        """Keyless validity check of an ``e2`` candidate.

        A wrong candidate makes the implied ``u`` non-ternary (the cheap
        first filter) or the implied ``e1`` exceed the sampler's
        clipping bound.
        """
        max_dev = bound if bound is not None else self.context.params.noise_max_deviation
        u = self.u_from_e2(e2)
        if any(abs(c) > 1 for c in u.to_centered_coeffs()):
            return False
        message = self.message_from_u(u)
        e1 = self.implied_e1(u, message)
        return all(abs(c) <= max_dev for c in e1)


# ----------------------------------------------------------------------
# One-shot conveniences
# ----------------------------------------------------------------------
def recover_u(
    context: BfvContext,
    ciphertext: Ciphertext,
    public_key: PublicKey,
    e2: Sequence[int],
) -> RingPoly:
    """Solve equation (2) for the encryption sample ``u``."""
    return MessageRecovery(context, ciphertext, public_key).u_from_e2(e2)


def recover_message(
    context: BfvContext,
    ciphertext: Ciphertext,
    public_key: PublicKey,
    e2: Sequence[int],
) -> Plaintext:
    """Solve equation (3): recover the plaintext from ``e2`` alone.

    ``e1`` never needs to be recovered exactly: after removing
    ``p0 * u`` from ``c0``, the residual ``Delta*m + e1`` rounds to ``m``
    as long as ``||e1||_inf < Delta/2``.
    """
    return MessageRecovery(context, ciphertext, public_key).message_from_e2(e2)


def residual_e1(
    context: BfvContext,
    ciphertext: Ciphertext,
    public_key: PublicKey,
    e2: Sequence[int],
    message: Plaintext,
) -> List[int]:
    """The implied ``e1`` for a candidate (diagnostic)."""
    recovery = MessageRecovery(context, ciphertext, public_key)
    return recovery.implied_e1(recovery.u_from_e2(e2), message)


def recovery_is_plausible(
    context: BfvContext,
    ciphertext: Ciphertext,
    public_key: PublicKey,
    e2: Sequence[int],
    bound: Optional[float] = None,
) -> bool:
    """Self-check an e2 candidate without the secret key."""
    try:
        recovery = MessageRecovery(context, ciphertext, public_key)
    except AttackError:
        return False
    return recovery.is_plausible(e2, bound)
