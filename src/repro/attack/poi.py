"""Point-of-interest (POI) selection for template attacks.

The paper uses the sum-of-squared-differences (SOSD) method [30] to pick
the trace samples with the highest inter-class leakage; SOST (normalised
by variance) and DOM (difference of means) are provided for the ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import AttackError


def _class_means(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    if not traces_by_label:
        raise AttackError("no profiling classes given")
    return np.vstack([traces.mean(axis=0) for traces in traces_by_label.values()])


def _pick_spread(scores: np.ndarray, count: int, min_distance: int) -> List[int]:
    """Greedy top-score picking with a minimum inter-POI spacing."""
    order = np.argsort(scores)[::-1]
    chosen: List[int] = []
    for index in order:
        index = int(index)
        if all(abs(index - c) >= min_distance for c in chosen):
            chosen.append(index)
            if len(chosen) == count:
                break
    return sorted(chosen)


def sosd_scores(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    """Per-sample SOSD score: sum over class pairs of squared mean difference."""
    means = _class_means(traces_by_label)
    count = means.shape[0]
    scores = np.zeros(means.shape[1])
    for i in range(count):
        for j in range(i + 1, count):
            scores += (means[i] - means[j]) ** 2
    return scores


def select_pois_sosd(
    traces_by_label: Dict[int, np.ndarray], count: int, min_distance: int = 2
) -> List[int]:
    """Select ``count`` POIs by SOSD (the paper's method)."""
    return _pick_spread(sosd_scores(traces_by_label), count, min_distance)


def sost_scores(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    """SOST: squared mean differences normalised by the pooled variances."""
    means = _class_means(traces_by_label)
    variances = np.vstack(
        [traces.var(axis=0) + 1e-12 for traces in traces_by_label.values()]
    )
    counts = np.array([traces.shape[0] for traces in traces_by_label.values()])
    labels = list(traces_by_label)
    scores = np.zeros(means.shape[1])
    for i in range(len(labels)):
        for j in range(i + 1, len(labels)):
            denom = variances[i] / counts[i] + variances[j] / counts[j]
            scores += (means[i] - means[j]) ** 2 / denom
    return scores


def select_pois_sost(
    traces_by_label: Dict[int, np.ndarray], count: int, min_distance: int = 2
) -> List[int]:
    """Select POIs by SOST (variance-normalised ablation variant)."""
    return _pick_spread(sost_scores(traces_by_label), count, min_distance)


def dom_scores(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    """DOM: sum of absolute pairwise mean differences."""
    means = _class_means(traces_by_label)
    count = means.shape[0]
    scores = np.zeros(means.shape[1])
    for i in range(count):
        for j in range(i + 1, count):
            scores += np.abs(means[i] - means[j])
    return scores


def select_pois_dom(
    traces_by_label: Dict[int, np.ndarray], count: int, min_distance: int = 2
) -> List[int]:
    """Select POIs by difference-of-means (ablation variant)."""
    return _pick_spread(dom_scores(traces_by_label), count, min_distance)


POI_METHODS = {
    "sosd": select_pois_sosd,
    "sost": select_pois_sost,
    "dom": select_pois_dom,
}
