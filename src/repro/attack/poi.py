"""Point-of-interest (POI) selection for template attacks.

The paper uses the sum-of-squared-differences (SOSD) method [30] to pick
the trace samples with the highest inter-class leakage; SOST (normalised
by variance) and DOM (difference of means) are provided for the ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import AttackError


def _class_means(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    if not traces_by_label:
        raise AttackError("no profiling classes given")
    return np.vstack([traces.mean(axis=0) for traces in traces_by_label.values()])


def _pick_spread(scores: np.ndarray, count: int, min_distance: int) -> List[int]:
    """Greedy top-score picking with a minimum inter-POI spacing."""
    order = np.argsort(scores)[::-1]
    chosen: List[int] = []
    for index in order:
        index = int(index)
        if all(abs(index - c) >= min_distance for c in chosen):
            chosen.append(index)
            if len(chosen) == count:
                break
    return sorted(chosen)


def sosd_scores(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    """Per-sample SOSD score: sum over class pairs of squared mean difference."""
    means = _class_means(traces_by_label)
    count = means.shape[0]
    scores = np.zeros(means.shape[1])
    for i in range(count):
        for j in range(i + 1, count):
            scores += (means[i] - means[j]) ** 2
    return scores


def select_pois_sosd(
    traces_by_label: Dict[int, np.ndarray], count: int, min_distance: int = 2
) -> List[int]:
    """Select ``count`` POIs by SOSD (the paper's method)."""
    return _pick_spread(sosd_scores(traces_by_label), count, min_distance)


def sost_scores(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    """SOST: squared mean differences normalised by the pooled variances."""
    means = _class_means(traces_by_label)
    variances = np.vstack(
        [traces.var(axis=0) + 1e-12 for traces in traces_by_label.values()]
    )
    counts = np.array([traces.shape[0] for traces in traces_by_label.values()])
    labels = list(traces_by_label)
    scores = np.zeros(means.shape[1])
    for i in range(len(labels)):
        for j in range(i + 1, len(labels)):
            denom = variances[i] / counts[i] + variances[j] / counts[j]
            scores += (means[i] - means[j]) ** 2 / denom
    return scores


def select_pois_sost(
    traces_by_label: Dict[int, np.ndarray], count: int, min_distance: int = 2
) -> List[int]:
    """Select POIs by SOST (variance-normalised ablation variant)."""
    return _pick_spread(sost_scores(traces_by_label), count, min_distance)


def dom_scores(traces_by_label: Dict[int, np.ndarray]) -> np.ndarray:
    """DOM: sum of absolute pairwise mean differences."""
    means = _class_means(traces_by_label)
    count = means.shape[0]
    scores = np.zeros(means.shape[1])
    for i in range(count):
        for j in range(i + 1, count):
            scores += np.abs(means[i] - means[j])
    return scores


def select_pois_dom(
    traces_by_label: Dict[int, np.ndarray], count: int, min_distance: int = 2
) -> List[int]:
    """Select POIs by difference-of-means (ablation variant)."""
    return _pick_spread(dom_scores(traces_by_label), count, min_distance)


POI_METHODS = {
    "sosd": select_pois_sosd,
    "sost": select_pois_sost,
    "dom": select_pois_dom,
}


# ----------------------------------------------------------------------
# Moments-based selection: the same statistics computed from streaming
# sufficient statistics (per-class count/mean/variance) instead of
# materialized trace matrices.  Every score above depends only on these
# moments, so the streaming profiling path selects POIs without ever
# holding the profiling set in memory; results match the matrix path up
# to float accumulation error.
def _stacked_stats(moments_by_label: Dict[int, "object"]):
    """Stack per-class streaming moments into (means, variances, counts)."""
    if not moments_by_label:
        raise AttackError("no profiling classes given")
    labels = list(moments_by_label)
    means = np.vstack([np.asarray(moments_by_label[l].mean) for l in labels])
    variances = np.vstack(
        [np.asarray(moments_by_label[l].variances()) + 1e-12 for l in labels]
    )
    counts = np.array([moments_by_label[l].count for l in labels])
    return means, variances, counts


def _pairwise_scores(
    means: np.ndarray,
    kind: str,
    variances: np.ndarray = None,
    counts: np.ndarray = None,
) -> np.ndarray:
    n = means.shape[0]
    scores = np.zeros(means.shape[1])
    for i in range(n):
        for j in range(i + 1, n):
            diff = means[i] - means[j]
            if kind == "sosd":
                scores += diff**2
            elif kind == "dom":
                scores += np.abs(diff)
            else:  # sost
                denom = variances[i] / counts[i] + variances[j] / counts[j]
                scores += diff**2 / denom
    return scores


def select_pois_sosd_moments(moments_by_label, count: int, min_distance: int = 2):
    """SOSD selection from streaming per-class moments."""
    means, _, _ = _stacked_stats(moments_by_label)
    return _pick_spread(_pairwise_scores(means, "sosd"), count, min_distance)


def select_pois_sost_moments(moments_by_label, count: int, min_distance: int = 2):
    """SOST selection from streaming per-class moments."""
    means, variances, counts = _stacked_stats(moments_by_label)
    return _pick_spread(
        _pairwise_scores(means, "sost", variances, counts), count, min_distance
    )


def select_pois_dom_moments(moments_by_label, count: int, min_distance: int = 2):
    """DOM selection from streaming per-class moments."""
    means, _, _ = _stacked_stats(moments_by_label)
    return _pick_spread(_pairwise_scores(means, "dom"), count, min_distance)


POI_METHODS_MOMENTS = {
    "sosd": select_pois_sosd_moments,
    "sost": select_pois_sost_moments,
    "dom": select_pois_dom_moments,
}
