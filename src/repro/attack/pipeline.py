"""The end-to-end single-trace attack (section III of the paper).

``SingleTraceAttack`` owns the whole chain:

- *profiling* (template building): capture many sampling executions on
  the profiled device, segment them, label every aligned slice with the
  ground-truth coefficient (the profiling adversary controls the
  device), learn the branch centroids, select POIs via SOSD and build
  the value templates;
- *attack*: given one trace of an unknown encryption, segment it,
  classify each coefficient's branch (sign / zero), then match the
  value templates restricted to the recovered sign, returning both hard
  estimates (Table I) and per-coefficient probability tables (Table II,
  the input to the LWE-with-hints stage).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.attack.branch import NEGATIVE, POSITIVE, ZERO, BranchClassifier, sign_of
from repro.attack.poi import POI_METHODS, POI_METHODS_MOMENTS
from repro.attack.segmentation import AnchorRefiner, Segmenter, SegmenterConfig
from repro.attack.template import (
    MomentAccumulator,
    RunningMoments,
    TemplateSet,
    gaussian_priors,
)
from repro.errors import AttackError
from repro.power.capture import TraceAcquisition


@dataclass
class AttackResult:
    """Outcome of one single-trace attack."""

    signs: List[int]  # branch decision per coefficient
    estimates: List[int]  # most likely coefficient value
    probabilities: List[Dict[int, float]]  # full table per coefficient

    def __len__(self) -> int:
        return len(self.estimates)


@dataclass
class ProfilingReport:
    """What profiling produced (sizes, classes, diagnostics).

    ``timings`` (streaming path only) holds per-stage wall seconds:
    ``capture``, ``segment`` (includes the moment accumulation) and
    ``build`` (POI selection + template construction).
    """

    slice_count: int
    classes: List[int]
    pois: List[int]
    branch_separation: float
    timings: Optional[Dict[str, float]] = None


def _reference_pool_size(num_traces: int) -> int:
    """Traces held back for anchor-reference learning (pass 1).

    ``max(8, 5%)`` as before, now capped at 64 so the materialized part
    of profiling stays O(1) no matter how large the campaign is.
    """
    return min(max(8, num_traces // 20), 64)


class SingleTraceAttack:
    """Profiled single-trace attack on the Gaussian sampler.

    Parameters
    ----------
    acquisition:
        The measurement bench (device + leakage + scope).
    segmenter:
        Trace segmentation; defaults to :class:`SegmenterConfig` defaults.
    poi_count / poi_method:
        Number of POIs and the selection statistic (``sosd`` is the
        paper's choice; ``sost``/``dom`` for ablation).
    use_prior:
        Weight templates with the public chi prior (MAP decision).
    branch_region:
        Sample range of the aligned slice used for sign classification;
        defaults to everything after the anchor.
    """

    def __init__(
        self,
        acquisition: TraceAcquisition,
        segmenter: Optional[Segmenter] = None,
        poi_count: int = 24,
        poi_method: str = "sosd",
        use_prior: bool = True,
        branch_region: Optional[tuple] = None,
        sigma: float = 3.19,
        pooled_covariance: bool = True,
        standardize: bool = False,
    ) -> None:
        if poi_method not in POI_METHODS:
            raise AttackError(f"unknown POI method {poi_method!r}")
        self.acquisition = acquisition
        self.segmenter = segmenter if segmenter is not None else Segmenter()
        self.poi_count = poi_count
        self.poi_method = poi_method
        self.use_prior = use_prior
        self.sigma = sigma
        self.pooled_covariance = pooled_covariance
        #: z-score each aligned slice before template work; trades a
        #: little same-device accuracy for cross-device portability
        #: (the paper's section V-B caveat).
        self.standardize = standardize
        cfg = self.segmenter.config
        self.branch_region = branch_region or (cfg.slice_before, self.segmenter.slice_length)
        self.templates: Optional[TemplateSet] = None
        self.branch_classifier: Optional[BranchClassifier] = None
        self.refiner: Optional[AnchorRefiner] = None

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def profile(
        self,
        num_traces: int = 400,
        coeffs_per_trace: int = 8,
        first_seed: int = 1,
        min_class_count: int = 3,
        workers: Optional[int] = None,
    ) -> ProfilingReport:
        """Capture and learn templates from the profiled device.

        ``num_traces * coeffs_per_trace`` labelled slices are collected;
        classes observed fewer than ``min_class_count`` times are folded
        away (the paper observes values only in [-14, 14] despite the
        [-41, 41] support).

        The profiling set is consumed as one-pass **streaming sufficient
        statistics** (per-class count/mean/scatter via Welford-Chan
        accumulation, :class:`~repro.attack.template.RunningMoments`):
        no slice matrix is ever materialized, so profiling sets far
        larger than memory are fine.  The resulting templates, branch
        classifier and POIs match the materialized
        :meth:`profile_reference` path within float accumulation error
        (the tests pin 1e-9 parity).

        ``workers`` switches acquisition to the batch path with
        **worker-side segmentation** (per-seed noise streams, slices
        extracted inside the pool workers so only a few KB per trace
        crosses the process boundary — see :meth:`~repro.power.capture.
        TraceAcquisition.capture_segmented_batch`); the default keeps
        the bench's sequential noise stream so seeded experiments
        reproduce historical results exactly.
        """
        timings = {"capture": 0.0, "segment": 0.0, "build": 0.0}
        pool_size = _reference_pool_size(num_traces)

        # Pass 1: a few traces with coarse anchors teach the re-aligner.
        tick = time.perf_counter()
        if workers is None:
            head = [
                self.acquisition.capture(first_seed + i, coeffs_per_trace)
                for i in range(min(pool_size, num_traces))
            ]
        else:
            head = self.acquisition.capture_batch(
                min(pool_size, num_traces),
                coeffs_per_trace,
                first_seed=first_seed,
                workers=workers,
            )
        timings["capture"] += time.perf_counter() - tick
        tick = time.perf_counter()
        self.refiner = AnchorRefiner.learn(
            self.segmenter, [c.trace.samples for c in head]
        )
        timings["segment"] += time.perf_counter() - tick

        # Pass 2: stream refined, labelled slices into the accumulators.
        accumulator = MomentAccumulator(self.segmenter.slice_length)
        accumulate = accumulator.add

        if workers is None:
            for index in range(num_traces):
                tick = time.perf_counter()
                if index < len(head):
                    captured = head[index]
                else:
                    captured = self.acquisition.capture(
                        first_seed + index, coeffs_per_trace
                    )
                timings["capture"] += time.perf_counter() - tick
                tick = time.perf_counter()
                try:
                    aligned = self.segmenter.aligned_slices(
                        captured.trace.samples, refiner=self.refiner
                    )
                except AttackError:
                    timings["segment"] += time.perf_counter() - tick
                    continue  # a profiling trace may rarely fail to segment
                if len(aligned) == len(captured.values):
                    accumulate(self._normalise_matrix(np.vstack(aligned)),
                               captured.values)
                timings["segment"] += time.perf_counter() - tick
        else:
            tick = time.perf_counter()
            for segmented in self.acquisition.capture_segmented_batch(
                num_traces,
                coeffs_per_trace,
                first_seed=first_seed,
                workers=workers,
                segmenter=self.segmenter,
                refiner=self.refiner,
            ):
                if segmented.ok and segmented.slices.shape[0] == len(
                    segmented.values
                ):
                    accumulate(
                        self._normalise_matrix(segmented.slices), segmented.values
                    )
            timings["segment"] += time.perf_counter() - tick

        if accumulator.count == 0:
            raise AttackError("profiling produced no usable slices")
        tick = time.perf_counter()
        report = self._build_from_moments(
            accumulator.moments(), min_class_count, accumulator.count
        )
        timings["build"] += time.perf_counter() - tick
        report.timings = timings
        return report

    def _build_from_moments(
        self,
        moments: Dict[int, RunningMoments],
        min_class_count: int,
        slice_count: int,
    ) -> ProfilingReport:
        """Templates + branch classifier from accumulated moments."""
        by_value = {
            value: m
            for value, m in sorted(moments.items())
            if m.count >= min_class_count
        }

        # Sign classes are unions of value classes, so their moments are
        # exact Chan merges of the per-value accumulators (all observed
        # values, including ones rarer than min_class_count).
        by_sign: Dict[int, RunningMoments] = {}
        for value, m in sorted(moments.items()):
            sign = sign_of(value)
            if sign in by_sign:
                by_sign[sign].merge(m.copy())
            else:
                by_sign[sign] = m.copy()
        self.branch_classifier = BranchClassifier.from_moments(
            by_sign, self.branch_region[0], self.branch_region[1]
        )

        pois = POI_METHODS_MOMENTS[self.poi_method](by_value, self.poi_count)
        priors = None
        if self.use_prior:
            priors = gaussian_priors(list(by_value), self.sigma)
        self.templates = TemplateSet.from_moments(
            by_value, pois, priors=priors, pooled=self.pooled_covariance
        )
        return ProfilingReport(
            slice_count=slice_count,
            classes=sorted(by_value),
            pois=pois,
            branch_separation=self.branch_classifier.separation(),
        )

    def profile_reference(
        self,
        num_traces: int = 400,
        coeffs_per_trace: int = 8,
        first_seed: int = 1,
        min_class_count: int = 3,
        workers: Optional[int] = None,
    ) -> ProfilingReport:
        """Materialized profiling: the original capture-everything,
        vstack-then-group flow, kept as the parity/throughput reference
        for the streaming :meth:`profile`."""
        # Pass 1: a few traces with coarse anchors teach the re-aligner.
        if workers is None:
            captures = [
                self.acquisition.capture(first_seed + i, coeffs_per_trace)
                for i in range(num_traces)
            ]
        else:
            captures = self.acquisition.capture_batch(
                num_traces, coeffs_per_trace, first_seed=first_seed, workers=workers
            )
        reference_pool = [
            c.trace.samples for c in captures[: _reference_pool_size(num_traces)]
        ]
        self.refiner = AnchorRefiner.learn(self.segmenter, reference_pool)

        # Pass 2: refined, labelled slices.
        slices: List[np.ndarray] = []
        labels: List[int] = []
        for captured in captures:
            try:
                aligned = self.segmenter.aligned_slices(
                    captured.trace.samples, refiner=self.refiner
                )
            except AttackError:
                continue  # a profiling trace may rarely fail to segment
            if len(aligned) != len(captured.values):
                continue
            slices.extend(self._normalise(piece) for piece in aligned)
            labels.extend(captured.values)
        if not slices:
            raise AttackError("profiling produced no usable slices")
        matrix = np.vstack(slices)
        label_array = np.asarray(labels)

        by_value: Dict[int, np.ndarray] = {}
        for value in np.unique(label_array):
            group = matrix[label_array == value]
            if group.shape[0] >= min_class_count:
                by_value[int(value)] = group

        by_sign: Dict[int, np.ndarray] = {}
        for sign in (NEGATIVE, ZERO, POSITIVE):
            mask = np.sign(label_array) == sign
            if mask.any():
                by_sign[sign] = matrix[mask]
        self.branch_classifier = BranchClassifier.build(
            by_sign, self.branch_region[0], self.branch_region[1]
        )

        pois = POI_METHODS[self.poi_method](by_value, self.poi_count)
        priors = None
        if self.use_prior:
            priors = gaussian_priors(list(by_value), self.sigma)
        self.templates = TemplateSet.build(
            by_value, pois, priors=priors, pooled=self.pooled_covariance
        )
        return ProfilingReport(
            slice_count=len(slices),
            classes=sorted(by_value),
            pois=pois,
            branch_separation=self.branch_classifier.separation(),
        )

    # ------------------------------------------------------------------
    # Attack
    # ------------------------------------------------------------------
    def attack_samples(self, samples: np.ndarray) -> AttackResult:
        """Run the single-trace attack on a raw trace's samples.

        All coefficient slices of the trace are matched in one batched
        template call (sign classification, then a single
        :meth:`~repro.attack.template.TemplateSet.probabilities_matrix`
        over the non-zero slices with per-row sign restrictions).
        """
        if self.templates is None or self.branch_classifier is None:
            raise AttackError("profile() must run before attack()")
        aligned = self.segmenter.aligned_slices(samples, refiner=self.refiner)
        if not len(aligned):
            return AttackResult(signs=[], estimates=[], probabilities=[])
        return self.attack_aligned(np.vstack(aligned))

    def attack_aligned(self, slices: np.ndarray) -> AttackResult:
        """Attack pre-segmented aligned slices (an ``(n, slice_len)``
        matrix, e.g. from worker-side segmentation)."""
        if self.templates is None or self.branch_classifier is None:
            raise AttackError("profile() must run before attack()")
        if slices.shape[0] == 0:
            return AttackResult(signs=[], estimates=[], probabilities=[])
        matrix = self._normalise_matrix(slices)
        signs = [int(s) for s in self.branch_classifier.classify_matrix(matrix)]

        all_labels = self.templates.labels
        label_signs = [sign_of(l) for l in all_labels]
        candidate_rows = {
            sign: np.array([ls == sign for ls in label_signs], dtype=bool)
            for sign in (NEGATIVE, POSITIVE)
        }
        nonzero = [i for i, sign in enumerate(signs) if sign != ZERO]
        for i in nonzero:
            if not candidate_rows[signs[i]].any():
                raise AttackError(f"no templates for sign {signs[i]}")

        estimates: List[int] = [0] * len(signs)
        tables: List[Dict[int, float]] = [{0: 1.0} for _ in signs]
        if nonzero:
            mask = np.vstack([candidate_rows[signs[i]] for i in nonzero])
            probs = self.templates.probabilities_matrix(
                matrix[nonzero], restrict=mask
            )
            label_array = np.asarray(all_labels)
            picks = label_array[np.argmax(probs, axis=1)]
            for row, i in enumerate(nonzero):
                keep = mask[row]
                tables[i] = {
                    int(l): float(p)
                    for l, p in zip(label_array[keep], probs[row, keep])
                }
                estimates[i] = int(picks[row])
        return AttackResult(signs=signs, estimates=estimates, probabilities=tables)

    def attack(self, captured) -> AttackResult:
        """Attack a :class:`~repro.power.capture.CapturedTrace`."""
        return self.attack_samples(captured.trace.samples)

    # ------------------------------------------------------------------
    def _normalise(self, piece: np.ndarray) -> np.ndarray:
        if not self.standardize:
            return piece
        spread = float(piece.std())
        if spread <= 1e-12:
            return piece - float(piece.mean())
        return (piece - float(piece.mean())) / spread

    def _normalise_matrix(self, slices: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`_normalise` (bit-identical to the per-piece
        path — each row goes through the same scalar code)."""
        if not self.standardize:
            return slices
        return np.vstack([self._normalise(row) for row in slices])
