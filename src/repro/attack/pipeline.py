"""The end-to-end single-trace attack (section III of the paper).

``SingleTraceAttack`` owns the whole chain:

- *profiling* (template building): capture many sampling executions on
  the profiled device, segment them, label every aligned slice with the
  ground-truth coefficient (the profiling adversary controls the
  device), learn the branch centroids, select POIs via SOSD and build
  the value templates;
- *attack*: given one trace of an unknown encryption, segment it,
  classify each coefficient's branch (sign / zero), then match the
  value templates restricted to the recovered sign, returning both hard
  estimates (Table I) and per-coefficient probability tables (Table II,
  the input to the LWE-with-hints stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.attack.branch import NEGATIVE, POSITIVE, ZERO, BranchClassifier, sign_of
from repro.attack.poi import POI_METHODS
from repro.attack.segmentation import AnchorRefiner, Segmenter, SegmenterConfig
from repro.attack.template import TemplateSet, gaussian_priors
from repro.errors import AttackError
from repro.power.capture import TraceAcquisition


@dataclass
class AttackResult:
    """Outcome of one single-trace attack."""

    signs: List[int]  # branch decision per coefficient
    estimates: List[int]  # most likely coefficient value
    probabilities: List[Dict[int, float]]  # full table per coefficient

    def __len__(self) -> int:
        return len(self.estimates)


@dataclass
class ProfilingReport:
    """What profiling produced (sizes, classes, diagnostics)."""

    slice_count: int
    classes: List[int]
    pois: List[int]
    branch_separation: float


class SingleTraceAttack:
    """Profiled single-trace attack on the Gaussian sampler.

    Parameters
    ----------
    acquisition:
        The measurement bench (device + leakage + scope).
    segmenter:
        Trace segmentation; defaults to :class:`SegmenterConfig` defaults.
    poi_count / poi_method:
        Number of POIs and the selection statistic (``sosd`` is the
        paper's choice; ``sost``/``dom`` for ablation).
    use_prior:
        Weight templates with the public chi prior (MAP decision).
    branch_region:
        Sample range of the aligned slice used for sign classification;
        defaults to everything after the anchor.
    """

    def __init__(
        self,
        acquisition: TraceAcquisition,
        segmenter: Optional[Segmenter] = None,
        poi_count: int = 24,
        poi_method: str = "sosd",
        use_prior: bool = True,
        branch_region: Optional[tuple] = None,
        sigma: float = 3.19,
        pooled_covariance: bool = True,
        standardize: bool = False,
    ) -> None:
        if poi_method not in POI_METHODS:
            raise AttackError(f"unknown POI method {poi_method!r}")
        self.acquisition = acquisition
        self.segmenter = segmenter if segmenter is not None else Segmenter()
        self.poi_count = poi_count
        self.poi_method = poi_method
        self.use_prior = use_prior
        self.sigma = sigma
        self.pooled_covariance = pooled_covariance
        #: z-score each aligned slice before template work; trades a
        #: little same-device accuracy for cross-device portability
        #: (the paper's section V-B caveat).
        self.standardize = standardize
        cfg = self.segmenter.config
        self.branch_region = branch_region or (cfg.slice_before, self.segmenter.slice_length)
        self.templates: Optional[TemplateSet] = None
        self.branch_classifier: Optional[BranchClassifier] = None
        self.refiner: Optional[AnchorRefiner] = None

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def profile(
        self,
        num_traces: int = 400,
        coeffs_per_trace: int = 8,
        first_seed: int = 1,
        min_class_count: int = 3,
        workers: Optional[int] = None,
    ) -> ProfilingReport:
        """Capture and learn templates from the profiled device.

        ``num_traces * coeffs_per_trace`` labelled slices are collected;
        classes observed fewer than ``min_class_count`` times are folded
        away (the paper observes values only in [-14, 14] despite the
        [-41, 41] support).  ``workers`` switches the profiling-set
        acquisition to the batch path (per-seed noise streams, optional
        process pool — see
        :meth:`~repro.power.capture.TraceAcquisition.capture_batch`);
        the default keeps the bench's sequential noise stream so seeded
        experiments reproduce historical results exactly.
        """
        # Pass 1: a few traces with coarse anchors teach the re-aligner.
        if workers is None:
            captures = [
                self.acquisition.capture(first_seed + i, coeffs_per_trace)
                for i in range(num_traces)
            ]
        else:
            captures = self.acquisition.capture_batch(
                num_traces, coeffs_per_trace, first_seed=first_seed, workers=workers
            )
        reference_pool = [c.trace.samples for c in captures[: max(8, num_traces // 20)]]
        self.refiner = AnchorRefiner.learn(self.segmenter, reference_pool)

        # Pass 2: refined, labelled slices.
        slices: List[np.ndarray] = []
        labels: List[int] = []
        for captured in captures:
            try:
                aligned = self.segmenter.aligned_slices(
                    captured.trace.samples, refiner=self.refiner
                )
            except AttackError:
                continue  # a profiling trace may rarely fail to segment
            if len(aligned) != len(captured.values):
                continue
            slices.extend(self._normalise(piece) for piece in aligned)
            labels.extend(captured.values)
        if not slices:
            raise AttackError("profiling produced no usable slices")
        matrix = np.vstack(slices)
        label_array = np.asarray(labels)

        by_value: Dict[int, np.ndarray] = {}
        for value in np.unique(label_array):
            group = matrix[label_array == value]
            if group.shape[0] >= min_class_count:
                by_value[int(value)] = group

        by_sign: Dict[int, np.ndarray] = {}
        for sign in (NEGATIVE, ZERO, POSITIVE):
            mask = np.sign(label_array) == sign
            if mask.any():
                by_sign[sign] = matrix[mask]
        self.branch_classifier = BranchClassifier.build(
            by_sign, self.branch_region[0], self.branch_region[1]
        )

        pois = POI_METHODS[self.poi_method](by_value, self.poi_count)
        priors = None
        if self.use_prior:
            priors = gaussian_priors(list(by_value), self.sigma)
        self.templates = TemplateSet.build(
            by_value, pois, priors=priors, pooled=self.pooled_covariance
        )
        return ProfilingReport(
            slice_count=len(slices),
            classes=sorted(by_value),
            pois=pois,
            branch_separation=self.branch_classifier.separation(),
        )

    # ------------------------------------------------------------------
    # Attack
    # ------------------------------------------------------------------
    def attack_samples(self, samples: np.ndarray) -> AttackResult:
        """Run the single-trace attack on a raw trace's samples.

        All coefficient slices of the trace are matched in one batched
        template call (sign classification, then a single
        :meth:`~repro.attack.template.TemplateSet.probabilities_matrix`
        over the non-zero slices with per-row sign restrictions).
        """
        if self.templates is None or self.branch_classifier is None:
            raise AttackError("profile() must run before attack()")
        aligned = self.segmenter.aligned_slices(samples, refiner=self.refiner)
        if not len(aligned):
            return AttackResult(signs=[], estimates=[], probabilities=[])
        matrix = np.vstack([self._normalise(piece) for piece in aligned])
        signs = [int(s) for s in self.branch_classifier.classify_matrix(matrix)]

        all_labels = self.templates.labels
        label_signs = [sign_of(l) for l in all_labels]
        candidate_rows = {
            sign: np.array([ls == sign for ls in label_signs], dtype=bool)
            for sign in (NEGATIVE, POSITIVE)
        }
        nonzero = [i for i, sign in enumerate(signs) if sign != ZERO]
        for i in nonzero:
            if not candidate_rows[signs[i]].any():
                raise AttackError(f"no templates for sign {signs[i]}")

        estimates: List[int] = [0] * len(signs)
        tables: List[Dict[int, float]] = [{0: 1.0} for _ in signs]
        if nonzero:
            mask = np.vstack([candidate_rows[signs[i]] for i in nonzero])
            probs = self.templates.probabilities_matrix(
                matrix[nonzero], restrict=mask
            )
            label_array = np.asarray(all_labels)
            picks = label_array[np.argmax(probs, axis=1)]
            for row, i in enumerate(nonzero):
                keep = mask[row]
                tables[i] = {
                    int(l): float(p)
                    for l, p in zip(label_array[keep], probs[row, keep])
                }
                estimates[i] = int(picks[row])
        return AttackResult(signs=signs, estimates=estimates, probabilities=tables)

    def attack(self, captured) -> AttackResult:
        """Attack a :class:`~repro.power.capture.CapturedTrace`."""
        return self.attack_samples(captured.trace.samples)

    # ------------------------------------------------------------------
    def _normalise(self, piece: np.ndarray) -> np.ndarray:
        if not self.standardize:
            return piece
        spread = float(piece.std())
        if spread <= 1e-12:
            return piece - float(piece.mean())
        return (piece - float(piece.mean())) / spread
