"""Trace segmentation: locating and aligning per-coefficient windows.

Section III-C of the paper: the sampling of each coefficient must be
isolated from the full trace even though the distribution function is
time-variant (rejection loops), so fixed-stride windowing is impossible.
The paper anchors on "distinguishable and visible peaks" of the
distribution function call.

On our device those peaks are:

- the *binary-log burst*: 12 squaring rounds (24 back-to-back multiplies,
  ~1300 cycles of sustained multiplier-engine activity) — one per
  accepted polar sample.  These delimit the coefficients.
- the *value burst*: the final ``z * sigma`` multiply/mulh pair, an
  ~80-cycle engine burst that is the last before a long engine-quiet
  region (clipping, sign assignment and the next coefficient's PRNG
  draws).  Its end is the alignment anchor; the sign-assignment branches
  and stores follow it at fixed offsets, and the value-dependent
  multiplier state precedes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import AttackError


@dataclass
class SegmenterConfig:
    """Tunables of the segmentation stage.

    The defaults are calibrated for :class:`~repro.power.leakage.LeakageModel`
    defaults; an adversary would calibrate them during profiling.
    """

    envelope_window: int = 16  # smoothing for engine-burst detection
    frac_window: int = 64  # smoothing for the long log-burst envelope
    frac_merge_gap: int = 16  # merging when locating the log bursts
    frac_min_length: int = 600  # minimum length of a log burst
    burst_merge_gap: int = 12  # merge engine bursts closer than this
    burst_min_length: int = 30  # ignore shorter bursts
    anchor_min_length: int = 55  # the z*sigma pair is ~70+ cycles
    quiet_gap: int = 80  # engine-free run after the anchor burst
    slice_before: int = 100  # aligned slice: samples before anchor end
    slice_after: int = 160  # ... and after


def _moving_average_reference(x: np.ndarray, window: int) -> np.ndarray:
    """Original convolution-based sliding mean (O(n*w)); kept as the
    parity reference for :func:`_moving_average`."""
    if window <= 1:
        return x
    kernel = np.ones(window) / window
    return np.convolve(x, kernel, mode="same")


def _moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Cumulative-sum sliding mean, O(n) regardless of window size.

    Matches ``np.convolve(x, ones(w)/w, mode="same")`` — same centering
    and same zero-padded edges — up to float reassociation (the
    reference multiplies by 1/w before summing; this sums first).
    """
    if window <= 1:
        return x
    n = len(x)
    if window > n:
        # np.convolve swaps its arguments when the kernel is longer than
        # the input, changing the output length; defer to the reference
        # for that degenerate shape.
        return _moving_average_reference(x, window)
    csum = np.empty(n + 1, dtype=np.float64)
    csum[0] = 0.0
    np.cumsum(x, dtype=np.float64, out=csum[1:])
    mid = np.arange(n) + (window - 1) // 2
    lo = np.maximum(mid - window + 1, 0)
    hi = np.minimum(mid, n - 1) + 1
    return (csum[hi] - csum[lo]) / window


def _active_regions(mask: np.ndarray, merge_gap: int, min_length: int) -> List[Tuple[int, int]]:
    """Contiguous True runs, merging gaps of <= merge_gap False samples."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > merge_gap + 1)
    starts = idx[np.concatenate(([0], breaks + 1))]
    ends = idx[np.concatenate((breaks, [idx.size - 1]))] + 1
    return [
        (int(s), int(e)) for s, e in zip(starts, ends) if e - s >= min_length
    ]


@dataclass
class CoefficientWindow:
    """One coefficient's located region and its alignment anchor."""

    index: int
    start: int  # end of this coefficient's log burst
    end: int  # start of the next coefficient's log burst (or trace end)
    anchor: int  # sample index of the value-burst end


class Segmenter:
    """Splits a full sampling trace into aligned per-coefficient slices."""

    def __init__(self, config: Optional[SegmenterConfig] = None) -> None:
        self.config = config if config is not None else SegmenterConfig()

    # ------------------------------------------------------------------
    def _engine_threshold(self, envelope: np.ndarray, fraction: float = 0.5) -> float:
        """Threshold between engine-burst level and background.

        The two levels are well separated; a point between the 10th and
        90th percentile of the smoothed trace sits between them.
        ``fraction`` picks where (the coarse log-burst envelope averages
        bursts with their gaps, so it uses a lower point).
        """
        lo = float(np.percentile(envelope, 10))
        hi = float(np.percentile(envelope, 90))
        return lo + fraction * (hi - lo)

    def windows(self, samples: np.ndarray) -> List[CoefficientWindow]:
        """Locate every coefficient's window and anchor in the trace."""
        cfg = self.config
        samples = np.asarray(samples, dtype=np.float64)
        if samples.size == 0:
            raise AttackError("cannot segment an empty trace")
        if not np.isfinite(samples).all():
            raise AttackError("cannot segment a trace with non-finite samples")
        envelope = _moving_average(samples, cfg.envelope_window)
        threshold = self._engine_threshold(envelope)

        # 1. the long binary-log bursts delimit coefficients; their
        # *starts* are the window boundaries (everything a coefficient
        # leaks happens between its log burst and the next one's).
        frac_envelope = _moving_average(samples, cfg.frac_window)
        frac_mask = frac_envelope > self._engine_threshold(frac_envelope, fraction=0.35)
        frac_bursts = _active_regions(frac_mask, cfg.frac_merge_gap, cfg.frac_min_length)
        if not frac_bursts:
            raise AttackError("no distribution-call bursts found in trace")

        # 2. engine bursts for anchoring
        engine_mask = envelope > threshold
        bursts = _active_regions(engine_mask, cfg.burst_merge_gap, cfg.burst_min_length)

        result: List[CoefficientWindow] = []
        starts = [s for (s, _) in frac_bursts] + [len(samples)]
        for i in range(len(frac_bursts)):
            w_start, w_end = starts[i], starts[i + 1]
            inside = [b for b in bursts if w_start <= b[0] < w_end]
            is_last = i == len(frac_bursts) - 1
            anchor = self._find_anchor(inside, w_end, is_last)
            if anchor is None:
                raise AttackError(
                    f"no value-burst anchor found in window {i} [{w_start}, {w_end})"
                )
            result.append(CoefficientWindow(i, w_start, w_end, anchor))
        return result

    def _find_anchor(
        self, bursts: List[Tuple[int, int]], window_end: int, is_last: bool
    ) -> Optional[int]:
        """End of the value burst: scan backwards over engine bursts.

        Walking back from the window end, the trailing bursts are the
        *next* coefficient's polar-draw multiply pairs, each followed by
        engine activity within a few dozen cycles.  The first burst
        (from the back) followed by a long engine-free run is the
        ``z * sigma`` pair (or the square-root cluster it merged into,
        which ends at the same place): the clipping checks, the Fig. 2
        branches and the stores that follow it contain no
        multiplier/divider work.
        """
        cfg = self.config
        for j in range(len(bursts) - 1, -1, -1):
            start, end = bursts[j]
            if end - start < cfg.anchor_min_length:
                continue  # lone divides (the 2L/x division, Newton steps)
            if j + 1 < len(bursts):
                gap = bursts[j + 1][0] - end
            elif is_last:
                gap = cfg.quiet_gap  # trace ends right after the assignment
            else:
                gap = window_end - end
            if gap >= cfg.quiet_gap:
                return end
        if bursts:
            return bursts[-1][1]
        return None

    # ------------------------------------------------------------------
    def aligned_slices(
        self, samples: np.ndarray, refiner: Optional["AnchorRefiner"] = None
    ) -> List[np.ndarray]:
        """Fixed-length aligned sub-traces, one per coefficient.

        Each slice spans ``[anchor - slice_before, anchor + slice_after)``
        and is zero-padded at trace edges so all slices have equal
        length.  With a ``refiner``, each window's anchor is re-aligned
        by matched filtering first (see :class:`AnchorRefiner`).
        """
        cfg = self.config
        samples = np.asarray(samples, dtype=np.float64)
        slices = []
        for window in self.windows(samples):
            anchor = window.anchor
            if refiner is not None:
                anchor = refiner.refine(samples, window)
            lo = anchor - cfg.slice_before
            hi = anchor + cfg.slice_after
            piece = np.zeros(cfg.slice_before + cfg.slice_after)
            src_lo = max(lo, 0)
            src_hi = min(hi, len(samples))
            piece[src_lo - lo : src_hi - lo] = samples[src_lo:src_hi]
            slices.append(piece)
        return slices

    @property
    def slice_length(self) -> int:
        """Length of every aligned slice."""
        return self.config.slice_before + self.config.slice_after


class AnchorRefiner:
    """Matched-filter re-alignment of the per-coefficient anchor.

    The coarse burst-scan anchor is right for the vast majority of
    windows but can land on a neighbouring burst when rejection loops
    reshape the window.  The refiner learns the *median* trace pattern
    around the anchor from profiling windows (the median is robust to
    the minority of mis-anchored ones) and then, per window, slides the
    pattern over the window to the least-squares-optimal position —
    textbook trace re-alignment.

    The pattern covers ``[anchor - before, anchor + after)``; ``after``
    stays small so the pattern is dominated by branch-*independent*
    structure (square-root tail, the ``z*sigma`` burst, writeback and
    clipping checks).
    """

    def __init__(self, reference: np.ndarray, before: int = 160, after: int = 60):
        self.reference = np.asarray(reference, dtype=np.float64)
        self.before = before
        self.after = after
        if len(self.reference) != before + after:
            raise AttackError(
                f"reference length {len(self.reference)} != before+after {before + after}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def learn(
        cls,
        segmenter: Segmenter,
        traces: "List[np.ndarray]",
        before: int = 160,
        after: int = 60,
    ) -> "AnchorRefiner":
        """Learn the reference pattern from coarse-anchored windows."""
        patterns = []
        for samples in traces:
            samples = np.asarray(samples, dtype=np.float64)
            try:
                windows = segmenter.windows(samples)
            except AttackError:
                continue
            for window in windows:
                lo, hi = window.anchor - before, window.anchor + after
                if lo >= 0 and hi <= len(samples):
                    patterns.append(samples[lo:hi])
        if len(patterns) < 8:
            raise AttackError(
                f"need >= 8 windows to learn an anchor reference, got {len(patterns)}"
            )
        return cls(np.median(np.vstack(patterns), axis=0), before, after)

    # ------------------------------------------------------------------
    def refine(self, samples: np.ndarray, window: CoefficientWindow) -> int:
        """Anchor position minimising the SSD to the reference pattern."""
        samples = np.asarray(samples, dtype=np.float64)
        length = len(self.reference)
        lo = max(window.start, 0)
        hi = min(window.end + self.after, len(samples))
        segment = samples[lo:hi]
        if len(segment) < length:
            return window.anchor
        # SSD(delta) = sum(x^2) - 2 x.R + sum(R^2); the windowed energy
        # is a cumulative-sum sliding window (O(n)), the cross term a
        # direct correlation
        squared = np.empty(len(segment) + 1, dtype=np.float64)
        squared[0] = 0.0
        np.cumsum(segment * segment, dtype=np.float64, out=squared[1:])
        windowed_energy = squared[length:] - squared[: len(segment) - length + 1]
        cross = np.correlate(segment, self.reference, mode="valid")
        ssd = windowed_energy - 2.0 * cross  # + const
        best = int(np.argmin(ssd))
        return lo + best + self.before
