"""Atomic checkpoint/resume state for orchestrated campaigns.

A campaign directory holds one versioned ``manifest.json`` plus one
``shards/shard-<n>.npz`` per *completed* checkpoint shard (a contiguous
block of ``shard_size`` victim seeds).  Everything is written with
temp-file + :func:`os.replace`, so a reader (or a resuming run) only
ever sees a complete previous state — a run killed mid-write loses at
most the shard being written, never the directory's integrity.

The manifest pins a **fingerprint** of everything the per-seed results
depend on (seed range, coefficient count, batch noise entropy, noise
stream version, compute backend, template labels).  Resuming under a
different configuration is a hard error rather than a silently mixed
report: per-seed outcomes are a pure function of the fingerprint, which
is what makes the resumed report bit-identical to an uninterrupted run.

The npz payload round-trips float64 probability tables in binary, so
checkpointed seeds reproduce their in-memory records bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from repro.errors import AttackError

#: Bump when the on-disk layout changes; resume refuses newer/older
#: layouts instead of guessing.
CHECKPOINT_VERSION = 1

_MANIFEST = "manifest.json"
_SHARD_DIR = "shards"


def campaign_fingerprint(
    first_seed: int,
    trace_count: int,
    coeffs_per_trace: int,
    entropy: int,
    labels: Iterable[int],
) -> str:
    """Hash of everything a campaign's per-seed outcomes depend on."""
    from repro.backends import backend_id
    from repro.power.noise import NOISE_STREAM_VERSION

    blob = json.dumps(
        {
            "first_seed": int(first_seed),
            "trace_count": int(trace_count),
            "coeffs_per_trace": int(coeffs_per_trace),
            "entropy": int(entropy),
            "labels": [int(label) for label in labels],
            "noise_stream": NOISE_STREAM_VERSION,
            "backend": backend_id(),
        },
        sort_keys=True,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via temp file + atomic rename."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_savez(path: Union[str, Path], **arrays) -> None:
    """``np.savez`` with the same crash consistency as the manifest."""
    import io

    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    _atomic_write_bytes(Path(path), buffer.getvalue())


class CampaignCheckpoint:
    """One campaign directory: manifest + per-shard result archives."""

    def __init__(
        self,
        directory: Union[str, Path],
        fingerprint: str,
        trace_count: int,
        first_seed: int,
        coeffs_per_trace: int,
        shard_size: int,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.trace_count = int(trace_count)
        self.first_seed = int(first_seed)
        self.coeffs_per_trace = int(coeffs_per_trace)
        self.shard_size = int(shard_size)
        if self.shard_size < 1:
            raise AttackError(f"shard_size must be >= 1, got {shard_size}")
        self.shards_total = -(-self.trace_count // self.shard_size)
        self.shards_done: List[int] = []
        self.counters: Dict[str, int] = {}
        (self.directory / _SHARD_DIR).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def shard_path(self, shard: int) -> Path:
        return self.directory / _SHARD_DIR / f"shard-{shard:06d}.npz"

    def shard_range(self, shard: int) -> range:
        """Seed numbers (absolute) covered by checkpoint shard ``shard``."""
        lo = self.first_seed + shard * self.shard_size
        hi = min(lo + self.shard_size, self.first_seed + self.trace_count)
        return range(lo, hi)

    # ------------------------------------------------------------------
    def write_shard(self, shard: int, **arrays) -> None:
        """Persist one completed shard atomically, then the manifest."""
        atomic_savez(self.shard_path(shard), **arrays)
        if shard not in self.shards_done:
            self.shards_done.append(shard)
            self.shards_done.sort()
        self.write_manifest()

    def write_manifest(self) -> None:
        manifest = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "trace_count": self.trace_count,
            "first_seed": self.first_seed,
            "coeffs_per_trace": self.coeffs_per_trace,
            "shard_size": self.shard_size,
            "shards_total": self.shards_total,
            "shards_done": list(self.shards_done),
            "counters": {k: int(v) for k, v in self.counters.items()},
        }
        _atomic_write_bytes(
            self.manifest_path,
            json.dumps(manifest, indent=1, sort_keys=True).encode(),
        )

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        directory: Union[str, Path],
        fingerprint: Optional[str] = None,
    ) -> "CampaignCheckpoint":
        """Open an existing campaign directory for resumption.

        Raises :class:`AttackError` when the directory holds no
        manifest, a different layout version, or (when ``fingerprint``
        is given) state from a different campaign configuration.
        """
        directory = Path(directory)
        path = directory / _MANIFEST
        if not path.exists():
            raise AttackError(f"no campaign manifest under {directory}")
        manifest = json.loads(path.read_text())
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise AttackError(
                f"campaign checkpoint version {manifest.get('version')!r} "
                f"!= supported {CHECKPOINT_VERSION}"
            )
        if fingerprint is not None and manifest["fingerprint"] != fingerprint:
            raise AttackError(
                "campaign directory was checkpointed under a different "
                "configuration (fingerprint mismatch); refusing to mix "
                "results"
            )
        state = cls(
            directory,
            manifest["fingerprint"],
            manifest["trace_count"],
            manifest["first_seed"],
            manifest["coeffs_per_trace"],
            manifest["shard_size"],
        )
        # Trust only shards whose archive actually landed: a crash
        # between shard write and manifest write leaves an extra file,
        # never a manifest entry without its file.
        state.shards_done = [
            int(s)
            for s in manifest.get("shards_done", [])
            if state.shard_path(int(s)).exists()
        ]
        state.counters = {
            k: int(v) for k, v in manifest.get("counters", {}).items()
        }
        return state

    def load_shard(self, shard: int) -> Dict[str, np.ndarray]:
        with np.load(self.shard_path(shard), allow_pickle=False) as archive:
            return {key: archive[key] for key in archive.files}

    def completed_seeds(self) -> int:
        return sum(len(self.shard_range(s)) for s in self.shards_done)
