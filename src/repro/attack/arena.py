"""Shared-memory slice arenas for the campaign orchestrator.

The orchestrator's contract is that **no trace, slice or result array
is ever pickled onto a queue**.  Everything bulky crosses process
boundaries through one :class:`SliceArena`: a single
:mod:`multiprocessing.shared_memory` segment carved into fixed-capacity
*slots*, each with a small int64 header protocol (magic, generation
counter, array count, payload bytes) followed by per-array descriptors
(dtype code, ndim, shape) and the raw array bytes.

Two slot roles share the segment:

- **record slots** — the result ring.  A worker packs a grain's
  per-seed outcome record (:mod:`repro.attack.orchestrator`) into one
  of its dedicated slots and sends only a tiny header message (slot
  index + generation) over the queue; the parent reads the arrays
  straight out of shared memory, folds them, and releases the slot.
  The generation counter makes stale or double reads a hard error
  instead of silent corruption.
- **scratch slots** — per-worker lane-chunk capture buffers.  The
  fused capture pipeline (:func:`repro.power.capture._capture_lane_chunk`)
  writes its flat lane-major sample buffer directly into the worker's
  scratch slot (``out=``), so repeated grains reuse one arena-backed
  allocation instead of mallocing a multi-megabyte buffer per chunk.

The parent creates and unlinks the segment; workers inherit it by fork
or re-attach by name (pickling a :class:`SliceArena` re-attaches, so
spawn start methods work too).  Worker death can therefore never leak
the segment: cleanup is entirely the parent's.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError, VerificationError

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

_MAGIC = 0x5245_4145_4C41_5221  # "REVEALAR!"-ish tag for header sanity

#: Segment names created by this process (or inherited from a fork
#: parent).  Attaching registers the name with the *same* resource
#: tracker the creator used, so the attach-side unregister workaround
#: below must skip these — otherwise it strips the creator's
#: registration and the eventual ``unlink()`` double-unregisters.
_OWNED_NAMES: set = set()


def _note_created(name: str) -> None:
    _OWNED_NAMES.add(name)


def _untrack_attached(shm) -> None:
    """Stop an attaching process's resource tracker from unlinking a
    segment it does not own at exit (the pre-3.13 ``track=False`` gap).

    No-op when the creator shares this tracker (same process, or a
    forked child): the creator's registration must survive.
    """
    if shm.name in _OWNED_NAMES:
        return
    try:  # pragma: no cover - depends on CPython internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass

#: Slot header words: [magic, generation, n_arrays, payload_bytes].
_SLOT_HEADER_WORDS = 4
#: Per-array descriptor words: [dtype_code, ndim, shape0..shape3].
_ARRAY_HEADER_WORDS = 6
_MAX_NDIM = 4

#: Wire dtype codes.  Only what grain records actually use; extending
#: the table is backwards compatible (codes are stable).
_DTYPES = {
    0: np.dtype(np.float64),
    1: np.dtype(np.int64),
    2: np.dtype(np.uint8),
    3: np.dtype(np.bool_),
    4: np.dtype(np.float32),
    5: np.dtype(np.int32),
}
_DTYPE_CODES = {dtype: code for code, dtype in _DTYPES.items()}


def _align8(n: int) -> int:
    return (int(n) + 7) & ~7


class SliceArena:
    """A ring of fixed-capacity shared-memory slots with typed headers.

    Parameters
    ----------
    slots:
        Number of slots in the segment.
    slot_bytes:
        Payload capacity of each slot (headers live outside this
        budget, so ``packed_bytes(arrays) <= slot_bytes`` always fits).
    name:
        Attach to an existing segment instead of creating one.
    """

    def __init__(
        self,
        slots: int | None = None,
        slot_bytes: int | None = None,
        name: str | None = None,
    ) -> None:
        if _shared_memory is None:  # pragma: no cover
            raise ParameterError("multiprocessing.shared_memory unavailable")
        if name is None:
            if slots is None or slot_bytes is None:
                raise ParameterError("SliceArena() needs slots and slot_bytes")
            if slots < 1 or slot_bytes < 64:
                raise ParameterError(
                    f"need >= 1 slot of >= 64 bytes, got {slots} x {slot_bytes}"
                )
            slot_bytes = _align8(slot_bytes)
            self._owner = True
            stride = self._stride(slot_bytes)
            total = 16 * 8 + slots * stride
            self._shm = _shared_memory.SharedMemory(create=True, size=total)
            meta = np.ndarray(16, dtype=np.int64, buffer=self._shm.buf[: 16 * 8])
            meta[0] = _MAGIC
            meta[1] = slots
            meta[2] = slot_bytes
            meta[3:] = 0
            _note_created(self._shm.name)
        else:
            self._owner = False
            self._shm = _shared_memory.SharedMemory(name=name)
            _untrack_attached(self._shm)
            meta = np.ndarray(16, dtype=np.int64, buffer=self._shm.buf[: 16 * 8])
            if meta[0] != _MAGIC:
                raise VerificationError(
                    f"shared segment {name!r} is not a SliceArena"
                )
            slots = int(meta[1])
            slot_bytes = int(meta[2])
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._closed = False

    # ------------------------------------------------------------------
    @staticmethod
    def _stride(slot_bytes: int) -> int:
        header = (_SLOT_HEADER_WORDS + 16 * _ARRAY_HEADER_WORDS) * 8
        return header + _align8(slot_bytes)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def total_bytes(self) -> int:
        return self._shm.size

    # -- pickling: re-attach by name (spawn-safe) ----------------------
    def __getstate__(self) -> dict:
        return {"name": self.name}

    def __setstate__(self, state: dict) -> None:
        self.__init__(name=state["name"])

    # ------------------------------------------------------------------
    def _slot_region(self, index: int):
        if not 0 <= index < self.slots:
            raise ParameterError(
                f"slot {index} out of range (arena has {self.slots})"
            )
        stride = self._stride(self.slot_bytes)
        base = 16 * 8 + index * stride
        header_bytes = (_SLOT_HEADER_WORDS + 16 * _ARRAY_HEADER_WORDS) * 8
        header = np.ndarray(
            _SLOT_HEADER_WORDS + 16 * _ARRAY_HEADER_WORDS,
            dtype=np.int64,
            buffer=self._shm.buf[base : base + header_bytes],
        )
        payload = self._shm.buf[base + header_bytes : base + stride]
        return header, payload

    @staticmethod
    def packed_bytes(arrays) -> int:
        """Payload bytes :meth:`write` will use for ``arrays``."""
        return sum(_align8(np.asarray(a).nbytes) for a in arrays)

    def generation(self, index: int) -> int:
        header, _ = self._slot_region(index)
        return int(header[1])

    def write(self, index: int, arrays) -> int:
        """Pack ``arrays`` into slot ``index``; returns the new
        generation counter (ship it in the queue message)."""
        arrays = [np.ascontiguousarray(a) for a in arrays]
        if len(arrays) > 16:
            raise ParameterError(f"slot holds <= 16 arrays, got {len(arrays)}")
        payload_bytes = self.packed_bytes(arrays)
        if payload_bytes > self.slot_bytes:
            raise ParameterError(
                f"record needs {payload_bytes} B but slots hold "
                f"{self.slot_bytes} B; chunk the grain"
            )
        header, payload = self._slot_region(index)
        offset = 0
        for n, array in enumerate(arrays):
            if array.dtype not in _DTYPE_CODES:
                raise ParameterError(f"unsupported arena dtype {array.dtype}")
            if array.ndim > _MAX_NDIM:
                raise ParameterError(f"unsupported arena ndim {array.ndim}")
            desc = _SLOT_HEADER_WORDS + n * _ARRAY_HEADER_WORDS
            header[desc] = _DTYPE_CODES[array.dtype]
            header[desc + 1] = array.ndim
            shape = list(array.shape) + [0] * (_MAX_NDIM - array.ndim)
            header[desc + 2 : desc + 2 + _MAX_NDIM] = shape
            span = _align8(array.nbytes)
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=payload[offset : offset + array.nbytes],
            )
            view[...] = array
            offset += span
        header[0] = _MAGIC
        header[2] = len(arrays)
        header[3] = payload_bytes
        header[1] += 1  # generation bump: the slot now holds this record
        return int(header[1])

    def read(self, index: int, generation: int | None = None):
        """Unpack slot ``index`` into a list of *copied* arrays.

        ``generation`` (from the queue message) guards the ring
        protocol: reading a slot whose counter moved on is a hard
        :class:`VerificationError`, never silently stale data.
        """
        header, payload = self._slot_region(index)
        if header[0] != _MAGIC:
            raise VerificationError(f"slot {index} holds no record")
        if generation is not None and int(header[1]) != int(generation):
            raise VerificationError(
                f"slot {index} generation {int(header[1])} != expected "
                f"{int(generation)} (stale or double read)"
            )
        arrays = []
        offset = 0
        for n in range(int(header[2])):
            desc = _SLOT_HEADER_WORDS + n * _ARRAY_HEADER_WORDS
            dtype = _DTYPES[int(header[desc])]
            ndim = int(header[desc + 1])
            shape = tuple(
                int(s) for s in header[desc + 2 : desc + 2 + ndim]
            )
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            view = np.ndarray(
                shape, dtype=dtype, buffer=payload[offset : offset + nbytes]
            )
            arrays.append(view.copy())
            offset += _align8(nbytes)
        return arrays

    def scratch(self, index: int, dtype=np.float64) -> np.ndarray:
        """The slot's whole payload as one flat reusable array view.

        This is the lane-chunk capture buffer: the fused pipeline's
        ``out=`` target.  The view aliases shared memory, so it is only
        valid worker-locally between :meth:`write` calls to the slot.
        """
        _, payload = self._slot_region(index)
        count = self.slot_bytes // np.dtype(dtype).itemsize
        return np.ndarray(count, dtype=dtype, buffer=payload[: count * np.dtype(dtype).itemsize])

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass
