"""Branch (sign) classification from control-flow leakage.

Vulnerability 1 of the paper: the three branches of Fig. 2 execute
different instructions, so the power sub-trace after the sampled value
is written back reveals whether the coefficient is positive, negative
or zero (Fig. 3b).  The paper reports a 100% success rate for this
stage.

The classifier is a small template attack of its own: SOSD selects the
samples where the three branches' mean traces differ most (these are the
divergent instruction fetches, the ``neg``/``sub`` results and the
stores), and a pooled-covariance Gaussian template decides among the
three classes.  This ignores the trace tail that only carries the next
coefficient's random PRNG activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.attack.poi import _pick_spread, select_pois_sosd
from repro.attack.template import RunningMoments, TemplateSet
from repro.errors import AttackError

#: Branch labels.
POSITIVE = 1
ZERO = 0
NEGATIVE = -1

BRANCH_NAMES = {POSITIVE: "noise > 0", ZERO: "noise = 0", NEGATIVE: "noise < 0"}


def sign_of(value: int) -> int:
    """Map a coefficient value to its branch label."""
    if value > 0:
        return POSITIVE
    if value < 0:
        return NEGATIVE
    return ZERO


@dataclass
class BranchClassifier:
    """Template classifier over the sign-assignment region."""

    templates: TemplateSet
    region_start: int
    region_end: int

    @classmethod
    def build(
        cls,
        slices_by_sign: Dict[int, np.ndarray],
        region_start: int,
        region_end: int,
        poi_count: int = 20,
    ) -> "BranchClassifier":
        """Learn branch templates from labelled profiling slices.

        ``region_start``/``region_end`` bound the slice range searched
        for branch-discriminating POIs (the post-anchor region where the
        Fig. 2 branches execute).
        """
        missing = {POSITIVE, ZERO, NEGATIVE} - set(slices_by_sign)
        if missing:
            raise AttackError(
                f"profiling corpus lacks branches {sorted(missing)}; "
                "capture more profiling traces"
            )
        regions = {
            sign: traces[:, region_start:region_end]
            for sign, traces in slices_by_sign.items()
        }
        pois = select_pois_sosd(regions, poi_count)
        # shift POIs back into slice coordinates
        templates = TemplateSet.build(
            slices_by_sign, [p + region_start for p in pois]
        )
        return cls(templates, region_start, region_end)

    @classmethod
    def from_moments(
        cls,
        moments_by_sign: Dict[int, RunningMoments],
        region_start: int,
        region_end: int,
        poi_count: int = 20,
    ) -> "BranchClassifier":
        """Learn branch templates from streaming per-sign moments.

        The moments are :class:`~repro.attack.template.RunningMoments`
        over full-length aligned slices (typically obtained by merging
        per-value accumulators sign-wise); SOSD POI selection over the
        branch region and the template build both work directly off the
        accumulated statistics, matching :meth:`build` within float
        accumulation error.
        """
        missing = {POSITIVE, ZERO, NEGATIVE} - set(moments_by_sign)
        if missing:
            raise AttackError(
                f"profiling corpus lacks branches {sorted(missing)}; "
                "capture more profiling traces"
            )
        region_means = np.vstack(
            [moments_by_sign[s].mean[region_start:region_end]
             for s in moments_by_sign]
        )
        scores = np.zeros(region_means.shape[1])
        for i in range(region_means.shape[0]):
            for j in range(i + 1, region_means.shape[0]):
                scores += (region_means[i] - region_means[j]) ** 2
        pois = _pick_spread(scores, poi_count, min_distance=2)
        templates = TemplateSet.from_moments(
            moments_by_sign, [p + region_start for p in pois]
        )
        return cls(templates, region_start, region_end)

    # ------------------------------------------------------------------
    def classify(self, slice_samples: np.ndarray) -> int:
        """The most likely branch."""
        return self.templates.classify(slice_samples)

    def classify_many(self, slices: Sequence[np.ndarray]) -> List[int]:
        """Classify a batch of aligned slices in one matrix call."""
        if len(slices) == 0:
            return []
        return [int(s) for s in self.classify_matrix(np.vstack(slices))]

    def classify_matrix(self, slices: np.ndarray) -> np.ndarray:
        """Vectorized branch decision over an ``(n, slice_len)`` batch."""
        return self.templates.classify_matrix(slices)

    def probabilities(self, slice_samples: np.ndarray) -> Dict[int, float]:
        """Posterior over the three branches."""
        return self.templates.probabilities(slice_samples)

    def separation(self) -> float:
        """Smallest pairwise template-mean distance (diagnostic, Fig. 3b)."""
        means = self.templates.means
        signs = sorted(means)
        gaps = [
            float(np.linalg.norm(means[a] - means[b]))
            for i, a in enumerate(signs)
            for b in signs[i + 1 :]
        ]
        return min(gaps)
