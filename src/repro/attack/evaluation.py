"""Attack-campaign evaluation: run many single-trace attacks, aggregate.

The paper evaluates with 25,000 attack traces; this module packages the
loop the benchmarks perform - capture, attack, score, convert to hints,
estimate bikz - behind one call, so downstream users reproduce the
whole evaluation with a few lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.attack.branch import sign_of
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError
from repro.hints.estimator import beta_for_dbdd, bikz_to_bits
from repro.hints.hintgen import hints_from_probability_tables
from repro.hints.security import make_dbdd, seal_128_parameters


@dataclass
class CampaignResult:
    """Aggregated outcome of an attack campaign."""

    confusion: ConfusionMatrix
    sign_accuracy: float
    value_accuracy: float
    coefficients_attacked: int
    probability_tables: List[Dict[int, float]] = field(repr=False)

    def hint_statistics(self) -> Dict[str, float]:
        """Perfect-hint fraction and mean posterior variance."""
        hints = hints_from_probability_tables(self.probability_tables)
        perfect = sum(1 for h in hints if h.is_perfect)
        variances = [h.variance for h in hints if not h.is_perfect]
        return {
            "perfect_fraction": perfect / max(len(hints), 1),
            "mean_approximate_variance": float(np.mean(variances)) if variances else 0.0,
        }

    def estimate_bikz(self, params=None) -> float:
        """bikz of the SEAL-128 primal attack given this campaign's hints.

        Tables are tiled/truncated to the instance's error dimension.
        """
        params = params if params is not None else seal_128_parameters()
        if not self.probability_tables:
            raise AttackError("campaign produced no probability tables")
        tables = list(self.probability_tables)
        while len(tables) < params.m:
            tables.extend(self.probability_tables)
        hints = hints_from_probability_tables(tables[: params.m])
        instance = make_dbdd(params)
        from repro.hints.hintgen import apply_hints

        apply_hints(instance, hints, params.n)
        return beta_for_dbdd(instance)

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        stats = self.hint_statistics()
        beta = self.estimate_bikz()
        return "\n".join(
            [
                f"coefficients attacked : {self.coefficients_attacked}",
                f"sign accuracy         : {100 * self.sign_accuracy:.2f}%",
                f"value accuracy        : {100 * self.value_accuracy:.2f}%",
                f"perfect hints         : {100 * stats['perfect_fraction']:.1f}%",
                f"SEAL-128 with hints   : {beta:.2f} bikz "
                f"(2^{bikz_to_bits(beta):.1f})",
            ]
        )


def run_campaign(
    attack: SingleTraceAttack,
    trace_count: int,
    coeffs_per_trace: int = 8,
    first_seed: int = 1,
) -> CampaignResult:
    """Capture and attack ``trace_count`` fresh executions.

    The attack must already be profiled.  Traces that fail to segment
    are skipped (and counted against nothing, as in a real campaign).
    """
    if attack.templates is None:
        raise AttackError("profile() must run before a campaign")
    confusion = ConfusionMatrix()
    tables: List[Dict[int, float]] = []
    sign_hits = value_hits = total = 0
    for seed in range(first_seed, first_seed + trace_count):
        captured = attack.acquisition.capture(seed, coeffs_per_trace)
        try:
            result = attack.attack(captured)
        except AttackError:
            continue
        if len(result.estimates) != len(captured.values):
            continue
        for value, sign, estimate, table in zip(
            captured.values, result.signs, result.estimates, result.probabilities
        ):
            total += 1
            sign_hits += sign_of(value) == sign
            value_hits += estimate == value
            confusion.record(value, estimate)
            tables.append(table)
    if total == 0:
        raise AttackError("no trace in the campaign could be attacked")
    return CampaignResult(
        confusion=confusion,
        sign_accuracy=sign_hits / total,
        value_accuracy=value_hits / total,
        coefficients_attacked=total,
        probability_tables=tables,
    )
