"""Saving and loading profiled attack state.

Profiling is the expensive phase (the paper used 220,000 device
executions); a real campaign profiles once in the lab and attacks many
devices later.  ``save_attack``/``load_attack`` serialise everything the
attack phase needs - templates, branch classifier, POIs, the anchor
reference and the segmenter configuration - into a single ``.npz``
archive.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.attack.branch import BranchClassifier
from repro.attack.pipeline import SingleTraceAttack
from repro.attack.segmentation import AnchorRefiner, Segmenter, SegmenterConfig
from repro.attack.template import TemplateSet
from repro.errors import AttackError

#: Version 2 adds ``standardize``/``pooled_covariance`` to the config
#: and the per-class covariance arrays of ``pooled=False`` templates.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def save_attack(attack: SingleTraceAttack, path: Union[str, Path]) -> None:
    """Serialise a profiled attack to ``path`` (a ``.npz`` archive)."""
    if attack.templates is None or attack.branch_classifier is None:
        raise AttackError("profile() must run before saving")
    templates = attack.templates
    branch = attack.branch_classifier.templates
    payload = {
        "version": np.array([_FORMAT_VERSION]),
        "config": np.frombuffer(
            json.dumps(
                {
                    "segmenter": dataclasses.asdict(attack.segmenter.config),
                    "poi_method": attack.poi_method,
                    "poi_count": attack.poi_count,
                    "use_prior": attack.use_prior,
                    "sigma": attack.sigma,
                    "branch_region": list(attack.branch_region),
                    "refiner_before": attack.refiner.before,
                    "refiner_after": attack.refiner.after,
                    "standardize": attack.standardize,
                    "pooled_covariance": attack.pooled_covariance,
                }
            ).encode(),
            dtype=np.uint8,
        ),
        # value templates
        "value_pois": np.array(templates.pois, dtype=np.int64),
        "value_labels": np.array(templates.labels, dtype=np.int64),
        "value_means": np.vstack([templates.means[l] for l in templates.labels]),
        "value_precision": templates.precision,
        "value_priors": np.array(
            [templates.priors.get(l, 0.0) if templates.priors else np.nan
             for l in templates.labels]
        ),
        # branch templates
        "branch_pois": np.array(branch.pois, dtype=np.int64),
        "branch_labels": np.array(branch.labels, dtype=np.int64),
        "branch_means": np.vstack([branch.means[l] for l in branch.labels]),
        "branch_precision": branch.precision,
        # alignment
        "refiner_reference": attack.refiner.reference,
    }
    if templates.class_precisions is not None:
        payload["value_class_precisions"] = np.stack(
            [templates.class_precisions[l] for l in templates.labels]
        )
        payload["value_class_log_dets"] = np.array(
            [templates.class_log_dets[l] for l in templates.labels]
        )
    np.savez_compressed(Path(path), **payload)


def load_attack(acquisition, path: Union[str, Path]) -> SingleTraceAttack:
    """Reconstruct a profiled attack bound to a (new) acquisition bench."""
    archive = np.load(Path(path), allow_pickle=False)
    if int(archive["version"][0]) not in _SUPPORTED_VERSIONS:
        raise AttackError(
            f"unsupported attack archive version {archive['version'][0]}"
        )
    config = json.loads(bytes(archive["config"].tobytes()).decode())

    segmenter = Segmenter(SegmenterConfig(**config["segmenter"]))
    attack = SingleTraceAttack(
        acquisition,
        segmenter=segmenter,
        poi_count=config["poi_count"],
        poi_method=config["poi_method"],
        use_prior=config["use_prior"],
        branch_region=tuple(config["branch_region"]),
        sigma=config["sigma"],
        # version-1 archives predate these knobs; their defaults match.
        pooled_covariance=config.get("pooled_covariance", True),
        standardize=config.get("standardize", False),
    )

    value_labels = [int(l) for l in archive["value_labels"]]
    priors_raw = archive["value_priors"]
    priors = None
    if not np.isnan(priors_raw).any():
        priors = {l: float(p) for l, p in zip(value_labels, priors_raw)}
    class_precisions = class_log_dets = None
    if "value_class_precisions" in archive:
        class_precisions = {
            l: archive["value_class_precisions"][i]
            for i, l in enumerate(value_labels)
        }
        class_log_dets = {
            l: float(archive["value_class_log_dets"][i])
            for i, l in enumerate(value_labels)
        }
    attack.templates = TemplateSet(
        pois=[int(p) for p in archive["value_pois"]],
        means={
            l: archive["value_means"][i] for i, l in enumerate(value_labels)
        },
        precision=archive["value_precision"],
        priors=priors,
        class_precisions=class_precisions,
        class_log_dets=class_log_dets,
    )

    branch_labels = [int(l) for l in archive["branch_labels"]]
    branch_templates = TemplateSet(
        pois=[int(p) for p in archive["branch_pois"]],
        means={
            l: archive["branch_means"][i] for i, l in enumerate(branch_labels)
        },
        precision=archive["branch_precision"],
    )
    attack.branch_classifier = BranchClassifier(
        branch_templates, attack.branch_region[0], attack.branch_region[1]
    )
    attack.refiner = AnchorRefiner(
        archive["refiner_reference"],
        before=config["refiner_before"],
        after=config["refiner_after"],
    )
    return attack
