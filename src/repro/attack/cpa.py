"""Correlation power analysis (CPA) utilities.

The classic SCA workhorse: Pearson-correlate a per-trace prediction
(e.g. the Hamming weight of an intermediate) against every trace sample
to locate and quantify leakage.  The paper's template attack is a
profiled upgrade of this; CPA remains useful here to *verify* where the
sampled value leaks (vulnerabilities 2 and 3) and as an unprofiled
baseline.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import AttackError
from repro.utils.bitops import hamming_weight


def correlation_trace(traces: np.ndarray, predictions: Sequence[float]) -> np.ndarray:
    """Pearson correlation of ``predictions`` with every sample column.

    ``traces`` is (count, length); the result is (length,).  Columns
    with zero variance correlate as 0.
    """
    traces = np.asarray(traces, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be a (count, length) matrix")
    if traces.shape[0] != len(predictions):
        raise AttackError(
            f"{traces.shape[0]} traces vs {len(predictions)} predictions"
        )
    if traces.shape[0] < 3:
        raise AttackError("need at least 3 traces for a correlation")
    centered_p = predictions - predictions.mean()
    p_norm = float(np.sqrt((centered_p**2).sum()))
    if p_norm == 0:
        raise AttackError("predictions are constant")
    centered_t = traces - traces.mean(axis=0)
    t_norms = np.sqrt((centered_t**2).sum(axis=0))
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = (centered_t.T @ centered_p) / (t_norms * p_norm)
    return np.nan_to_num(rho)


def hamming_weight_predictions(values: Sequence[int]) -> List[int]:
    """32-bit Hamming weights, the standard CPA power model."""
    return [hamming_weight(int(v)) for v in values]


def locate_value_leakage(
    slices: np.ndarray,
    values: Sequence[int],
    model: str = "hw",
    top: int = 5,
) -> Tuple[np.ndarray, List[int]]:
    """Where does the sampled coefficient leak inside the aligned slice?

    ``model='hw'`` correlates against ``HW(value)`` (vulnerability 2);
    ``'hw_negated'`` against ``HW(-value)`` for the negative-branch
    leakage (vulnerability 3); ``'value'`` against the raw value.
    Returns the full correlation trace and the ``top`` absolute peaks.
    """
    values = [int(v) for v in values]
    if model == "hw":
        predictions = hamming_weight_predictions(values)
    elif model == "hw_negated":
        predictions = hamming_weight_predictions([-v for v in values])
    elif model == "value":
        predictions = values
    else:
        raise AttackError(f"unknown CPA model {model!r}")
    rho = correlation_trace(slices, predictions)
    order = np.argsort(np.abs(rho))[::-1][:top]
    return rho, sorted(int(i) for i in order)
