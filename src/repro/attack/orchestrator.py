"""Shared-memory, work-stealing campaign orchestrator.

:func:`repro.attack.campaign.run_campaign` is a one-shot function: it
spins a fresh process pool per call, ships every task through pickled
queue messages, and a killed run loses everything.  This module is the
service layer ROADMAP item 2 asks for — a persistent campaign engine
where **no trace, slice or result array is ever pickled**:

- **Workers are persistent.**  :class:`Orchestrator` forks its worker
  processes once; every later :meth:`~Orchestrator.submit` reuses them
  warm (no pool spin-up, no re-pickled profiled attack).
- **Work stealing over seed ranges.**  A job's victim seeds live in a
  shared-memory :class:`WorkTable` of ``[lo, hi, cursor, owner)`` rows.
  A worker advances its own row's cursor a *grain* at a time; when its
  row drains it claims a free row, and when none remain it steals a
  grain **from the top** of the fullest row (``hi -= grain``) — the
  fixed-capacity analogue of Chase–Lev deques, so a slow shard never
  gates the tail and the table never grows.
- **Results cross via the arena.**  A worker packs each grain's
  per-seed records (values / signs / estimates / dense probability
  tables / timings / error strings) into one of its two dedicated
  :class:`~repro.attack.arena.SliceArena` slots and enqueues only a
  ~100-byte :class:`GrainResult` header; the parent folds the arrays
  straight out of shared memory and releases the slot.
- **Checkpoint / resume.**  Folded seeds complete fixed-size checkpoint
  shards; each finished shard is written atomically
  (:mod:`repro.attack.checkpoint`) so a killed campaign resumes from
  the last completed shard under a fingerprint guard.
- **Worker death is survivable.**  The parent monitors its workers;
  a dead worker's rows and recorded in-flight range are re-queued and
  a replacement is forked.  Duplicated grains re-fold bit-identical
  records, so recovery never changes the report.

The determinism contract is the campaign one: per-seed outcomes are a
pure function of ``(attack, seed, coeffs, batch entropy)``, so the
assembled :class:`~repro.attack.campaign.CampaignReport` is
seed-ordered, worker-count-invariant, steal-schedule-invariant and
bit-identical to ``run_campaign`` — pinned by the
``campaign.orchestrated`` oracle and the kill/resume tests.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.attack.arena import SliceArena, _note_created, _untrack_attached
from repro.attack.branch import ZERO, sign_of
from repro.attack.campaign import (
    STAGES,
    CampaignReport,
    SeedOutcome,
    _attack_lane_chunk,
    _attack_seed,
    aggregate_outcomes,
)
from repro.attack.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.attack.pipeline import SingleTraceAttack
from repro.errors import AttackError, ParameterError, VerificationError
from repro.riscv.device import resolve_engine

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

_TABLE_MAGIC = 0x5245_5645_414C_5754  # work-table header tag
#: How long any party waits on the work-table lock before declaring it
#: poisoned (a worker SIGKILLed inside the ~microsecond critical
#: section).  The job then fails cleanly instead of hanging.
_LOCK_TIMEOUT = 10.0


# ----------------------------------------------------------------------
# Queue messages — each a few hundred bytes, never any array payload.
# The pickle-size regression test pins this (< 1 KB per message).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One campaign broadcast to the workers (work lives in the table)."""

    job: int
    first_seed: int
    trace_count: int
    count: int  # coefficients per trace
    entropy: int
    grain: int
    min_steal: int
    engine: str
    lanes: int
    n_labels: int
    backend: Optional[str] = None


@dataclass(frozen=True)
class GrainResult:
    """\"Your arrays are in arena slot ``slot`` at ``generation``\"."""

    worker: int
    job: int
    slot: int
    generation: int


@dataclass(frozen=True)
class WorkerIdle:
    """The worker found the table empty and went back to its mailbox."""

    worker: int
    job: int


@dataclass(frozen=True)
class WorkerFailed:
    """An unexpected exception escaped the worker's job loop."""

    worker: int
    job: int
    message: str


# ----------------------------------------------------------------------
# Work-stealing table
# ----------------------------------------------------------------------
class WorkTable:
    """Shared-memory seed ranges with grain-at-a-time stealing.

    Layout (int64 words): an 8-word header ``[magic, capacity, n_rows,
    steals, epoch, workers, grains, _]``, then ``capacity`` rows of
    ``[lo, hi, cursor, owner]`` (absolute victim seeds, half-open;
    ``owner == -1`` means unclaimed), then per-worker in-flight words
    ``[lo, hi)`` recording the grain a worker has claimed but not yet
    completed — what the parent re-queues when that worker dies.

    Every mutation happens under one external ``multiprocessing.Lock``
    held for microseconds; the claim policy is owner-from-the-bottom
    (``cursor += grain``), thief-from-the-top (``hi -= grain``), and a
    thief never takes a victim's last ``min_steal`` seeds (the owner
    finishes its own tail faster than a steal round-trips).
    """

    _HEADER = 8
    _ROW = 4

    def __init__(
        self,
        capacity: Optional[int] = None,
        workers: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if _shared_memory is None:  # pragma: no cover
            raise ParameterError("multiprocessing.shared_memory unavailable")
        if name is None:
            if capacity is None or workers is None:
                raise ParameterError("WorkTable() needs capacity and workers")
            if capacity < max(workers, 1):
                raise ParameterError(
                    f"table capacity {capacity} < workers {workers}"
                )
            words = self._HEADER + capacity * self._ROW + workers * 2
            self._owner = True
            self._shm = _shared_memory.SharedMemory(
                create=True, size=words * 8
            )
            view = self._view(words)
            view[:] = 0
            view[0] = _TABLE_MAGIC
            view[1] = capacity
            view[5] = workers
            _note_created(self._shm.name)
        else:
            self._owner = False
            self._shm = _shared_memory.SharedMemory(name=name)
            _untrack_attached(self._shm)
            head = np.ndarray(
                self._HEADER, dtype=np.int64, buffer=self._shm.buf[: 8 * 8]
            )
            if head[0] != _TABLE_MAGIC:
                raise VerificationError(
                    f"shared segment {name!r} is not a WorkTable"
                )
            capacity = int(head[1])
            workers = int(head[5])
        self.capacity = int(capacity)
        self.workers = int(workers)
        self._closed = False

    def _view(self, words: Optional[int] = None) -> np.ndarray:
        if words is None:
            words = self._HEADER + self.capacity * self._ROW + self.workers * 2
        return np.ndarray(words, dtype=np.int64, buffer=self._shm.buf[: words * 8])

    @property
    def name(self) -> str:
        return self._shm.name

    def __getstate__(self) -> dict:
        return {"name": self.name}

    def __setstate__(self, state: dict) -> None:
        self.__init__(name=state["name"])

    # -- all methods below assume the caller holds the table lock ------
    def _rows(self) -> np.ndarray:
        base = self._HEADER * 8
        count = self.capacity * self._ROW
        return np.ndarray(
            (self.capacity, self._ROW),
            dtype=np.int64,
            buffer=self._shm.buf[base : base + count * 8],
        )

    def _inflight(self) -> np.ndarray:
        base = (self._HEADER + self.capacity * self._ROW) * 8
        return np.ndarray(
            (self.workers, 2),
            dtype=np.int64,
            buffer=self._shm.buf[base : base + self.workers * 16],
        )

    def reset(self, ranges: Sequence[Tuple[int, int]]) -> None:
        """Load a fresh job's seed ranges; clears counters/in-flight."""
        if len(ranges) > self.capacity:
            raise ParameterError(
                f"{len(ranges)} work ranges exceed table capacity "
                f"{self.capacity}"
            )
        view = self._view()
        rows = self._rows()
        rows[:] = 0
        rows[:, 3] = -1
        for i, (lo, hi) in enumerate(ranges):
            rows[i, 0] = rows[i, 2] = int(lo)
            rows[i, 1] = int(hi)
        view[2] = len(ranges)
        view[3] = 0  # steals
        view[4] += 1  # epoch
        view[6] = 0  # grains
        self._inflight()[:] = 0

    def _take(self, rows: np.ndarray, row: int, worker: int, grain: int) -> Tuple[int, int]:
        cursor, hi = int(rows[row, 2]), int(rows[row, 1])
        size = min(grain, hi - cursor)
        rows[row, 2] = cursor + size
        rows[row, 3] = worker
        inflight = self._inflight()
        inflight[worker, 0] = cursor
        inflight[worker, 1] = cursor + size
        self._view()[6] += 1
        return cursor, cursor + size

    def claim(self, worker: int, grain: int, min_steal: int) -> Optional[Tuple[int, int]]:
        """Claim the next grain for ``worker`` (own row, then a free
        row, then a steal from the top of the fullest row)."""
        view = self._view()
        rows = self._rows()
        n = int(view[2])
        live = rows[:n]
        open_rows = live[:, 2] < live[:, 1]
        if not open_rows.any():
            self.complete(worker)
            return None
        for owner_match in (live[:, 3] == worker, live[:, 3] == -1):
            hits = np.nonzero(open_rows & owner_match)[0]
            if hits.size:
                return self._take(rows, int(hits[0]), worker, grain)
        remaining = np.where(open_rows, live[:, 1] - live[:, 2], 0)
        victim = int(np.argmax(remaining))
        left = int(remaining[victim])
        if left <= min_steal:
            self.complete(worker)
            return None
        size = min(grain, max(left // 2, min_steal))
        hi = int(rows[victim, 1])
        rows[victim, 1] = hi - size
        view[3] += 1  # steals
        view[6] += 1  # grains
        inflight = self._inflight()
        inflight[worker, 0] = hi - size
        inflight[worker, 1] = hi
        return hi - size, hi

    def complete(self, worker: int) -> None:
        """The worker's claimed grain has been fully reported."""
        self._inflight()[worker] = 0

    def requeue_dead(self, worker: int) -> None:
        """Return a dead worker's rows and in-flight grain to the pool."""
        view = self._view()
        rows = self._rows()
        n = int(view[2])
        owned = rows[:n, 3] == worker
        rows[:n, 3] = np.where(owned, -1, rows[:n, 3])
        inflight = self._inflight()
        lo, hi = int(inflight[worker, 0]), int(inflight[worker, 1])
        inflight[worker] = 0
        if hi > lo:
            if n >= self.capacity:
                raise AttackError(
                    "work table is full; cannot re-queue the in-flight "
                    "range of a dead worker"
                )
            rows[n, 0] = rows[n, 2] = lo
            rows[n, 1] = hi
            rows[n, 3] = -1
            view[2] = n + 1

    def remaining(self) -> int:
        view = self._view()
        rows = self._rows()[: int(view[2])]
        return int(np.maximum(rows[:, 1] - rows[:, 2], 0).sum())

    def counters(self) -> Dict[str, int]:
        view = self._view()
        return {"steals": int(view[3]), "grains": int(view[6])}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Grain record packing (worker side) and folding (parent side)
# ----------------------------------------------------------------------
def _sign_groups(labels: Sequence[int]) -> Dict[int, List[Tuple[int, int]]]:
    """``sign -> [(column, label), ...]`` in template-bank label order —
    the dense layout both ends of the arena protocol agree on."""
    groups: Dict[int, List[Tuple[int, int]]] = {}
    for column, label in enumerate(int(l) for l in labels):
        groups.setdefault(sign_of(label), []).append((column, label))
    return groups


def _record_cost(outcome: SeedOutcome, coeffs: int, n_labels: int) -> int:
    cost = 1 + 3 * 8 * coeffs + 8 * coeffs * n_labels
    if not outcome.ok:
        cost += len(json.dumps([outcome.seed, outcome.error])) + 2
    return cost


def _chunk_outcomes(
    outcomes: List[SeedOutcome], slot_bytes: int, coeffs: int, n_labels: int
) -> List[List[SeedOutcome]]:
    """Split a grain's consecutive outcomes into runs that each fit a
    record slot (headroom for the meta/timings arrays and alignment)."""
    budget = slot_bytes - 512
    chunks: List[List[SeedOutcome]] = []
    current: List[SeedOutcome] = []
    used = 0
    for outcome in outcomes:
        cost = _record_cost(outcome, coeffs, n_labels)
        if current and used + cost > budget:
            chunks.append(current)
            current, used = [], 0
        if cost > budget and not current:
            raise ParameterError(
                f"one seed record needs {cost} B but record slots hold "
                f"{slot_bytes} B; raise record_slot_bytes"
            )
        current.append(outcome)
        used += cost
    if current:
        chunks.append(current)
    return chunks


def _pack_record(
    chunk: List[SeedOutcome],
    coeffs: int,
    groups: Dict[int, List[Tuple[int, int]]],
    n_labels: int,
) -> List[np.ndarray]:
    """One contiguous run of per-seed outcomes as arena arrays.

    Probability tables go dense: ``tables[i, j, column]`` is the
    probability of the template-bank label at ``column``.  Together
    with the classified sign that is a loss-free encoding —
    ``attack_aligned`` builds each table over exactly the labels whose
    ``sign_of`` matches the classified sign (and ``{0: 1.0}`` for
    ZERO), so the parent rebuilds the dicts bit for bit.
    """
    n = len(chunk)
    ok = np.zeros(n, dtype=np.uint8)
    values = np.zeros((n, coeffs), dtype=np.int64)
    signs = np.zeros((n, coeffs), dtype=np.int64)
    estimates = np.zeros((n, coeffs), dtype=np.int64)
    tables = np.zeros((n, coeffs, n_labels), dtype=np.float64)
    timings = np.zeros(len(STAGES), dtype=np.float64)
    errors: List[List] = []
    for i, outcome in enumerate(chunk):
        values[i] = outcome.values
        for stage_index, stage in enumerate(STAGES):
            timings[stage_index] += outcome.timings.get(stage, 0.0)
        if not outcome.ok:
            errors.append([outcome.seed, outcome.error])
            continue
        ok[i] = 1
        signs[i] = outcome.signs
        estimates[i] = outcome.estimates
        for j, (sign, table) in enumerate(zip(outcome.signs, outcome.tables)):
            if sign == ZERO:
                continue
            for column, label in groups[int(sign)]:
                tables[i, j, column] = table[label]
    meta = np.array(
        [chunk[0].seed, chunk[-1].seed + 1, coeffs, n_labels, len(errors)],
        dtype=np.int64,
    )
    error_blob = np.frombuffer(json.dumps(errors).encode(), dtype=np.uint8)
    return [meta, ok, values, signs, estimates, tables, timings, error_blob]


def _rebuild_tables(
    sign_row: np.ndarray,
    dense_row: np.ndarray,
    groups: Dict[int, List[Tuple[int, int]]],
) -> List[Dict[int, float]]:
    tables: List[Dict[int, float]] = []
    for j, sign in enumerate(int(s) for s in sign_row):
        if sign == ZERO:
            tables.append({0: 1.0})
        else:
            tables.append(
                {label: float(dense_row[j, column]) for column, label in groups[sign]}
            )
    return tables


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int,
    attack: SingleTraceAttack,
    control,
    results,
    table: WorkTable,
    table_lock,
    record_arena: SliceArena,
    record_slots: Tuple[int, int],
    scratch_arena: Optional[SliceArena],
    scratch_slot: int,
    slot_sem,
    stop_event,
) -> None:
    """Persistent worker: block on the mailbox, run jobs until ``None``."""
    while True:
        spec = control.get()
        if spec is None:
            return
        try:
            _worker_job(
                worker_id,
                attack,
                spec,
                results,
                table,
                table_lock,
                record_arena,
                record_slots,
                scratch_arena,
                scratch_slot,
                slot_sem,
                stop_event,
            )
        except Exception as exc:  # pragma: no cover - defensive
            results.put(
                WorkerFailed(
                    worker_id, spec.job, f"{type(exc).__name__}: {exc}"[:400]
                )
            )
        results.put(WorkerIdle(worker_id, spec.job))


def _worker_job(
    worker_id: int,
    attack: SingleTraceAttack,
    spec: JobSpec,
    results,
    table: WorkTable,
    table_lock,
    record_arena: SliceArena,
    record_slots: Tuple[int, int],
    scratch_arena: Optional[SliceArena],
    scratch_slot: int,
    slot_sem,
    stop_event,
) -> None:
    if spec.backend is not None:
        from repro.backends import get_backend, set_backend

        if get_backend().name != spec.backend:
            set_backend(spec.backend)
    labels = [int(l) for l in attack.templates.labels]
    groups = _sign_groups(labels)
    scratch = None
    if spec.engine == "lanes" and scratch_arena is not None:
        scratch = scratch_arena.scratch(scratch_slot)
    toggle = 0
    while not stop_event.is_set():
        if not table_lock.acquire(timeout=_LOCK_TIMEOUT):
            continue  # re-check stop_event; parent fails the job if poisoned
        try:
            claim = table.claim(worker_id, spec.grain, spec.min_steal)
        finally:
            table_lock.release()
        if claim is None:
            return
        lo, hi = claim
        outcomes: List[SeedOutcome] = []
        if spec.engine == "lanes":
            for base in range(lo, hi, spec.lanes):
                seeds = list(range(base, min(base + spec.lanes, hi)))
                outcomes.extend(
                    _attack_lane_chunk(
                        attack, seeds, spec.count, spec.entropy, out=scratch
                    )
                )
        else:
            outcomes.extend(
                _attack_seed(attack, seed, spec.count, spec.entropy, spec.engine)
                for seed in range(lo, hi)
            )
        for chunk in _chunk_outcomes(
            outcomes, record_arena.slot_bytes, spec.count, spec.n_labels
        ):
            arrays = _pack_record(chunk, spec.count, groups, spec.n_labels)
            slot_sem.acquire()
            slot = record_slots[toggle]
            toggle ^= 1
            generation = record_arena.write(slot, arrays)
            results.put(GrainResult(worker_id, spec.job, slot, generation))
        if table_lock.acquire(timeout=_LOCK_TIMEOUT):
            try:
                table.complete(worker_id)
            finally:
                table_lock.release()


# ----------------------------------------------------------------------
# Job handle
# ----------------------------------------------------------------------
@dataclass
class CampaignProgress:
    """A point-in-time snapshot of a running campaign."""

    status: str
    seeds_done: int
    seeds_total: int
    shards_done: int
    shards_total: int
    steals: int
    grains: int
    checkpoints: int
    workers_alive: int
    workers_died: int
    wall_seconds: float


class CampaignJob:
    """Handle to one submitted campaign (thread-safe, asyncio-usable).

    ``status``/:meth:`progress` never block; :meth:`result` blocks until
    the report is assembled (or raises on failure/cancellation); the
    handle is awaitable from ``asyncio`` code (``report = await job``).
    """

    def __init__(
        self,
        orchestrator: "Orchestrator",
        spec: JobSpec,
        checkpoint: Optional[CampaignCheckpoint],
    ) -> None:
        self._orchestrator = orchestrator
        self.spec = spec
        self.checkpoint = checkpoint
        n, coeffs = spec.trace_count, spec.count
        self.folded = np.zeros(n, dtype=bool)
        self.ok = np.zeros(n, dtype=np.uint8)
        self.values = np.zeros((n, coeffs), dtype=np.int64)
        self.signs = np.zeros((n, coeffs), dtype=np.int64)
        self.estimates = np.zeros((n, coeffs), dtype=np.int64)
        self.tables = np.zeros((n, coeffs, spec.n_labels), dtype=np.float64)
        self.errors: Dict[int, str] = {}
        self.timings = {stage: 0.0 for stage in STAGES}
        self.base_counters: Dict[str, int] = {}
        self.checkpoints_written = 0
        self.workers_died = 0
        self.messages = 0
        self._status = "pending"
        self._error: Optional[str] = None
        self._report: Optional[CampaignReport] = None
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        return self._status

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def worker_pids(self) -> List[int]:
        return self._orchestrator.worker_pids()

    def progress(self) -> CampaignProgress:
        counters = self._orchestrator._table_counters()
        shard_size = self.checkpoint.shard_size if self.checkpoint else 0
        return CampaignProgress(
            status=self._status,
            seeds_done=int(self.folded.sum()),
            seeds_total=self.spec.trace_count,
            shards_done=len(self.checkpoint.shards_done) if self.checkpoint else 0,
            shards_total=self.checkpoint.shards_total if self.checkpoint else 0,
            steals=self.base_counters.get("steals", 0) + counters.get("steals", 0),
            grains=self.base_counters.get("grains", 0) + counters.get("grains", 0),
            checkpoints=self.checkpoints_written,
            workers_alive=self._orchestrator.workers_alive(),
            workers_died=self.workers_died,
            wall_seconds=time.perf_counter() - self._started,
        )

    def cancel(self) -> None:
        """Stop at the next grain boundary; completed shards stay
        checkpointed, so a later ``resume`` picks up from here."""
        if not self._done.is_set():
            self._cancel.set()
            self._orchestrator._stop.set()

    def result(self, timeout: Optional[float] = None) -> CampaignReport:
        if not self._done.wait(timeout):
            raise AttackError("campaign job still running (timeout)")
        if self._report is None:
            raise AttackError(self._error or "campaign job did not complete")
        return self._report

    async def wait(self) -> CampaignReport:
        import asyncio

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.result)

    def __await__(self):
        return self.wait().__await__()


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class Orchestrator:
    """A persistent, shared-memory campaign engine over one attack.

    Workers fork once (carrying the profiled attack by copy-on-write;
    under ``spawn`` the attack pickles through the slim
    ``__getstate__`` payloads) and then serve any number of submitted
    campaigns.  See the module docstring for the data-plane design.
    """

    def __init__(
        self,
        attack: SingleTraceAttack,
        workers: Optional[int] = None,
        grain: Optional[int] = None,
        min_steal: int = 8,
        engine: Optional[str] = None,
        lanes: Optional[int] = None,
        record_slot_bytes: Optional[int] = None,
        scratch_bytes: int = 8 << 20,
        start_method: Optional[str] = None,
        respawn: bool = True,
    ) -> None:
        if attack.templates is None or attack.branch_classifier is None:
            raise AttackError("profile() must run before a campaign")
        self.attack = attack
        acquisition = attack.acquisition
        self.workers = max(1, int(workers) if workers else min(4, os.cpu_count() or 1))
        self.engine = resolve_engine(
            engine if engine is not None else getattr(acquisition, "engine", None)
        )
        width = lanes if lanes is not None else getattr(acquisition, "lanes", 64)
        self.lanes = max(1, int(width or 64))
        self.grain = max(1, int(grain) if grain else (self.lanes if self.engine == "lanes" else 32))
        self.min_steal = max(1, int(min_steal))
        self.record_slot_bytes = record_slot_bytes
        self.scratch_bytes = int(scratch_bytes)
        self.respawn = respawn
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._labels = [int(l) for l in attack.templates.labels]
        self._groups = _sign_groups(self._labels)
        self._started = False
        self._closed = False
        self._job_counter = 0
        self._active: Optional[CampaignJob] = None
        self._submit_lock = threading.Lock()
        self._procs: Dict[int, multiprocessing.Process] = {}
        self._controls: Dict[int, object] = {}
        self._sems: Dict[int, object] = {}

    # ------------------------------------------------------------------
    def __enter__(self) -> "Orchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def worker_pids(self) -> List[int]:
        return [p.pid for p in self._procs.values() if p.is_alive()]

    def workers_alive(self) -> int:
        return sum(1 for p in self._procs.values() if p.is_alive())

    def _table_counters(self) -> Dict[str, int]:
        if not self._started or self._closed:
            return {}
        return self._table.counters()

    # ------------------------------------------------------------------
    def _ensure_started(self, coeffs: int) -> None:
        if self._started:
            return
        record_bytes = self.record_slot_bytes
        if record_bytes is None:
            per_seed = 1 + 24 * coeffs + 8 * coeffs * len(self._labels) + 64
            record_bytes = max(64 << 10, self.grain * per_seed + (8 << 10))
        self.record_slot_bytes = int(record_bytes)
        capacity = max(256, self.workers * 16)
        self._table = WorkTable(capacity=capacity, workers=self.workers)
        self._table_lock = self._ctx.Lock()
        self._stop = self._ctx.Event()
        self._results = self._ctx.Queue()
        self._record_arena = SliceArena(
            slots=2 * self.workers, slot_bytes=self.record_slot_bytes
        )
        self._scratch_arena = None
        if self.engine == "lanes":
            self._scratch_arena = SliceArena(
                slots=self.workers, slot_bytes=self.scratch_bytes
            )
        self._started = True
        for worker in range(self.workers):
            self._spawn(worker)

    def _spawn(self, worker: int) -> None:
        control = self._ctx.Queue()
        sem = self._ctx.BoundedSemaphore(2)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                worker,
                self.attack,
                control,
                self._results,
                self._table,
                self._table_lock,
                self._record_arena,
                (2 * worker, 2 * worker + 1),
                self._scratch_arena,
                worker,
                sem,
                self._stop,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[worker] = proc
        self._controls[worker] = control
        self._sems[worker] = sem

    # ------------------------------------------------------------------
    def submit(
        self,
        trace_count: int,
        coeffs_per_trace: int = 8,
        first_seed: int = 1,
        campaign_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        shard_size: int = 256,
    ) -> CampaignJob:
        """Start a campaign; returns immediately with a job handle.

        With ``campaign_dir`` every completed shard of ``shard_size``
        seeds is checkpointed atomically; ``resume=True`` reloads
        completed shards (fingerprint-checked) and only the remainder
        is attacked.  One job runs at a time per orchestrator.
        """
        with self._submit_lock:
            if self._closed:
                raise AttackError("orchestrator is closed")
            if self._active is not None and not self._active.done:
                raise AttackError("a campaign job is already active")
            if trace_count < 1:
                raise AttackError(f"trace_count must be >= 1, got {trace_count}")
            if resume and campaign_dir is None:
                raise AttackError("resume=True needs campaign_dir")
            entropy = self.attack.acquisition.batch_entropy()
            fingerprint = campaign_fingerprint(
                first_seed, trace_count, coeffs_per_trace, entropy, self._labels
            )
            self._ensure_started(coeffs_per_trace)
            checkpoint = None
            if campaign_dir is not None:
                if resume:
                    checkpoint = CampaignCheckpoint.resume(campaign_dir, fingerprint)
                else:
                    checkpoint = CampaignCheckpoint(
                        campaign_dir,
                        fingerprint,
                        trace_count,
                        first_seed,
                        coeffs_per_trace,
                        shard_size,
                    )
                    checkpoint.write_manifest()
            self._job_counter += 1
            backend_name = None
            try:
                from repro.backends import get_backend

                backend_name = get_backend().name
            except Exception:  # pragma: no cover - probing never fails here
                pass
            spec = JobSpec(
                job=self._job_counter,
                first_seed=first_seed,
                trace_count=trace_count,
                count=coeffs_per_trace,
                entropy=entropy,
                grain=self.grain,
                min_steal=self.min_steal,
                engine=self.engine,
                lanes=self.lanes,
                n_labels=len(self._labels),
                backend=backend_name,
            )
            job = CampaignJob(self, spec, checkpoint)
            if checkpoint is not None and resume:
                self._preload(job)
            self._active = job
            thread = threading.Thread(
                target=self._run_job, args=(job,), daemon=True
            )
            job._thread = thread
            thread.start()
            return job

    def _preload(self, job: CampaignJob) -> None:
        """Fold already-checkpointed shards into the job's store."""
        checkpoint = job.checkpoint
        for shard in checkpoint.shards_done:
            seeds = checkpoint.shard_range(shard)
            lo = seeds.start - job.spec.first_seed
            hi = lo + len(seeds)
            arrays = checkpoint.load_shard(shard)
            job.ok[lo:hi] = arrays["ok"]
            job.values[lo:hi] = arrays["values"]
            job.signs[lo:hi] = arrays["signs"]
            job.estimates[lo:hi] = arrays["estimates"]
            job.tables[lo:hi] = arrays["tables"]
            job.folded[lo:hi] = True
            for seed, message in json.loads(bytes(arrays["errors"].tobytes()).decode()):
                job.errors[int(seed)] = str(message)
        for key, value in checkpoint.counters.items():
            if key.startswith("t_") and key.endswith("_us"):
                job.timings[key[2:-3]] = value / 1e6
            else:
                job.base_counters[key] = int(value)

    # ------------------------------------------------------------------
    def _work_ranges(self, job: CampaignJob) -> List[Tuple[int, int]]:
        """Contiguous unfolded seed ranges, coalesced to fit the table
        (a gap swallowed by coalescing just re-folds identical bits)."""
        first = job.spec.first_seed
        ranges: List[Tuple[int, int]] = []
        run_start: Optional[int] = None
        for i, folded in enumerate(job.folded):
            if not folded and run_start is None:
                run_start = i
            elif folded and run_start is not None:
                ranges.append((first + run_start, first + i))
                run_start = None
        if run_start is not None:
            ranges.append((first + run_start, first + len(job.folded)))
        limit = self._table.capacity - self.workers * 4
        while len(ranges) > limit:
            gaps = [
                (ranges[i + 1][0] - ranges[i][1], i)
                for i in range(len(ranges) - 1)
            ]
            _, i = min(gaps)
            ranges[i : i + 2] = [(ranges[i][0], ranges[i + 1][1])]
        return ranges

    def _run_job(self, job: CampaignJob) -> None:
        try:
            self._drive(job)
        except Exception as exc:  # pragma: no cover - defensive
            job._error = f"{type(exc).__name__}: {exc}"
            job._status = "failed"
            job._done.set()

    def _drive(self, job: CampaignJob) -> None:
        spec = job.spec
        self._stop.clear()
        ranges = self._work_ranges(job)
        idle: set = set()
        with self._table_lock:
            self._table.reset(ranges)
        if ranges:
            job._status = "running"
            for worker, control in self._controls.items():
                control.put(spec)
        else:
            idle = set(self._procs)
        finishing = not ranges
        while True:
            if job._cancel.is_set():
                break
            try:
                message = self._results.get(timeout=0.2)
            except queue_module.Empty:
                if self._check_deaths(job, spec, idle) is False:
                    return
                if finishing and idle >= set(self._procs):
                    break
                continue
            job.messages += 1
            if isinstance(message, GrainResult):
                if message.job == spec.job:
                    self._fold(job, message)
                    if not finishing and bool(job.folded.all()):
                        finishing = True
                else:  # stale slot from a cancelled job: free it anyway
                    self._release(message)
            elif isinstance(message, WorkerIdle):
                if message.job == spec.job:
                    idle.add(message.worker)
            elif isinstance(message, WorkerFailed):
                if message.job == spec.job:
                    job._error = f"worker {message.worker} failed: {message.message}"
                    self._stop.set()
                    self._drain_to_idle(idle)
                    job._status = "failed"
                    job._done.set()
                    return
            if finishing and idle >= set(self._procs):
                break
        if job._cancel.is_set() and not bool(job.folded.all()):
            self._drain_to_idle(idle)
            self._finalize_checkpoint(job)
            job._status = "cancelled"
            job._error = "campaign cancelled"
            job._done.set()
            return
        self._finalize_checkpoint(job)
        wall = time.perf_counter() - job._started
        job._report = self._assemble(job, wall)
        job._status = "completed"
        job._done.set()

    def _release(self, message: GrainResult) -> None:
        try:
            self._record_arena.read(message.slot, message.generation)
        except VerificationError:
            pass
        sem = self._sems.get(message.worker)
        if sem is not None:
            try:
                sem.release()
            except ValueError:  # pragma: no cover - respawned semaphore
                pass

    def _fold(self, job: CampaignJob, message: GrainResult) -> None:
        arrays = self._record_arena.read(message.slot, message.generation)
        self._release_sem(message.worker)
        meta, ok, values, signs, estimates, tables, timings, error_blob = arrays
        lo = int(meta[0]) - job.spec.first_seed
        hi = int(meta[1]) - job.spec.first_seed
        job.ok[lo:hi] = ok
        job.values[lo:hi] = values
        job.signs[lo:hi] = signs
        job.estimates[lo:hi] = estimates
        job.tables[lo:hi] = tables
        for stage_index, stage in enumerate(STAGES):
            job.timings[stage] += float(timings[stage_index])
        for seed, text in json.loads(error_blob.tobytes().decode() or "[]"):
            job.errors[int(seed)] = str(text)
        newly = ~job.folded[lo:hi]
        job.folded[lo:hi] = True
        if job.checkpoint is not None and bool(newly.any()):
            self._maybe_checkpoint(job, lo, hi)

    def _release_sem(self, worker: int) -> None:
        sem = self._sems.get(worker)
        if sem is not None:
            try:
                sem.release()
            except ValueError:  # pragma: no cover - respawned semaphore
                pass

    def _maybe_checkpoint(self, job: CampaignJob, lo: int, hi: int) -> None:
        checkpoint = job.checkpoint
        size = checkpoint.shard_size
        for shard in range(lo // size, (hi - 1) // size + 1):
            if shard in checkpoint.shards_done:
                continue
            seeds = checkpoint.shard_range(shard)
            a = seeds.start - job.spec.first_seed
            b = a + len(seeds)
            if not bool(job.folded[a:b].all()):
                continue
            errors = [
                [seed, job.errors[seed]]
                for seed in seeds
                if seed in job.errors
            ]
            self._sync_counters(job)
            checkpoint.write_shard(
                shard,
                ok=job.ok[a:b],
                values=job.values[a:b],
                signs=job.signs[a:b],
                estimates=job.estimates[a:b],
                tables=job.tables[a:b],
                errors=np.frombuffer(
                    json.dumps(errors).encode(), dtype=np.uint8
                ),
            )
            job.checkpoints_written += 1

    def _sync_counters(self, job: CampaignJob) -> None:
        checkpoint = job.checkpoint
        if checkpoint is None:
            return
        counters = self._table.counters()
        merged = dict(job.base_counters)
        for key, value in counters.items():
            merged[key] = merged.get(key, 0) + value
        merged["checkpoints"] = (
            job.base_counters.get("checkpoints", 0) + job.checkpoints_written
        )
        merged["workers_died"] = (
            job.base_counters.get("workers_died", 0) + job.workers_died
        )
        for stage, seconds in job.timings.items():
            merged[f"t_{stage}_us"] = int(seconds * 1e6)
        checkpoint.counters = merged

    def _finalize_checkpoint(self, job: CampaignJob) -> None:
        if job.checkpoint is None:
            return
        self._sync_counters(job)
        job.checkpoint.counters["checkpoints"] = (
            job.base_counters.get("checkpoints", 0) + job.checkpoints_written
        )
        job.checkpoint.write_manifest()

    def _drain_to_idle(self, idle: set, timeout: float = 30.0) -> None:
        """After stop/cancel: keep releasing slots until workers idle."""
        deadline = time.monotonic() + timeout
        while idle < set(self._procs) and time.monotonic() < deadline:
            alive = {w for w, p in self._procs.items() if p.is_alive()}
            if idle >= alive:
                break
            try:
                message = self._results.get(timeout=0.2)
            except queue_module.Empty:
                continue
            if isinstance(message, GrainResult):
                self._release(message)
            elif isinstance(message, WorkerIdle):
                idle.add(message.worker)

    def _check_deaths(self, job: CampaignJob, spec: JobSpec, idle: set):
        """Detect SIGKILLed workers; re-queue their work and respawn."""
        dead = [
            w
            for w, p in self._procs.items()
            if not p.is_alive()
        ]
        if not dead:
            return True
        for worker in dead:
            job.workers_died += 1
            # Fold everything already queued before touching the table,
            # so re-queued ranges shrink to what was actually lost.
            while True:
                try:
                    message = self._results.get_nowait()
                except queue_module.Empty:
                    break
                if isinstance(message, GrainResult) and message.job == spec.job:
                    self._fold(job, message)
                elif isinstance(message, WorkerIdle) and message.job == spec.job:
                    idle.add(message.worker)
            if not self._table_lock.acquire(timeout=_LOCK_TIMEOUT):
                job._error = (
                    f"worker {worker} died holding the work-table lock; "
                    "campaign state is checkpointed — resume to continue"
                )
                self._stop.set()
                job._status = "failed"
                job._done.set()
                return False
            try:
                self._table.requeue_dead(worker)
            finally:
                self._table_lock.release()
            idle.discard(worker)
            self._procs.pop(worker).join(timeout=0.1)
            if self.respawn:
                self._spawn(worker)
                self._controls[worker].put(spec)
        if not self.workers_alive():
            job._error = "all campaign workers died"
            job._status = "failed"
            job._done.set()
            return False
        # Wake any idle workers: the re-queued ranges are claimable.
        for worker in sorted(idle):
            control = self._controls.get(worker)
            if control is not None:
                control.put(spec)
        idle.clear()
        return True

    # ------------------------------------------------------------------
    def _assemble(self, job: CampaignJob, wall: float) -> CampaignReport:
        spec = job.spec
        results: List[SeedOutcome] = []
        for i in range(spec.trace_count):
            seed = spec.first_seed + i
            if job.ok[i]:
                results.append(
                    SeedOutcome(
                        seed=seed,
                        values=[int(v) for v in job.values[i]],
                        signs=[int(s) for s in job.signs[i]],
                        estimates=[int(e) for e in job.estimates[i]],
                        tables=_rebuild_tables(
                            job.signs[i], job.tables[i], self._groups
                        ),
                        timings={},
                    )
                )
            else:
                results.append(
                    SeedOutcome(
                        seed=seed,
                        values=[int(v) for v in job.values[i]],
                        signs=[],
                        estimates=[],
                        tables=[],
                        timings={},
                        error=job.errors.get(seed, "worker did not report"),
                    )
                )
        counters = self._table.counters()
        metadata = {
            "grain": self.grain,
            "shard_size": job.checkpoint.shard_size if job.checkpoint else 0,
            "steals": job.base_counters.get("steals", 0) + counters["steals"],
            "grains": job.base_counters.get("grains", 0) + counters["grains"],
            "checkpoints": job.checkpoints_written,
            "arena_bytes": self._record_arena.total_bytes
            + (self._scratch_arena.total_bytes if self._scratch_arena else 0),
            "workers_died": job.workers_died,
            "messages": job.messages,
        }
        return aggregate_outcomes(
            results,
            spec.trace_count,
            wall,
            self.workers,
            spec.engine,
            base_timings=job.timings,
            orchestrator=metadata,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._active is not None and not self._active.done:
            self._active.cancel()
            self._active._done.wait(timeout=10.0)
        if self._started:
            self._stop.set()
            for control in self._controls.values():
                try:
                    control.put(None)
                except Exception:  # pragma: no cover
                    pass
            for proc in self._procs.values():
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._record_arena.close()
            if self._scratch_arena is not None:
                self._scratch_arena.close()
            self._table.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering varies
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# Conveniences
# ----------------------------------------------------------------------
def run_orchestrated(
    attack: SingleTraceAttack,
    trace_count: int,
    coeffs_per_trace: int = 8,
    first_seed: int = 1,
    workers: Optional[int] = None,
    grain: Optional[int] = None,
    min_steal: int = 8,
    engine: Optional[str] = None,
    lanes: Optional[int] = None,
    campaign_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    shard_size: int = 256,
) -> CampaignReport:
    """One-shot orchestrated campaign (the ``run_campaign`` signature
    plus checkpointing) — submit, wait, tear down."""
    with Orchestrator(
        attack,
        workers=workers,
        grain=grain,
        min_steal=min_steal,
        engine=engine,
        lanes=lanes,
    ) as orchestrator:
        job = orchestrator.submit(
            trace_count,
            coeffs_per_trace=coeffs_per_trace,
            first_seed=first_seed,
            campaign_dir=campaign_dir,
            resume=resume,
            shard_size=shard_size,
        )
        return job.result()
