"""Multivariate-Gaussian template building and matching [28].

A template per class (sampled coefficient value) is the mean vector at
the POIs; a pooled covariance matrix describes the noise.  Matching
computes the Gaussian log-likelihood of the observed POI vector under
every template and returns either the argmax (Table I) or the full
normalised probability table (Table II / the DBDD hint generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backends import get_kernel
from repro.errors import AttackError


class RunningMoments:
    """Streaming sufficient statistics of one profiling class.

    Welford/Chan accumulation of ``count``, ``mean`` (full slice length)
    and ``scatter`` (the centered second-moment matrix
    ``sum((x - mean) (x - mean)^T)``, a.k.a. M2).  Batches are folded in
    with the parallel-combine update, so the result is independent of
    how the profiling set is chunked across pool workers, and matches
    the materialized ``(traces - mean).T @ (traces - mean)`` scatter up
    to float accumulation error (~1e-12 relative).

    These three quantities are everything the profiling phase needs:
    POI scores (:mod:`repro.attack.poi`), template means, pooled and
    per-class covariances (:meth:`TemplateSet.from_moments`), and —
    because sign classes are unions of value classes — the branch
    classifier's statistics via :meth:`merge`.
    """

    __slots__ = ("count", "mean", "scatter")

    def __init__(self, length: int) -> None:
        self.count = 0
        self.mean = np.zeros(length, dtype=np.float64)
        self.scatter = np.zeros((length, length), dtype=np.float64)

    # ------------------------------------------------------------------
    def update(self, batch: np.ndarray) -> "RunningMoments":
        """Fold a ``(k, length)`` batch of observations in."""
        batch = np.atleast_2d(np.asarray(batch, dtype=np.float64))
        k = batch.shape[0]
        if k == 0:
            return self
        batch_mean = batch.mean(axis=0)
        centered = batch - batch_mean
        other = RunningMoments(len(self.mean))
        other.count = k
        other.mean = batch_mean
        other.scatter = centered.T @ centered
        return self.merge(other)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Chan's parallel combine of two accumulators (in place)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean.copy()
            self.scatter = other.scatter.copy()
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self.scatter += other.scatter + np.outer(delta, delta) * (
            self.count * other.count / total
        )
        self.mean += delta * (other.count / total)
        self.count = total
        return self

    def copy(self) -> "RunningMoments":
        clone = RunningMoments(len(self.mean))
        clone.count = self.count
        clone.mean = self.mean.copy()
        clone.scatter = self.scatter.copy()
        return clone

    def variances(self) -> np.ndarray:
        """Per-sample population variance (matches ``traces.var(axis=0)``)."""
        if self.count == 0:
            raise AttackError("no observations accumulated")
        return np.diag(self.scatter) / self.count

    @classmethod
    def from_matrix(cls, traces: np.ndarray) -> "RunningMoments":
        traces = np.atleast_2d(np.asarray(traces, dtype=np.float64))
        return cls(traces.shape[1]).update(traces)


class MomentAccumulator:
    """Label-keyed :class:`RunningMoments` with small row buffers.

    Folding every slice into a full ``(L, L)`` scatter individually
    costs an outer product per observation; buffering up to ``chunk``
    rows per label first turns that into one BLAS ``B.T @ B`` per chunk
    (~30x fewer large-matrix passes) while staying one-pass streaming:
    memory is bounded by ``labels * chunk * L`` regardless of how many
    slices flow through.  Rows are folded in arrival order, so results
    are reproducible for a fixed capture order (and the worker-side
    segmentation path yields in seed order whatever the pool does).
    """

    def __init__(self, length: int, chunk: int = 32) -> None:
        self.length = length
        self.chunk = max(1, chunk)
        self._moments: Dict[int, RunningMoments] = {}
        self._buffers: Dict[int, List[np.ndarray]] = {}
        self.count = 0

    def add(self, slices: np.ndarray, labels: Sequence[int]) -> None:
        """Buffer a labelled ``(k, length)`` batch of aligned slices."""
        slices = np.atleast_2d(np.asarray(slices, dtype=np.float64))
        labels = np.asarray(labels)
        if slices.shape[0] != labels.shape[0]:
            raise AttackError(
                f"{slices.shape[0]} slices but {labels.shape[0]} labels"
            )
        for value in np.unique(labels):
            rows = slices[labels == value]
            buffer = self._buffers.setdefault(int(value), [])
            buffer.append(rows)
            if sum(part.shape[0] for part in buffer) >= self.chunk:
                self._flush_label(int(value))
        self.count += slices.shape[0]

    def _flush_label(self, value: int) -> None:
        buffer = self._buffers.pop(value, [])
        if not buffer:
            return
        rows = np.vstack(buffer)
        self._moments.setdefault(value, RunningMoments(self.length)).update(rows)

    def moments(self) -> Dict[int, RunningMoments]:
        """Flush all buffers and return the per-label accumulators."""
        for value in list(self._buffers):
            self._flush_label(value)
        return self._moments


@dataclass
class TemplateSet:
    """Templates over a fixed POI set.

    Attributes
    ----------
    pois:
        Sample indices (into the aligned slice) the templates observe.
    means:
        Per-class mean POI vector.
    precision:
        Inverse of the pooled covariance (shared across classes); used
        when per-class precisions are absent.
    priors:
        Optional per-class prior probabilities used by
        :meth:`probabilities`; uniform when absent.
    class_precisions / class_log_dets:
        Present in ``per_class`` mode: the classic Chari-et-al. template
        with one covariance per class.  Note that per-class covariances
        with limited profiling produce famously *overconfident*
        posteriors - exactly the regime behind the paper's Table II
        probabilities of ~1; the pooled mode is the calibrated
        alternative.
    """

    pois: List[int]
    means: Dict[int, np.ndarray]
    precision: np.ndarray
    priors: Optional[Dict[int, float]] = None
    class_precisions: Optional[Dict[int, np.ndarray]] = None
    class_log_dets: Optional[Dict[int, float]] = None
    _labels: List[int] = field(init=False, repr=False)
    _means_matrix: np.ndarray = field(init=False, repr=False)
    _prec_stack: Optional[np.ndarray] = field(init=False, repr=False)
    _logdet_vec: Optional[np.ndarray] = field(init=False, repr=False)
    _log_priors: Optional[np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._labels = sorted(self.means)
        # Stacked (classes, pois) views for the batched matchers; row
        # order is the sorted label order everywhere.
        self._means_matrix = np.vstack(
            [np.asarray(self.means[l], dtype=np.float64) for l in self._labels]
        )
        if self.class_precisions is not None:
            self._prec_stack = np.stack(
                [self.class_precisions[l] for l in self._labels]
            )
            self._logdet_vec = np.array(
                [self.class_log_dets[l] for l in self._labels]
            )
        else:
            self._prec_stack = None
            self._logdet_vec = None
        if self.priors:
            self._log_priors = np.log(
                np.array(
                    [max(self.priors.get(l, 1e-300), 1e-300) for l in self._labels]
                )
            )
        else:
            self._log_priors = None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        traces_by_label: Dict[int, np.ndarray],
        pois: Sequence[int],
        ridge: float = 1e-3,
        priors: Optional[Dict[int, float]] = None,
        pooled: bool = True,
    ) -> "TemplateSet":
        """Build templates from labelled profiling traces.

        ``ridge`` regularises the covariances (the "curse of
        dimensionality" guard the paper cites [36]).  ``pooled=False``
        selects the per-class-covariance mode (see class docstring).
        """
        if not traces_by_label:
            raise AttackError("cannot build templates from no classes")
        pois = list(pois)
        means: Dict[int, np.ndarray] = {}
        scatter = np.zeros((len(pois), len(pois)))
        total = 0
        class_precisions: Dict[int, np.ndarray] = {}
        class_log_dets: Dict[int, float] = {}
        for label, traces in traces_by_label.items():
            if traces.ndim != 2 or traces.shape[0] < 2:
                raise AttackError(
                    f"class {label} needs >= 2 profiling traces, got {traces.shape}"
                )
            observed = traces[:, pois]
            mu = observed.mean(axis=0)
            means[int(label)] = mu
            centered = observed - mu
            scatter += centered.T @ centered
            total += observed.shape[0]
            if not pooled:
                own = centered.T @ centered / max(observed.shape[0] - 1, 1)
                own += ridge * max(np.trace(own), 1e-12) / len(pois) * np.eye(len(pois))
                class_precisions[int(label)] = np.linalg.inv(own)
                class_log_dets[int(label)] = float(np.linalg.slogdet(own)[1])
        pooled_cov = scatter / max(total - len(traces_by_label), 1)
        pooled_cov += ridge * np.trace(pooled_cov) / len(pois) * np.eye(len(pois))
        precision = np.linalg.inv(pooled_cov)
        return cls(
            pois=pois,
            means=means,
            precision=precision,
            priors=priors,
            class_precisions=class_precisions if not pooled else None,
            class_log_dets=class_log_dets if not pooled else None,
        )

    @classmethod
    def from_moments(
        cls,
        moments_by_label: Dict[int, RunningMoments],
        pois: Sequence[int],
        ridge: float = 1e-3,
        priors: Optional[Dict[int, float]] = None,
        pooled: bool = True,
    ) -> "TemplateSet":
        """Build templates from streaming sufficient statistics.

        Same math as :meth:`build` — template means are the class means
        at the POIs, the pooled covariance is the accumulated scatter
        over the POI sub-block — but fed by
        :class:`RunningMoments` instead of materialized trace matrices,
        so profiling sets far larger than memory can be used.  Results
        match :meth:`build` on the same data up to float accumulation
        error (the tests pin 1e-9 parity).
        """
        if not moments_by_label:
            raise AttackError("cannot build templates from no classes")
        pois = list(pois)
        poi_index = np.ix_(pois, pois)
        means: Dict[int, np.ndarray] = {}
        scatter = np.zeros((len(pois), len(pois)))
        total = 0
        class_precisions: Dict[int, np.ndarray] = {}
        class_log_dets: Dict[int, float] = {}
        for label, moments in moments_by_label.items():
            if moments.count < 2:
                raise AttackError(
                    f"class {label} needs >= 2 profiling traces, got {moments.count}"
                )
            means[int(label)] = moments.mean[pois].copy()
            class_scatter = moments.scatter[poi_index]
            scatter += class_scatter
            total += moments.count
            if not pooled:
                own = class_scatter / max(moments.count - 1, 1)
                own += ridge * max(np.trace(own), 1e-12) / len(pois) * np.eye(len(pois))
                class_precisions[int(label)] = np.linalg.inv(own)
                class_log_dets[int(label)] = float(np.linalg.slogdet(own)[1])
        pooled_cov = scatter / max(total - len(moments_by_label), 1)
        pooled_cov += ridge * np.trace(pooled_cov) / len(pois) * np.eye(len(pois))
        precision = np.linalg.inv(pooled_cov)
        return cls(
            pois=pois,
            means=means,
            precision=precision,
            priors=priors,
            class_precisions=class_precisions if not pooled else None,
            class_log_dets=class_log_dets if not pooled else None,
        )

    # ------------------------------------------------------------------
    @property
    def labels(self) -> List[int]:
        """Sorted class labels."""
        return list(self._labels)

    def log_likelihoods(self, slice_samples: np.ndarray) -> Dict[int, float]:
        """Gaussian log-likelihood of the observation under each template."""
        x = np.asarray(slice_samples, dtype=np.float64)[self.pois]
        out: Dict[int, float] = {}
        for label in self._labels:
            d = x - self.means[label]
            if self.class_precisions is not None:
                out[label] = float(
                    -0.5 * (d @ self.class_precisions[label] @ d)
                    - 0.5 * self.class_log_dets[label]
                )
            else:
                out[label] = float(-0.5 * d @ self.precision @ d)
        return out

    def probabilities(
        self, slice_samples: np.ndarray, restrict: Optional[Sequence[int]] = None
    ) -> Dict[int, float]:
        """Normalised posterior over classes (optionally restricted).

        This is the per-measurement probability table that feeds the
        LWE-with-hints framework (Table II of the paper).
        """
        lls = self.log_likelihoods(slice_samples)
        labels = [l for l in self._labels if restrict is None or l in set(restrict)]
        if not labels:
            raise AttackError("restriction excludes every template class")
        scores = np.array([lls[l] for l in labels])
        if self.priors:
            scores = scores + np.log(
                np.array([max(self.priors.get(l, 1e-300), 1e-300) for l in labels])
            )
        scores -= scores.max()
        weights = np.exp(scores)
        weights /= weights.sum()
        return {label: float(w) for label, w in zip(labels, weights)}

    def classify(
        self, slice_samples: np.ndarray, restrict: Optional[Sequence[int]] = None
    ) -> int:
        """Most likely class (the paper's Table I decision rule)."""
        probs = self.probabilities(slice_samples, restrict=restrict)
        return max(probs, key=probs.get)

    # ------------------------------------------------------------------
    # Batched matchers: one call over a whole trace's worth of slices.
    # Results agree with the scalar methods up to float reassociation.
    def log_likelihoods_matrix(self, slices: np.ndarray) -> np.ndarray:
        """Log-likelihood matrix of shape ``(n_slices, n_classes)``.

        Columns follow :attr:`labels` (sorted) order.  ``slices`` is a
        2-D array of aligned slices (full slice length; the POIs are
        selected here).
        """
        x = np.asarray(slices, dtype=np.float64)[:, self.pois]
        # Declared *non-exact* backend kernel: a compiled Mahalanobis
        # form cannot reproduce einsum's reduction order bit for bit,
        # so it only runs under an explicitly selected backend and is
        # verified by a Tolerance oracle (``backend.*.template``).
        kernel = get_kernel("template_quad")
        if kernel is not None:
            quad = kernel(x, self._means_matrix, self.precision, self._prec_stack)
            if self._prec_stack is not None:
                return -0.5 * quad - 0.5 * self._logdet_vec[None, :]
            return -0.5 * quad
        d = x[:, None, :] - self._means_matrix[None, :, :]
        if self._prec_stack is not None:
            quad = np.einsum("ncp,cpq,ncq->nc", d, self._prec_stack, d)
            return -0.5 * quad - 0.5 * self._logdet_vec[None, :]
        quad = np.einsum("ncp,pq,ncq->nc", d, self.precision, d)
        return -0.5 * quad

    def _restrict_mask(self, restrict, n_rows: int) -> Optional[np.ndarray]:
        """Normalise ``restrict`` into an ``(n_rows, n_classes)`` bool mask."""
        if restrict is None:
            return None
        if isinstance(restrict, (set, frozenset)):
            restrict = sorted(restrict)
        restrict = np.asarray(restrict)
        if restrict.ndim == 2:
            if restrict.shape != (n_rows, len(self._labels)):
                raise AttackError(
                    f"restriction mask shape {restrict.shape} does not match "
                    f"({n_rows}, {len(self._labels)})"
                )
            mask = restrict.astype(bool)
        else:
            allowed = set(int(l) for l in restrict.tolist())
            row = np.array([l in allowed for l in self._labels], dtype=bool)
            mask = np.broadcast_to(row, (n_rows, len(self._labels)))
        if not mask.any(axis=1).all():
            raise AttackError("restriction excludes every template class")
        return mask

    def probabilities_matrix(
        self, slices: np.ndarray, restrict=None
    ) -> np.ndarray:
        """Posterior matrix of shape ``(n_slices, n_classes)``.

        ``restrict`` is ``None``, a label sequence applied to every row,
        or a per-row boolean mask over :attr:`labels`; excluded classes
        get probability 0.  Each row is a max-subtracted softmax over
        the (prior-weighted) log-likelihoods, matching the scalar
        :meth:`probabilities` up to float reassociation.
        """
        scores = self.log_likelihoods_matrix(slices)
        if self._log_priors is not None:
            scores = scores + self._log_priors[None, :]
        mask = self._restrict_mask(restrict, scores.shape[0])
        if mask is not None:
            scores = np.where(mask, scores, -np.inf)
        scores = scores - scores.max(axis=1, keepdims=True)
        weights = np.exp(scores)
        weights /= weights.sum(axis=1, keepdims=True)
        return weights

    def classify_matrix(self, slices: np.ndarray, restrict=None) -> np.ndarray:
        """Per-row argmax labels for a batch of slices.

        Ties break toward the lowest label, matching the scalar
        ``max(probs, key=probs.get)`` over the sorted-label dict.
        """
        probs = self.probabilities_matrix(slices, restrict=restrict)
        labels = np.asarray(self._labels)
        return labels[np.argmax(probs, axis=1)]


def gaussian_priors(labels: Sequence[int], sigma: float) -> Dict[int, float]:
    """Discrete-Gaussian prior over coefficient values.

    The adversary knows chi's public sigma, so MAP decoding may weight
    templates by the sampling distribution.
    """
    labels = list(labels)
    weights = np.exp(-np.array(labels, dtype=float) ** 2 / (2 * sigma**2))
    weights /= weights.sum()
    return {int(l): float(w) for l, w in zip(labels, weights)}
