"""Attack-evaluation metrics: confusion matrices and success rates.

``ConfusionMatrix.format_table`` renders the percentage layout of
Table I of the paper (rows: predicted template label, columns: actual
sampled coefficient).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class ConfusionMatrix:
    """Counts of (actual, predicted) label pairs."""

    def __init__(self) -> None:
        self._counts: Dict[Tuple[int, int], int] = defaultdict(int)

    def record(self, actual: int, predicted: int) -> None:
        """Record one attack outcome."""
        self._counts[(int(actual), int(predicted))] += 1

    def record_many(self, actual: Iterable[int], predicted: Iterable[int]) -> None:
        """Record a batch of outcomes."""
        for a, p in zip(actual, predicted):
            self.record(a, p)

    def counts(self) -> Dict[Tuple[int, int], int]:
        """A copy of the raw ``(actual, predicted) -> count`` table."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    @property
    def actual_labels(self) -> List[int]:
        return sorted({a for a, _ in self._counts})

    @property
    def predicted_labels(self) -> List[int]:
        return sorted({p for _, p in self._counts})

    def total(self, actual: Optional[int] = None) -> int:
        """Total observations, optionally for one actual label."""
        return sum(
            c for (a, _), c in self._counts.items() if actual is None or a == actual
        )

    def percentage(self, actual: int, predicted: int) -> float:
        """Percentage of ``actual``-labelled attacks predicted as ``predicted``."""
        denom = self.total(actual)
        if denom == 0:
            return 0.0
        return 100.0 * self._counts.get((actual, predicted), 0) / denom

    def accuracy(self, actual: Optional[int] = None) -> float:
        """Fraction of correct predictions (optionally for one label)."""
        total = self.total(actual)
        if total == 0:
            return 0.0
        correct = sum(
            c
            for (a, p), c in self._counts.items()
            if a == p and (actual is None or a == actual)
        )
        return correct / total

    def sign_accuracy(self) -> float:
        """Fraction of predictions with the correct sign (paper: 100%)."""
        total = self.total()
        if total == 0:
            return 0.0
        correct = sum(
            c for (a, p), c in self._counts.items() if np.sign(a) == np.sign(p)
        )
        return correct / total

    # ------------------------------------------------------------------
    def matrix(self, labels: Optional[Sequence[int]] = None) -> np.ndarray:
        """Percentage matrix (rows: predicted, columns: actual) as Table I."""
        if labels is None:
            labels = sorted(set(self.actual_labels) | set(self.predicted_labels))
        labels = list(labels)
        out = np.zeros((len(labels), len(labels)))
        for i, predicted in enumerate(labels):
            for j, actual in enumerate(labels):
                out[i, j] = self.percentage(actual, predicted)
        return out

    def format_table(self, labels: Optional[Sequence[int]] = None) -> str:
        """Render the Table I layout as text."""
        if labels is None:
            labels = sorted(set(self.actual_labels) | set(self.predicted_labels))
        labels = list(labels)
        matrix = self.matrix(labels)
        header = "pred\\actual " + " ".join(f"{l:>6}" for l in labels)
        lines = [header]
        for i, predicted in enumerate(labels):
            cells = " ".join(f"{matrix[i, j]:6.1f}" for j in range(len(labels)))
            lines.append(f"{predicted:>11} {cells}")
        return "\n".join(lines)
