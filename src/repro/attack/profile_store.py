"""Multi-tenant on-disk store for profiled attack archives.

:func:`repro.attack.campaign.profiled_attack_cached` keys each profiled
attack by a SHA-256 of its full configuration.  This module hardens
that cache into a store several campaign processes can share:

- **Atomic writes.**  Archives land via temp-file + :func:`os.replace`
  in the same directory, so concurrent writers of the same key race
  benignly (last complete archive wins — both are bit-identical, being
  pure functions of the key) and a reader never observes a torn file.
- **LRU eviction.**  ``max_entries`` / ``max_bytes`` caps evict the
  least-recently-*used* archives; :meth:`load` touches the file's
  mtime so long-lived tenants stay warm while one-off configurations
  age out.
- **Warm-start listing.**  :meth:`entries` enumerates resident
  profiles (key prefix, size, last use) so a service can pre-load its
  tenants' attacks at boot instead of re-profiling on first request.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.attack.persistence import load_attack, save_attack
from repro.attack.pipeline import SingleTraceAttack

_PREFIX = "profile-"
_SUFFIX = ".npz"


@dataclass(frozen=True)
class ProfileEntry:
    """One resident archive (warm-start listing row)."""

    key: str  # 16-hex key prefix (the filename component)
    path: Path
    bytes: int
    last_used: float


class ProfileStore:
    """A directory of ``profile-<key16>.npz`` archives with caps.

    The on-disk naming matches what ``profiled_attack_cached`` always
    wrote, so existing cache directories are valid stores as-is.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory)
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.directory / f"{_PREFIX}{key[:16]}{_SUFFIX}"

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def entries(self) -> List[ProfileEntry]:
        """Resident archives, least recently used first."""
        rows: List[ProfileEntry] = []
        if not self.directory.is_dir():
            return rows
        for path in self.directory.glob(f"{_PREFIX}*{_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced unlink
                continue
            rows.append(
                ProfileEntry(
                    key=path.name[len(_PREFIX) : -len(_SUFFIX)],
                    path=path,
                    bytes=stat.st_size,
                    last_used=stat.st_mtime,
                )
            )
        rows.sort(key=lambda entry: (entry.last_used, entry.key))
        return rows

    # ------------------------------------------------------------------
    def load(self, acquisition, key: str) -> Optional[SingleTraceAttack]:
        """The profiled attack for ``key``, or ``None`` on a miss.

        A hit refreshes the archive's LRU clock.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        attack = load_attack(acquisition, path)
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - read-only stores still work
            pass
        return attack

    def save(self, attack: SingleTraceAttack, key: str) -> Path:
        """Persist atomically (temp file + rename), then enforce caps.

        Safe under concurrent writers: each writes its own temp file
        and the rename is atomic, so the path only ever holds a
        complete archive.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.directory), prefix=f".{path.stem}.", suffix=_SUFFIX
        )
        os.close(fd)
        try:
            save_attack(attack, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.evict(keep=key)
        return path

    # ------------------------------------------------------------------
    def evict(self, keep: Optional[str] = None) -> List[Path]:
        """Drop least-recently-used archives until within the caps.

        ``keep`` protects one key (the archive just written) even when
        the caps would otherwise select it.  Returns the evicted paths.
        """
        if self.max_entries is None and self.max_bytes is None:
            return []
        rows = self.entries()
        total = sum(entry.bytes for entry in rows)
        evicted: List[Path] = []
        for entry in rows:
            over_count = (
                self.max_entries is not None
                and len(rows) - len(evicted) > self.max_entries
            )
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not (over_count or over_bytes):
                break
            if keep is not None and entry.key == keep[:16]:
                continue
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - raced unlink
                continue
            evicted.append(entry.path)
            total -= entry.bytes
        return evicted
