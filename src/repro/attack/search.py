"""Exploring the remaining search space after the template attack.

At full scale the paper *estimates* this exploration with BKZ (the
bikz numbers of Tables III/IV).  At toy scale we can actually *do* it:
the per-coefficient probability tables define a product distribution
over error-polynomial candidates, which we enumerate best-first (a lazy
k-best walk over the joint posterior) and validate with the keyless
plausibility check of :mod:`repro.attack.recovery` - a wrong ``e2``
yields a non-ternary ``u`` and an oversized implied ``e1``, so the
first plausible candidate is the true one with overwhelming
probability.

The enumerator uses the classic lazy-sibling binarisation of the
successor tree (at most three pushes per pop, states stored as linked
increment chains), so memory stays O(candidates yielded) even for long
polynomials.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.attack.recovery import MessageRecovery
from repro.bfv.ciphertext import Ciphertext
from repro.bfv.keys import PublicKey
from repro.bfv.params import BfvContext
from repro.bfv.plaintext import Plaintext
from repro.errors import AttackError


def enumerate_candidates(
    tables: Sequence[Dict[int, float]], limit: int = 100_000
) -> Iterator[Tuple[float, List[int]]]:
    """Yield ``(log_probability, candidate)`` in decreasing probability.

    Lazy best-first enumeration over the product of the per-coefficient
    posteriors.  ``limit`` bounds the number of candidates generated.
    """
    if not tables:
        raise AttackError("no probability tables to enumerate")
    base: List[int] = []
    base_score = 0.0
    positions: List[int] = []  # coefficient indices with > 1 candidate
    ranked: List[List[Tuple[float, int]]] = []  # per uncertain position
    for index, table in enumerate(tables):
        if not table:
            raise AttackError("empty probability table")
        entries = sorted(
            ((math.log(max(p, 1e-300)), v) for v, p in table.items()), reverse=True
        )
        base.append(entries[0][1])
        base_score += entries[0][0]
        if len(entries) > 1:
            positions.append(index)
            ranked.append(entries)

    def rank_of(chain, p: int) -> int:
        count = 0
        while chain is not None:
            if chain[0] == p:
                count += 1
            chain = chain[1]
        return count

    def candidate_of(chain) -> List[int]:
        counts: Dict[int, int] = {}
        while chain is not None:
            counts[chain[0]] = counts.get(chain[0], 0) + 1
            chain = chain[1]
        values = list(base)
        for p, r in counts.items():
            values[positions[p]] = ranked[p][r][1]
        return values

    # first-step penalty (rank 0 -> 1) per uncertain position
    first_delta = [entries[1][0] - entries[0][0] for entries in ranked]
    # extensions of a node with head h range over positions > h; iterate
    # them best-first so each sibling's score is <= its predecessor's
    order_after: List[List[int]] = []
    for h in range(-1, len(positions)):
        tail = list(range(h + 1, len(positions)))
        tail.sort(key=lambda p: first_delta[p], reverse=True)
        order_after.append(tail)  # index h+1 holds positions > h

    tie = itertools.count()
    # heap entry:
    #   (-score, tie, chain, parent_chain, parent_score, parent_head, ext_rank)
    # chain = (position_index, parent_chain): linked increments, head first.
    # ext_rank indexes order_after[parent_head + 1]; None for deepen children.
    heap: List[tuple] = [(-base_score, next(tie), None, None, 0.0, -1, None)]
    produced = 0
    while heap and produced < limit:
        entry = heapq.heappop(heap)
        neg_score, _, chain, parent_chain, parent_score, parent_head, ext_rank = entry
        score = -neg_score
        yield score, candidate_of(chain)
        produced += 1

        head = chain[0] if chain is not None else None
        # (1) deepen: one more rank step at the head position
        if chain is not None:
            rank = rank_of(chain, head)
            if rank + 1 < len(ranked[head]):
                delta = ranked[head][rank + 1][0] - ranked[head][rank][0]
                heapq.heappush(
                    heap,
                    (-(score + delta), next(tie), (head, chain), None, 0.0, -1, None),
                )
        # (2) own first extension: the best-scoring position beyond the head
        own_order = order_after[(head if head is not None else -1) + 1]
        if own_order:
            p = own_order[0]
            heapq.heappush(
                heap,
                (
                    -(score + first_delta[p]),
                    next(tie),
                    (p, chain),
                    chain,
                    score,
                    head if head is not None else -1,
                    0,
                ),
            )
        # (3) next sibling: the parent's next-best extension
        if ext_rank is not None:
            sibling_order = order_after[parent_head + 1]
            if ext_rank + 1 < len(sibling_order):
                p = sibling_order[ext_rank + 1]
                heapq.heappush(
                    heap,
                    (
                        -(parent_score + first_delta[p]),
                        next(tie),
                        (p, parent_chain),
                        parent_chain,
                        parent_score,
                        parent_head,
                        ext_rank + 1,
                    ),
                )


@dataclass
class SearchResult:
    """Outcome of the search stage."""

    message: Plaintext
    e2: List[int]
    candidates_tried: int
    log_probability: float


def search_message(
    context: BfvContext,
    ciphertext: Ciphertext,
    public_key: PublicKey,
    tables: Sequence[Dict[int, float]],
    budget: int = 50_000,
) -> SearchResult:
    """Best-first search for the true error polynomial, then recover m.

    Raises :class:`AttackError` when no plausible candidate is found
    within ``budget`` candidates (posteriors too flat - capture a
    cleaner trace or raise the budget).
    """
    if len(tables) != context.n:
        raise AttackError(
            f"need {context.n} probability tables, got {len(tables)}"
        )
    recovery = MessageRecovery(context, ciphertext, public_key)
    tried = 0
    for log_p, candidate in enumerate_candidates(tables, limit=budget):
        tried += 1
        if recovery.is_plausible(candidate):
            message = recovery.message_from_e2(candidate)
            return SearchResult(
                message=message,
                e2=candidate,
                candidates_tried=tried,
                log_probability=log_p,
            )
    raise AttackError(f"no plausible e2 within {budget} candidates")


def expected_search_effort(tables: Sequence[Dict[int, float]]) -> float:
    """log2 of an optimistic candidate count before hitting the truth.

    This is the single-trace analogue of the paper's "remaining search
    space": ``-sum_i log2(max_v p_i(v))``, i.e. the joint posterior mass
    of the most likely candidate.
    """
    total = 0.0
    for table in tables:
        top = max(table.values())
        total += -math.log2(max(top, 1e-300))
    return total
