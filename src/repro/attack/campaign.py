"""Campaign-scale parallel end-to-end attack evaluation.

The paper profiles with 220,000 device executions and evaluates on tens
of thousands of attack traces; :mod:`repro.attack.evaluation` runs that
loop serially in the parent process.  This module is the throughput
path:

- :func:`run_campaign` fans ``capture -> segment -> classify -> score``
  for N victim seeds across a process pool.  Every worker does the
  whole chain locally and ships back only per-coefficient outcomes (a
  few hundred bytes per trace); with ``engine="lanes"`` each worker
  captures a whole lane batch through the fused expand→noise→scope
  pipeline (L×W parallelism).  Every trace's measurement noise is a
  pure function of ``(batch entropy, seed)`` under the counter-based
  stream of :mod:`repro.power.noise` — so the report is **identical**
  for any worker count, lane width or pool scheduling order.
- :class:`CampaignReport` aggregates accuracies, the confusion matrix,
  the probability tables (the LWE-with-hints input) and **per-stage
  wall-time counters**, the honest end-to-end throughput trajectory
  BENCH_core.json tracks.
- :func:`profiled_attack_cached` keys a profiled attack archive
  (:mod:`repro.attack.persistence`) by a hash of the full attack +
  profiling + bench configuration, so a campaign profiles once per
  configuration and every later run loads in milliseconds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.attack.branch import sign_of
from repro.backends import backend_id
from repro.attack.evaluation import CampaignResult
from repro.attack.metrics import ConfusionMatrix
from repro.attack.pipeline import ProfilingReport, SingleTraceAttack
from repro.errors import AttackError
from repro.power.capture import CapturedTrace, _capture_lane_chunk, _capture_one
from repro.power.noise import NOISE_STREAM_VERSION
from repro.riscv.device import effective_engine

#: Timing stages reported by the campaign workers, in pipeline order.
STAGES = ("capture", "segment", "classify", "score")


@dataclass
class SeedOutcome:
    """One victim seed's end-to-end result (the worker return payload)."""

    seed: int
    values: List[int]
    signs: List[int]
    estimates: List[int]
    tables: List[Dict[int, float]]
    timings: Dict[str, float]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignReport:
    """Aggregated outcome of a parallel attack campaign."""

    outcomes: List[Tuple[int, int, int, Dict[int, float]]] = field(repr=False)
    confusion: ConfusionMatrix = field(repr=False)
    sign_accuracy: float
    value_accuracy: float
    coefficients_attacked: int
    traces_attacked: int
    traces_failed: int
    failures: List[Tuple[int, str]] = field(repr=False)
    timings: Dict[str, float]
    wall_seconds: float
    workers: int
    engine: str = "threaded"
    #: ``name-version`` of the compute backend the campaign ran under
    #: (see :mod:`repro.backends`) — reports from different backends
    #: are comparable but not necessarily bit-identical when a
    #: non-exact kernel (template matching) was armed.
    backend: str = "reference"
    #: Orchestrated runs attach their data-plane counters here (grain
    #: size, steals, checkpoint shards written, arena bytes, worker
    #: deaths survived) — :meth:`format_timings` shows them.  ``None``
    #: for plain :func:`run_campaign` reports.  Deliberately excluded
    #: from the determinism contract: the *outcomes* are bit-identical
    #: across schedules, the schedule itself is not.
    orchestrator: Optional[Dict[str, int]] = None

    @property
    def coefficients_per_second(self) -> float:
        """End-to-end throughput (capture included)."""
        return self.coefficients_attacked / max(self.wall_seconds, 1e-12)

    @property
    def probability_tables(self) -> List[Dict[int, float]]:
        return [table for _, _, _, table in self.outcomes]

    def to_result(self) -> CampaignResult:
        """The legacy :class:`~repro.attack.evaluation.CampaignResult`
        view (hint statistics, bikz estimation)."""
        return CampaignResult(
            confusion=self.confusion,
            sign_accuracy=self.sign_accuracy,
            value_accuracy=self.value_accuracy,
            coefficients_attacked=self.coefficients_attacked,
            probability_tables=self.probability_tables,
        )

    def format_timings(self) -> str:
        """Per-stage timing table (summed worker seconds + wall clock)."""
        busy = sum(self.timings.get(stage, 0.0) for stage in STAGES)
        lines = [
            f"per-stage timings ({self.workers} worker(s), "
            f"{self.engine} engine):"
        ]
        for stage in STAGES:
            seconds = self.timings.get(stage, 0.0)
            share = 100.0 * seconds / max(busy, 1e-12)
            lines.append(f"  {stage:<9} {seconds:8.3f} s  ({share:4.1f}%)")
        lines.append(
            f"  {'wall':<9} {self.wall_seconds:8.3f} s  "
            f"({self.coefficients_per_second:,.0f} coefficients/s)"
        )
        if self.orchestrator:
            meta = self.orchestrator
            lines.append(
                "orchestrator: "
                f"grain={meta.get('grain', 0)} "
                f"shard_size={meta.get('shard_size', 0)} "
                f"grains={meta.get('grains', 0)} "
                f"steals={meta.get('steals', 0)} "
                f"checkpoints={meta.get('checkpoints', 0)} "
                f"arena={meta.get('arena_bytes', 0) / 1e6:.1f} MB "
                f"worker_deaths={meta.get('workers_died', 0)}"
            )
        return "\n".join(lines)

    def summary(self) -> str:
        return "\n".join(
            [
                f"traces attacked       : {self.traces_attacked} "
                f"({self.traces_failed} failed)",
                f"coefficients attacked : {self.coefficients_attacked}",
                f"sign accuracy         : {100 * self.sign_accuracy:.2f}%",
                f"value accuracy        : {100 * self.value_accuracy:.2f}%",
                self.format_timings(),
            ]
        )


def _attack_seed(
    attack: SingleTraceAttack,
    seed: int,
    count: int,
    entropy: int,
    engine: str = "threaded",
) -> SeedOutcome:
    """The whole per-seed chain, shared by the serial path and workers."""
    acquisition = attack.acquisition
    tick = time.perf_counter()
    captured = _capture_one(
        acquisition.device,
        acquisition.leakage,
        acquisition.scope,
        seed,
        count,
        entropy,
        engine=engine,
    )
    return _attack_captured(attack, captured, time.perf_counter() - tick)


def _attack_lane_chunk(
    attack: SingleTraceAttack,
    seeds,
    count: int,
    entropy: int,
    out: Optional[np.ndarray] = None,
) -> List[SeedOutcome]:
    """Capture a whole lane chunk at once, then attack each trace.

    The chunk's capture wall time is split evenly across its traces so
    the aggregated per-stage timings stay comparable to the scalar
    path's per-seed accounting.  ``out`` is an optional reusable flat
    sample buffer (the orchestrator's shared-memory scratch slot) for
    the fused expansion; the attacked outcomes never alias it.
    """
    acquisition = attack.acquisition
    tick = time.perf_counter()
    captures = _capture_lane_chunk(
        acquisition.device,
        acquisition.leakage,
        acquisition.scope,
        list(seeds),
        count,
        entropy,
        out=out,
    )
    share = (time.perf_counter() - tick) / max(len(captures), 1)
    return [_attack_captured(attack, captured, share) for captured in captures]


def _attack_captured(
    attack: SingleTraceAttack, captured: CapturedTrace, capture_seconds: float
) -> SeedOutcome:
    """Segment, classify and score one captured trace."""
    seed = captured.seed
    timings: Dict[str, float] = {"capture": capture_seconds}

    tick = time.perf_counter()
    try:
        aligned = attack.segmenter.aligned_slices(
            captured.trace.samples, refiner=attack.refiner
        )
    except AttackError as exc:
        timings["segment"] = time.perf_counter() - tick
        return SeedOutcome(seed, captured.values, [], [], [], timings, str(exc))
    timings["segment"] = time.perf_counter() - tick
    if len(aligned) != len(captured.values):
        return SeedOutcome(
            seed,
            captured.values,
            [],
            [],
            [],
            timings,
            f"segmented {len(aligned)} coefficients, expected {len(captured.values)}",
        )

    tick = time.perf_counter()
    try:
        result = attack.attack_aligned(np.vstack(aligned))
    except AttackError as exc:
        timings["classify"] = time.perf_counter() - tick
        return SeedOutcome(seed, captured.values, [], [], [], timings, str(exc))
    timings["classify"] = time.perf_counter() - tick

    tick = time.perf_counter()
    outcome = SeedOutcome(
        seed=seed,
        values=captured.values,
        signs=result.signs,
        estimates=result.estimates,
        tables=result.probabilities,
        timings=timings,
    )
    timings["score"] = time.perf_counter() - tick
    return outcome


# Worker-process state: the profiled attack is shipped once via the
# pool initializer instead of being pickled into every task.
_CAMPAIGN_STATE: dict = {}


def _campaign_init(attack: SingleTraceAttack, entropy: int) -> None:
    _CAMPAIGN_STATE["attack"] = attack
    _CAMPAIGN_STATE["entropy"] = entropy


def _campaign_worker(args) -> SeedOutcome:
    seed, count, engine = args
    return _attack_seed(
        _CAMPAIGN_STATE["attack"], seed, count, _CAMPAIGN_STATE["entropy"], engine
    )


def _campaign_lane_worker(args) -> List[SeedOutcome]:
    seeds, count = args
    return _attack_lane_chunk(
        _CAMPAIGN_STATE["attack"], seeds, count, _CAMPAIGN_STATE["entropy"]
    )


def run_campaign(
    attack: SingleTraceAttack,
    trace_count: int,
    coeffs_per_trace: int = 8,
    first_seed: int = 1,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    lanes: Optional[int] = None,
) -> CampaignReport:
    """Attack ``trace_count`` fresh executions, optionally in parallel.

    The attack must already be profiled.  Noise is drawn from the
    bench's batch-entropy streams (per-seed), so the report is
    bit-identical for any ``workers`` value and any pool completion
    order.  Traces that fail to segment are recorded in
    ``report.failures`` and excluded from the statistics, as in the
    serial :func:`repro.attack.evaluation.run_campaign`.

    ``engine`` picks the capture execution engine (``None`` defers to
    the bench's setting, then ``REVEAL_ENGINE``, then threaded);
    ``engine="lanes"`` captures ``lanes`` seeds per lock-step batch —
    composing with ``workers``, which then fan out whole chunks — and
    still produces the identical report.
    """
    if attack.templates is None or attack.branch_classifier is None:
        raise AttackError("profile() must run before a campaign")
    acquisition = attack.acquisition
    # effective_engine: "compiled" degrades to "threaded" without a C
    # toolchain, and the report records the engine that actually ran.
    engine = effective_engine(
        engine if engine is not None else getattr(acquisition, "engine", None)
    )
    entropy = acquisition.batch_entropy()
    start = time.perf_counter()
    if engine == "lanes":
        width = getattr(acquisition, "lanes", 64) if lanes is None else int(lanes)
        if width < 1:
            raise AttackError(f"lanes must be >= 1, got {width}")
        seeds = [first_seed + i for i in range(trace_count)]
        lane_tasks = [
            (tuple(seeds[i : i + width]), coeffs_per_trace)
            for i in range(0, trace_count, width)
        ]
        if workers is None or workers <= 1 or len(lane_tasks) <= 1:
            pool_size = 1
            chunks = [
                _attack_lane_chunk(attack, chunk_seeds, count, entropy)
                for chunk_seeds, count in lane_tasks
            ]
        else:
            pool_size = min(workers, len(lane_tasks), (os.cpu_count() or 1) * 4)
            with ProcessPoolExecutor(
                max_workers=pool_size,
                initializer=_campaign_init,
                initargs=(attack, entropy),
            ) as pool:
                chunk = max(1, len(lane_tasks) // (pool_size * 4))
                chunks = list(
                    pool.map(_campaign_lane_worker, lane_tasks, chunksize=chunk)
                )
        results = [outcome for chunk_results in chunks for outcome in chunk_results]
    else:
        tasks = [
            (first_seed + i, coeffs_per_trace, engine) for i in range(trace_count)
        ]
        if workers is None or workers <= 1 or trace_count <= 1:
            pool_size = 1
            results = [
                _attack_seed(attack, seed, count, entropy, task_engine)
                for seed, count, task_engine in tasks
            ]
        else:
            pool_size = min(workers, trace_count, (os.cpu_count() or 1) * 4)
            with ProcessPoolExecutor(
                max_workers=pool_size,
                initializer=_campaign_init,
                initargs=(attack, entropy),
            ) as pool:
                chunk = max(1, trace_count // (pool_size * 4))
                results = list(pool.map(_campaign_worker, tasks, chunksize=chunk))
    wall = time.perf_counter() - start
    return aggregate_outcomes(results, trace_count, wall, pool_size, engine)


def aggregate_outcomes(
    results: List[SeedOutcome],
    trace_count: int,
    wall_seconds: float,
    workers: int,
    engine: str,
    base_timings: Optional[Dict[str, float]] = None,
    orchestrator: Optional[Dict[str, int]] = None,
) -> CampaignReport:
    """Fold seed-ordered :class:`SeedOutcome`\\ s into a report.

    This is the single aggregation path shared by :func:`run_campaign`
    and the shared-memory orchestrator — the report's deterministic
    payload (outcomes, confusion, accuracies, failures) depends only on
    the per-seed outcomes, never on who computed them.
    ``base_timings`` seeds the per-stage counters for callers that
    accumulated worker time out of band (the orchestrator's arena
    records, resumed checkpoint shards).
    """
    confusion = ConfusionMatrix()
    outcomes: List[Tuple[int, int, int, Dict[int, float]]] = []
    failures: List[Tuple[int, str]] = []
    timings = {stage: 0.0 for stage in STAGES}
    for stage, seconds in (base_timings or {}).items():
        timings[stage] = timings.get(stage, 0.0) + seconds
    sign_hits = value_hits = 0
    for outcome in results:
        for stage, seconds in outcome.timings.items():
            timings[stage] = timings.get(stage, 0.0) + seconds
        if not outcome.ok:
            failures.append((outcome.seed, outcome.error))
            continue
        for value, sign, estimate, table in zip(
            outcome.values, outcome.signs, outcome.estimates, outcome.tables
        ):
            sign_hits += sign_of(value) == sign
            value_hits += estimate == value
            confusion.record(value, estimate)
            outcomes.append((value, sign, estimate, table))
    if not outcomes:
        raise AttackError("no trace in the campaign could be attacked")
    total = len(outcomes)
    return CampaignReport(
        outcomes=outcomes,
        confusion=confusion,
        sign_accuracy=sign_hits / total,
        value_accuracy=value_hits / total,
        coefficients_attacked=total,
        traces_attacked=trace_count - len(failures),
        traces_failed=len(failures),
        failures=failures,
        timings=timings,
        wall_seconds=wall_seconds,
        workers=workers,
        engine=engine,
        backend=backend_id(),
        orchestrator=orchestrator,
    )


# ----------------------------------------------------------------------
# Config-hash-keyed profile cache
# ----------------------------------------------------------------------
def _jsonable(value):
    """Best-effort stable JSON representation for hashing."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return value


def profile_cache_key(
    attack: SingleTraceAttack,
    num_traces: int,
    coeffs_per_trace: int,
    first_seed: int,
    noise_mode: str,
) -> str:
    """Hash of everything the profiled state depends on.

    Covers the attack configuration (segmenter tunables, POI method and
    count, priors, covariance/standardisation modes, branch region),
    the profiling budget and seeds, the acquisition noise mode and the
    measurement bench itself (device moduli and clipping bound, scope
    front-end, leakage weights, batch entropy).  Any change produces a
    different key, so stale cache entries can never be served.
    """
    acquisition = attack.acquisition
    device = acquisition.device
    descriptor = {
        "segmenter": _jsonable(attack.segmenter.config),
        "poi_method": attack.poi_method,
        "poi_count": attack.poi_count,
        "use_prior": attack.use_prior,
        "sigma": attack.sigma,
        "pooled_covariance": attack.pooled_covariance,
        "standardize": attack.standardize,
        "branch_region": list(attack.branch_region),
        "num_traces": int(num_traces),
        "coeffs_per_trace": int(coeffs_per_trace),
        "first_seed": int(first_seed),
        "noise_mode": noise_mode,
        # Stream-construction version: profiles templated under one
        # noise stream must never be served against traces captured
        # under another (the v1 -> v2 Philox migration changed every
        # noise value while keeping the distribution).
        "noise_stream": NOISE_STREAM_VERSION,
        # ... and likewise across compute backends: a profile fitted
        # under a backend with a non-exact (Tolerance) template kernel
        # must never be silently served to a run under another.
        "backend": backend_id(),
        "batch_entropy": acquisition.batch_entropy(),
        "moduli": getattr(device, "moduli", None),
        "max_deviation": getattr(device, "max_deviation", None),
        "scope": _jsonable(acquisition.scope),
        "leakage": _jsonable(acquisition.leakage),
    }
    blob = json.dumps(descriptor, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def profiled_attack_cached(
    acquisition,
    cache_dir: Union[str, Path],
    attack_kwargs: Optional[dict] = None,
    num_traces: int = 400,
    coeffs_per_trace: int = 8,
    first_seed: int = 1,
    min_class_count: int = 3,
    workers: Optional[int] = None,
) -> Tuple[SingleTraceAttack, bool, Optional[ProfilingReport]]:
    """Profile once per configuration; later calls load from disk.

    Returns ``(attack, was_cached, profiling_report)`` — the report is
    ``None`` on a cache hit.  The archive is keyed by
    :func:`profile_cache_key`, so any change to the attack, profiling
    budget or bench produces a fresh profile instead of a stale hit.

    Note the profiling *noise* differs between serial (bench-sequential
    stream) and batch (per-seed streams) acquisition; the mode is part
    of the key.
    """
    from repro.attack.profile_store import ProfileStore

    attack = SingleTraceAttack(acquisition, **(attack_kwargs or {}))
    noise_mode = "sequential" if workers is None else "per-seed"
    key = profile_cache_key(
        attack, num_traces, coeffs_per_trace, first_seed, noise_mode
    )
    store = ProfileStore(Path(cache_dir))
    cached = store.load(acquisition, key)
    if cached is not None:
        return cached, True, None
    report = attack.profile(
        num_traces=num_traces,
        coeffs_per_trace=coeffs_per_trace,
        first_seed=first_seed,
        min_class_count=min_class_count,
        workers=workers,
    )
    # Atomic rename via the store: concurrent writers of the same key
    # race benignly (both archives are bit-identical pure functions of
    # the key) and readers never see a torn file.
    store.save(attack, key)
    return attack, False, report
