"""The RevEAL single-trace attack pipeline (section III of the paper).

Stages, in order:

1. :mod:`repro.attack.segmentation` — locate each coefficient's
   sampling window inside the full encryption trace and align it on the
   value-computation anchor (the paper's "peaks", Fig. 3a);
2. :mod:`repro.attack.branch` — classify which of the three Fig. 2
   branches executed, recovering the coefficient's sign or that it is
   zero (vulnerability 1, Fig. 3b);
3. :mod:`repro.attack.poi` — select points of interest via SOSD (and
   SOST/DOM for ablation);
4. :mod:`repro.attack.template` — build/match multivariate-Gaussian
   templates on the POIs, combining the value-assignment leakage
   (vulnerability 2) with the negation leakage (vulnerability 3);
5. :mod:`repro.attack.pipeline` — the end-to-end single-trace attack;
6. :mod:`repro.attack.recovery` — algebraic message recovery from the
   recovered error polynomial (equations 2-3);
7. :mod:`repro.attack.metrics` — confusion matrices and success rates
   (Table I).

Supporting tools: :mod:`repro.attack.search` (best-first exploration of
the remaining space), :mod:`repro.attack.evaluation` (serial
attack-campaign orchestration), :mod:`repro.attack.campaign` (the
parallel campaign engine with streaming statistics and a profile
cache), :mod:`repro.attack.orchestrator` (the shared-memory
work-stealing campaign service with checkpoint/resume, backed by
:mod:`repro.attack.arena` and :mod:`repro.attack.checkpoint`),
:mod:`repro.attack.profile_store` (multi-tenant LRU profile store),
:mod:`repro.attack.cpa` (unprofiled correlation analysis) and
:mod:`repro.attack.persistence` (profile once, attack later).
"""

from repro.attack.arena import SliceArena
from repro.attack.branch import BranchClassifier
from repro.attack.campaign import (
    CampaignReport,
    aggregate_outcomes,
    profile_cache_key,
    profiled_attack_cached,
)
from repro.attack.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.attack.orchestrator import (
    CampaignJob,
    CampaignProgress,
    Orchestrator,
    run_orchestrated,
)
from repro.attack.profile_store import ProfileEntry, ProfileStore
from repro.attack.cpa import correlation_trace, locate_value_leakage
from repro.attack.evaluation import CampaignResult, run_campaign
from repro.attack.metrics import ConfusionMatrix
from repro.attack.persistence import load_attack, save_attack
from repro.attack.pipeline import AttackResult, SingleTraceAttack
from repro.attack.poi import select_pois_dom, select_pois_sosd, select_pois_sost
from repro.attack.recovery import (
    MessageRecovery,
    recover_message,
    recover_u,
    recovery_is_plausible,
)
from repro.attack.search import SearchResult, enumerate_candidates, search_message
from repro.attack.segmentation import Segmenter, SegmenterConfig
from repro.attack.template import MomentAccumulator, RunningMoments, TemplateSet

__all__ = [
    "AttackResult",
    "BranchClassifier",
    "CampaignCheckpoint",
    "CampaignJob",
    "CampaignProgress",
    "CampaignReport",
    "CampaignResult",
    "ConfusionMatrix",
    "Orchestrator",
    "ProfileEntry",
    "ProfileStore",
    "SliceArena",
    "aggregate_outcomes",
    "campaign_fingerprint",
    "run_orchestrated",
    "MomentAccumulator",
    "RunningMoments",
    "profile_cache_key",
    "profiled_attack_cached",
    "correlation_trace",
    "load_attack",
    "locate_value_leakage",
    "run_campaign",
    "save_attack",
    "MessageRecovery",
    "SearchResult",
    "enumerate_candidates",
    "search_message",
    "Segmenter",
    "SegmenterConfig",
    "SingleTraceAttack",
    "TemplateSet",
    "recover_message",
    "recover_u",
    "recovery_is_plausible",
    "select_pois_dom",
    "select_pois_sosd",
    "select_pois_sost",
]
