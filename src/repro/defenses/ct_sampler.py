"""Constant-control-flow sign assignment (the SEAL v3.6-style fix).

Replaces the Fig. 2 ``if noise > 0 / elif noise < 0 / else`` structure
with a branchless computation

    mask = noise >> 31                 (all-ones when negative)
    poly[i + j*n] = noise + (q_j & mask)

so every coefficient executes the *same* instruction sequence
regardless of its sign - the paper's vulnerability 1 disappears and
vulnerability 3 (the negation) never executes.  Data-flow leakage of
the stored value remains, which is exactly why the paper remarks that
"SEAL v3.6 and later versions may have a different vulnerability".
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AssemblyError
from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.programs.gaussian import GOLDEN_SIGMA_Q16, gaussian_sampler_source

_ASSIGN_START = "# --- Fig. 2 sign assignment"
_ASSIGN_END = "assign_done:"

_CT_ASSIGNMENT = """\
# --- constant-time sign assignment (v3.6-style branchless iterator) ------
    srai  t3, s5, 31            # mask: -1 if negative else 0
    li    t0, 0
    slli  t1, s6, 2
    add   t1, t1, a0
    slli  t2, a1, 2
    mv    t6, a3
ct_loop:
    lw    t4, 0(t6)
    and   t4, t4, t3            # q_j or 0
    add   t4, t4, s5            # noise mod q_j, branchlessly
    sw    t4, 0(t1)
    add   t1, t1, t2
    addi  t6, t6, 4
    addi  t0, t0, 1
    blt   t0, a2, ct_loop

"""


def constant_time_sampler_source(sigma_q16: int = GOLDEN_SIGMA_Q16) -> str:
    """The kernel with the branchless assignment substituted in."""
    source = gaussian_sampler_source(sigma_q16)
    start = source.find(_ASSIGN_START)
    end = source.find(_ASSIGN_END)
    if start < 0 or end < 0 or end <= start:
        raise AssemblyError("could not locate the assignment section to replace")
    return source[:start] + _CT_ASSIGNMENT + source[end:]


def constant_time_device(
    moduli: Sequence[int], max_deviation: int = 41
) -> GaussianSamplerDevice:
    """A device running the constant-time kernel."""
    return GaussianSamplerDevice(
        moduli, max_deviation, program_source=constant_time_sampler_source()
    )
