"""Countermeasures discussed in section V-A of the paper.

The paper recommends *shuffling or other forms of randomisation* and
better coding practices ("eliminate conditional executions on sensitive
values"), and notes that SEAL v3.6 replaced the if/else assignment with
a branchless iterator.  Both are implemented as drop-in kernel variants
for the simulated device:

- :mod:`repro.defenses.ct_sampler` — branchless (constant control flow)
  sign assignment, the v3.6-style fix;
- :mod:`repro.defenses.shuffling` — Fisher-Yates shuffling of the
  coefficient order, which decouples what the attacker recovers from
  *which* coefficient it belongs to.
"""

from repro.defenses.ct_sampler import (
    constant_time_device,
    constant_time_sampler_source,
)
from repro.defenses.shuffling import shuffled_device, shuffled_sampler_source

__all__ = [
    "constant_time_device",
    "constant_time_sampler_source",
    "shuffled_device",
    "shuffled_sampler_source",
]
