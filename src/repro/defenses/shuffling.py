"""Coefficient-order shuffling countermeasure.

The device samples coefficients in a random order (an on-device
Fisher-Yates permutation): the adversary can still segment the trace
and recover *values*, but no longer knows which polynomial coefficient
each value belongs to.  Coordinate hints for the LWE-with-hints stage
become unusable, collapsing the attack back to near the no-hint cost -
the defense the paper recommends over masking.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AssemblyError, SimulationError
from repro.riscv.device import GaussianSamplerDevice
from repro.riscv.programs.gaussian import GOLDEN_SIGMA_Q16, gaussian_sampler_source

#: Memory address of the on-device permutation table (below the code
#: ceiling at 0x4000; the kernel itself stays under 0x3000).
PERMUTATION_BASE = 0x3000

#: The permutation table is 4*n bytes and must fit below 0x4000.
MAX_SHUFFLED_COEFFS = 1024

_PROLOGUE_MARKER = "# --- outer loop: one coefficient per iteration"

_FISHER_YATES = f"""\
# --- defense prologue: on-device Fisher-Yates permutation ----------------
    li    t1, {PERMUTATION_BASE}
    li    t0, 0
fy_init:
    slli  t2, t0, 2
    add   t2, t2, t1
    sw    t0, 0(t2)
    addi  t0, t0, 1
    blt   t0, a1, fy_init
    addi  t0, a1, -1
fy_loop:
    beqz  t0, fy_done
    slli  t2, s0, 13
    xor   s0, s0, t2
    srli  t2, s0, 17
    xor   s0, s0, t2
    slli  t2, s0, 5
    xor   s0, s0, t2
    addi  t3, t0, 1
    remu  t3, s0, t3            # j uniform in [0, i]
    slli  t4, t0, 2
    add   t4, t4, t1
    slli  t5, t3, 2
    add   t5, t5, t1
    lw    t6, 0(t4)
    lw    t2, 0(t5)
    sw    t2, 0(t4)
    sw    t6, 0(t5)
    addi  t0, t0, -1
    j     fy_loop
fy_done:

"""

_DIRECT_INDEX = "    slli  t1, s6, 2\n"

_PERMUTED_INDEX = f"""\
    slli  t1, s6, 2
    li    t5, {PERMUTATION_BASE}
    add   t5, t5, t1
    lw    t1, 0(t5)             # permuted coefficient index
    slli  t1, t1, 2
"""


def shuffled_sampler_source(sigma_q16: int = GOLDEN_SIGMA_Q16) -> str:
    """The kernel with shuffled coefficient order."""
    source = gaussian_sampler_source(sigma_q16)
    if _PROLOGUE_MARKER not in source:
        raise AssemblyError("could not locate the outer-loop marker")
    if source.count(_DIRECT_INDEX) != 3:
        raise AssemblyError(
            f"expected 3 assignment index computations, found {source.count(_DIRECT_INDEX)}"
        )
    source = source.replace(_PROLOGUE_MARKER, _FISHER_YATES + _PROLOGUE_MARKER, 1)
    return source.replace(_DIRECT_INDEX, _PERMUTED_INDEX)


def shuffled_device(
    moduli: Sequence[int], max_deviation: int = 41
) -> GaussianSamplerDevice:
    """A device running the shuffled kernel (n limited to 1024)."""
    return GaussianSamplerDevice(
        moduli, max_deviation, program_source=shuffled_sampler_source()
    )
