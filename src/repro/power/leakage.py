"""Hamming-weight / Hamming-distance leakage synthesis.

``LeakageModel.expand`` turns the CPU's per-instruction execution
events into one noiseless power sample per clock cycle:

- the *fetch* cycle of every instruction leaks the Hamming weight of the
  fetched word and the Hamming distance to the previously fetched word
  (instruction-bus toggling) — this is what makes the three branches of
  Fig. 2 visually distinguishable (Fig. 3b of the paper);
- *operand* and *writeback* cycles leak the Hamming weights of source
  and destination values and the Hamming distance to the overwritten
  register content — this carries the sampled coefficient (vulnerability
  2) and its negation (vulnerability 3);
- the sequential multiplier/divider engines leak the evolving internal
  accumulator/remainder per step, with a constant engine-activity
  offset; these long high-power bursts are the "distinguishable and
  visible peaks" that the segmentation stage anchors on (Fig. 3a);
- memory cycles leak address and data-bus weights (the
  ``coeff_modulus[j] - noise`` stores of the negative branch).

The expansion is fully vectorized over the event log's int64 columns:
32-bit Hamming weights come from a 16-bit popcount lookup table, the
per-op-class cycle layouts are scattered into one preallocated sample
buffer through cumulative cycle offsets, and the 32-step
multiplier/divider engine traces are computed as ``(n_events, 32)``
bit-matrix operations (steps contiguous per event).  ``expand_reference`` keeps the original scalar
implementation; both produce bit-identical float64 output (the tests
assert exact equality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.riscv import cycles as cy
from repro.riscv.cpu import EventLog, ExecutionEvent

_MASK32 = 0xFFFFFFFF

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Popcount of every 16-bit value; two lookups give a 32-bit popcount.
#: uint8 keeps the table at 64 KiB so the gathers stay cache-resident.
_POP16 = (
    np.unpackbits(np.arange(1 << 16, dtype=np.uint16).view(np.uint8))
    .reshape(1 << 16, 16)
    .sum(axis=1)
    .astype(np.uint8)
)

#: CYCLES as a dense vector indexable by op-class arrays.
_CYCLES_BY_CLASS = np.array(
    [cy.CYCLES[op] for op in range(len(cy.CYCLES))], dtype=np.int64
)

#: Engine-step indices as a row so the per-event step matrices come out
#: ``(n_events, 32)``: the 32 steps of one event are then contiguous,
#: which keeps the axis-1 cumsum/divmod and the sample scatter (32
#: consecutive samples per event) cache-friendly on batched expansions.
_ENGINE_STEPS_UP = np.arange(32, dtype=np.int64)[None, :]
_ENGINE_STEPS_DOWN = np.arange(31, -1, -1, dtype=np.int64)[None, :]


def _hw(value: int) -> int:
    return (value & _MASK32).bit_count()


def _hw32(values: np.ndarray) -> np.ndarray:
    """Elementwise 32-bit Hamming weight of 32-bit values held in int64.

    ``np.bitwise_count`` is a native popcount ufunc (NumPy >= 2.0);
    the 16-bit table double-lookup is kept as the fallback for older
    runtimes.  Both return the exact same small integers.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values)
    return _POP16[values & 0xFFFF] + _POP16[values >> 16]


def _event_columns(events) -> np.ndarray:
    """Events as an ``(8, n)`` int64 matrix, zero-copy for an EventLog."""
    if isinstance(events, EventLog):
        return events.columns()
    if len(events) == 0:
        return np.zeros((len(ExecutionEvent._fields), 0), dtype=np.int64)
    return np.asarray(events, dtype=np.int64).T


@dataclass
class LeakageModel:
    """Weights of the first-order CMOS power model.

    The defaults give data-dependent swings comparable to the baseline,
    which together with the scope noise reproduces the paper's accuracy
    regime (Table I): negatives well separated, positives confused
    within Hamming-weight classes.
    """

    weight_data: float = 1.0  # HW of operands / results / bus data
    weight_transition: float = 0.8  # HD of overwritten state
    weight_fetch: float = 0.4  # HW/HD of the instruction bus
    weight_engine: float = 1.0  # HW of mul/div internal state per step
    engine_offset: float = 40.0  # constant mul/div engine activity
    baseline: float = 4.0  # static power per cycle

    # ------------------------------------------------------------------
    def expand(
        self, events: Sequence[ExecutionEvent]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expand events into per-cycle samples (vectorized).

        Returns ``(samples, starts)`` where ``starts[i]`` is the sample
        index of event ``i``'s first cycle (ground truth used only by
        tests, never by the attack).  Accepts an
        :class:`~repro.riscv.cpu.EventLog` (zero-copy) or any sequence
        of :class:`~repro.riscv.cpu.ExecutionEvent`.
        """
        return self._expand_core(_event_columns(events), None)

    def expand_lanes(
        self, events, lane_counts: Optional[Sequence[int]] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Expand a whole lane batch's events in one vectorized pass.

        ``events`` is normally a
        :class:`~repro.riscv.lanes.LaneEventLog` (per-lane row counts
        come from the arena itself); alternatively pass any event
        matrix ``expand`` accepts plus explicit ``lane_counts``
        partitioning its rows into consecutive per-lane runs.

        Returns one ``(samples, starts)`` pair per lane, bit-identical
        to calling :meth:`expand` on that lane's events alone: the
        instruction-bus Hamming-distance state resets at every lane
        boundary, and the per-class scatters land in disjoint per-lane
        sample regions, so batching cannot change any float64 value.
        The sample arrays are views into one shared buffer.
        """
        if lane_counts is None:
            lane_counts = events.lane_counts()
            cols = events.columns()
        else:
            cols = _event_columns(events)
        lane_counts = np.asarray(lane_counts, dtype=np.int64)
        bounds = np.zeros(lane_counts.size + 1, dtype=np.int64)
        np.cumsum(lane_counts, out=bounds[1:])
        n = int(bounds[-1])
        if cols.shape[1] != n:
            raise ValueError(
                f"lane counts sum to {n}, got {cols.shape[1]} events"
            )
        samples, starts = self._expand_core(cols, bounds[:-1])
        csum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(_CYCLES_BY_CLASS[cols[0]], out=csum[1:])
        sample_bounds = csum[bounds]
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for lane in range(lane_counts.size):
            lo = int(sample_bounds[lane])
            out.append(
                (
                    samples[lo : int(sample_bounds[lane + 1])],
                    starts[bounds[lane] : bounds[lane + 1]] - lo,
                )
            )
        return out

    def _expand_core(
        self, cols: np.ndarray, resets: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The shared expansion kernel over an ``(8, n)`` event matrix.

        ``resets`` lists row indices where the fetched-word history
        starts over (lane boundaries in a batched expansion).
        """
        n = cols.shape[1]
        if n == 0:
            return np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int64)
        op, word, rs1, rs2, result, old_rd, address, _pc = cols

        wd = self.weight_data
        wt = self.weight_transition
        wf = self.weight_fetch
        we = self.weight_engine
        base = self.baseline

        cycles = _CYCLES_BY_CLASS[op]
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(cycles[:-1], out=starts[1:])
        total = int(starts[-1] + cycles[-1])
        samples = np.full(total, base, dtype=np.float64)

        # Event indices of one op class, ascending (the same order a
        # stable sort would give).  A boolean scan per class beats one
        # O(n log n) argsort of the whole log, and only the classes
        # actually gathered below pay for their scan.
        def cls(klass: int) -> np.ndarray:
            return np.nonzero(op == klass)[0]

        # Hamming weights shared by several cycle layouts, computed once
        # over the whole event log (one batched call for the contiguous
        # rs1/rs2/result rows).  The combined per-cycle values keep the
        # scalar reference's evaluation order so float64 output is
        # bit-identical.
        previous_word = np.empty_like(word)
        previous_word[0] = 0
        previous_word[1:] = word[:-1]
        if resets is not None:
            previous_word[resets[resets < n]] = 0
        hw_rs1, hw_rs2, hw_res = _hw32(cols[2:5])
        hw_wb = _hw32(result ^ old_rd)  # writeback Hamming distance
        fetch_v = base + wf * (_hw32(word) + _hw32(word ^ previous_word))
        operand_v = base + 0.5 * wd * (hw_rs1 + hw_rs2)
        writeback_v = base + wd * hw_res + wt * hw_wb
        data_v = base + wd * hw_res
        target_v = base + wf * hw_res

        # fetch cycle of every instruction: HW of the word + bus toggling
        samples[starts] = fetch_v

        # -- ALU: operand read, then writeback -------------------------
        ev = cls(cy.OP_ALU)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]
            samples[idx + 2] = writeback_v[ev]

        # -- sequential multiplier: 32 engine steps + writeback --------
        ev = cls(cy.OP_MUL)
        idx = starts[ev]
        if idx.size:
            a = rs1[ev]
            b = rs2[ev]
            samples[idx + 1] = operand_v[ev]
            # partial products gated by the multiplier bits; the running
            # shift-add accumulator is their masked prefix sum
            partial = ((b[:, None] >> _ENGINE_STEPS_UP) & 1) * (
                (a[:, None] << _ENGINE_STEPS_UP) & _MASK32
            )
            acc = np.cumsum(partial, axis=1) & _MASK32
            samples[idx[:, None] + 2 + _ENGINE_STEPS_UP] = (
                base + self.engine_offset + we * _hw32(acc)
            )
            samples[idx + 34] = writeback_v[ev]
            # remaining cycles up to CYCLES[OP_MUL] stay at the baseline

        # -- restoring divider: 32 remainder steps + writeback ---------
        ev = cls(cy.OP_DIV)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]
            # The restoring-divider invariant: after consuming dividend
            # bits 31..i the engine holds remainder = (dividend >> i) mod
            # divisor and quotient = (dividend >> i) div divisor, so the
            # whole 32-step evolution is one broadcast divmod.  A zero
            # divisor never restores: the remainder window slides through
            # the dividend and the quotient stays zero.
            dividend = rs1[ev]
            divisor = rs2[ev][:, None]
            shifted = dividend[:, None] >> _ENGINE_STEPS_DOWN
            zero = divisor == 0
            quo_steps, rem_steps = np.divmod(shifted, np.where(zero, 1, divisor))
            rem_steps = np.where(zero, shifted, rem_steps)
            quo_steps = np.where(zero, 0, quo_steps)
            samples[idx[:, None] + 2 + _ENGINE_STEPS_UP] = (
                base
                + self.engine_offset
                + we * 0.5 * (_hw32(rem_steps) + _hw32(quo_steps))
            )
            samples[idx + 34] = writeback_v[ev]

        # -- loads: address, data bus, writeback, turnaround -----------
        ev = cls(cy.OP_LOAD)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = base + 0.5 * wd * _hw32(address[ev])
            samples[idx + 2] = data_v[ev]
            samples[idx + 3] = writeback_v[ev]

        # -- stores: address, data bus drive, settle -------------------
        ev = cls(cy.OP_STORE)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = base + 0.5 * wd * _hw32(address[ev])
            samples[idx + 2] = data_v[ev]
            samples[idx + 3] = base + 0.5 * wd * hw_res[ev]

        # -- branches --------------------------------------------------
        ev = cls(cy.OP_BRANCH_NOT_TAKEN)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]

        ev = cls(cy.OP_BRANCH_TAKEN)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = operand_v[ev]
            samples[idx + 2] = target_v[ev]  # target fetch

        # -- jumps -----------------------------------------------------
        ev = cls(cy.OP_JUMP)
        idx = starts[ev]
        if idx.size:
            samples[idx + 1] = target_v[ev]
            samples[idx + 2] = base + wt * hw_wb[ev]

        # OP_SYSTEM: fetch cycle only — already written above
        return samples, starts

    # ------------------------------------------------------------------
    def expand_reference(
        self, events: Sequence[ExecutionEvent]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The original scalar expansion, kept as the correctness oracle.

        ``expand`` must produce float64 output exactly equal to this on
        every op class (the tests assert it).
        """
        samples: List[float] = []
        starts = np.empty(len(events), dtype=np.int64)
        wd = self.weight_data
        wt = self.weight_transition
        wf = self.weight_fetch
        base = self.baseline
        previous_word = 0
        for index, event in enumerate(events):
            starts[index] = len(samples)
            op = event.op_class
            word = event.word
            # fetch cycle
            samples.append(
                base + wf * (_hw(word) + _hw(word ^ previous_word))
            )
            previous_word = word
            if op == cy.OP_ALU:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(
                    base
                    + wd * _hw(event.result)
                    + wt * _hw(event.result ^ event.old_rd)
                )
            elif op == cy.OP_MUL:
                self._expand_mul(event, samples)
            elif op == cy.OP_DIV:
                self._expand_div(event, samples)
            elif op == cy.OP_LOAD:
                samples.append(base + 0.5 * wd * _hw(event.address))
                samples.append(base + wd * _hw(event.result))
                samples.append(
                    base
                    + wd * _hw(event.result)
                    + wt * _hw(event.result ^ event.old_rd)
                )
                samples.append(base)
            elif op == cy.OP_STORE:
                samples.append(base + 0.5 * wd * _hw(event.address))
                samples.append(base + wd * _hw(event.result))  # data bus drive
                samples.append(base + 0.5 * wd * _hw(event.result))
                samples.append(base)
            elif op == cy.OP_BRANCH_NOT_TAKEN:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(base)
            elif op == cy.OP_BRANCH_TAKEN:
                samples.append(
                    base + 0.5 * wd * (_hw(event.rs1_value) + _hw(event.rs2_value))
                )
                samples.append(base + wf * _hw(event.result))  # target fetch
                samples.append(base)  # pipeline refill
                samples.append(base)
            elif op == cy.OP_JUMP:
                samples.append(base + wf * _hw(event.result))
                samples.append(base + wt * _hw(event.result ^ event.old_rd))
                samples.append(base)
                samples.append(base)
            else:  # OP_SYSTEM: fetch only
                pass
        return np.asarray(samples, dtype=np.float64), starts

    # ------------------------------------------------------------------
    def _expand_mul(self, event: ExecutionEvent, samples: List[float]) -> None:
        """Sequential shift-add multiplier: 32 engine steps + writeback."""
        base = self.baseline
        we = self.weight_engine
        samples.append(
            base
            + 0.5 * self.weight_data * (_hw(event.rs1_value) + _hw(event.rs2_value))
        )
        a = event.rs1_value
        b = event.rs2_value
        acc = 0
        for i in range(32):
            if (b >> i) & 1:
                acc = (acc + (a << i)) & _MASK32
            samples.append(base + self.engine_offset + we * _hw(acc))
        samples.append(
            base
            + self.weight_data * _hw(event.result)
            + self.weight_transition * _hw(event.result ^ event.old_rd)
        )
        # pad to the architectural cycle count
        for _ in range(cy.CYCLES[cy.OP_MUL] - 35):
            samples.append(base)

    def _expand_div(self, event: ExecutionEvent, samples: List[float]) -> None:
        """Restoring divider: 32 remainder steps + writeback."""
        base = self.baseline
        we = self.weight_engine
        samples.append(
            base
            + 0.5 * self.weight_data * (_hw(event.rs1_value) + _hw(event.rs2_value))
        )
        dividend = event.rs1_value
        divisor = event.rs2_value
        remainder = 0
        quotient = 0
        for i in range(31, -1, -1):
            remainder = ((remainder << 1) | ((dividend >> i) & 1)) & _MASK32
            quotient <<= 1
            if divisor and remainder >= divisor:
                remainder -= divisor
                quotient |= 1
            samples.append(
                base + self.engine_offset + we * 0.5 * (_hw(remainder) + _hw(quotient))
            )
        samples.append(
            base
            + self.weight_data * _hw(event.result)
            + self.weight_transition * _hw(event.result ^ event.old_rd)
        )
        for _ in range(cy.CYCLES[cy.OP_DIV] - 35):
            samples.append(base)
